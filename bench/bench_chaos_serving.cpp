// Serving chaos gate: the end-to-end resilience bench for the online
// train+serve path, reporting BENCH_chaos.json (hsgd.run_report/v1).
//
// Scenarios:
//   parity    the WAL must be a pure durability tax: the same seeded
//             ingest -> TrainDirty cadence runs once without a WAL and
//             once with one (faults disabled), and the final factors
//             must match bit for bit. Also proves the log holds exactly
//             one record per ingest batch.
//   recovery  crash recovery must be bit-identical: checkpoint mid-run,
//             stream more rounds, capture the factors, tear the WAL
//             tail mid-append (byte-level failpoint) and destroy the
//             trainer. OnlineTrainer::Recover + re-driving the
//             unapplied records with the original cadence must land on
//             the SAME factor bits, with the torn tail truncated.
//   chaos     a live RecServer (adaptive overload control on) serves
//             client threads while the trainer streams and publishes
//             under a scripted serve fault plan: poisoned publishes
//             must be rejected with serving uninterrupted on the
//             last-known-good snapshot, injected WAL IO errors must be
//             absorbed by bounded retries, a slow shard must trip the
//             circuit breaker, and a query storm must be survived with
//             zero torn responses and bounded served-latency p99.
//
// Acceptance (exit 1, "accepted": false) is the conjunction of all
// three scenario gates; the report embeds the serve.breaker.* and
// stream.wal.* metric families for CI to archive.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "fault/serve_injector.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "stream/stream.h"
#include "stream/wal.h"

namespace hsgd::bench {
namespace {

using serve::RecServer;
using serve::ServeConfig;
using stream::OnlineTrainer;
using stream::SyntheticStream;
using stream::SyntheticStreamSpec;
using stream::Wal;

constexpr int64_t kUserBase = 10000000;
constexpr int64_t kItemBase = 20000000;

uint32_t Lcg(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return *state;
}

/// Serving invariants for one response (cf. bench_stream): version
/// inside the published window, at most k items, scores finite and
/// sorted descending with ties by ascending item id.
bool ResponseIntact(const serve::TopKResponse& response,
                    uint64_t max_version, int k) {
  if (response.snapshot_version < 1 ||
      response.snapshot_version > max_version) {
    return false;
  }
  if (response.items.size() > static_cast<size_t>(k)) return false;
  for (size_t i = 0; i < response.items.size(); ++i) {
    if (!std::isfinite(response.items[i].score)) return false;
    if (i == 0) continue;
    const ScoredItem& a = response.items[i - 1];
    const ScoredItem& b = response.items[i];
    if (!(a.score > b.score || (a.score == b.score && a.item < b.item))) {
      return false;
    }
  }
  return true;
}

/// Shared sizing for all three scenarios.
struct ChaosShape {
  int32_t warm_rows = 0;
  int32_t warm_cols = 0;
  int64_t batch = 0;
  SyntheticSpec spec;
};

ChaosShape MakeShape(const BenchContext& ctx) {
  ChaosShape shape;
  shape.warm_rows = std::max<int32_t>(
      300, static_cast<int32_t>(2400 * ctx.scale_mult));
  shape.warm_cols = std::max<int32_t>(
      240, static_cast<int32_t>(1800 * ctx.scale_mult));
  shape.batch = std::max<int64_t>(
      150, static_cast<int64_t>(1000 * ctx.scale_mult));
  shape.spec.num_rows = shape.warm_rows;
  shape.spec.num_cols = shape.warm_cols;
  shape.spec.train_nnz =
      static_cast<int64_t>(shape.warm_rows) * shape.warm_cols / 25;
  shape.spec.test_nnz = shape.spec.train_nnz / 10;
  shape.spec.params.k = 16;
  shape.spec.params.learning_rate = 0.01f;
  return shape;
}

/// Warm-trained session over `warm` (a fresh copy each call, so every
/// scenario leg starts from the identical state).
std::unique_ptr<Session> WarmSession(const Dataset& warm,
                                     const BenchContext& ctx,
                                     int warm_epochs, int epoch_budget) {
  TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
  cfg.use_dataset_target = false;
  cfg.max_epochs = epoch_budget;
  auto session = Session::Create(warm, cfg);
  HSGD_CHECK_OK(session.status());
  for (int e = 0; e < warm_epochs; ++e) {
    HSGD_CHECK_OK((*session)->RunEpoch().status());
  }
  return *std::move(session);
}

io::IdMap WarmUsers(int32_t rows) {
  io::IdMap map;
  for (int32_t i = 0; i < rows; ++i) map.Assign(kUserBase + i);
  return map;
}

io::IdMap WarmItems(int32_t cols) {
  io::IdMap map;
  for (int32_t i = 0; i < cols; ++i) map.Assign(kItemBase + i);
  return map;
}

SyntheticStreamSpec ArrivalSpec(const ChaosShape& shape, uint64_t seed) {
  SyntheticStreamSpec spec;
  spec.warm_users = shape.warm_rows;
  spec.warm_items = shape.warm_cols;
  spec.cold_user_rate = 0.01;
  spec.cold_item_rate = 0.005;
  spec.raw_user_base = kUserBase;
  spec.raw_item_base = kItemBase;
  spec.seed = seed;
  return spec;
}

void WipeDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---- Scenario 1: WAL-on/off parity -----------------------------------

struct ParityResult {
  int rounds = 0;
  int64_t wal_records = 0;
  bool factors_identical = false;
};

ParityResult RunParity(const BenchContext& ctx, const ChaosShape& shape,
                       int warm_epochs, int rounds) {
  ParityResult result;
  result.rounds = rounds;
  auto ds = GenerateSynthetic(shape.spec, ctx.seed);
  HSGD_CHECK_OK(ds.status());
  const int epoch_budget = warm_epochs + rounds + 8;
  const std::string wal_dir = "bench_chaos_parity_wal";

  auto run_leg = [&](bool with_wal, std::vector<float>* p,
                     std::vector<float>* q) {
    auto session = WarmSession(*ds, ctx, warm_epochs, epoch_budget);
    OnlineTrainer::WalIngestOptions wal_options;
    wal_options.wal.dir = wal_dir;
    if (with_wal) WipeDir(wal_dir);
    auto trainer = OnlineTrainer::Create(
        std::move(session), WarmUsers(shape.warm_rows),
        WarmItems(shape.warm_cols), nullptr, nullptr,
        with_wal ? &wal_options : nullptr);
    HSGD_CHECK_OK(trainer.status());
    SyntheticStream arrivals(ArrivalSpec(shape, ctx.seed + 17));
    for (int round = 0; round < rounds; ++round) {
      HSGD_CHECK_OK(
          (*trainer)->Ingest(arrivals.NextBatch(shape.batch)).status());
      HSGD_CHECK_OK((*trainer)->TrainDirty().status());
    }
    *p = (*trainer)->session().model().DenseP();
    *q = (*trainer)->session().model().DenseQ();
  };

  std::vector<float> p_plain, q_plain, p_wal, q_wal;
  run_leg(/*with_wal=*/false, &p_plain, &q_plain);
  run_leg(/*with_wal=*/true, &p_wal, &q_wal);
  result.factors_identical = p_plain == p_wal && q_plain == q_wal;

  auto replay = Wal::Replay(wal_dir);
  HSGD_CHECK_OK(replay.status());
  result.wal_records = static_cast<int64_t>(replay->records.size());
  WipeDir(wal_dir);

  std::printf("parity: %d rounds, %lld WAL records, factors %s\n",
              rounds, static_cast<long long>(result.wal_records),
              result.factors_identical ? "bit-identical" : "DIVERGED");
  return result;
}

// ---- Scenario 2: crash recovery bit-identity -------------------------

struct RecoveryResult {
  uint64_t checkpoint_seq = 0;
  int64_t replayed_batches = 0;
  int64_t unapplied = 0;
  int64_t truncated_bytes = 0;
  bool factors_identical = false;
};

RecoveryResult RunRecovery(const BenchContext& ctx, const ChaosShape& shape,
                           int warm_epochs, int pre_rounds,
                           int post_rounds) {
  RecoveryResult result;
  auto ds = GenerateSynthetic(shape.spec, ctx.seed + 1);
  HSGD_CHECK_OK(ds.status());
  const Dataset warm = *ds;
  const int epoch_budget = warm_epochs + pre_rounds + post_rounds + 8;
  const std::string wal_dir = "bench_chaos_recovery_wal";
  const std::string ckpt_path = "bench_chaos_recovery.ckpt";
  WipeDir(wal_dir);
  std::remove(ckpt_path.c_str());

  OnlineTrainer::WalIngestOptions wal_options;
  wal_options.wal.dir = wal_dir;

  // Original run: checkpoint after pre_rounds, stream post_rounds more,
  // capture the factors the recovered trainer must reproduce.
  std::vector<float> p_before, q_before;
  {
    auto session = WarmSession(warm, ctx, warm_epochs, epoch_budget);
    auto trainer = OnlineTrainer::Create(
        std::move(session), WarmUsers(shape.warm_rows),
        WarmItems(shape.warm_cols), nullptr, nullptr, &wal_options);
    HSGD_CHECK_OK(trainer.status());
    SyntheticStream arrivals(ArrivalSpec(shape, ctx.seed + 29));
    for (int round = 0; round < pre_rounds; ++round) {
      HSGD_CHECK_OK(
          (*trainer)->Ingest(arrivals.NextBatch(shape.batch)).status());
      HSGD_CHECK_OK((*trainer)->TrainDirty().status());
    }
    HSGD_CHECK_OK((*trainer)->Checkpoint(ckpt_path));
    for (int round = 0; round < post_rounds; ++round) {
      HSGD_CHECK_OK(
          (*trainer)->Ingest(arrivals.NextBatch(shape.batch)).status());
      HSGD_CHECK_OK((*trainer)->TrainDirty().status());
    }
    p_before = (*trainer)->session().model().DenseP();
    q_before = (*trainer)->session().model().DenseQ();

    // The crash: the next append dies a few bytes in, leaving a REAL
    // torn tail on disk. The batch was never acknowledged, so the
    // recovery target stays the state captured above.
    stream::SetWalWriteFailpoint(7);
    auto torn = (*trainer)->Ingest(arrivals.NextBatch(shape.batch));
    stream::SetWalWriteFailpoint(-1);
    HSGD_CHECK(!torn.ok());
  }

  auto recovered = OnlineTrainer::Recover(
      warm, WarmUsers(shape.warm_rows), WarmItems(shape.warm_cols),
      ckpt_path, wal_options, nullptr);
  HSGD_CHECK_OK(recovered.status());
  result.checkpoint_seq = recovered->checkpoint_seq;
  result.replayed_batches = recovered->replayed_batches;
  result.unapplied = static_cast<int64_t>(recovered->unapplied.size());
  result.truncated_bytes = recovered->truncated_bytes;

  // Re-drive the unapplied tail with the original one-batch-per-round
  // cadence, then compare bits.
  OnlineTrainer* trainer = recovered->trainer.get();
  for (const stream::WalRecord& record : recovered->unapplied) {
    HSGD_CHECK_OK(trainer->ReplayIngest(record).status());
    HSGD_CHECK_OK(trainer->TrainDirty().status());
  }
  result.factors_identical =
      p_before == trainer->session().model().DenseP() &&
      q_before == trainer->session().model().DenseQ();

  WipeDir(wal_dir);
  std::remove(ckpt_path.c_str());
  std::printf("recovery: checkpoint seq %llu, %lld replayed + %lld "
              "re-driven, %lld torn bytes truncated, factors %s\n",
              static_cast<unsigned long long>(result.checkpoint_seq),
              static_cast<long long>(result.replayed_batches),
              static_cast<long long>(result.unapplied),
              static_cast<long long>(result.truncated_bytes),
              result.factors_identical ? "bit-identical" : "DIVERGED");
  return result;
}

// ---- Scenario 3: live chaos ------------------------------------------

struct ChaosResult {
  int rounds = 0;
  int64_t queries = 0;
  int64_t ok = 0;
  int64_t shed = 0;     // typed Unavailable/DeadlineExceeded (expected)
  int64_t failed = 0;   // any other error (never expected)
  int64_t torn = 0;
  int64_t publishes = 0;
  int64_t publish_rejected = 0;
  int64_t poisons_fired = 0;
  int64_t wal_faults_fired = 0;
  int64_t wal_retries = 0;
  int64_t breaker_opens = 0;
  int64_t breaker_rejected = 0;
  int64_t post_fault_probe_failures = 0;
  double p99_ok_latency_s = 0.0;
  double train_wall_s = 0.0;
};

ChaosResult RunChaos(const BenchContext& ctx, const ChaosShape& shape,
                     obs::MetricsRegistry* registry, int warm_epochs,
                     int rounds, int clients, const FaultPlan& plan,
                     double budget_s, double round_s) {
  ChaosResult result;
  result.rounds = rounds;
  auto ds = GenerateSynthetic(shape.spec, ctx.seed + 2);
  HSGD_CHECK_OK(ds.status());
  const std::string wal_dir = "bench_chaos_live_wal";
  WipeDir(wal_dir);

  ServeConfig serve_config;
  serve_config.shards = 2;
  serve_config.max_batch = 16;
  serve_config.max_queue = 512;
  serve_config.latency_budget_s = budget_s;
  serve_config.kernel = ctx.kernel;
  serve_config.breaker_enabled = true;
  serve_config.breaker_window = 16;
  serve_config.breaker_miss_ratio = 0.5;
  serve_config.breaker_open_s = 0.02;
  serve_config.breaker_probes = 4;

  auto injector = ServeFaultInjector::Create(plan, serve_config.shards);
  HSGD_CHECK_OK(injector.status());
  ServeFaultInjector* chaos = injector->get();

  auto server = RecServer::Create(serve_config, nullptr, registry,
                                  ctx.obs.tracer.get());
  HSGD_CHECK_OK(server.status());
  RecServer* srv = server->get();
  // A slow shard stalls its worker by (slowdown x budget) per batch —
  // far past the deadline, so sustained windows must trip the breaker.
  srv->SetBatchStallHook([chaos, budget_s](int shard) {
    const double slowdown = chaos->ShardSlowdown(shard);
    return slowdown > 1.0 ? slowdown * budget_s : 0.0;
  });

  auto session = WarmSession(*ds, ctx, warm_epochs, warm_epochs + rounds + 8);
  OnlineTrainer::WalIngestOptions wal_options;
  wal_options.wal.dir = wal_dir;
  auto trainer = OnlineTrainer::Create(
      std::move(session), WarmUsers(shape.warm_rows),
      WarmItems(shape.warm_cols),
      [srv](serve::SnapshotPtr snap) { return srv->Publish(std::move(snap)); },
      registry, &wal_options);
  HSGD_CHECK_OK(trainer.status());
  OnlineTrainer* ot = trainer->get();
  ot->wal()->SetIoFaultHook([chaos] { return chaos->ConsumeWalFault(); });
  ot->SetPublishInterceptor(
      [chaos](serve::SnapshotPtr snap) -> serve::SnapshotPtr {
        if (chaos->PoisonThisPublish()) {
          return serve::FactorSnapshot::PoisonedCopy(*snap);
        }
        return snap;
      });

  std::atomic<uint64_t> max_version{1};
  HSGD_CHECK_OK(ot->PublishSnapshot().status());

  const int topk = 8;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries{0}, ok{0}, shed{0}, failed{0}, torn{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> client_threads;
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      uint32_t state = 104729u * (c + 1);
      std::vector<double>& lat = latencies[c];
      // Pipelined async client: up to kInflight submits outstanding, so
      // a stalled shard sees real queue depth (a synchronous client
      // would block on its own future and never pressure the breaker).
      constexpr size_t kInflight = 8;
      std::deque<std::future<StatusOr<serve::TopKResponse>>> inflight;
      auto settle = [&](std::future<StatusOr<serve::TopKResponse>> f) {
        auto response = f.get();
        if (!response.ok()) {
          const StatusCode code = response.status().code();
          if (code == StatusCode::kUnavailable ||
              code == StatusCode::kDeadlineExceeded) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (!ResponseIntact(*response, max_version.load(), topk)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        } else {
          ok.fetch_add(1, std::memory_order_relaxed);
          lat.push_back(response->latency_s);
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t user =
            kUserBase + static_cast<int64_t>(
                            Lcg(&state) %
                            static_cast<uint32_t>(shape.warm_rows));
        queries.fetch_add(1, std::memory_order_relaxed);
        inflight.push_back(srv->Submit({user, /*raw=*/true, topk}));
        if (inflight.size() >= kInflight) {
          settle(std::move(inflight.front()));
          inflight.pop_front();
        }
        // Storms multiply the offered load by shrinking the think time.
        const double think_us = 300.0 / chaos->LoadMultiplier();
        std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
            think_us));
      }
      // Every outstanding future resolves — the server's drain
      // guarantee, exercised here on every run.
      while (!inflight.empty()) {
        settle(std::move(inflight.front()));
        inflight.pop_front();
      }
    });
  }

  Stopwatch train_wall;
  SyntheticStream arrivals(ArrivalSpec(shape, ctx.seed + 41));
  int64_t publish_rejections_seen = 0;
  for (int round = 1; round <= rounds; ++round) {
    chaos->BeginRound(round);
    HSGD_CHECK_OK(ot->Ingest(arrivals.NextBatch(shape.batch)).status());
    HSGD_CHECK_OK(ot->TrainDirty().status());
    max_version.store(ot->version() + 1);
    auto published = ot->PublishSnapshot();
    if (!published.ok()) {
      ++publish_rejections_seen;
      // Serving must continue on the last-known-good snapshot: a warm
      // user probed right after a rejected publish still gets an intact
      // answer (shedding under load is acceptable, corruption is not).
      auto probe = srv->Query({kUserBase, /*raw=*/true, topk});
      if (!probe.ok()) {
        const StatusCode code = probe.status().code();
        if (code != StatusCode::kUnavailable &&
            code != StatusCode::kDeadlineExceeded) {
          ++result.post_fault_probe_failures;
        }
      } else if (!ResponseIntact(*probe, max_version.load(), topk)) {
        ++result.post_fault_probe_failures;
      }
    }
    // Pace the round so fault windows span real serving time: a
    // slowshard window must outlast several stalled batches for the
    // breaker's miss window to fill, and tiny --scale runs would
    // otherwise sprint through the whole plan in milliseconds.
    std::this_thread::sleep_for(std::chrono::duration<double>(round_s));
  }
  result.train_wall_s = train_wall.Seconds();
  stop.store(true);
  for (auto& thread : client_threads) thread.join();
  srv->Shutdown();

  const serve::ServeCounters counters = srv->counters();
  result.queries = queries.load();
  result.ok = ok.load();
  result.shed = shed.load();
  result.failed = failed.load();
  result.torn = torn.load();
  result.publishes = ot->publishes();
  result.publish_rejected = counters.publish_rejected;
  result.poisons_fired = chaos->poisons_fired();
  result.wal_faults_fired = chaos->wal_faults_fired();
  result.wal_retries = ot->wal_retries();
  result.breaker_opens = counters.breaker_opens;
  result.breaker_rejected =
      counters.breaker_rejected + counters.predictive_rejected;
  HSGD_CHECK(publish_rejections_seen == ot->publish_rejected());

  std::vector<double> all_latencies;
  for (const auto& lat : latencies) {
    all_latencies.insert(all_latencies.end(), lat.begin(), lat.end());
  }
  if (!all_latencies.empty()) {
    std::sort(all_latencies.begin(), all_latencies.end());
    const size_t idx = std::min(
        all_latencies.size() - 1,
        static_cast<size_t>(0.99 * static_cast<double>(all_latencies.size())));
    result.p99_ok_latency_s = all_latencies[idx];
  }
  WipeDir(wal_dir);

  std::printf("chaos: %d rounds, %lld queries (%lld ok, %lld shed, %lld "
              "failed, %lld torn), %lld publishes + %lld rejected "
              "(%lld poisons), %lld WAL faults absorbed in %lld retries, "
              "%lld breaker opens, p99 ok %.2fms\n",
              rounds, static_cast<long long>(result.queries),
              static_cast<long long>(result.ok),
              static_cast<long long>(result.shed),
              static_cast<long long>(result.failed),
              static_cast<long long>(result.torn),
              static_cast<long long>(result.publishes),
              static_cast<long long>(result.publish_rejected),
              static_cast<long long>(result.poisons_fired),
              static_cast<long long>(result.wal_faults_fired),
              static_cast<long long>(result.wal_retries),
              static_cast<long long>(result.breaker_opens),
              result.p99_ok_latency_s * 1e3);
  return result;
}

}  // namespace
}  // namespace hsgd::bench

int main(int argc, char** argv) {
  using namespace hsgd;
  using namespace hsgd::bench;

  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/30,
      {{"out", "<path>", "JSON report path (default BENCH_chaos.json)"},
       {"rounds", "<n>", "chaos publish rounds to drive (default 12)"},
       {"clients", "<n>", "query client threads (default 3)"},
       {"warm-epochs", "<n>",
        "full epochs before streaming starts (default 3)"},
       {"parity-rounds", "<n>", "WAL parity ingest rounds (default 6)"},
       {"pre-rounds", "<n>",
        "recovery rounds before the checkpoint (default 3)"},
       {"post-rounds", "<n>",
        "recovery rounds between checkpoint and crash (default 3)"},
       {"budget-ms", "<x>",
        "serve latency budget in milliseconds (default 2)"},
       {"round-ms", "<x>",
        "minimum wall time per chaos round in milliseconds (default 25; "
        "keeps fault windows wide enough to observe at any --scale)"},
       {"p99-mult", "<x>",
        "accept while served p99 <= budget * x (default 100 — the gate "
        "catches unbounded queueing collapse, not jitter)"},
       {"faults", "<plan>",
        "serve fault plan (default poison@r3;walio@r5n2;"
        "slowshard:0@r7x8for2;storm@r10x4for2)"}});
  const std::string out_path =
      ctx.flags.GetString("out", "BENCH_chaos.json");
  const int rounds = static_cast<int>(ctx.flags.GetInt("rounds", 12));
  const int clients = static_cast<int>(ctx.flags.GetInt("clients", 3));
  const int warm_epochs =
      static_cast<int>(ctx.flags.GetInt("warm-epochs", 3));
  const int parity_rounds =
      static_cast<int>(ctx.flags.GetInt("parity-rounds", 6));
  const int pre_rounds =
      static_cast<int>(ctx.flags.GetInt("pre-rounds", 3));
  const int post_rounds =
      static_cast<int>(ctx.flags.GetInt("post-rounds", 3));
  const double budget_s = ctx.flags.GetDouble("budget-ms", 2.0) / 1e3;
  const double round_s = ctx.flags.GetDouble("round-ms", 25.0) / 1e3;
  const double p99_mult = ctx.flags.GetDouble("p99-mult", 100.0);
  const std::string plan_text = ctx.flags.GetString(
      "faults",
      "poison@r3;walio@r5n2;slowshard:0@r7x8for2;storm@r10x4for2");
  HSGD_CHECK(rounds > 0 && clients > 0 && warm_epochs > 0 &&
             parity_rounds > 0 && pre_rounds > 0 && post_rounds > 0 &&
             budget_s > 0.0 && round_s >= 0.0 && p99_mult >= 1.0);

  auto plan = FaultPlan::Parse(plan_text);
  HSGD_CHECK_OK(plan.status()) << "while parsing --faults";
  int last_fault_round = 0;
  for (const FaultSpec& spec : plan->specs) {
    last_fault_round = std::max(last_fault_round, spec.epoch);
  }
  HSGD_CHECK(last_fault_round <= rounds)
      << "--faults references round " << last_fault_round
      << " but --rounds=" << rounds;

  // The chaos metrics land in the report even when no --metrics sink was
  // requested: the breaker/WAL counter families are the artifact CI
  // archives.
  std::shared_ptr<obs::MetricsRegistry> registry =
      ctx.obs.registry != nullptr ? ctx.obs.registry
                                  : std::make_shared<obs::MetricsRegistry>();

  obs::RunReport report("chaos_serving");
  report.config()
      .Set("rounds", obs::Json::Int(rounds))
      .Set("clients", obs::Json::Int(clients))
      .Set("warm_epochs", obs::Json::Int(warm_epochs))
      .Set("parity_rounds", obs::Json::Int(parity_rounds))
      .Set("pre_rounds", obs::Json::Int(pre_rounds))
      .Set("post_rounds", obs::Json::Int(post_rounds))
      .Set("budget_ms", obs::Json::Double(budget_s * 1e3))
      .Set("round_ms", obs::Json::Double(round_s * 1e3))
      .Set("p99_mult", obs::Json::Double(p99_mult))
      .Set("faults", obs::Json::Str(plan->ToString()))
      .Set("scale", obs::Json::Double(ctx.scale_mult))
      .Set("seed", obs::Json::Int(static_cast<int64_t>(ctx.seed)))
      .Set("kernel", obs::Json::Str(KernelKindName(ctx.kernel)));

  const ChaosShape shape = MakeShape(ctx);
  std::printf("chaos gate: %d x %d warm, batch %lld, plan %s\n",
              shape.warm_rows, shape.warm_cols,
              static_cast<long long>(shape.batch),
              plan->ToString().c_str());

  const ParityResult parity =
      RunParity(ctx, shape, warm_epochs, parity_rounds);
  const RecoveryResult recovery =
      RunRecovery(ctx, shape, warm_epochs, pre_rounds, post_rounds);
  const ChaosResult chaos = RunChaos(ctx, shape, registry.get(),
                                     warm_epochs, rounds, clients, *plan,
                                     budget_s, round_s);

  const bool parity_ok = parity.factors_identical &&
                         parity.wal_records == parity.rounds;
  const bool recovery_ok = recovery.factors_identical &&
                           recovery.truncated_bytes > 0 &&
                           recovery.unapplied > 0;
  const bool chaos_served_clean = chaos.failed == 0 && chaos.torn == 0 &&
                                  chaos.post_fault_probe_failures == 0 &&
                                  chaos.ok > 0;
  const bool chaos_rollback_ok =
      chaos.poisons_fired > 0 &&
      chaos.publish_rejected == chaos.poisons_fired &&
      chaos.publishes == chaos.rounds + 1 - chaos.poisons_fired;
  const bool chaos_wal_ok =
      chaos.wal_faults_fired > 0 && chaos.wal_retries >= chaos.wal_faults_fired;
  const bool chaos_breaker_ok = chaos.breaker_opens > 0;
  const bool chaos_latency_ok =
      chaos.p99_ok_latency_s <= budget_s * p99_mult;
  const bool accepted = parity_ok && recovery_ok && chaos_served_clean &&
                        chaos_rollback_ok && chaos_wal_ok &&
                        chaos_breaker_ok && chaos_latency_ok;

  report.results()
      .Push(obs::Json::Object()
                .Set("scenario", obs::Json::Str("parity"))
                .Set("rounds", obs::Json::Int(parity.rounds))
                .Set("wal_records", obs::Json::Int(parity.wal_records))
                .Set("factors_identical",
                     obs::Json::Bool(parity.factors_identical))
                .Set("gate_ok", obs::Json::Bool(parity_ok)))
      .Push(obs::Json::Object()
                .Set("scenario", obs::Json::Str("recovery"))
                .Set("checkpoint_seq",
                     obs::Json::Int(
                         static_cast<int64_t>(recovery.checkpoint_seq)))
                .Set("replayed_batches",
                     obs::Json::Int(recovery.replayed_batches))
                .Set("unapplied", obs::Json::Int(recovery.unapplied))
                .Set("truncated_bytes",
                     obs::Json::Int(recovery.truncated_bytes))
                .Set("factors_identical",
                     obs::Json::Bool(recovery.factors_identical))
                .Set("gate_ok", obs::Json::Bool(recovery_ok)))
      .Push(obs::Json::Object()
                .Set("scenario", obs::Json::Str("chaos"))
                .Set("rounds", obs::Json::Int(chaos.rounds))
                .Set("queries", obs::Json::Int(chaos.queries))
                .Set("ok", obs::Json::Int(chaos.ok))
                .Set("shed", obs::Json::Int(chaos.shed))
                .Set("failed", obs::Json::Int(chaos.failed))
                .Set("torn", obs::Json::Int(chaos.torn))
                .Set("publishes", obs::Json::Int(chaos.publishes))
                .Set("publish_rejected",
                     obs::Json::Int(chaos.publish_rejected))
                .Set("poisons_fired", obs::Json::Int(chaos.poisons_fired))
                .Set("wal_faults_fired",
                     obs::Json::Int(chaos.wal_faults_fired))
                .Set("wal_retries", obs::Json::Int(chaos.wal_retries))
                .Set("breaker_opens", obs::Json::Int(chaos.breaker_opens))
                .Set("breaker_rejected",
                     obs::Json::Int(chaos.breaker_rejected))
                .Set("post_fault_probe_failures",
                     obs::Json::Int(chaos.post_fault_probe_failures))
                .Set("p99_ok_latency_ms",
                     obs::Json::Double(chaos.p99_ok_latency_s * 1e3))
                .Set("train_wall_s", obs::Json::Double(chaos.train_wall_s))
                .Set("gate_ok",
                     obs::Json::Bool(chaos_served_clean &&
                                     chaos_rollback_ok && chaos_wal_ok &&
                                     chaos_breaker_ok && chaos_latency_ok)));
  report.config().Set("accepted", obs::Json::Bool(accepted));

  if (ctx.obs.registry == nullptr) {
    report.AttachMetrics(registry->Snapshot());
  }
  WriteObsArtifacts(ctx, &report);
  HSGD_CHECK_OK(report.WriteTo(out_path));
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!accepted) {
    std::fprintf(stderr,
                 "FAILED: chaos gate violated (parity=%d recovery=%d "
                 "served_clean=%d rollback=%d wal=%d breaker=%d "
                 "latency=%d)\n",
                 parity_ok, recovery_ok, chaos_served_clean,
                 chaos_rollback_ok, chaos_wal_ok, chaos_breaker_ok,
                 chaos_latency_ok);
    return 1;
  }
  return 0;
}
