// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every bench accepts the shared flag table below (printed by --help);
// unknown flags are an error naming the flag, so a typo'd --epoch=5
// fails loudly instead of silently running the default budget:
//   --scale=<mult>    multiply each preset's default bench scale (default 1)
//   --threads=<nc>    CPU worker threads (default 16, the paper's default)
//   --gpus=<ng>       GPUs (default 1)
//   --workers=<W>     GPU parallel workers (default 128)
//   --epochs=<cap>    epoch budget (default per bench)
//   --datasets=a,b    comma list (default: all four presets)
//   --seed=<n>
//   --kernel=<name>   SGD/scoring kernel: auto, scalar, avx2, avx512
//   --calibrate       feed the measured kernel rate into the simulator
//
// Training benches run through the Session API (RunSession below); the
// RMSE-curve and dynamic-scheduling benches attach EpochObservers
// directly to stream progress as epochs complete.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/hsgd.h"
#include "io/loader.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace hsgd::bench {

/// Observability sinks + artifact paths requested on the command line.
/// Sinks exist only when their artifact was asked for, so a bench run
/// without obs flags allocates nothing and attaches nothing — the
/// disabled path stays bit-identical to a build without obs at all.
struct BenchObs {
  std::string trace_path;
  std::string metrics_path;
  std::string prom_path;
  std::string report_path;
  std::shared_ptr<obs::MetricsRegistry> registry;
  std::shared_ptr<obs::Tracer> tracer;

  /// The (possibly empty) sink set to hand Session::SetObservability.
  Observability Sinks() const { return {registry.get(), tracer.get()}; }
};

struct BenchContext {
  CliFlags flags;
  double scale_mult = 1.0;
  int threads = 16;
  int gpus = 1;
  int workers = 128;
  int max_epochs = 30;
  uint64_t seed = 1;
  /// --kernel: compute-kernel variant for the real SGD/RMSE arithmetic.
  KernelKind kernel = KernelKind::kAuto;
  /// --calibrate: measure the real kernel rate and feed it to the sim.
  bool calibrate = false;
  std::vector<DatasetPreset> presets;
  /// Real dataset loaded via --data/--format; when set, `presets` holds a
  /// single placeholder entry and MakeBenchDataset returns this instead
  /// of a synthetic stand-in.
  std::shared_ptr<Dataset> loaded;
  std::string data_path;
  /// Short bench name from argv[0] ("fig12", "table3", ...), used as the
  /// run report's "bench" tag when the binary builds no report itself.
  std::string bench_name = "bench";
  /// --trace/--metrics/--prom/--report sinks (see BenchObs).
  BenchObs obs;
};

inline std::vector<FlagSpec> SharedFlagSpecs() {
  return {
      {"scale", "<mult>",
       "multiply each preset's default bench scale (default 1)"},
      {"threads", "<nc>", "CPU worker threads (default 16)"},
      {"gpus", "<ng>", "simulated GPUs (default 1)"},
      {"workers", "<W>", "GPU parallel workers (default 128)"},
      {"epochs", "<cap>", "epoch budget (default per bench)"},
      {"datasets", "<a,b>",
       "comma list of presets (default: all four presets)"},
      {"seed", "<n>", "RNG seed (default 1)"},
      {"data", "<path>",
       "load real ratings from this file (netflix: file or directory) "
       "instead of the synthetic presets"},
      {"format", "<name>",
       "rating-dump format for --data: movielens, netflix or csv"},
      {"test-split", "<frac>",
       "held-out fraction of loaded ratings (default 0.1)"},
      {"max-bad-lines", "<n>",
       "quarantine up to n malformed --data lines instead of failing "
       "(default 0: strict)"},
      {"kernel", "<name>",
       "SGD/scoring kernel: auto, scalar, avx2, avx512 (default auto)"},
      {"calibrate", "",
       "micro-measure the chosen kernel's real update rate and override "
       "the simulator's cpu.updates_per_sec_k128 with it"},
      {"trace", "<file>",
       "write a Chrome trace-event / Perfetto timeline of the run"},
      {"metrics", "<file>",
       "write the final metrics snapshot as hsgd.metrics/v1 JSON"},
      {"prom", "<file>",
       "write the final metrics snapshot in Prometheus text format"},
      {"report", "<file>",
       "write a structured hsgd.run_report/v1 JSON for this run"},
  };
}

/// Parses the shared flags plus any bench-specific `extra_flags`.
/// Unknown flags and malformed command lines print the offending flag
/// and the full flag table, then exit 2; --help prints the table and
/// exits 0.
inline BenchContext ParseContext(int argc, char** argv,
                                 int default_epochs = 30,
                                 std::vector<FlagSpec> extra_flags = {}) {
  std::vector<FlagSpec> specs = SharedFlagSpecs();
  for (FlagSpec& spec : extra_flags) specs.push_back(std::move(spec));
  BenchContext ctx;
  if (argc > 0 && argv[0] != nullptr) {
    std::string name = argv[0];
    const size_t slash = name.find_last_of("/\\");
    if (slash != std::string::npos) name = name.substr(slash + 1);
    // "bench_fig12_rmse_curves" -> "fig12_rmse_curves".
    if (name.rfind("bench_", 0) == 0) name = name.substr(6);
    if (!name.empty()) ctx.bench_name = name;
  }
  Status parsed = ctx.flags.Parse(argc, argv, specs);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 FormatFlagTable(specs).c_str());
    std::exit(2);
  }
  if (ctx.flags.GetBool("help", false)) {
    std::printf("%s", FormatFlagTable(specs).c_str());
    std::exit(0);
  }
  ctx.scale_mult = ctx.flags.GetDouble("scale", 1.0);
  ctx.threads = static_cast<int>(ctx.flags.GetInt("threads", 16));
  ctx.gpus = static_cast<int>(ctx.flags.GetInt("gpus", 1));
  ctx.workers = static_cast<int>(ctx.flags.GetInt("workers", 128));
  ctx.max_epochs =
      static_cast<int>(ctx.flags.GetInt("epochs", default_epochs));
  ctx.seed = static_cast<uint64_t>(ctx.flags.GetInt("seed", 1));
  {
    auto kernel = KernelKindByName(ctx.flags.GetString("kernel", "auto"));
    HSGD_CHECK(kernel.ok()) << kernel.status().message();
    // Fail at the flag, not deep inside Session::Create, when the machine
    // or build cannot run the requested variant.
    auto resolved = ResolveKernelKind(*kernel);
    HSGD_CHECK(resolved.ok()) << resolved.status().message();
    ctx.kernel = *kernel;
  }
  ctx.calibrate = ctx.flags.GetBool("calibrate", false);
  // Observability sinks before the --data load, so the loader's io.*
  // counters land in the same registry as the training metrics.
  ctx.obs.trace_path = ctx.flags.GetString("trace", "");
  ctx.obs.metrics_path = ctx.flags.GetString("metrics", "");
  ctx.obs.prom_path = ctx.flags.GetString("prom", "");
  ctx.obs.report_path = ctx.flags.GetString("report", "");
  if (!ctx.obs.metrics_path.empty() || !ctx.obs.prom_path.empty() ||
      !ctx.obs.report_path.empty()) {
    ctx.obs.registry = std::make_shared<obs::MetricsRegistry>();
  }
  if (!ctx.obs.trace_path.empty()) {
    ctx.obs.tracer = std::make_shared<obs::Tracer>();
  }
  std::string list = ctx.flags.GetString("datasets", "");
  std::string data = ctx.flags.GetString("data", "");
  if (!data.empty()) {
    HSGD_CHECK(list.empty())
        << "--data and --datasets are mutually exclusive";
    auto format = io::FormatByName(ctx.flags.GetString("format", ""));
    HSGD_CHECK(format.ok())
        << "--data needs --format={movielens,netflix,csv}: "
        << format.status().message();
    io::LoadOptions load_options;
    load_options.threads = std::max(1, ctx.threads);
    load_options.metrics = ctx.obs.registry.get();
    load_options.max_bad_lines = ctx.flags.GetInt("max-bad-lines", 0);
    HSGD_CHECK(load_options.max_bad_lines >= 0)
        << "--max-bad-lines must be >= 0";
    io::DatasetOptions dataset_options;
    dataset_options.test_fraction =
        ctx.flags.GetDouble("test-split", 0.1);
    auto ds = io::LoadDataset(data, *format, load_options, dataset_options);
    HSGD_CHECK_OK(ds.status()) << "while loading --data=" << data;
    ctx.loaded = std::make_shared<Dataset>(*std::move(ds));
    ctx.data_path = data;
    // One placeholder preset so bench loops run exactly once; its Table I
    // parameters are irrelevant (the loaded dataset carries its own).
    ctx.presets.push_back(*format == io::DataFormat::kNetflix
                              ? DatasetPreset::kNetflix
                              : DatasetPreset::kMovieLens);
  } else if (ctx.flags.Has("format") || ctx.flags.Has("test-split") ||
             ctx.flags.Has("max-bad-lines")) {
    // Same strict-CLI stance as unknown flags: a data flag that silently
    // does nothing hides a mistake.
    HSGD_LOG(Fatal)
        << "--format/--test-split/--max-bad-lines only apply with --data";
  } else if (list.empty()) {
    ctx.presets.assign(std::begin(kAllPresets), std::end(kAllPresets));
  } else {
    for (const std::string& name : Split(list, ',')) {
      auto preset = PresetByName(name);
      HSGD_CHECK(preset.ok()) << "unknown dataset '" << name << "'";
      ctx.presets.push_back(*preset);
    }
  }
  return ctx;
}

/// \brief The dataset a bench iteration runs on: the --data load when
/// present, else the scaled synthetic stand-in for `preset`.
inline Dataset MakeBenchDataset(DatasetPreset preset,
                                const BenchContext& ctx) {
  if (ctx.loaded != nullptr) {
    // Hand the loaded ratings over rather than copying: a real dump can
    // be hundreds of MB, and with --data every bench runs exactly one
    // iteration, so this is the only call. (A second call would build an
    // empty dataset, which Session::Create rejects loudly.)
    return std::move(*ctx.loaded);
  }
  double scale = DefaultBenchScale(preset) * ctx.scale_mult;
  SyntheticSpec spec = ScaledPresetSpec(preset, scale);
  auto ds = GenerateSynthetic(spec, ctx.seed);
  HSGD_CHECK_OK(ds.status());
  return std::move(ds).value();
}

/// \brief Label for a bench iteration's dataset: the --data path when
/// loading real ratings, else the preset's name.
inline std::string DatasetTitle(const BenchContext& ctx,
                                DatasetPreset preset) {
  return ctx.loaded != nullptr ? ctx.data_path : PresetName(preset);
}

/// \brief Baseline TrainConfig matching the paper's experimental setup.
inline TrainConfig MakeConfig(Algorithm algorithm, const BenchContext& ctx) {
  TrainConfig cfg;
  cfg.algorithm = algorithm;
  cfg.hardware.num_cpu_threads = ctx.threads;
  cfg.hardware.num_gpus = ctx.gpus;
  cfg.hardware.gpu.parallel_workers = ctx.workers;
  cfg.max_epochs = ctx.max_epochs;
  cfg.seed = ctx.seed;
  cfg.kernel = ctx.kernel;
  cfg.calibrate = ctx.calibrate;
  return cfg;
}

/// \brief Run a full training session (aborting on any error) and return
/// its trace + stats. The context's observability sinks (when any were
/// requested) are attached to the session; `observer` (optional,
/// borrowed) watches the epochs as they complete.
inline TrainResult RunSession(const BenchContext& ctx, const Dataset& ds,
                              const TrainConfig& cfg,
                              EpochObserver* observer = nullptr) {
  auto session = Session::Create(ds, cfg);
  HSGD_CHECK_OK(session.status());
  (*session)->SetObservability(ctx.obs.Sinks());
  if (observer != nullptr) (*session)->AddObserver(observer);
  HSGD_CHECK_OK((*session)->RunToCompletion());
  return {(*session)->trace(), (*session)->stats()};
}

/// \brief Dump `content` to `path`, aborting on IO failure (bench
/// artifacts are the run's whole point; a silent short write would
/// poison CI baselines).
inline void WriteTextArtifact(const std::string& path,
                              const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  HSGD_CHECK(f != nullptr) << "cannot open artifact file '" << path << "'";
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  HSGD_CHECK(written == content.size() && closed)
      << "short write to artifact file '" << path << "'";
}

/// \brief Write every obs artifact the command line asked for: the trace
/// timeline, the metrics snapshot (JSON and/or Prometheus text), and —
/// when `report` is given — the run report with the snapshot attached.
/// No-op for artifacts that were not requested.
inline void WriteObsArtifacts(const BenchContext& ctx,
                              obs::RunReport* report = nullptr) {
  // Benches that build no bench-specific results still honor --report:
  // fall back to a bare envelope (run config + metrics snapshot) so every
  // binary's artifact speaks hsgd.run_report/v1.
  obs::RunReport fallback(ctx.bench_name);
  if (report == nullptr && !ctx.obs.report_path.empty()) {
    fallback.config()
        .Set("scale", obs::Json::Double(ctx.scale_mult))
        .Set("threads", obs::Json::Int(ctx.threads))
        .Set("gpus", obs::Json::Int(ctx.gpus))
        .Set("workers", obs::Json::Int(ctx.workers))
        .Set("epochs", obs::Json::Int(ctx.max_epochs))
        .Set("seed", obs::Json::Int(static_cast<int64_t>(ctx.seed)));
    report = &fallback;
  }
  if (ctx.obs.registry != nullptr) {
    const obs::MetricsSnapshot snap = ctx.obs.registry->Snapshot();
    if (report != nullptr) report->AttachMetrics(snap);
    if (!ctx.obs.metrics_path.empty()) {
      WriteTextArtifact(ctx.obs.metrics_path, snap.ToJson().Dump(2) + "\n");
    }
    if (!ctx.obs.prom_path.empty()) {
      WriteTextArtifact(ctx.obs.prom_path, snap.ToPrometheus());
    }
  }
  if (ctx.obs.tracer != nullptr && !ctx.obs.trace_path.empty()) {
    HSGD_CHECK_OK(ctx.obs.tracer->WriteJson(ctx.obs.trace_path));
  }
  if (report != nullptr && !ctx.obs.report_path.empty()) {
    HSGD_CHECK_OK(report->WriteTo(ctx.obs.report_path));
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// \brief "1.234" or "never" for time-to-target columns.
inline std::string FormatTime(SimTime t) {
  if (t >= kSimTimeNever) return "never";
  return StrFormat("%.3f", t);
}

}  // namespace hsgd::bench
