// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every bench accepts:
//   --scale=<mult>    multiply each preset's default bench scale (default 1)
//   --threads=<nc>    CPU worker threads (default 16, the paper's default)
//   --gpus=<ng>       GPUs (default 1)
//   --workers=<W>     GPU parallel workers (default 128)
//   --epochs=<cap>    epoch budget (default per bench)
//   --datasets=a,b    comma list (default: all four presets)
//   --seed=<n>

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/hsgd.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace hsgd::bench {

struct BenchContext {
  CliFlags flags;
  double scale_mult = 1.0;
  int threads = 16;
  int gpus = 1;
  int workers = 128;
  int max_epochs = 30;
  uint64_t seed = 1;
  std::vector<DatasetPreset> presets;
};

inline BenchContext ParseContext(int argc, char** argv,
                                 int default_epochs = 30) {
  BenchContext ctx;
  HSGD_CHECK_OK(ctx.flags.Parse(argc, argv));
  ctx.scale_mult = ctx.flags.GetDouble("scale", 1.0);
  ctx.threads = static_cast<int>(ctx.flags.GetInt("threads", 16));
  ctx.gpus = static_cast<int>(ctx.flags.GetInt("gpus", 1));
  ctx.workers = static_cast<int>(ctx.flags.GetInt("workers", 128));
  ctx.max_epochs =
      static_cast<int>(ctx.flags.GetInt("epochs", default_epochs));
  ctx.seed = static_cast<uint64_t>(ctx.flags.GetInt("seed", 1));
  std::string list = ctx.flags.GetString("datasets", "");
  if (list.empty()) {
    ctx.presets.assign(std::begin(kAllPresets), std::end(kAllPresets));
  } else {
    for (const std::string& name : Split(list, ',')) {
      auto preset = PresetByName(name);
      HSGD_CHECK(preset.ok()) << "unknown dataset '" << name << "'";
      ctx.presets.push_back(*preset);
    }
  }
  return ctx;
}

/// \brief Generates the scaled synthetic stand-in for `preset`.
inline Dataset MakeBenchDataset(DatasetPreset preset,
                                const BenchContext& ctx) {
  double scale = DefaultBenchScale(preset) * ctx.scale_mult;
  SyntheticSpec spec = ScaledPresetSpec(preset, scale);
  auto ds = GenerateSynthetic(spec, ctx.seed);
  HSGD_CHECK_OK(ds.status());
  return std::move(ds).value();
}

/// \brief Baseline TrainConfig matching the paper's experimental setup.
inline TrainConfig MakeConfig(Algorithm algorithm, const BenchContext& ctx) {
  TrainConfig cfg;
  cfg.algorithm = algorithm;
  cfg.hardware.num_cpu_threads = ctx.threads;
  cfg.hardware.num_gpus = ctx.gpus;
  cfg.hardware.gpu.parallel_workers = ctx.workers;
  cfg.max_epochs = ctx.max_epochs;
  cfg.seed = ctx.seed;
  return cfg;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// \brief "1.234" or "never" for time-to-target columns.
inline std::string FormatTime(SimTime t) {
  if (t >= kSimTimeNever) return "never";
  return StrFormat("%.3f", t);
}

}  // namespace hsgd::bench
