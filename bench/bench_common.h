// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every bench accepts the shared flag table below (printed by --help);
// unknown flags are an error naming the flag, so a typo'd --epoch=5
// fails loudly instead of silently running the default budget:
//   --scale=<mult>    multiply each preset's default bench scale (default 1)
//   --threads=<nc>    CPU worker threads (default 16, the paper's default)
//   --gpus=<ng>       GPUs (default 1)
//   --workers=<W>     GPU parallel workers (default 128)
//   --epochs=<cap>    epoch budget (default per bench)
//   --datasets=a,b    comma list (default: all four presets)
//   --seed=<n>
//
// Training benches run through the Session API (RunSession below); the
// RMSE-curve and dynamic-scheduling benches attach EpochObservers
// directly to stream progress as epochs complete.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/hsgd.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace hsgd::bench {

struct BenchContext {
  CliFlags flags;
  double scale_mult = 1.0;
  int threads = 16;
  int gpus = 1;
  int workers = 128;
  int max_epochs = 30;
  uint64_t seed = 1;
  std::vector<DatasetPreset> presets;
};

inline std::vector<FlagSpec> SharedFlagSpecs() {
  return {
      {"scale", "<mult>",
       "multiply each preset's default bench scale (default 1)"},
      {"threads", "<nc>", "CPU worker threads (default 16)"},
      {"gpus", "<ng>", "simulated GPUs (default 1)"},
      {"workers", "<W>", "GPU parallel workers (default 128)"},
      {"epochs", "<cap>", "epoch budget (default per bench)"},
      {"datasets", "<a,b>",
       "comma list of presets (default: all four presets)"},
      {"seed", "<n>", "RNG seed (default 1)"},
  };
}

/// Parses the shared flags plus any bench-specific `extra_flags`.
/// Unknown flags and malformed command lines print the offending flag
/// and the full flag table, then exit 2; --help prints the table and
/// exits 0.
inline BenchContext ParseContext(int argc, char** argv,
                                 int default_epochs = 30,
                                 std::vector<FlagSpec> extra_flags = {}) {
  std::vector<FlagSpec> specs = SharedFlagSpecs();
  for (FlagSpec& spec : extra_flags) specs.push_back(std::move(spec));
  BenchContext ctx;
  Status parsed = ctx.flags.Parse(argc, argv, specs);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 FormatFlagTable(specs).c_str());
    std::exit(2);
  }
  if (ctx.flags.GetBool("help", false)) {
    std::printf("%s", FormatFlagTable(specs).c_str());
    std::exit(0);
  }
  ctx.scale_mult = ctx.flags.GetDouble("scale", 1.0);
  ctx.threads = static_cast<int>(ctx.flags.GetInt("threads", 16));
  ctx.gpus = static_cast<int>(ctx.flags.GetInt("gpus", 1));
  ctx.workers = static_cast<int>(ctx.flags.GetInt("workers", 128));
  ctx.max_epochs =
      static_cast<int>(ctx.flags.GetInt("epochs", default_epochs));
  ctx.seed = static_cast<uint64_t>(ctx.flags.GetInt("seed", 1));
  std::string list = ctx.flags.GetString("datasets", "");
  if (list.empty()) {
    ctx.presets.assign(std::begin(kAllPresets), std::end(kAllPresets));
  } else {
    for (const std::string& name : Split(list, ',')) {
      auto preset = PresetByName(name);
      HSGD_CHECK(preset.ok()) << "unknown dataset '" << name << "'";
      ctx.presets.push_back(*preset);
    }
  }
  return ctx;
}

/// \brief Generates the scaled synthetic stand-in for `preset`.
inline Dataset MakeBenchDataset(DatasetPreset preset,
                                const BenchContext& ctx) {
  double scale = DefaultBenchScale(preset) * ctx.scale_mult;
  SyntheticSpec spec = ScaledPresetSpec(preset, scale);
  auto ds = GenerateSynthetic(spec, ctx.seed);
  HSGD_CHECK_OK(ds.status());
  return std::move(ds).value();
}

/// \brief Baseline TrainConfig matching the paper's experimental setup.
inline TrainConfig MakeConfig(Algorithm algorithm, const BenchContext& ctx) {
  TrainConfig cfg;
  cfg.algorithm = algorithm;
  cfg.hardware.num_cpu_threads = ctx.threads;
  cfg.hardware.num_gpus = ctx.gpus;
  cfg.hardware.gpu.parallel_workers = ctx.workers;
  cfg.max_epochs = ctx.max_epochs;
  cfg.seed = ctx.seed;
  return cfg;
}

/// \brief Run a full training session (aborting on any error) and return
/// its trace + stats. `observer` (optional, borrowed) watches the epochs
/// as they complete.
inline TrainResult RunSession(const Dataset& ds, const TrainConfig& cfg,
                              EpochObserver* observer = nullptr) {
  auto session = Session::Create(ds, cfg);
  HSGD_CHECK_OK(session.status());
  if (observer != nullptr) (*session)->AddObserver(observer);
  HSGD_CHECK_OK((*session)->RunToCompletion());
  return {(*session)->trace(), (*session)->stats()};
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// \brief "1.234" or "never" for time-to-target columns.
inline std::string FormatTime(SimTime t) {
  if (t >= kSimTimeNever) return "never";
  return StrFormat("%.3f", t);
}

}  // namespace hsgd::bench
