// Fault-recovery bench: runs the scripted fault scenario matrix against
// a fault-free baseline and reports convergence + recovery accounting as
// BENCH_fault.json (the chaos artifact CI uploads).
//
// Scenarios, per dataset:
//   baseline    fault subsystem never attached
//   zerofault   empty plan attached — must be BIT-IDENTICAL to baseline
//   crash50     GPU 0 dies halfway through the middle epoch
//   straggler   CPU 0 wedges to 4x (below the watchdog factor) for good
//   flakylink   6 PCIe transfers on GPU 0's link fail mid-epoch
//   killresume  autosaving run is abandoned mid-training, restored from
//               its autosave, the plan re-attached, and driven to the
//               same epoch budget
//
// The two acceptance gates (exit 1 when violated):
//   - zerofault reproduces baseline exactly (trace, factors, clock);
//   - crash50's final test RMSE is within 2% of baseline's.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "fault/fault_plan.h"

namespace hsgd::bench {
namespace {

struct ScenarioResult {
  std::string name;
  std::string plan;
  Status status = Status::Ok();
  Trace trace;
  TrainStats stats;
  FaultStats fault;
  std::vector<float> p, q;
  int epochs_run = 0;
};

uint64_t Fnv1a(const std::vector<float>& values, uint64_t hash) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(values.data());
  for (size_t i = 0; i < values.size() * sizeof(float); ++i) {
    hash = (hash ^ bytes[i]) * 1099511628211ull;
  }
  return hash;
}

uint64_t FactorChecksum(const ScenarioResult& r) {
  return Fnv1a(r.q, Fnv1a(r.p, 14695981039346656037ull));
}

void Capture(Session* session, ScenarioResult* out) {
  out->trace = session->trace();
  out->stats = session->stats();
  out->fault = session->fault_stats();
  out->p = session->model().DenseP();
  out->q = session->model().DenseQ();
  out->epochs_run = session->epochs_run();
}

/// One full run. `plan_text == nullptr` leaves the fault subsystem
/// entirely unattached (the disabled baseline).
ScenarioResult RunScenario(const std::string& name, const Dataset& ds,
                           const TrainConfig& cfg, const char* plan_text,
                           const Observability& sinks) {
  ScenarioResult result;
  result.name = name;
  result.plan = plan_text == nullptr ? "" : plan_text;
  auto session = Session::Create(ds, cfg);
  HSGD_CHECK_OK(session.status());
  (*session)->SetObservability(sinks);
  if (plan_text != nullptr) {
    auto plan = FaultPlan::Parse(plan_text);
    HSGD_CHECK_OK(plan.status());
    HSGD_CHECK_OK((*session)->SetFaultPlan(*plan));
  }
  result.status = (*session)->RunToCompletion();
  HSGD_CHECK_OK(result.status) << "scenario " << name;
  Capture(session->get(), &result);
  return result;
}

/// Abandon an autosaving faulted run halfway, restore from its autosave,
/// re-attach the plan (runtime fault state is deliberately not
/// checkpointed), and drive to the full budget.
ScenarioResult RunKillResume(const Dataset& ds, const TrainConfig& base,
                             const std::string& plan_text,
                             const Observability& sinks) {
  ScenarioResult result;
  result.name = "killresume";
  result.plan = plan_text;
  TrainConfig cfg = base;
  cfg.fault.autosave_every = 2;
  cfg.fault.autosave_path = "bench_fault_recovery_autosave.ckpt";
  std::remove(cfg.fault.autosave_path.c_str());

  auto plan = FaultPlan::Parse(plan_text);
  HSGD_CHECK_OK(plan.status());
  {
    auto session = Session::Create(ds, cfg);
    HSGD_CHECK_OK(session.status());
    (*session)->SetObservability(sinks);
    HSGD_CHECK_OK((*session)->SetFaultPlan(*plan));
    const int stop_after = std::max(2, cfg.max_epochs / 2);
    while (!(*session)->Done() &&
           (*session)->epochs_run() < stop_after) {
      HSGD_CHECK_OK((*session)->RunEpoch().status());
    }
    // "kill -9": the session object is simply dropped here.
  }
  auto resumed = Session::Restore(cfg.fault.autosave_path, ds);
  HSGD_CHECK_OK(resumed.status());
  // Runtime-attached state (fault plan, observability) is deliberately
  // not checkpointed; both come back via fresh attach.
  (*resumed)->SetObservability(sinks);
  HSGD_CHECK_OK((*resumed)->SetFaultPlan(*plan));
  result.status = (*resumed)->RunToCompletion();
  HSGD_CHECK_OK(result.status) << "scenario killresume (post-restore)";
  Capture(resumed->get(), &result);
  std::remove(cfg.fault.autosave_path.c_str());
  return result;
}

bool BitIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  if (a.trace.points.size() != b.trace.points.size()) return false;
  for (size_t i = 0; i < a.trace.points.size(); ++i) {
    const TracePoint& x = a.trace.points[i];
    const TracePoint& y = b.trace.points[i];
    if (x.epoch != y.epoch || x.time != y.time ||
        x.test_rmse != y.test_rmse || x.train_rmse != y.train_rmse) {
      return false;
    }
  }
  return a.p == b.p && a.q == b.q &&
         a.stats.sim.seconds == b.stats.sim.seconds;
}

double FinalRmse(const ScenarioResult& r) {
  return r.trace.points.empty() ? 0.0 : r.trace.points.back().test_rmse;
}

void PrintScenario(const ScenarioResult& r, double baseline_rmse) {
  std::printf(
      "%-10s  sim %8.4fs  rmse %.6f (%+.3f%%)  lost %d  revoked %lld  "
      "requeued %lld  dropped %lld  xfer %lld%s\n",
      r.name.c_str(), r.stats.sim.seconds, FinalRmse(r),
      baseline_rmse > 0.0 ? (FinalRmse(r) / baseline_rmse - 1.0) * 100.0
                          : 0.0,
      r.fault.devices_lost, static_cast<long long>(r.fault.leases_revoked),
      static_cast<long long>(r.fault.blocks_requeued),
      static_cast<long long>(r.fault.blocks_lost),
      static_cast<long long>(r.fault.transfer_faults),
      r.fault.degraded ? "  [degraded]" : "");
}

obs::Json JsonScenario(const ScenarioResult& r, double baseline_rmse) {
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(FactorChecksum(r)));
  return obs::Json::Object()
      .Set("name", obs::Json::Str(r.name))
      .Set("plan", obs::Json::Str(r.plan))
      .Set("epochs_run", obs::Json::Int(r.epochs_run))
      .Set("sim_seconds", obs::Json::Double(r.stats.sim.seconds))
      .Set("final_test_rmse", obs::Json::Double(FinalRmse(r)))
      .Set("rmse_ratio_vs_baseline",
           obs::Json::Double(baseline_rmse > 0.0
                                 ? FinalRmse(r) / baseline_rmse
                                 : 0.0))
      .Set("devices_lost", obs::Json::Int(r.fault.devices_lost))
      .Set("leases_revoked", obs::Json::Int(r.fault.leases_revoked))
      .Set("blocks_requeued", obs::Json::Int(r.fault.blocks_requeued))
      .Set("blocks_lost", obs::Json::Int(r.fault.blocks_lost))
      .Set("transfer_faults", obs::Json::Int(r.fault.transfer_faults))
      .Set("checkpoint_failures",
           obs::Json::Int(r.fault.checkpoint_failures))
      .Set("autosave_failures",
           obs::Json::Int(r.fault.autosave_failures))
      .Set("degraded", obs::Json::Bool(r.fault.degraded))
      .Set("factor_checksum", obs::Json::Str(checksum));
}

}  // namespace
}  // namespace hsgd::bench

int main(int argc, char** argv) {
  using namespace hsgd;
  using namespace hsgd::bench;

  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/8,
      {{"out", "<path>",
        "JSON report path (default BENCH_fault.json)"}});
  const std::string out_path =
      ctx.flags.GetString("out", "BENCH_fault.json");

  const int mid_epoch = std::max(1, ctx.max_epochs / 2);
  const int late_epoch = std::min(2, ctx.max_epochs);
  const std::string crash_plan =
      StrFormat("crash:gpu0@e%d+0.5", mid_epoch);
  const std::string straggler_plan =
      StrFormat("slow:cpu0@e%d+0.25x4", late_epoch);
  const std::string link_plan =
      StrFormat("link:gpu0@e%d+0.25n6", late_epoch);

  obs::RunReport report("fault_recovery");
  report.config()
      .Set("epochs", obs::Json::Int(ctx.max_epochs))
      .Set("seed", obs::Json::Int(static_cast<int64_t>(ctx.seed)))
      .Set("scale", obs::Json::Double(ctx.scale_mult));

  bool all_accepted = true;
  for (size_t d = 0; d < ctx.presets.size(); ++d) {
    const DatasetPreset preset = ctx.presets[d];
    const std::string title = DatasetTitle(ctx, preset);
    // One load/generation per dataset; Session copies it, so every
    // scenario trains on identical bytes.
    const Dataset ds = MakeBenchDataset(preset, ctx);
    TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
    cfg.max_epochs = ctx.max_epochs;
    cfg.use_dataset_target = false;  // all scenarios run the full budget

    PrintHeader("fault recovery: " + title);
    std::vector<ScenarioResult> results;
    const Observability sinks = ctx.obs.Sinks();
    results.push_back(RunScenario("baseline", ds, cfg, nullptr, sinks));
    const double baseline_rmse = FinalRmse(results.front());
    results.push_back(RunScenario("zerofault", ds, cfg, "", sinks));
    results.push_back(
        RunScenario("crash50", ds, cfg, crash_plan.c_str(), sinks));
    results.push_back(
        RunScenario("straggler", ds, cfg, straggler_plan.c_str(), sinks));
    results.push_back(
        RunScenario("flakylink", ds, cfg, link_plan.c_str(), sinks));
    results.push_back(RunKillResume(ds, cfg, crash_plan, sinks));
    for (const ScenarioResult& r : results) {
      PrintScenario(r, baseline_rmse);
    }

    // Acceptance gates.
    const bool zerofault_identical =
        BitIdentical(results[0], results[1]);
    const double crash_ratio =
        baseline_rmse > 0.0 ? FinalRmse(results[2]) / baseline_rmse : 0.0;
    const bool crash_converged = std::fabs(crash_ratio - 1.0) <= 0.02;
    const bool accepted = zerofault_identical && crash_converged;
    all_accepted = all_accepted && accepted;
    std::printf(
        "zerofault bitwise == baseline: %s;  crash50 rmse ratio %.5f "
        "(|ratio-1| <= 0.02): %s\n",
        zerofault_identical ? "yes" : "NO",
        crash_ratio, crash_converged ? "ok" : "VIOLATED");

    obs::Json scenarios = obs::Json::Array();
    for (const ScenarioResult& r : results) {
      scenarios.Push(JsonScenario(r, baseline_rmse));
    }
    report.results().Push(
        obs::Json::Object()
            .Set("dataset", obs::Json::Str(title))
            .Set("scenarios", std::move(scenarios))
            .Set("zerofault_bitwise_identical",
                 obs::Json::Bool(zerofault_identical))
            .Set("crash50_rmse_ratio", obs::Json::Double(crash_ratio))
            .Set("accepted", obs::Json::Bool(accepted)));
  }
  report.config().Set("accepted", obs::Json::Bool(all_accepted));
  // Attaches the metrics snapshot (when a registry rode along) before the
  // report lands at --out, so both copies carry it.
  WriteObsArtifacts(ctx, &report);
  HSGD_CHECK_OK(report.WriteTo(out_path));

  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_accepted) {
    std::fprintf(stderr, "FAILED: fault-recovery acceptance violated\n");
    return 1;
  }
  return 0;
}
