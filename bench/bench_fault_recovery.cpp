// Fault-recovery bench: runs the scripted fault scenario matrix against
// a fault-free baseline and reports convergence + recovery accounting as
// BENCH_fault.json (the chaos artifact CI uploads).
//
// Scenarios, per dataset:
//   baseline    fault subsystem never attached
//   zerofault   empty plan attached — must be BIT-IDENTICAL to baseline
//   crash50     GPU 0 dies halfway through the middle epoch
//   straggler   CPU 0 wedges to 4x (below the watchdog factor) for good
//   flakylink   6 PCIe transfers on GPU 0's link fail mid-epoch
//   killresume  autosaving run is abandoned mid-training, restored from
//               its autosave, the plan re-attached, and driven to the
//               same epoch budget
//
// The two acceptance gates (exit 1 when violated):
//   - zerofault reproduces baseline exactly (trace, factors, clock);
//   - crash50's final test RMSE is within 2% of baseline's.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "fault/fault_plan.h"

namespace hsgd::bench {
namespace {

struct ScenarioResult {
  std::string name;
  std::string plan;
  Status status = Status::Ok();
  Trace trace;
  TrainStats stats;
  FaultStats fault;
  std::vector<float> p, q;
  int epochs_run = 0;
};

uint64_t Fnv1a(const std::vector<float>& values, uint64_t hash) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(values.data());
  for (size_t i = 0; i < values.size() * sizeof(float); ++i) {
    hash = (hash ^ bytes[i]) * 1099511628211ull;
  }
  return hash;
}

uint64_t FactorChecksum(const ScenarioResult& r) {
  return Fnv1a(r.q, Fnv1a(r.p, 14695981039346656037ull));
}

void Capture(Session* session, ScenarioResult* out) {
  out->trace = session->trace();
  out->stats = session->stats();
  out->fault = session->fault_stats();
  out->p = session->model().DenseP();
  out->q = session->model().DenseQ();
  out->epochs_run = session->epochs_run();
}

/// One full run. `plan_text == nullptr` leaves the fault subsystem
/// entirely unattached (the disabled baseline).
ScenarioResult RunScenario(const std::string& name, const Dataset& ds,
                           const TrainConfig& cfg, const char* plan_text) {
  ScenarioResult result;
  result.name = name;
  result.plan = plan_text == nullptr ? "" : plan_text;
  auto session = Session::Create(ds, cfg);
  HSGD_CHECK_OK(session.status());
  if (plan_text != nullptr) {
    auto plan = FaultPlan::Parse(plan_text);
    HSGD_CHECK_OK(plan.status());
    HSGD_CHECK_OK((*session)->SetFaultPlan(*plan));
  }
  result.status = (*session)->RunToCompletion();
  HSGD_CHECK_OK(result.status) << "scenario " << name;
  Capture(session->get(), &result);
  return result;
}

/// Abandon an autosaving faulted run halfway, restore from its autosave,
/// re-attach the plan (runtime fault state is deliberately not
/// checkpointed), and drive to the full budget.
ScenarioResult RunKillResume(const Dataset& ds, const TrainConfig& base,
                             const std::string& plan_text) {
  ScenarioResult result;
  result.name = "killresume";
  result.plan = plan_text;
  TrainConfig cfg = base;
  cfg.fault.autosave_every = 2;
  cfg.fault.autosave_path = "bench_fault_recovery_autosave.ckpt";
  std::remove(cfg.fault.autosave_path.c_str());

  auto plan = FaultPlan::Parse(plan_text);
  HSGD_CHECK_OK(plan.status());
  {
    auto session = Session::Create(ds, cfg);
    HSGD_CHECK_OK(session.status());
    HSGD_CHECK_OK((*session)->SetFaultPlan(*plan));
    const int stop_after = std::max(2, cfg.max_epochs / 2);
    while (!(*session)->Done() &&
           (*session)->epochs_run() < stop_after) {
      HSGD_CHECK_OK((*session)->RunEpoch().status());
    }
    // "kill -9": the session object is simply dropped here.
  }
  auto resumed = Session::Restore(cfg.fault.autosave_path, ds);
  HSGD_CHECK_OK(resumed.status());
  HSGD_CHECK_OK((*resumed)->SetFaultPlan(*plan));
  result.status = (*resumed)->RunToCompletion();
  HSGD_CHECK_OK(result.status) << "scenario killresume (post-restore)";
  Capture(resumed->get(), &result);
  std::remove(cfg.fault.autosave_path.c_str());
  return result;
}

bool BitIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  if (a.trace.points.size() != b.trace.points.size()) return false;
  for (size_t i = 0; i < a.trace.points.size(); ++i) {
    const TracePoint& x = a.trace.points[i];
    const TracePoint& y = b.trace.points[i];
    if (x.epoch != y.epoch || x.time != y.time ||
        x.test_rmse != y.test_rmse || x.train_rmse != y.train_rmse) {
      return false;
    }
  }
  return a.p == b.p && a.q == b.q &&
         a.stats.sim_seconds == b.stats.sim_seconds;
}

double FinalRmse(const ScenarioResult& r) {
  return r.trace.points.empty() ? 0.0 : r.trace.points.back().test_rmse;
}

void PrintScenario(const ScenarioResult& r, double baseline_rmse) {
  std::printf(
      "%-10s  sim %8.4fs  rmse %.6f (%+.3f%%)  lost %d  revoked %lld  "
      "requeued %lld  dropped %lld  xfer %lld%s\n",
      r.name.c_str(), r.stats.sim_seconds, FinalRmse(r),
      baseline_rmse > 0.0 ? (FinalRmse(r) / baseline_rmse - 1.0) * 100.0
                          : 0.0,
      r.fault.devices_lost, static_cast<long long>(r.fault.leases_revoked),
      static_cast<long long>(r.fault.blocks_requeued),
      static_cast<long long>(r.fault.blocks_lost),
      static_cast<long long>(r.fault.transfer_faults),
      r.fault.degraded ? "  [degraded]" : "");
}

void JsonScenario(FILE* f, const ScenarioResult& r, double baseline_rmse,
                  bool last) {
  std::fprintf(
      f,
      "      {\"name\": \"%s\", \"plan\": \"%s\", \"epochs_run\": %d, "
      "\"sim_seconds\": %.9g, \"final_test_rmse\": %.9g, "
      "\"rmse_ratio_vs_baseline\": %.9g, \"devices_lost\": %d, "
      "\"leases_revoked\": %lld, \"blocks_requeued\": %lld, "
      "\"blocks_lost\": %lld, \"transfer_faults\": %lld, "
      "\"checkpoint_failures\": %lld, \"autosave_failures\": %lld, "
      "\"degraded\": %s, \"factor_checksum\": \"%016llx\"}%s\n",
      r.name.c_str(), r.plan.c_str(), r.epochs_run, r.stats.sim_seconds,
      FinalRmse(r),
      baseline_rmse > 0.0 ? FinalRmse(r) / baseline_rmse : 0.0,
      r.fault.devices_lost, static_cast<long long>(r.fault.leases_revoked),
      static_cast<long long>(r.fault.blocks_requeued),
      static_cast<long long>(r.fault.blocks_lost),
      static_cast<long long>(r.fault.transfer_faults),
      static_cast<long long>(r.fault.checkpoint_failures),
      static_cast<long long>(r.fault.autosave_failures),
      r.fault.degraded ? "true" : "false",
      static_cast<unsigned long long>(FactorChecksum(r)),
      last ? "" : ",");
}

}  // namespace
}  // namespace hsgd::bench

int main(int argc, char** argv) {
  using namespace hsgd;
  using namespace hsgd::bench;

  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/8,
      {{"out", "<path>",
        "JSON report path (default BENCH_fault.json)"}});
  const std::string out_path =
      ctx.flags.GetString("out", "BENCH_fault.json");

  const int mid_epoch = std::max(1, ctx.max_epochs / 2);
  const int late_epoch = std::min(2, ctx.max_epochs);
  const std::string crash_plan =
      StrFormat("crash:gpu0@e%d+0.5", mid_epoch);
  const std::string straggler_plan =
      StrFormat("slow:cpu0@e%d+0.25x4", late_epoch);
  const std::string link_plan =
      StrFormat("link:gpu0@e%d+0.25n6", late_epoch);

  FILE* f = std::fopen(out_path.c_str(), "w");
  HSGD_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f,
               "{\n  \"bench\": \"fault_recovery\",\n"
               "  \"epochs\": %d,\n  \"seed\": %llu,\n  \"datasets\": [\n",
               ctx.max_epochs,
               static_cast<unsigned long long>(ctx.seed));

  bool all_accepted = true;
  for (size_t d = 0; d < ctx.presets.size(); ++d) {
    const DatasetPreset preset = ctx.presets[d];
    const std::string title = DatasetTitle(ctx, preset);
    // One load/generation per dataset; Session copies it, so every
    // scenario trains on identical bytes.
    const Dataset ds = MakeBenchDataset(preset, ctx);
    TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
    cfg.max_epochs = ctx.max_epochs;
    cfg.use_dataset_target = false;  // all scenarios run the full budget

    PrintHeader("fault recovery: " + title);
    std::vector<ScenarioResult> results;
    results.push_back(RunScenario("baseline", ds, cfg, nullptr));
    const double baseline_rmse = FinalRmse(results.front());
    results.push_back(RunScenario("zerofault", ds, cfg, ""));
    results.push_back(
        RunScenario("crash50", ds, cfg, crash_plan.c_str()));
    results.push_back(
        RunScenario("straggler", ds, cfg, straggler_plan.c_str()));
    results.push_back(
        RunScenario("flakylink", ds, cfg, link_plan.c_str()));
    results.push_back(RunKillResume(ds, cfg, crash_plan));
    for (const ScenarioResult& r : results) {
      PrintScenario(r, baseline_rmse);
    }

    // Acceptance gates.
    const bool zerofault_identical =
        BitIdentical(results[0], results[1]);
    const double crash_ratio =
        baseline_rmse > 0.0 ? FinalRmse(results[2]) / baseline_rmse : 0.0;
    const bool crash_converged = std::fabs(crash_ratio - 1.0) <= 0.02;
    const bool accepted = zerofault_identical && crash_converged;
    all_accepted = all_accepted && accepted;
    std::printf(
        "zerofault bitwise == baseline: %s;  crash50 rmse ratio %.5f "
        "(|ratio-1| <= 0.02): %s\n",
        zerofault_identical ? "yes" : "NO",
        crash_ratio, crash_converged ? "ok" : "VIOLATED");

    std::fprintf(f,
                 "    {\"dataset\": \"%s\",\n     \"scenarios\": [\n",
                 title.c_str());
    for (size_t i = 0; i < results.size(); ++i) {
      JsonScenario(f, results[i], baseline_rmse,
                   i + 1 == results.size());
    }
    std::fprintf(f,
                 "     ],\n     \"zerofault_bitwise_identical\": %s,\n"
                 "     \"crash50_rmse_ratio\": %.9g,\n"
                 "     \"accepted\": %s}%s\n",
                 zerofault_identical ? "true" : "false", crash_ratio,
                 accepted ? "true" : "false",
                 d + 1 == ctx.presets.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"accepted\": %s\n}\n",
               all_accepted ? "true" : "false");
  std::fclose(f);

  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_accepted) {
    std::fprintf(stderr, "FAILED: fault-recovery acceptance violated\n");
    return 1;
  }
  return 0;
}
