// Fig. 10 — Running time to reach each dataset's target RMSE while varying
// the GPU parallel workers W in {32, 64, 128, 256, 512} (nc fixed at 16).
//
// Expected shape (paper): CPU-Only is flat; GPU-Only starts slower than
// CPU-Only at W=32 and overtakes it as W grows; HSGD* is fastest at every
// W and keeps improving with W.

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

namespace {

SimTime TimeToTarget(const BenchContext& ctx, const Dataset& ds,
                     TrainConfig cfg) {
  cfg.use_dataset_target = true;
  TrainResult result = RunSession(ctx, ds, cfg);
  return result.stats.sim.reached_target
             ? result.trace.TimeToReach(ds.target_rmse)
             : kSimTimeNever;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv, /*default_epochs=*/15);
  const int kWorkerGrid[] = {32, 64, 128, 256, 512};

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    PrintHeader(StrFormat(
        "Fig.10 (%s): time to RMSE<=%.3g vs GPU parallel workers (nc=%d)",
        DatasetTitle(ctx, preset).c_str(), ds.target_rmse, ctx.threads));
    std::printf("%-10s %12s %12s %12s\n", "W", "CPU-Only(s)",
                "GPU-Only(s)", "HSGD*(s)");

    // CPU-Only does not depend on W; run it once.
    SimTime cpu_time =
        TimeToTarget(ctx, ds, MakeConfig(Algorithm::kCpuOnly, ctx));
    for (int w : kWorkerGrid) {
      BenchContext wctx = ctx;
      wctx.workers = w;
      SimTime gpu_time =
          TimeToTarget(wctx, ds, MakeConfig(Algorithm::kGpuOnly, wctx));
      SimTime star_time =
          TimeToTarget(wctx, ds, MakeConfig(Algorithm::kHsgdStar, wctx));
      std::printf("%-10d %12s %12s %12s\n", w,
                  FormatTime(cpu_time).c_str(),
                  FormatTime(gpu_time).c_str(),
                  FormatTime(star_time).c_str());
    }
  }
  WriteObsArtifacts(ctx);
  return 0;
}
