// Fig. 11 — Running time to reach each dataset's target RMSE while varying
// the CPU thread count nc in {4, 8, 12, 16} (W fixed at 128).
//
// Expected shape (paper): GPU-Only is flat; CPU-Only improves with nc;
// HSGD* is fastest on every setting and also improves with nc.

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

namespace {

SimTime TimeToTarget(const BenchContext& ctx, const Dataset& ds,
                     TrainConfig cfg) {
  cfg.use_dataset_target = true;
  TrainResult result = RunSession(ctx, ds, cfg);
  return result.stats.sim.reached_target
             ? result.trace.TimeToReach(ds.target_rmse)
             : kSimTimeNever;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv, /*default_epochs=*/15);
  const int kThreadGrid[] = {4, 8, 12, 16};

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    PrintHeader(StrFormat(
        "Fig.11 (%s): time to RMSE<=%.3g vs CPU threads (W=%d)",
        DatasetTitle(ctx, preset).c_str(), ds.target_rmse, ctx.workers));
    std::printf("%-10s %12s %12s %12s\n", "nc", "CPU-Only(s)",
                "GPU-Only(s)", "HSGD*(s)");

    // GPU-Only does not depend on nc; run it once.
    SimTime gpu_time =
        TimeToTarget(ctx, ds, MakeConfig(Algorithm::kGpuOnly, ctx));
    for (int nc : kThreadGrid) {
      BenchContext tctx = ctx;
      tctx.threads = nc;
      SimTime cpu_time =
          TimeToTarget(tctx, ds, MakeConfig(Algorithm::kCpuOnly, tctx));
      SimTime star_time =
          TimeToTarget(tctx, ds, MakeConfig(Algorithm::kHsgdStar, tctx));
      std::printf("%-10d %12s %12s %12s\n", nc,
                  FormatTime(cpu_time).c_str(),
                  FormatTime(gpu_time).c_str(),
                  FormatTime(star_time).c_str());
    }
  }
  WriteObsArtifacts(ctx);
  return 0;
}
