// Fig. 12 — Test RMSE over (virtual) training time for CPU-Only, GPU-Only
// and HSGD* on the four benchmark datasets.
//
// Expected shape (paper): all three converge to a similar loss value;
// HSGD*'s curve drops fastest and reaches every loss level first.
//
// This bench drives the Session API stepwise: an EpochObserver streams
// each trace point as its epoch completes (no waiting for the full run),
// and the checkpoint flags exercise save/kill/resume:
//
//   --checkpoint=<path>     where to write checkpoints
//   --checkpoint-every=<n>  save after every n-th epoch
//   --stop-after=<n>        exit after n epochs (a controlled "kill")
//   --resume=<path>         restore from a checkpoint and finish the run
//
// A resumed run reproduces the uninterrupted run's remaining epochs
// bit-for-bit, so diffing the final trace lines of the two is the
// round-trip check CI performs. Checkpoint flags require a single
// --datasets entry (and --checkpoint a single --algos entry), since a
// checkpoint binds to one session; --resume takes the full training
// config from the checkpoint and ignores --algos/--epochs.

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

namespace {

/// Streams one formatted trace line per completed epoch.
class CurvePrinter : public EpochObserver {
 public:
  explicit CurvePrinter(const char* algorithm) : algorithm_(algorithm) {}

  void OnEpochEnd(const Session& session, const TracePoint& p) override {
    (void)session;
    std::printf("%-10s %8d %12.3f %12.4f %12.4f\n", algorithm_, p.epoch,
                p.time, p.test_rmse, p.train_rmse);
  }

 private:
  const char* algorithm_;
};

std::vector<Algorithm> ParseAlgos(const std::string& list) {
  std::vector<Algorithm> algos;
  for (const std::string& name : Split(list, ',')) {
    if (name == "cpu") {
      algos.push_back(Algorithm::kCpuOnly);
    } else if (name == "gpu") {
      algos.push_back(Algorithm::kGpuOnly);
    } else if (name == "hsgd") {
      algos.push_back(Algorithm::kHsgd);
    } else if (name == "star") {
      algos.push_back(Algorithm::kHsgdStar);
    } else {
      HSGD_LOG(Fatal) << "unknown algorithm '" << name
                      << "' (expected cpu, gpu, hsgd or star)";
    }
  }
  return algos;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/25,
      {{"algos", "<a,b>",
        "comma list of cpu/gpu/hsgd/star (default cpu,gpu,star)"},
       {"checkpoint", "<path>", "write checkpoints to this file"},
       {"checkpoint-every", "<n>",
        "save a checkpoint every n epochs (default 1 with --checkpoint)"},
       {"stop-after", "<n>",
        "stop after n epochs (controlled kill for resume testing)"},
       {"resume", "<path>", "restore from a checkpoint and continue"}});
  const std::vector<Algorithm> algos =
      ParseAlgos(ctx.flags.GetString("algos", "cpu,gpu,star"));
  const std::string checkpoint_path = ctx.flags.GetString("checkpoint", "");
  // --checkpoint alone means "checkpoint every epoch", so the stop
  // message never names a file that was silently never written.
  const int checkpoint_every = static_cast<int>(
      ctx.flags.GetInt("checkpoint-every", checkpoint_path.empty() ? 0 : 1));
  const int stop_after =
      static_cast<int>(ctx.flags.GetInt("stop-after", 0));
  const std::string resume_path = ctx.flags.GetString("resume", "");
  if (!checkpoint_path.empty() || !resume_path.empty()) {
    HSGD_CHECK(ctx.presets.size() == 1)
        << "checkpoint/resume flags need exactly one --datasets entry "
           "(a checkpoint binds to one session)";
  }
  if (checkpoint_path.empty() && !resume_path.empty()) {
    // The checkpoint stores the full TrainConfig; resume replays it.
    std::printf(
        "# --resume: training config (algorithm/epochs/hardware/seed) "
        "comes from the checkpoint; --algos and --epochs are ignored\n");
  } else if (!checkpoint_path.empty()) {
    HSGD_CHECK(algos.size() == 1)
        << "--checkpoint needs exactly one --algos entry (a checkpoint "
           "binds to one session)";
  }

  // Drives one session to completion (or --stop-after), checkpointing as
  // requested. Returns false when --stop-after cut the run short.
  auto drive = [&](Session* session) {
    session->SetObservability(ctx.obs.Sinks());
    CurvePrinter printer(AlgorithmName(session->config().algorithm));
    session->AddObserver(&printer);
    while (!session->Done()) {
      HSGD_CHECK_OK(session->RunEpoch().status());
      const int epoch = session->epochs_run();
      if (checkpoint_every > 0 && !checkpoint_path.empty() &&
          epoch % checkpoint_every == 0) {
        HSGD_CHECK_OK(session->SaveCheckpoint(checkpoint_path));
      }
      if (stop_after > 0 && epoch >= stop_after) {
        std::printf("# stopping after epoch %d (checkpoint: %s)\n", epoch,
                    checkpoint_path.empty() ? "none"
                                            : checkpoint_path.c_str());
        return false;
      }
    }
    session->RemoveObserver(&printer);
    return true;
  };

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    PrintHeader(StrFormat("Fig.12 (%s): test RMSE over time  [%d x %d, "
                          "%lld train ratings, target %.3g]",
                          DatasetTitle(ctx, preset).c_str(), ds.num_rows, ds.num_cols,
                          static_cast<long long>(ds.train_size()),
                          ds.target_rmse));
    std::printf("%-10s %8s %12s %12s %12s\n", "algorithm", "epoch",
                "time(s)", "test-RMSE", "train-RMSE");
    if (!resume_path.empty()) {
      auto restored = Session::Restore(resume_path, ds);
      HSGD_CHECK_OK(restored.status());
      std::printf("# resumed from %s at epoch %d\n", resume_path.c_str(),
                  (*restored)->epochs_run());
      if (!drive(restored->get())) {
        WriteObsArtifacts(ctx);
        return 0;
      }
      continue;
    }
    for (Algorithm algorithm : algos) {
      TrainConfig cfg = MakeConfig(algorithm, ctx);
      cfg.use_dataset_target = false;  // run the full budget: full curves
      auto session = Session::Create(ds, cfg);
      HSGD_CHECK_OK(session.status());
      if (!drive(session->get())) {
        WriteObsArtifacts(ctx);
        return 0;
      }
    }
  }
  WriteObsArtifacts(ctx);
  return 0;
}
