// Fig. 12 — Test RMSE over (virtual) training time for CPU-Only, GPU-Only
// and HSGD* on the four benchmark datasets.
//
// Expected shape (paper): all three converge to a similar loss value;
// HSGD*'s curve drops fastest and reaches every loss level first.

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv, /*default_epochs=*/25);

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    PrintHeader(StrFormat("Fig.12 (%s): test RMSE over time  [%d x %d, "
                          "%lld train ratings, target %.3g]",
                          PresetName(preset), ds.num_rows, ds.num_cols,
                          static_cast<long long>(ds.train_size()),
                          ds.target_rmse));
    std::printf("%-10s %8s %12s %12s %12s\n", "algorithm", "epoch",
                "time(s)", "test-RMSE", "train-RMSE");
    for (Algorithm algorithm :
         {Algorithm::kCpuOnly, Algorithm::kGpuOnly, Algorithm::kHsgdStar}) {
      TrainConfig cfg = MakeConfig(algorithm, ctx);
      cfg.use_dataset_target = false;  // run the full budget: full curves
      auto result = Trainer::Train(ds, cfg);
      HSGD_CHECK_OK(result.status());
      for (const TracePoint& p : result->trace.points) {
        std::printf("%-10s %8d %12.3f %12.4f %12.4f\n",
                    AlgorithmName(algorithm), p.epoch, p.time, p.test_rmse,
                    p.train_rmse);
      }
    }
  }
  return 0;
}
