// Fig. 13 — Test RMSE over time: HSGD (uniform division, GPU as one more
// worker) vs HSGD* (nonuniform division).
//
// Expected shape (paper): at any time budget HSGD* sits at a lower RMSE;
// the gap widens on the larger datasets, where HSGD additionally suffers
// the Example 3 update imbalance (reported here as the update-rate CV).

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv, /*default_epochs=*/15);

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    PrintHeader(StrFormat("Fig.13 (%s): HSGD vs HSGD* RMSE over time",
                          DatasetTitle(ctx, preset).c_str()));
    std::printf("%-10s %8s %12s %12s\n", "algorithm", "epoch", "time(s)",
                "test-RMSE");
    for (Algorithm algorithm : {Algorithm::kHsgd, Algorithm::kHsgdStar}) {
      TrainConfig cfg = MakeConfig(algorithm, ctx);
      cfg.use_dataset_target = false;
      TrainResult result = RunSession(ctx, ds, cfg);
      for (const TracePoint& p : result.trace.points) {
        std::printf("%-10s %8d %12.3f %12.4f\n", AlgorithmName(algorithm),
                    p.epoch, p.time, p.test_rmse);
      }
      std::printf("%-10s update-rate CV = %.3f\n",
                  AlgorithmName(algorithm), result.stats.sim.update_rate_cv);
    }
  }
  WriteObsArtifacts(ctx);
  return 0;
}
