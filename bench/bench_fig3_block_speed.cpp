// Fig. 3(a) + Fig. 7 — GPU update speed vs block size (Observation 1), and
// Fig. 3(b) — CPU per-thread update speed vs block size (Observation 2).
//
// Blocks are carved as shuffled prefixes of a Yahoo!Music-shaped synthetic
// matrix, exactly like the paper's microbenchmark; the GPU column reports
// both the end-to-end speed of a single block (transfer + kernel, what
// Fig. 3a measures) and the kernel-only speed (Fig. 7).
//
// Expected shape: GPU speed rises steeply for small blocks and flattens
// out (~120M pts/s at 128 workers); CPU speed is flat (~6M pts/s/thread).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/cpu_device.h"
#include "sim/gpu_device.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv);

  SyntheticSpec spec =
      ScaledPresetSpec(DatasetPreset::kYahooMusic,
                       DefaultBenchScale(DatasetPreset::kYahooMusic) *
                           ctx.scale_mult);
  auto ds = GenerateSynthetic(spec, ctx.seed);
  HSGD_CHECK_OK(ds.status());
  Rng rng(ctx.seed, 3);
  Ratings sample = ds->train;
  ShuffleRatings(&sample, &rng);

  GpuDeviceSpec gpu_spec;
  gpu_spec.parallel_workers = ctx.workers;
  CpuDeviceSpec cpu_spec;
  if (ctx.calibrate) {
    // Fig. 3b against the machine this is running on: replace the paper's
    // ~6M updates/s/thread with the measured rate of the chosen kernel.
    const KernelCalibration cal = CalibrateKernel(ctx.kernel, 128);
    cpu_spec.updates_per_sec_k128 = cal.updates_per_sec_k128;
    std::printf("calibrated %s kernel: %.2fM updates/s/thread at k=128\n",
                KernelKindName(cal.kernel), cal.updates_per_sec / 1e6);
  }
  CpuDevice cpu(cpu_spec, 128);

  PrintHeader(StrFormat(
      "Fig.3(a)/Fig.7: GPU update speed vs block size (W=%d, k=128)",
      ctx.workers));
  std::printf("%-22s %16s %16s %18s\n", "block size (pts)",
              "end-to-end (M/s)", "kernel-only (M/s)", "transfer (M/s)");

  std::vector<char> row_seen(static_cast<size_t>(ds->num_rows), 0);
  std::vector<char> col_seen(static_cast<size_t>(ds->num_cols), 0);
  int64_t rows = 0, cols = 0, consumed = 0;
  for (int64_t nnz : {25000ll, 50000ll, 100000ll, 250000ll, 500000ll,
                      1000000ll, 1500000ll, 2000000ll, 2500000ll}) {
    if (nnz > static_cast<int64_t>(sample.size())) break;
    for (; consumed < nnz; ++consumed) {
      const Rating& rt = sample[static_cast<size_t>(consumed)];
      rows += !row_seen[static_cast<size_t>(rt.u)]++;
      cols += !col_seen[static_cast<size_t>(rt.v)]++;
    }
    GpuWorkItem item;
    item.nnz = nnz;
    item.rows = rows;
    item.cols = cols;
    GpuDevice fresh(gpu_spec, 128, /*pipelined=*/false);
    PipelineTiming t = fresh.Process(0.0, item);
    double end_to_end = nnz / (t.kernel_done - t.h2d_start);
    double kernel_only = nnz / (t.kernel_done - t.kernel_start);
    double transfer = nnz / (t.h2d_done - t.h2d_start);
    std::printf("%-22s %16.1f %16.1f %18.1f\n",
                WithThousandsSep(nnz).c_str(), end_to_end / 1e6,
                kernel_only / 1e6, transfer / 1e6);
  }

  PrintHeader("Fig.3(b): CPU per-thread update speed vs block size (k=128)");
  std::printf("%-22s %16s\n", "block size (pts)", "update speed (M/s)");
  for (int64_t nnz :
       {50000ll, 100000ll, 200000ll, 300000ll, 400000ll}) {
    std::printf("%-22s %16.2f\n", WithThousandsSep(nnz).c_str(),
                cpu.UpdateRate(nnz) / 1e6);
  }
  return 0;
}
