// Fig. 6 — PCIe transfer speed vs data size, both directions.
//
// Expected shape: effective bandwidth ramps steeply from a few GB/s at 64KB
// and saturates near the 12GB/s link peak in the tens of MB.

#include <cstdio>

#include "bench_common.h"
#include "sim/pcie_link.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv);
  (void)ctx;
  PcieLink link((GpuDeviceSpec()));

  PrintHeader("Fig.6: PCIe transfer speed by data size");
  std::printf("%-12s %20s %20s\n", "size", "CPU->GPU (GB/s)",
              "GPU->CPU (GB/s)");
  for (int64_t bytes = 64ll << 10; bytes <= (256ll << 20); bytes *= 2) {
    std::printf(
        "%-12s %20.2f %20.2f\n", HumanBytes(bytes).c_str(),
        link.EffectiveBandwidthGbps(bytes, TransferDirection::kHostToDevice),
        link.EffectiveBandwidthGbps(bytes,
                                    TransferDirection::kDeviceToHost));
  }
  return 0;
}
