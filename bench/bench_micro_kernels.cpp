// Micro-benchmarks (google-benchmark) for the hot primitives: the SGD
// inner loop per kernel variant (scalar/avx2/avx512/auto — the kernel
// dispatch suite CI uploads as BENCH_kernels.json), RMSE evaluation,
// top-k scoring, simulator cost functions, and scheduler acquire/release
// throughput. Kernel-variant benches are registered at runtime so
// unsupported variants are simply absent rather than failing.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hsgd.h"
#include "obs/report.h"
#include "sched/blocked_matrix.h"
#include "sched/star_scheduler.h"
#include "sched/uniform_scheduler.h"
#include "sim/cpu_device.h"
#include "sim/gpu_device.h"
#include "util/thread_pool.h"

namespace hsgd {
namespace {

Dataset MicroDataset(int64_t nnz, int32_t m = 20000, int32_t n = 8000) {
  SyntheticSpec spec;
  spec.num_rows = m;
  spec.num_cols = n;
  spec.train_nnz = nnz;
  spec.test_nnz = 1000;
  auto ds = GenerateSynthetic(spec, 7);
  HSGD_CHECK_OK(ds.status());
  return std::move(ds).value();
}

/// Factor traffic per SGD update: read + write of one P row and one Q
/// row (logical k lanes; the padded layout moves the same cache lines).
/// Reported as bytes/s so regressions in the aligned-storage layout show
/// up even when items/s looks flat.
int64_t SgdBytesPerUpdate(int k) { return 4LL * k * sizeof(float); }

void BM_SgdUpdateBlock(benchmark::State& state, KernelKind kind, int k) {
  auto resolved = ResolveKernelKind(kind);
  HSGD_CHECK_OK(resolved.status());
  const KernelOps& ops = GetKernelOps(*resolved);
  Dataset ds = MicroDataset(200000);
  Model model(ds.num_rows, ds.num_cols, k);
  Rng rng(1);
  model.InitRandom(&rng, 3.0);
  SgdHyper hyper{0.005f, 0.05f, 0.05f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SgdUpdateBlock(&model, ds.train, hyper, &ops));
  }
  const int64_t items =
      state.iterations() * static_cast<int64_t>(ds.train.size());
  state.SetItemsProcessed(items);
  state.SetBytesProcessed(items * SgdBytesPerUpdate(k));
  state.SetLabel(ops.name);
}

void BM_RmseKernel(benchmark::State& state, KernelKind kind) {
  auto resolved = ResolveKernelKind(kind);
  HSGD_CHECK_OK(resolved.status());
  const KernelOps& ops = GetKernelOps(*resolved);
  Dataset ds = MicroDataset(300000);
  Model model(ds.num_rows, ds.num_cols, 128);
  Rng rng(1);
  model.InitRandom(&rng, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Rmse(model, ds.train, nullptr, &ops));
  }
  const int64_t items =
      state.iterations() * static_cast<int64_t>(ds.train.size());
  state.SetItemsProcessed(items);
  state.SetBytesProcessed(items * 2LL * 128 * sizeof(float));
  state.SetLabel(ops.name);
}

void BM_TopKKernel(benchmark::State& state, KernelKind kind) {
  auto resolved = ResolveKernelKind(kind);
  HSGD_CHECK_OK(resolved.status());
  const KernelOps& ops = GetKernelOps(*resolved);
  Dataset ds = MicroDataset(300000);
  Model model(ds.num_rows, ds.num_cols, 128);
  Rng rng(1);
  model.InitRandom(&rng, 3.0);
  Recommender recommender(&model, ds.train, &ops);
  int32_t user = 0;
  for (auto _ : state) {
    auto top = recommender.TopK(user, 100);
    HSGD_CHECK_OK(top.status());
    benchmark::DoNotOptimize(*top);
    user = (user + 1) % ds.num_rows;
  }
  state.SetItemsProcessed(state.iterations() * ds.num_cols);
  state.SetLabel(ops.name);
}

void BM_SgdUpdateBlockHogwild(benchmark::State& state) {
  Dataset ds = MicroDataset(500000);
  Model model(ds.num_rows, ds.num_cols, 128);
  Rng rng(1);
  model.InitRandom(&rng, 3.0);
  SgdHyper hyper{0.005f, 0.05f, 0.05f};
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SgdUpdateBlockHogwild(&model, ds.train, hyper, &pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.train.size()));
}
BENCHMARK(BM_SgdUpdateBlockHogwild)->Arg(4)->Arg(12);

void BM_RmseParallel(benchmark::State& state) {
  Dataset ds = MicroDataset(300000);
  Model model(ds.num_rows, ds.num_cols, 128);
  Rng rng(1);
  model.InitRandom(&rng, 3.0);
  ThreadPool pool(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Rmse(model, ds.train, &pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.train.size()));
}
BENCHMARK(BM_RmseParallel);

void BM_GpuKernelModel(benchmark::State& state) {
  SimtKernelModel model(GpuDeviceSpec(), 128);
  int64_t nnz = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ExecTime(nnz, nnz / 10, nnz / 20));
    nnz = nnz % 1000000 + 997;
  }
}
BENCHMARK(BM_GpuKernelModel);

void BM_PcieTransferModel(benchmark::State& state) {
  PcieLink link((GpuDeviceSpec()));
  int64_t bytes = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        link.TransferTime(bytes, TransferDirection::kHostToDevice));
    bytes = bytes % (256 << 20) + 4093;
  }
}
BENCHMARK(BM_PcieTransferModel);

void BM_UniformSchedulerAcquireRelease(benchmark::State& state) {
  Dataset ds = MicroDataset(300000);
  auto grid =
      BuildBalancedGrid(ds.train, ds.num_rows, ds.num_cols, 16, 17);
  HSGD_CHECK_OK(grid.status());
  Rng rng(3);
  auto matrix = BlockedMatrix::Build(ds.train, *grid, &rng);
  HSGD_CHECK_OK(matrix.status());
  UniformScheduler scheduler(&*matrix, &*grid, {}, Rng(5));
  WorkerInfo worker{DeviceClass::kCpuThread, 0, 0};
  scheduler.BeginEpoch();
  for (auto _ : state) {
    std::optional<BlockTask> task = scheduler.Acquire(worker, 0.0);
    if (task) {
      scheduler.Release(worker, *task, 0.0);
    } else {
      state.PauseTiming();
      scheduler.BeginEpoch();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_UniformSchedulerAcquireRelease);

void BM_ProfilerBuildModel(benchmark::State& state) {
  Dataset ds = MicroDataset(500000);
  Profiler profiler(GpuDeviceSpec(), CpuDeviceSpec(), 128);
  for (auto _ : state) {
    auto model = profiler.BuildHsgdModel(ds);
    HSGD_CHECK_OK(model.status());
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ProfilerBuildModel);

void BM_FullEpochHsgdStar(benchmark::State& state) {
  Dataset ds = MicroDataset(500000);
  ds.params.k = 32;
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgdStar;
  cfg.max_epochs = 1;
  cfg.use_dataset_target = false;
  for (auto _ : state) {
    auto session = Session::Create(ds, cfg);
    HSGD_CHECK_OK(session.status());
    HSGD_CHECK_OK((*session)->RunToCompletion());
    benchmark::DoNotOptimize(*session);
  }
  state.SetItemsProcessed(state.iterations() * ds.train_size());
}
BENCHMARK(BM_FullEpochHsgdStar)->Unit(benchmark::kMillisecond);

void BM_SessionCheckpointRoundtrip(benchmark::State& state) {
  Dataset ds = MicroDataset(200000);
  ds.params.k = 32;
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgdStar;
  cfg.max_epochs = 2;
  cfg.use_dataset_target = false;
  auto session = Session::Create(ds, cfg);
  HSGD_CHECK_OK(session.status());
  HSGD_CHECK_OK((*session)->RunEpoch().status());
  const std::string path = "bench_micro_ckpt.bin";
  for (auto _ : state) {
    HSGD_CHECK_OK((*session)->SaveCheckpoint(path));
    auto restored = Session::Restore(path, ds);
    HSGD_CHECK_OK(restored.status());
    benchmark::DoNotOptimize(*restored);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SessionCheckpointRoundtrip)->Unit(benchmark::kMillisecond);

}  // namespace

/// Per-variant registrations (scalar/avx2/avx512/auto x k=32/128 for the
/// SGD sweep). Done at runtime from main(): only the variants this
/// machine/build can run are registered, so JSON output never contains
/// skipped-with-error rows.
void RegisterKernelVariantBenches() {
  for (KernelKind kind : {KernelKind::kScalar, KernelKind::kAvx2,
                          KernelKind::kAvx512, KernelKind::kAuto}) {
    if (!KernelSupported(kind)) continue;
    const std::string variant = KernelKindName(kind);
    for (int k : {32, 128}) {
      benchmark::RegisterBenchmark(
          ("BM_SgdUpdateBlock/" + variant + "/" + std::to_string(k))
              .c_str(),
          [kind, k](benchmark::State& state) {
            BM_SgdUpdateBlock(state, kind, k);
          });
    }
    benchmark::RegisterBenchmark(
        ("BM_Rmse/" + variant).c_str(),
        [kind](benchmark::State& state) { BM_RmseKernel(state, kind); });
    benchmark::RegisterBenchmark(
        ("BM_RecommenderTopK/" + variant + "/100").c_str(),
        [kind](benchmark::State& state) { BM_TopKKernel(state, kind); });
  }
}

/// Console reporter that also collects every run, so --report can render
/// them into the shared hsgd.run_report/v1 envelope after the fact.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      obs::Json entry = obs::Json::Object();
      entry.Set("name", obs::Json::Str(r.benchmark_name()))
          .Set("iterations", obs::Json::Int(r.iterations))
          .Set("real_time", obs::Json::Double(r.GetAdjustedRealTime()))
          .Set("cpu_time", obs::Json::Double(r.GetAdjustedCPUTime()))
          .Set("time_unit",
               obs::Json::Str(benchmark::GetTimeUnitString(r.time_unit)));
      obs::Json counters = obs::Json::Object();
      for (const auto& [name, counter] : r.counters) {
        counters.Set(name, obs::Json::Double(counter.value));
      }
      entry.Set("counters", std::move(counters));
      results_.Push(std::move(entry));
    }
  }

  obs::Json TakeResults() { return std::move(results_); }

 private:
  obs::Json results_ = obs::Json::Array();
};

}  // namespace hsgd

int main(int argc, char** argv) {
  // --report=<path> is ours, not google-benchmark's: strip it before
  // Initialize rejects it. --benchmark_out & friends pass through
  // untouched, so the raw google-benchmark JSON artifact keeps working.
  std::string report_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--report=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      report_path = argv[i] + std::strlen(kFlag);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  hsgd::RegisterKernelVariantBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (report_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  hsgd::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  hsgd::obs::RunReport report("micro_kernels");
  report.results() = reporter.TakeResults();
  HSGD_CHECK_OK(report.WriteTo(report_path));
  std::printf("wrote %s\n", report_path.c_str());
  return 0;
}
