// Serving bench: closed-loop load generation against RecServer, reporting
// latency percentiles and throughput as BENCH_serving.json
// (hsgd.run_report/v1).
//
// Scenarios:
//   sequential_8c  8 clients, max_batch=1 — every query is its own sweep
//   batched_8c     8 clients, micro-batching on — the same load coalesced
//   serving        the full configured load (--clients/--qps/--budget-ms)
//   refresh        the full load while a publisher swaps snapshots
//                  mid-flight every --refresh-ms
//
// Every response is checked against the serving invariants: its snapshot
// version must be one that was actually published, and its ranking must
// be sorted (descending score, ties by ascending item id) with finite
// scores — a violation counts as a torn query. The acceptance gate
// (exit 1, "accepted": false) is zero failed/torn queries across all
// scenarios; at full scale (--scale >= 1) batched_8c must also out-run
// sequential_8c, the paper-style payoff of the shared factor sweep.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/recommender.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace hsgd::bench {
namespace {

using serve::FactorSnapshot;
using serve::RecServer;
using serve::ServeConfig;
using serve::SnapshotPtr;
using serve::TopKRequest;

uint32_t Lcg(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return *state;
}

/// Deterministic factor fill standing in for a trained model: the bench
/// measures the serving machinery, not model quality, and identical bytes
/// per seed keep run-to-run artifacts comparable.
Model BuildModel(int32_t num_users, int32_t num_items, int k,
                 uint32_t seed) {
  Model model(num_users, num_items, k);
  uint32_t state = seed * 2654435761u + 1;
  for (int32_t u = 0; u < num_users; ++u) {
    float* row = model.Row(u);
    for (int f = 0; f < k; ++f) {
      row[f] = static_cast<float>(Lcg(&state) >> 8) / 16777216.0f - 0.5f;
    }
  }
  for (int32_t v = 0; v < num_items; ++v) {
    float* col = model.Col(v);
    for (int f = 0; f < k; ++f) {
      col[f] = static_cast<float>(Lcg(&state) >> 8) / 16777216.0f - 0.5f;
    }
  }
  return model;
}

/// Sparse deterministic exclusions: every user has rated a handful of
/// items, so the rated-item skip path is exercised under load.
Ratings BuildRated(int32_t num_users, int32_t num_items) {
  Ratings rated;
  uint32_t state = 99;
  for (int32_t u = 0; u < num_users; ++u) {
    const int n = 3 + static_cast<int>(Lcg(&state) % 8);
    for (int i = 0; i < n; ++i) {
      rated.push_back(
          {u, static_cast<int32_t>(Lcg(&state) % num_items), 1.0f});
    }
  }
  return rated;
}

struct LoadResult {
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t shed = 0;      // DeadlineExceeded
  int64_t rejected = 0;  // Unavailable
  int64_t failed = 0;    // any other error
  int64_t torn = 0;      // invariant-violating response
  double duration_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0, mean_ms = 0.0;
  serve::ServeCounters counters;
};

/// True iff `response` satisfies the serving invariants against the set
/// of versions published so far.
bool ResponseIntact(const serve::TopKResponse& response,
                    uint64_t max_version, int k) {
  if (response.snapshot_version < 1 ||
      response.snapshot_version > max_version) {
    return false;
  }
  if (response.items.size() > static_cast<size_t>(k)) return false;
  for (size_t i = 0; i < response.items.size(); ++i) {
    if (!std::isfinite(response.items[i].score)) return false;
    if (i == 0) continue;
    const ScoredItem& a = response.items[i - 1];
    const ScoredItem& b = response.items[i];
    const bool ordered =
        a.score > b.score || (a.score == b.score && a.item < b.item);
    if (!ordered) return false;
  }
  return true;
}

/// Closed-loop load: `clients` threads submit back-to-back TopK queries
/// (paced to --qps when positive) for `duration_s`, with an 80/20 skew
/// toward a hot tenth of the user base. `max_version` bounds the versions
/// that may legally appear in responses (grows during refresh runs).
LoadResult RunLoad(RecServer* server, int clients, double duration_s,
                   double target_qps, int32_t num_users, int k,
                   const std::atomic<uint64_t>* max_version) {
  std::atomic<int64_t> requests{0}, ok{0}, shed{0}, rejected{0};
  std::atomic<int64_t> failed{0}, torn{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  Stopwatch wall;
  const double per_client_interval =
      target_qps > 0.0 ? clients / target_qps : 0.0;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      uint32_t state = 1000003u * (c + 1);
      auto& lat = latencies[c];
      double next_send = wall.Seconds();
      while (wall.Seconds() < duration_s) {
        if (per_client_interval > 0.0) {
          // Open-ish pacing: keep to the per-client share of --qps
          // without drifting when a query runs long.
          while (wall.Seconds() < next_send) std::this_thread::yield();
          next_send += per_client_interval;
        }
        // 80/20 skew: most traffic hammers a hot tenth of the users, the
        // shape user-sharded queues and warm factor rows care about.
        const int32_t hot = std::max<int32_t>(1, num_users / 10);
        const int32_t user = (Lcg(&state) % 10) < 8
                                 ? static_cast<int32_t>(Lcg(&state) % hot)
                                 : static_cast<int32_t>(Lcg(&state) %
                                                        num_users);
        requests.fetch_add(1, std::memory_order_relaxed);
        auto response = server->Query({user, false, k});
        if (response.ok()) {
          if (!ResponseIntact(*response, max_version->load(), k)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          } else {
            ok.fetch_add(1, std::memory_order_relaxed);
            lat.push_back(response->latency_s);
          }
        } else if (response.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (response.status().code() == StatusCode::kUnavailable) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  LoadResult result;
  result.duration_s = wall.Seconds();
  result.requests = requests.load();
  result.ok = ok.load();
  result.shed = shed.load();
  result.rejected = rejected.load();
  result.failed = failed.load();
  result.torn = torn.load();
  result.qps =
      result.duration_s > 0.0 ? result.ok / result.duration_s : 0.0;
  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  if (!merged.empty()) {
    auto at = [&](double q) {
      const size_t idx = static_cast<size_t>(q * (merged.size() - 1));
      return merged[idx] * 1e3;
    };
    result.p50_ms = at(0.50);
    result.p99_ms = at(0.99);
    double sum = 0.0;
    for (double v : merged) sum += v;
    result.mean_ms = sum / merged.size() * 1e3;
  }
  result.counters = server->counters();
  return result;
}

obs::Json JsonLoad(const std::string& name, const LoadResult& r,
                   int clients, const ServeConfig& config) {
  return obs::Json::Object()
      .Set("scenario", obs::Json::Str(name))
      .Set("clients", obs::Json::Int(clients))
      .Set("shards", obs::Json::Int(config.shards))
      .Set("max_batch", obs::Json::Int(config.max_batch))
      .Set("duration_s", obs::Json::Double(r.duration_s))
      .Set("requests", obs::Json::Int(r.requests))
      .Set("ok", obs::Json::Int(r.ok))
      .Set("shed_deadline", obs::Json::Int(r.shed))
      .Set("rejected", obs::Json::Int(r.rejected))
      .Set("failed", obs::Json::Int(r.failed))
      .Set("torn", obs::Json::Int(r.torn))
      .Set("qps", obs::Json::Double(r.qps))
      .Set("p50_ms", obs::Json::Double(r.p50_ms))
      .Set("p99_ms", obs::Json::Double(r.p99_ms))
      .Set("mean_ms", obs::Json::Double(r.mean_ms))
      .Set("batches", obs::Json::Int(r.counters.batches))
      .Set("mean_batch_size",
           obs::Json::Double(r.counters.batches > 0
                                 ? static_cast<double>(r.counters.ok) /
                                       r.counters.batches
                                 : 0.0))
      .Set("deadline_miss", obs::Json::Int(r.counters.deadline_miss))
      .Set("snapshot_publishes", obs::Json::Int(r.counters.publishes));
}

void PrintLoad(const std::string& name, const LoadResult& r) {
  std::printf(
      "%-14s  %7lld ok  %6.0f qps  p50 %7.3fms  p99 %7.3fms  "
      "shed %lld  rejected %lld  failed %lld  torn %lld\n",
      name.c_str(), static_cast<long long>(r.ok), r.qps, r.p50_ms,
      r.p99_ms, static_cast<long long>(r.shed),
      static_cast<long long>(r.rejected),
      static_cast<long long>(r.failed), static_cast<long long>(r.torn));
}

}  // namespace
}  // namespace hsgd::bench

int main(int argc, char** argv) {
  using namespace hsgd;
  using namespace hsgd::bench;

  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/1,
      {{"out", "<path>", "JSON report path (default BENCH_serving.json)"},
       {"clients", "<n>", "closed-loop client threads (default 16)"},
       {"duration", "<s>", "seconds per scenario (default 2)"},
       {"qps", "<n>", "target aggregate QPS; 0 = unpaced (default 0)"},
       {"topk", "<k>", "items per query (default 10)"},
       {"shards", "<n>", "server worker shards (default 4)"},
       {"batch", "<n>", "server max micro-batch (default 32)"},
       {"budget-ms", "<ms>",
        "latency budget for the serving/refresh scenarios; 0 disables "
        "shedding (default 250)"},
       {"refresh-ms", "<ms>",
        "snapshot publish interval in the refresh scenario (default 25)"}});
  const std::string out_path =
      ctx.flags.GetString("out", "BENCH_serving.json");
  const int clients =
      static_cast<int>(ctx.flags.GetInt("clients", 16));
  const double duration = ctx.flags.GetDouble("duration", 2.0);
  const double qps = ctx.flags.GetDouble("qps", 0.0);
  const int topk = static_cast<int>(ctx.flags.GetInt("topk", 10));
  const int shards = static_cast<int>(ctx.flags.GetInt("shards", 4));
  const int max_batch = static_cast<int>(ctx.flags.GetInt("batch", 32));
  const double budget_ms = ctx.flags.GetDouble("budget-ms", 250.0);
  const double refresh_ms = ctx.flags.GetDouble("refresh-ms", 25.0);

  // Catalog sized by --scale; the floor keeps the smoke run meaningful.
  const int32_t num_users = std::max<int32_t>(
      256, static_cast<int32_t>(60000 * ctx.scale_mult));
  const int32_t num_items = std::max<int32_t>(
      512, static_cast<int32_t>(24000 * ctx.scale_mult));
  const int rank = 32;

  std::printf("serving bench: %d users x %d items, rank %d, k=%d\n",
              num_users, num_items, rank, topk);

  // Snapshot generations for the refresh scenario: distinct factor
  // contents per version, built once up front so the publisher thread
  // does no model work mid-load.
  const Ratings rated = BuildRated(num_users, num_items);
  const int kGenerations = 4;
  std::vector<SnapshotPtr> generations;
  for (int g = 0; g < kGenerations; ++g) {
    Model model = BuildModel(num_users, num_items, rank,
                             static_cast<uint32_t>(ctx.seed + g));
    auto snap = FactorSnapshot::FromModel(
        model, rated, /*version=*/static_cast<uint64_t>(g + 1));
    HSGD_CHECK_OK(snap.status());
    generations.push_back(*snap);
  }
  std::atomic<uint64_t> max_version{1};

  obs::RunReport report("serving");
  report.config()
      .Set("num_users", obs::Json::Int(num_users))
      .Set("num_items", obs::Json::Int(num_items))
      .Set("rank", obs::Json::Int(rank))
      .Set("topk", obs::Json::Int(topk))
      .Set("clients", obs::Json::Int(clients))
      .Set("duration_s", obs::Json::Double(duration))
      .Set("target_qps", obs::Json::Double(qps))
      .Set("shards", obs::Json::Int(shards))
      .Set("max_batch", obs::Json::Int(max_batch))
      .Set("budget_ms", obs::Json::Double(budget_ms))
      .Set("refresh_ms", obs::Json::Double(refresh_ms))
      .Set("scale", obs::Json::Double(ctx.scale_mult))
      .Set("kernel", obs::Json::Str(KernelKindName(ctx.kernel)));

  auto make_server = [&](int batch, double budget_s) {
    ServeConfig config;
    config.shards = shards;
    config.max_batch = batch;
    config.latency_budget_s = budget_s;
    config.kernel = ctx.kernel;
    auto server = RecServer::Create(config, generations[0],
                                    ctx.obs.registry.get(),
                                    ctx.obs.tracer.get());
    HSGD_CHECK_OK(server.status());
    return std::move(*server);
  };

  int64_t total_failed = 0, total_torn = 0;

  // Batched vs sequential at 8 concurrent clients: identical load and
  // shard count; the only difference is whether the server may coalesce.
  PrintHeader("batched vs sequential (8 clients)");
  LoadResult sequential, batched;
  {
    auto server = make_server(/*batch=*/1, /*budget_s=*/0.0);
    sequential = RunLoad(server.get(), 8, duration, qps, num_users, topk,
                         &max_version);
    server->Shutdown();
  }
  {
    auto server = make_server(max_batch, /*budget_s=*/0.0);
    batched = RunLoad(server.get(), 8, duration, qps, num_users, topk,
                      &max_version);
    server->Shutdown();
  }
  PrintLoad("sequential_8c", sequential);
  PrintLoad("batched_8c", batched);
  const double speedup =
      sequential.qps > 0.0 ? batched.qps / sequential.qps : 0.0;
  std::printf("batched/sequential throughput: %.3fx\n", speedup);
  total_failed += sequential.failed + batched.failed;
  total_torn += sequential.torn + batched.torn;

  // The full configured load.
  PrintHeader("serving");
  LoadResult serving;
  {
    auto server = make_server(max_batch, budget_ms * 1e-3);
    serving = RunLoad(server.get(), clients, duration, qps, num_users,
                      topk, &max_version);
    server->Shutdown();
  }
  PrintLoad("serving", serving);
  total_failed += serving.failed;
  total_torn += serving.torn;

  // The same load with a publisher swapping snapshot generations
  // mid-flight: the gate is zero failed/torn queries through refreshes.
  PrintHeader("concurrent refresh");
  LoadResult refresh;
  int64_t publishes = 0;
  {
    auto server = make_server(max_batch, budget_ms * 1e-3);
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
      int g = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            refresh_ms));
        const SnapshotPtr& next = generations[g % kGenerations];
        // Every generation's version was assigned up front, so advancing
        // max_version before Publish keeps the validity window correct.
        uint64_t seen = max_version.load();
        while (next->version() > seen &&
               !max_version.compare_exchange_weak(seen, next->version())) {
        }
        HSGD_CHECK_OK(server->Publish(next));
        ++publishes;
        ++g;
      }
    });
    refresh = RunLoad(server.get(), clients, duration, qps, num_users,
                      topk, &max_version);
    stop.store(true);
    publisher.join();
    server->Shutdown();
  }
  PrintLoad("refresh", refresh);
  std::printf("snapshots published mid-load: %lld\n",
              static_cast<long long>(publishes));
  total_failed += refresh.failed;
  total_torn += refresh.torn;

  const bool batched_faster = speedup > 1.0;
  const bool clean = total_failed == 0 && total_torn == 0;
  // Throughput is gated only at full scale — the CI smoke run's tiny
  // catalog fits in cache either way and the ratio is noise there.
  const bool accepted =
      clean && (ctx.scale_mult < 1.0 || batched_faster);

  ServeConfig report_config;
  report_config.shards = shards;
  report_config.max_batch = max_batch;
  report.results()
      .Push(JsonLoad("sequential_8c", sequential, 8,
                     [&] {
                       ServeConfig c = report_config;
                       c.max_batch = 1;
                       return c;
                     }()))
      .Push(JsonLoad("batched_8c", batched, 8, report_config))
      .Push(JsonLoad("serving", serving, clients, report_config))
      .Push(JsonLoad("refresh", refresh, clients, report_config)
                .Set("mid_load_publishes", obs::Json::Int(publishes)));
  report.config()
      .Set("batched_speedup", obs::Json::Double(speedup))
      .Set("batched_faster", obs::Json::Bool(batched_faster))
      .Set("accepted", obs::Json::Bool(accepted));

  WriteObsArtifacts(ctx, &report);
  HSGD_CHECK_OK(report.WriteTo(out_path));
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!accepted) {
    std::fprintf(stderr, "FAILED: serving acceptance violated "
                         "(failed=%lld torn=%lld speedup=%.3f)\n",
                 static_cast<long long>(total_failed),
                 static_cast<long long>(total_torn), speedup);
    return 1;
  }
  return 0;
}
