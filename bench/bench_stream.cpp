// Online-training bench: concurrent train+serve from one process,
// reporting BENCH_stream.json (hsgd.run_report/v1).
//
// Scenarios:
//   live     an OnlineTrainer drives Ingest -> TrainDirty ->
//            PublishSnapshot rounds against a live RecServer while client
//            threads hammer it with raw-id queries. Every response is
//            checked against the serving invariants (version within the
//            published window, sorted finite scores), and every round's
//            freshly-streamed cold user is probed from the driver thread:
//            typed NotFound before the covering publish, servable after.
//   refresh  RMSE parity: the same synthetic data once as warm-train +
//            chunked incremental refresh, once as a from-scratch full
//            retrain run to the SAME update count (sim.nnz_processed).
//
// Acceptance (exit 1, "accepted": false): the live scenario completes at
// least --publishes live publishes with zero torn/failed queries and zero
// cold-start violations, and the incremental-refresh RMSE lands within
// 2% of the full retrain's at equal update count.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "stream/stream.h"

namespace hsgd::bench {
namespace {

using serve::RecServer;
using serve::ServeConfig;
using stream::OnlineTrainer;
using stream::SyntheticStream;
using stream::SyntheticStreamSpec;

uint32_t Lcg(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return *state;
}

/// Serving invariants for one response (cf. bench_serving): version
/// inside the published window, at most k items, scores finite and
/// sorted descending with ties by ascending item id.
bool ResponseIntact(const serve::TopKResponse& response,
                    uint64_t max_version, int k) {
  if (response.snapshot_version < 1 ||
      response.snapshot_version > max_version) {
    return false;
  }
  if (response.items.size() > static_cast<size_t>(k)) return false;
  for (size_t i = 0; i < response.items.size(); ++i) {
    if (!std::isfinite(response.items[i].score)) return false;
    if (i == 0) continue;
    const ScoredItem& a = response.items[i - 1];
    const ScoredItem& b = response.items[i];
    if (!(a.score > b.score || (a.score == b.score && a.item < b.item))) {
      return false;
    }
  }
  return true;
}

struct LiveResult {
  int64_t publishes = 0;
  int64_t ingested = 0;
  int64_t cold_users = 0;
  int64_t cold_items = 0;
  int64_t queries = 0;
  int64_t ok = 0;
  int64_t not_found = 0;  // expected: probes for never-streamed ids
  int64_t failed = 0;
  int64_t torn = 0;
  int64_t cold_violations = 0;
  double train_wall_s = 0.0;
  double final_test_rmse = 0.0;
};

struct RefreshResult {
  double online_rmse = 0.0;
  double full_rmse = 0.0;
  double rmse_ratio = 0.0;
  int64_t online_nnz = 0;
  int64_t full_nnz = 0;
  int online_epochs = 0;
  int full_epochs = 0;
  int64_t streamed = 0;
  bool within_bound = false;
};

}  // namespace
}  // namespace hsgd::bench

int main(int argc, char** argv) {
  using namespace hsgd;
  using namespace hsgd::bench;

  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/30,
      {{"out", "<path>", "JSON report path (default BENCH_stream.json)"},
       {"publishes", "<n>",
        "live snapshot publishes to drive (default 20)"},
       {"clients", "<n>", "query client threads (default 4)"},
       {"batch", "<n>", "ratings ingested per live round (default 0: "
        "sized by --scale)"},
       {"warm-epochs", "<n>",
        "full epochs before streaming starts (default 3)"},
       {"chunks", "<n>",
        "stream chunks in the refresh scenario (default 8)"},
       {"consolidate", "<n>",
        "full epochs closing the refresh scenario (default 3)"},
       {"topk", "<k>", "items per query (default 10)"},
       {"rmse-bound", "<x>",
        "refresh acceptance: online_rmse <= full_rmse * x (default "
        "1.02; smoke scales need slack — tiny data magnifies the "
        "training-order difference)"}});
  const std::string out_path =
      ctx.flags.GetString("out", "BENCH_stream.json");
  const int target_publishes =
      static_cast<int>(ctx.flags.GetInt("publishes", 20));
  const int clients = static_cast<int>(ctx.flags.GetInt("clients", 4));
  const int warm_epochs =
      static_cast<int>(ctx.flags.GetInt("warm-epochs", 3));
  const int chunks = static_cast<int>(ctx.flags.GetInt("chunks", 8));
  const int consolidate =
      static_cast<int>(ctx.flags.GetInt("consolidate", 3));
  const int topk = static_cast<int>(ctx.flags.GetInt("topk", 10));
  const double rmse_bound = ctx.flags.GetDouble("rmse-bound", 1.02);
  HSGD_CHECK(target_publishes > 0 && clients > 0 && warm_epochs > 0 &&
             chunks > 0 && consolidate >= 0 && topk > 0 &&
             rmse_bound >= 1.0);

  obs::RunReport report("stream");
  report.config()
      .Set("publishes", obs::Json::Int(target_publishes))
      .Set("clients", obs::Json::Int(clients))
      .Set("warm_epochs", obs::Json::Int(warm_epochs))
      .Set("chunks", obs::Json::Int(chunks))
      .Set("consolidate", obs::Json::Int(consolidate))
      .Set("topk", obs::Json::Int(topk))
      .Set("rmse_bound", obs::Json::Double(rmse_bound))
      .Set("scale", obs::Json::Double(ctx.scale_mult))
      .Set("seed", obs::Json::Int(static_cast<int64_t>(ctx.seed)))
      .Set("kernel", obs::Json::Str(KernelKindName(ctx.kernel)));

  // ---- Scenario 1: live train+serve ------------------------------------
  LiveResult live;
  {
    const int32_t warm_rows = std::max<int32_t>(
        400, static_cast<int32_t>(3000 * ctx.scale_mult));
    const int32_t warm_cols = std::max<int32_t>(
        300, static_cast<int32_t>(2000 * ctx.scale_mult));
    const int64_t batch = [&] {
      const int64_t flag = ctx.flags.GetInt("batch", 0);
      if (flag > 0) return flag;
      return std::max<int64_t>(
          200, static_cast<int64_t>(1200 * ctx.scale_mult));
    }();
    // Raw vocabulary offset far from the dense index space so an
    // identity-fallback bug answers wrong instead of silently right.
    const int64_t kUserBase = 10000000;
    const int64_t kItemBase = 20000000;

    SyntheticSpec spec;
    spec.num_rows = warm_rows;
    spec.num_cols = warm_cols;
    spec.train_nnz =
        static_cast<int64_t>(warm_rows) * warm_cols / 25;
    spec.test_nnz = spec.train_nnz / 10;
    spec.params.k = 16;
    spec.params.learning_rate = 0.01f;
    auto ds = GenerateSynthetic(spec, ctx.seed);
    HSGD_CHECK_OK(ds.status());

    TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
    cfg.use_dataset_target = false;
    cfg.max_epochs = warm_epochs + target_publishes + 8;
    auto session = Session::Create(*std::move(ds), cfg);
    HSGD_CHECK_OK(session.status());
    (*session)->SetObservability(ctx.obs.Sinks());
    for (int e = 0; e < warm_epochs; ++e) {
      HSGD_CHECK_OK((*session)->RunEpoch().status());
    }

    io::IdMap users, items;
    for (int32_t i = 0; i < warm_rows; ++i) users.Assign(kUserBase + i);
    for (int32_t i = 0; i < warm_cols; ++i) items.Assign(kItemBase + i);

    ServeConfig serve_config;
    serve_config.kernel = ctx.kernel;
    auto server = RecServer::Create(serve_config, nullptr,
                                    ctx.obs.registry.get(),
                                    ctx.obs.tracer.get());
    HSGD_CHECK_OK(server.status());
    RecServer* srv = server->get();

    auto trainer = OnlineTrainer::Create(
        *std::move(session), std::move(users), std::move(items),
        [srv](serve::SnapshotPtr snap) { return srv->Publish(std::move(snap)); },
        ctx.obs.registry.get());
    HSGD_CHECK_OK(trainer.status());
    OnlineTrainer* ot = trainer->get();

    // Published-version window for the torn check: advanced BEFORE the
    // publish lands so a client can never legally see a "future" version.
    std::atomic<uint64_t> max_version{1};
    HSGD_CHECK_OK(ot->PublishSnapshot().status());

    SyntheticStreamSpec stream_spec;
    stream_spec.warm_users = warm_rows;
    stream_spec.warm_items = warm_cols;
    stream_spec.cold_user_rate = 0.01;
    stream_spec.cold_item_rate = 0.005;
    stream_spec.raw_user_base = kUserBase;
    stream_spec.raw_item_base = kItemBase;
    stream_spec.seed = ctx.seed + 17;
    SyntheticStream arrivals(stream_spec);

    std::printf("live: %d x %d warm, batch %lld, %d publishes, "
                "%d clients\n",
                warm_rows, warm_cols, static_cast<long long>(batch),
                target_publishes, clients);

    std::atomic<bool> stop{false};
    std::atomic<int64_t> queries{0}, ok{0}, not_found{0}, failed{0},
        torn{0};
    std::vector<std::thread> client_threads;
    for (int c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        uint32_t state = 7919u * (c + 1);
        while (!stop.load(std::memory_order_relaxed)) {
          // Warm raw ids always resolve; one probe in 32 asks for a raw
          // id that is never streamed and must stay typed NotFound.
          const bool probe = (Lcg(&state) % 32) == 0;
          const int64_t user =
              probe ? kUserBase - 1 - static_cast<int64_t>(Lcg(&state) % 1000)
                    : kUserBase + static_cast<int64_t>(
                                      Lcg(&state) %
                                      static_cast<uint32_t>(warm_rows));
          queries.fetch_add(1, std::memory_order_relaxed);
          auto response = srv->Query({user, /*raw=*/true, topk});
          if (probe) {
            if (response.status().code() == StatusCode::kNotFound) {
              not_found.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          if (!response.ok()) {
            failed.fetch_add(1, std::memory_order_relaxed);
          } else if (!ResponseIntact(*response, max_version.load(), topk)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          } else {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    Stopwatch train_wall;
    double last_rmse = 0.0;
    for (int round = 0; round < target_publishes; ++round) {
      const int32_t users_before = ot->users().size();
      auto ingested = ot->Ingest(arrivals.NextBatch(batch));
      HSGD_CHECK_OK(ingested.status());
      // A cold user streamed this round must be invisible until the
      // publish whose maps cover it — probed from the driver thread, so
      // the ordering is deterministic, not racy.
      int64_t cold_probe = -1;
      if (ingested->cold_users > 0) {
        cold_probe = ot->users().Raw(users_before);
        auto early = srv->Query({cold_probe, /*raw=*/true, topk});
        if (early.status().code() != StatusCode::kNotFound) {
          ++live.cold_violations;
        }
      }
      auto point = ot->TrainDirty();
      HSGD_CHECK_OK(point.status());
      last_rmse = point->test_rmse;
      max_version.store(ot->version() + 1);
      HSGD_CHECK_OK(ot->PublishSnapshot().status());
      if (cold_probe >= 0) {
        auto after = srv->Query({cold_probe, /*raw=*/true, topk});
        if (!after.ok()) ++live.cold_violations;
      }
    }
    live.train_wall_s = train_wall.Seconds();
    stop.store(true);
    for (auto& thread : client_threads) thread.join();
    srv->Shutdown();

    live.publishes = ot->publishes();
    live.ingested = ot->session().appended_nnz();
    live.cold_users = arrivals.cold_users_emitted();
    live.cold_items = arrivals.cold_items_emitted();
    live.queries = queries.load();
    live.ok = ok.load();
    live.not_found = not_found.load();
    live.failed = failed.load();
    live.torn = torn.load();
    live.final_test_rmse = last_rmse;

    std::printf("live: %lld publishes, %lld ingested (%lld cold users, "
                "%lld cold items), %lld queries (%lld ok, %lld probes, "
                "%lld failed, %lld torn, %lld cold violations)\n",
                static_cast<long long>(live.publishes),
                static_cast<long long>(live.ingested),
                static_cast<long long>(live.cold_users),
                static_cast<long long>(live.cold_items),
                static_cast<long long>(live.queries),
                static_cast<long long>(live.ok),
                static_cast<long long>(live.not_found),
                static_cast<long long>(live.failed),
                static_cast<long long>(live.torn),
                static_cast<long long>(live.cold_violations));
  }

  // ---- Scenario 2: incremental refresh vs full retrain ------------------
  RefreshResult refresh;
  {
    const int32_t rows = std::max<int32_t>(
        500, static_cast<int32_t>(4000 * ctx.scale_mult));
    const int32_t cols = std::max<int32_t>(
        400, static_cast<int32_t>(3000 * ctx.scale_mult));
    SyntheticSpec spec;
    spec.num_rows = rows;
    spec.num_cols = cols;
    spec.train_nnz = static_cast<int64_t>(rows) * cols / 20;
    spec.test_nnz = spec.train_nnz / 10;
    spec.params.k = 16;
    spec.params.learning_rate = 0.01f;
    auto full_or = GenerateSynthetic(spec, ctx.seed + 1);
    HSGD_CHECK_OK(full_or.status());
    const Dataset full = *std::move(full_or);

    // The warm region is the leading 80% x 80% of the index space; the
    // remainder arrives as a stream.
    const int32_t warm_rows = rows * 4 / 5;
    const int32_t warm_cols = cols * 4 / 5;
    Dataset warm;
    warm.num_rows = warm_rows;
    warm.num_cols = warm_cols;
    warm.params = full.params;
    Ratings streamed;
    for (const Rating& r : full.train) {
      if (r.u < warm_rows && r.v < warm_cols) {
        warm.train.push_back(r);
      } else {
        streamed.push_back(r);
      }
    }
    for (const Rating& r : full.test) {
      if (r.u < warm_rows && r.v < warm_cols) warm.test.push_back(r);
    }
    refresh.streamed = static_cast<int64_t>(streamed.size());

    TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
    cfg.use_dataset_target = false;
    cfg.max_epochs = warm_epochs + chunks + consolidate + 64;

    std::printf("refresh: %d x %d, %lld warm + %lld streamed ratings, "
                "%d chunks\n",
                rows, cols, static_cast<long long>(warm.train.size()),
                static_cast<long long>(streamed.size()), chunks);

    // Online: warm-train, then chunked ingest + incremental epochs, then
    // full consolidation epochs over the grown dataset.
    auto online = Session::Create(warm, cfg);
    HSGD_CHECK_OK(online.status());
    for (int e = 0; e < warm_epochs; ++e) {
      HSGD_CHECK_OK((*online)->RunEpoch().status());
    }
    const size_t per_chunk = (streamed.size() + chunks - 1) / chunks;
    for (size_t begin = 0; begin < streamed.size(); begin += per_chunk) {
      const size_t end = std::min(streamed.size(), begin + per_chunk);
      Ratings chunk(streamed.begin() + begin, streamed.begin() + end);
      HSGD_CHECK_OK((*online)->AppendRatings(chunk));
      HSGD_CHECK_OK((*online)->RunIncrementalEpoch().status());
    }
    for (int e = 0; e < consolidate; ++e) {
      HSGD_CHECK_OK((*online)->RunEpoch().status());
    }
    refresh.online_nnz = (*online)->stats().sim.nnz_processed;
    refresh.online_epochs = (*online)->epochs_run();

    // Full retrain on everything, run to the SAME update count.
    auto retrain = Session::Create(full, cfg);
    HSGD_CHECK_OK(retrain.status());
    while ((*retrain)->stats().sim.nnz_processed < refresh.online_nnz) {
      HSGD_CHECK_OK((*retrain)->RunEpoch().status());
    }
    refresh.full_nnz = (*retrain)->stats().sim.nnz_processed;
    refresh.full_epochs = (*retrain)->epochs_run();

    // Both models scored on the same held-out set: the full test ratings
    // the online model's final extent covers (a test-only cold id has no
    // factors on the online side).
    const Model& online_model = (*online)->model();
    Ratings eval_test;
    for (const Rating& r : full.test) {
      if (r.u < online_model.num_rows() && r.v < online_model.num_cols()) {
        eval_test.push_back(r);
      }
    }
    HSGD_CHECK(!eval_test.empty());
    ThreadPool eval_pool(static_cast<size_t>(std::max(1, ctx.threads)));
    refresh.online_rmse = Rmse(online_model, eval_test, &eval_pool);
    refresh.full_rmse = Rmse((*retrain)->model(), eval_test, &eval_pool);
    refresh.rmse_ratio =
        refresh.full_rmse > 0.0 ? refresh.online_rmse / refresh.full_rmse
                                : 0.0;
    refresh.within_bound =
        refresh.online_rmse <= refresh.full_rmse * rmse_bound;

    std::printf("refresh: online rmse %.5f in %d epochs (%lld updates) "
                "vs full %.5f in %d epochs (%lld updates) -> ratio "
                "%.4f\n",
                refresh.online_rmse, refresh.online_epochs,
                static_cast<long long>(refresh.online_nnz),
                refresh.full_rmse, refresh.full_epochs,
                static_cast<long long>(refresh.full_nnz),
                refresh.rmse_ratio);
  }

  const bool live_clean = live.publishes >= target_publishes &&
                          live.failed == 0 && live.torn == 0 &&
                          live.cold_violations == 0;
  const bool accepted = live_clean && refresh.within_bound;

  report.results()
      .Push(obs::Json::Object()
                .Set("scenario", obs::Json::Str("live"))
                .Set("publishes", obs::Json::Int(live.publishes))
                .Set("ingested", obs::Json::Int(live.ingested))
                .Set("cold_users", obs::Json::Int(live.cold_users))
                .Set("cold_items", obs::Json::Int(live.cold_items))
                .Set("queries", obs::Json::Int(live.queries))
                .Set("ok", obs::Json::Int(live.ok))
                .Set("cold_probes", obs::Json::Int(live.not_found))
                .Set("failed", obs::Json::Int(live.failed))
                .Set("torn", obs::Json::Int(live.torn))
                .Set("cold_violations",
                     obs::Json::Int(live.cold_violations))
                .Set("train_wall_s", obs::Json::Double(live.train_wall_s))
                .Set("final_test_rmse",
                     obs::Json::Double(live.final_test_rmse)))
      .Push(obs::Json::Object()
                .Set("scenario", obs::Json::Str("refresh"))
                .Set("streamed", obs::Json::Int(refresh.streamed))
                .Set("online_rmse", obs::Json::Double(refresh.online_rmse))
                .Set("full_rmse", obs::Json::Double(refresh.full_rmse))
                .Set("rmse_ratio", obs::Json::Double(refresh.rmse_ratio))
                .Set("online_epochs", obs::Json::Int(refresh.online_epochs))
                .Set("full_epochs", obs::Json::Int(refresh.full_epochs))
                .Set("online_nnz", obs::Json::Int(refresh.online_nnz))
                .Set("full_nnz", obs::Json::Int(refresh.full_nnz))
                .Set("failed", obs::Json::Int(0))
                .Set("torn", obs::Json::Int(0))
                .Set("within_bound",
                     obs::Json::Bool(refresh.within_bound)));
  report.config().Set("accepted", obs::Json::Bool(accepted));

  WriteObsArtifacts(ctx, &report);
  HSGD_CHECK_OK(report.WriteTo(out_path));
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!accepted) {
    std::fprintf(stderr,
                 "FAILED: stream acceptance violated (publishes=%lld "
                 "failed=%lld torn=%lld cold_violations=%lld "
                 "rmse_ratio=%.4f)\n",
                 static_cast<long long>(live.publishes),
                 static_cast<long long>(live.failed),
                 static_cast<long long>(live.torn),
                 static_cast<long long>(live.cold_violations),
                 refresh.rmse_ratio);
    return 1;
  }
  return 0;
}
