// Table I — dataset statistics and parameter settings: the published
// full-size shapes, plus the scaled synthetic instantiations every other
// bench in this suite actually runs on.

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv);

  PrintHeader("Table I: published dataset statistics");
  std::printf("%-14s %12s %12s %14s %12s %4s %7s %8s\n", "dataset", "m",
              "n", "#Training", "#Test", "k", "lambda", "gamma");
  for (DatasetPreset preset : kAllPresets) {
    SyntheticSpec s = PresetSpec(preset);
    std::printf("%-14s %12s %12s %14s %12s %4d %7.2f %8.4g\n",
                PresetName(preset), WithThousandsSep(s.num_rows).c_str(),
                WithThousandsSep(s.num_cols).c_str(),
                WithThousandsSep(s.train_nnz).c_str(),
                WithThousandsSep(s.test_nnz).c_str(), s.params.k,
                s.params.lambda_p, s.params.learning_rate);
  }

  PrintHeader(ctx.loaded != nullptr
                  ? std::string("Loaded dataset used by this suite")
                  : StrFormat("Scaled synthetic stand-ins used by this "
                              "suite (scale x%.3g)",
                              ctx.scale_mult));
  std::printf("%-14s %10s %10s %12s %10s %10s %12s %12s\n", "dataset", "m",
              "n", "#Training", "#Test", "mean r", "target", "scale");
  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    RatingStats stats = ComputeStats(ds.train);
    std::printf("%-14s %10s %10s %12s %10s %10.2f %12.3g %12.4g\n",
                DatasetTitle(ctx, preset).c_str(),
                WithThousandsSep(ds.num_rows).c_str(),
                WithThousandsSep(ds.num_cols).c_str(),
                WithThousandsSep(ds.train_size()).c_str(),
                WithThousandsSep(ds.test_size()).c_str(),
                stats.mean_rating, ds.target_rmse,
                ctx.loaded != nullptr
                    ? 1.0
                    : DefaultBenchScale(preset) * ctx.scale_mult);
  }
  return 0;
}
