// Table II — Comparison of cost models: workload proportions assigned to
// CPUs ("C") and GPUs ("G") by Qilin (HSGD*-Q) vs the paper's model
// (HSGD*-M), and the running time of a fixed number of iterations under
// each split. Dynamic scheduling is disabled for both, as in the paper.
//
// Expected shape: HSGD*-M runs faster on every dataset; it assigns more
// work to the GPU than Qilin on the large datasets (where Eq. 9's
// max-of-streams beats Qilin's serial sum) and less on MovieLens (where
// the saturation curve says the GPU is weak on small inputs).

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv, /*default_epochs=*/10);

  PrintHeader(StrFormat(
      "Table II: cost models (HSGD*-Q = Qilin, HSGD*-M = ours), "
      "%d iterations, dynamic scheduling off",
      ctx.max_epochs));
  std::printf("%-14s %10s %10s %12s %10s %10s %12s\n", "dataset", "Q:C%",
              "Q:G%", "Q time(s)", "M:C%", "M:G%", "M time(s)");

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    double split[2][2];  // [model][cpu/gpu]
    double times[2];
    int i = 0;
    for (CostModelKind kind :
         {CostModelKind::kQilin, CostModelKind::kOurs}) {
      TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
      cfg.cost_model = kind;
      cfg.dynamic_scheduling = false;  // isolate the cost-model effect
      cfg.use_dataset_target = false;  // fixed iteration count
      TrainResult result = RunSession(ctx, ds, cfg);
      split[i][0] = (1.0 - result.stats.sim.alpha) * 100.0;
      split[i][1] = result.stats.sim.alpha * 100.0;
      times[i] = result.stats.sim.seconds;
      ++i;
    }
    std::printf("%-14s %9.2f%% %9.2f%% %12.3f %9.2f%% %9.2f%% %12.3f\n",
                DatasetTitle(ctx, preset).c_str(), split[0][0], split[0][1], times[0],
                split[1][0], split[1][1], times[1]);
  }
  WriteObsArtifacts(ctx);
  return 0;
}
