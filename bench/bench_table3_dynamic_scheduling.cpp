// Table III — Effectiveness of dynamic scheduling: running time of a fixed
// number of iterations for HSGD*-M (our cost model, no work stealing) vs
// the full HSGD* (cost model + dynamic phase).
//
// Expected shape: HSGD* is faster on every dataset; the improvement is
// smallest on MovieLens (the GPU is never saturated there, so stealing
// helps least).
//
// Runs through the Session API with an EpochObserver wired into every
// session: it reads per-epoch durations and steal deltas from the
// session's metrics registry (the sched.steals_by_* counters the event
// loop exports at each epoch barrier — no bespoke stat plumbing), and
// --verbose streams them as the epochs complete.

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

namespace {

/// Watches a session's epochs: per-epoch simulated duration and how many
/// elements the dynamic phase stole during that epoch, read from the
/// session's attached metrics registry. The registry may be shared
/// across sessions (counters keep growing), so the watcher baselines at
/// its first callback and reports deltas from there.
class EpochWatcher : public EpochObserver {
 public:
  explicit EpochWatcher(bool verbose) : verbose_(verbose) {}

  void OnEpochBegin(const Session& session, int epoch) override {
    (void)epoch;
    if (!baselined_) {
      last_stolen_ = StolenCounter(session);
      baselined_ = true;
    }
  }

  void OnEpochEnd(const Session& session, const TracePoint& p) override {
    const int64_t stolen_now = StolenCounter(session);
    const double epoch_seconds = p.time - last_clock_;
    if (verbose_) {
      std::printf("#   %-7s epoch %2d: %7.3fs  +%s stolen\n",
                  AlgorithmName(session.config().algorithm), p.epoch,
                  epoch_seconds,
                  WithThousandsSep(stolen_now - last_stolen_).c_str());
    }
    last_clock_ = p.time;
    last_stolen_ = stolen_now;
  }

 private:
  static int64_t StolenCounter(const Session& session) {
    const obs::MetricsRegistry* metrics = session.metrics();
    if (metrics == nullptr) return 0;
    const obs::MetricsSnapshot snap = metrics->Snapshot();
    return snap.CounterValue("sched.steals_by_gpu") +
           snap.CounterValue("sched.steals_by_cpu");
  }

  bool verbose_;
  bool baselined_ = false;
  SimTime last_clock_ = 0.0;
  int64_t last_stolen_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(
      argc, argv, /*default_epochs=*/10,
      {{"runs", "<n>", "averaging runs (default 3)"},
       {"verbose", "", "stream per-epoch timings and steal deltas"}});
  int runs = static_cast<int>(ctx.flags.GetInt("runs", 3));
  const bool verbose = ctx.flags.GetBool("verbose", false);

  // The watcher reads steals through session.metrics(), so make sure a
  // registry rides along even when no --metrics flag asked for one.
  if (ctx.obs.registry == nullptr) {
    ctx.obs.registry = std::make_shared<obs::MetricsRegistry>();
  }

  PrintHeader(StrFormat(
      "Table III: dynamic scheduling (%d iterations, mean of %d runs "
      "with device speed variability)",
      ctx.max_epochs, runs));
  std::printf("%-14s %16s %14s %12s %16s\n", "dataset", "HSGD*-M(s)",
              "HSGD*(s)", "speedup", "stolen elems");

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    double times[2] = {0.0, 0.0};
    int64_t stolen = 0;
    // Average over seeds: each run draws different device-speed factors,
    // standing in for the paper's run-to-run hardware variability.
    for (int run = 0; run < runs; ++run) {
      int i = 0;
      for (bool dynamic : {false, true}) {
        TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
        cfg.dynamic_scheduling = dynamic;
        cfg.use_dataset_target = false;
        cfg.seed = ctx.seed + static_cast<uint64_t>(run);
        EpochWatcher watcher(verbose);
        TrainResult result = RunSession(ctx, ds, cfg, &watcher);
        times[i++] += result.stats.sim.seconds / runs;
        if (dynamic) {
          stolen += (result.stats.sim.stolen_by_gpus +
                     result.stats.sim.stolen_by_cpus) /
                    runs;
        }
      }
    }
    std::printf("%-14s %16.3f %14.3f %11.2fx %16s\n",
                DatasetTitle(ctx, preset).c_str(),
                times[0], times[1], times[0] / times[1],
                WithThousandsSep(stolen).c_str());
  }
  WriteObsArtifacts(ctx);
  return 0;
}
