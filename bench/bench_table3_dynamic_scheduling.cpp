// Table III — Effectiveness of dynamic scheduling: running time of a fixed
// number of iterations for HSGD*-M (our cost model, no work stealing) vs
// the full HSGD* (cost model + dynamic phase).
//
// Expected shape: HSGD* is faster on every dataset; the improvement is
// smallest on MovieLens (the GPU is never saturated there, so stealing
// helps least).

#include <cstdio>

#include "bench_common.h"

using namespace hsgd;
using namespace hsgd::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseContext(argc, argv, /*default_epochs=*/10);
  int runs = static_cast<int>(ctx.flags.GetInt("runs", 3));

  PrintHeader(StrFormat(
      "Table III: dynamic scheduling (%d iterations, mean of %d runs "
      "with device speed variability)",
      ctx.max_epochs, runs));
  std::printf("%-14s %16s %14s %12s %16s\n", "dataset", "HSGD*-M(s)",
              "HSGD*(s)", "speedup", "stolen elems");

  for (DatasetPreset preset : ctx.presets) {
    Dataset ds = MakeBenchDataset(preset, ctx);
    double times[2] = {0.0, 0.0};
    int64_t stolen = 0;
    // Average over seeds: each run draws different device-speed factors,
    // standing in for the paper's run-to-run hardware variability.
    for (int run = 0; run < runs; ++run) {
      int i = 0;
      for (bool dynamic : {false, true}) {
        TrainConfig cfg = MakeConfig(Algorithm::kHsgdStar, ctx);
        cfg.dynamic_scheduling = dynamic;
        cfg.use_dataset_target = false;
        cfg.seed = ctx.seed + static_cast<uint64_t>(run);
        auto result = Trainer::Train(ds, cfg);
        HSGD_CHECK_OK(result.status());
        times[i++] += result->stats.sim_seconds / runs;
        if (dynamic) {
          stolen += (result->stats.stolen_by_gpus +
                     result->stats.stolen_by_cpus) /
                    runs;
        }
      }
    }
    std::printf("%-14s %16.3f %14.3f %11.2fx %16s\n", PresetName(preset),
                times[0], times[1], times[0] / times[1],
                WithThousandsSep(stolen).c_str());
  }
  return 0;
}
