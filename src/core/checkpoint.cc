#include "core/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace hsgd {

bool DatasetFingerprint::operator==(const DatasetFingerprint& other) const {
  return num_rows == other.num_rows && num_cols == other.num_cols &&
         k == other.k && train_nnz == other.train_nnz &&
         test_nnz == other.test_nnz && train_hash == other.train_hash &&
         test_hash == other.test_hash;
}

namespace {

uint64_t HashRatings(const Ratings& ratings) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;  // FNV prime
    }
  };
  for (const Rating& r : ratings) {
    mix(&r.u, sizeof(r.u));
    mix(&r.v, sizeof(r.v));
    mix(&r.r, sizeof(r.r));
  }
  return h;
}

}  // namespace

DatasetFingerprint FingerprintDataset(const Dataset& dataset) {
  DatasetFingerprint fp;
  fp.num_rows = dataset.num_rows;
  fp.num_cols = dataset.num_cols;
  fp.k = dataset.params.k;
  fp.train_nnz = dataset.train_size();
  fp.test_nnz = dataset.test_size();
  fp.train_hash = HashRatings(dataset.train);
  fp.test_hash = HashRatings(dataset.test);
  return fp;
}

namespace {

/// Write failpoint (tests): fail after this many bytes; < 0 disabled.
int64_t g_write_failpoint = -1;

class Writer {
 public:
  explicit Writer(FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  void Bytes(const void* data, size_t bytes) {
    if (!ok_) return;
    if (g_write_failpoint >= 0) {
      // Simulate a short write at the failpoint: part of the payload
      // lands on disk, then the device reports no space.
      const int64_t room = g_write_failpoint - written_;
      if (room < static_cast<int64_t>(bytes)) {
        if (room > 0) {
          std::fwrite(data, 1, static_cast<size_t>(room), f_);
          written_ += room;
        }
        ok_ = false;
        return;
      }
    }
    if (std::fwrite(data, 1, bytes, f_) != bytes) {
      ok_ = false;
      return;
    }
    written_ += static_cast<int64_t>(bytes);
  }
  void U8(uint8_t v) { Bytes(&v, sizeof(v)); }
  void I32(int32_t v) { Bytes(&v, sizeof(v)); }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }

  int64_t written() const { return written_; }

 private:
  FILE* f_;
  bool ok_ = true;
  int64_t written_ = 0;
};

class Reader {
 public:
  explicit Reader(FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  void Bytes(void* data, size_t bytes) {
    if (ok_ && std::fread(data, 1, bytes, f_) != bytes) ok_ = false;
  }
  /// Poison the stream on a semantic error (e.g. an absurd length).
  void Fail() { ok_ = false; }
  uint8_t U8() { return Get<uint8_t>(); }
  int32_t I32() { return Get<int32_t>(); }
  uint32_t U32() { return Get<uint32_t>(); }
  int64_t I64() { return Get<int64_t>(); }
  uint64_t U64() { return Get<uint64_t>(); }
  double F64() { return Get<double>(); }

 private:
  template <typename T>
  T Get() {
    T v{};
    Bytes(&v, sizeof(v));
    return v;
  }
  FILE* f_;
  bool ok_ = true;
};

void WriteConfig(Writer* w, const TrainConfig& config) {
  w->I32(static_cast<int32_t>(config.algorithm));
  w->I32(config.max_epochs);
  w->U64(config.seed);
  w->U8(config.use_dataset_target ? 1 : 0);
  w->I32(static_cast<int32_t>(config.cost_model));
  w->U8(config.dynamic_scheduling ? 1 : 0);
  w->I32(config.eval_threads);
  w->I32(static_cast<int32_t>(config.kernel));
  w->U8(config.calibrate ? 1 : 0);
  w->I32(config.hardware.num_cpu_threads);
  w->I32(config.hardware.num_gpus);
  w->F64(config.hardware.speed_variability);
  w->F64(config.hardware.cpu.updates_per_sec_k128);
  w->F64(config.hardware.cpu.warmup_nnz);
  w->F64(config.hardware.cpu.speed_factor);
  w->I32(config.hardware.gpu.parallel_workers);
  w->F64(config.hardware.gpu.worker_point_rate_k128);
  w->F64(config.hardware.gpu.kernel_launch_overhead);
  w->F64(config.hardware.gpu.device_mem_bw);
  w->F64(config.hardware.gpu.pcie_h2d_peak_gbps);
  w->F64(config.hardware.gpu.pcie_d2h_peak_gbps);
  w->F64(config.hardware.gpu.pcie_latency);
  w->F64(config.hardware.gpu.speed_factor);
  // v4: fault-tolerance policy.
  w->I32(config.fault.autosave_every);
  w->U64(config.fault.autosave_path.size());
  w->Bytes(config.fault.autosave_path.data(),
           config.fault.autosave_path.size());
  w->I32(config.fault.checkpoint_retry.max_attempts);
  w->F64(config.fault.checkpoint_retry.initial_backoff);
  w->F64(config.fault.checkpoint_retry.multiplier);
  w->F64(config.fault.checkpoint_retry.jitter);
  w->F64(config.fault.checkpoint_retry.max_backoff);
  w->F64(config.fault.lease_deadline_factor);
  w->I32(static_cast<int32_t>(config.fault.on_device_loss));
}

/// Range/finiteness checks on a config read back from disk. The fields
/// were round-tripped through raw bytes, so a corrupt file can smuggle in
/// NaN device speeds or a billion-GPU fleet; reject anything a config
/// could not legitimately hold before Restore rebuilds a session from it.
Status ValidateStoredConfig(const TrainConfig& c) {
  const int32_t algo = static_cast<int32_t>(c.algorithm);
  const int32_t cost = static_cast<int32_t>(c.cost_model);
  const int32_t kernel = static_cast<int32_t>(c.kernel);
  // Saved configs always hold a concrete kernel (Create pins auto before
  // any save), so kAuto here is corruption — and letting it through
  // would re-resolve to the machine-best variant on restore, silently
  // changing the numerics the checkpoint promises to reproduce.
  if (algo < static_cast<int32_t>(Algorithm::kCpuOnly) ||
      algo > static_cast<int32_t>(Algorithm::kHsgdStar) ||
      cost < static_cast<int32_t>(CostModelKind::kQilin) ||
      cost > static_cast<int32_t>(CostModelKind::kOurs) ||
      kernel < static_cast<int32_t>(KernelKind::kScalar) ||
      kernel > static_cast<int32_t>(KernelKind::kAvx512)) {
    return Status::InvalidArgument("enum fields");
  }
  // Same reasoning for calibrate: Create clears it after substituting the
  // measured rate, so a stored true would re-measure on restore and
  // silently diverge from the persisted schedule.
  if (c.calibrate) {
    return Status::InvalidArgument("calibrate flag set");
  }
  if (c.max_epochs < 1 || c.max_epochs > (1 << 24) ||
      c.eval_threads < 1 || c.eval_threads > (1 << 20) ||
      c.hardware.num_cpu_threads < 0 ||
      c.hardware.num_cpu_threads > (1 << 20) ||
      c.hardware.num_gpus < 0 || c.hardware.num_gpus > 4096) {
    return Status::InvalidArgument("worker counts");
  }
  // Physical quantities: rates, bandwidths and speed factors must be
  // positive and finite; overheads and latencies nonnegative and finite.
  for (double positive :
       {c.hardware.cpu.updates_per_sec_k128, c.hardware.cpu.speed_factor,
        c.hardware.gpu.worker_point_rate_k128, c.hardware.gpu.device_mem_bw,
        c.hardware.gpu.pcie_h2d_peak_gbps, c.hardware.gpu.pcie_d2h_peak_gbps,
        c.hardware.gpu.speed_factor}) {
    if (!std::isfinite(positive) || positive <= 0.0) {
      return Status::InvalidArgument("device rates");
    }
  }
  for (double nonnegative :
       {c.hardware.speed_variability, c.hardware.cpu.warmup_nnz,
        c.hardware.gpu.kernel_launch_overhead,
        c.hardware.gpu.pcie_latency}) {
    if (!std::isfinite(nonnegative) || nonnegative < 0.0) {
      return Status::InvalidArgument("device overheads");
    }
  }
  if (c.hardware.gpu.parallel_workers < 1 ||
      c.hardware.gpu.parallel_workers > (1 << 20)) {
    return Status::InvalidArgument("GPU worker count");
  }
  // v4 fault-policy fields.
  const int32_t policy = static_cast<int32_t>(c.fault.on_device_loss);
  if (policy < static_cast<int32_t>(DegradePolicy::kContinueDegraded) ||
      policy > static_cast<int32_t>(DegradePolicy::kAbort)) {
    return Status::InvalidArgument("degradation policy");
  }
  if (c.fault.autosave_every < 0 || c.fault.autosave_every > (1 << 24) ||
      c.fault.checkpoint_retry.max_attempts < 1 ||
      c.fault.checkpoint_retry.max_attempts > 1000) {
    return Status::InvalidArgument("fault policy counters");
  }
  if (!std::isfinite(c.fault.lease_deadline_factor) ||
      !std::isfinite(c.fault.checkpoint_retry.initial_backoff) ||
      c.fault.checkpoint_retry.initial_backoff < 0.0 ||
      !std::isfinite(c.fault.checkpoint_retry.multiplier) ||
      c.fault.checkpoint_retry.multiplier < 1.0 ||
      !std::isfinite(c.fault.checkpoint_retry.jitter) ||
      c.fault.checkpoint_retry.jitter < 0.0 ||
      c.fault.checkpoint_retry.jitter > 1.0 ||
      !std::isfinite(c.fault.checkpoint_retry.max_backoff) ||
      c.fault.checkpoint_retry.max_backoff < 0.0) {
    return Status::InvalidArgument("fault policy values");
  }
  return Status::Ok();
}

TrainConfig ReadConfig(Reader* r) {
  TrainConfig config;
  config.algorithm = static_cast<Algorithm>(r->I32());
  config.max_epochs = r->I32();
  config.seed = r->U64();
  config.use_dataset_target = r->U8() != 0;
  config.cost_model = static_cast<CostModelKind>(r->I32());
  config.dynamic_scheduling = r->U8() != 0;
  config.eval_threads = r->I32();
  config.kernel = static_cast<KernelKind>(r->I32());
  config.calibrate = r->U8() != 0;
  config.hardware.num_cpu_threads = r->I32();
  config.hardware.num_gpus = r->I32();
  config.hardware.speed_variability = r->F64();
  config.hardware.cpu.updates_per_sec_k128 = r->F64();
  config.hardware.cpu.warmup_nnz = r->F64();
  config.hardware.cpu.speed_factor = r->F64();
  config.hardware.gpu.parallel_workers = r->I32();
  config.hardware.gpu.worker_point_rate_k128 = r->F64();
  config.hardware.gpu.kernel_launch_overhead = r->F64();
  config.hardware.gpu.device_mem_bw = r->F64();
  config.hardware.gpu.pcie_h2d_peak_gbps = r->F64();
  config.hardware.gpu.pcie_d2h_peak_gbps = r->F64();
  config.hardware.gpu.pcie_latency = r->F64();
  config.hardware.gpu.speed_factor = r->F64();
  config.fault.autosave_every = r->I32();
  const uint64_t path_len = r->U64();
  if (path_len <= (1u << 16)) {
    config.fault.autosave_path.resize(path_len);
    r->Bytes(config.fault.autosave_path.data(), path_len);
  } else {
    r->Fail();  // absurd path length: corrupt file
  }
  config.fault.checkpoint_retry.max_attempts = r->I32();
  config.fault.checkpoint_retry.initial_backoff = r->F64();
  config.fault.checkpoint_retry.multiplier = r->F64();
  config.fault.checkpoint_retry.jitter = r->F64();
  config.fault.checkpoint_retry.max_backoff = r->F64();
  config.fault.lease_deadline_factor = r->F64();
  config.fault.on_device_loss = static_cast<DegradePolicy>(r->I32());
  return config;
}

}  // namespace

void SetCheckpointWriteFailpoint(int64_t bytes) {
  g_write_failpoint = bytes;
}

Status WriteCheckpoint(const std::string& path,
                       const SessionCheckpoint& ckpt,
                       int64_t* bytes_written) {
  if (bytes_written != nullptr) *bytes_written = 0;
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot open '%s' for writing", tmp.c_str()));
  }
  Writer w(f);
  w.U64(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  WriteConfig(&w, ckpt.config);
  w.I32(ckpt.dataset.num_rows);
  w.I32(ckpt.dataset.num_cols);
  w.I32(ckpt.dataset.k);
  w.I64(ckpt.dataset.train_nnz);
  w.I64(ckpt.dataset.test_nnz);
  w.U64(ckpt.dataset.train_hash);
  w.U64(ckpt.dataset.test_hash);
  w.I32(ckpt.epochs_run);
  w.U8(ckpt.reached_target ? 1 : 0);
  w.F64(ckpt.sim_clock);
  w.F64(ckpt.wall_seconds);
  w.I64(ckpt.block_tasks);
  w.I64(ckpt.gpu_nnz);
  w.I64(ckpt.total_nnz_processed);
  w.I64(ckpt.duration_count);
  w.F64(ckpt.duration_sum);
  w.F64(ckpt.duration_sumsq);
  for (int i = 0; i < 4; ++i) w.U64(ckpt.scheduler_rng.s[i]);
  w.U8(ckpt.scheduler_rng.has_spare ? 1 : 0);
  w.F64(ckpt.scheduler_rng.spare);
  w.I64(ckpt.stolen_by_gpus);
  w.I64(ckpt.stolen_by_cpus);
  // v5: growth state + WAL high-water mark.
  for (int i = 0; i < 4; ++i) w.U64(ckpt.growth_rng.s[i]);
  w.U8(ckpt.growth_rng.has_spare ? 1 : 0);
  w.F64(ckpt.growth_rng.spare);
  w.F64(ckpt.rating_sum);
  w.I64(ckpt.rating_count);
  w.U64(ckpt.wal_seq);
  w.U64(ckpt.gpu_streams.size());
  for (const GpuStreamState& s : ckpt.gpu_streams) {
    w.F64(s.h2d_free);
    w.F64(s.kernel_free);
    w.F64(s.d2h_free);
  }
  w.U64(ckpt.trace.size());
  for (const TracePoint& p : ckpt.trace) {
    w.I32(p.epoch);
    w.F64(p.time);
    w.F64(p.test_rmse);
    w.F64(p.train_rmse);
  }
  w.U64(ckpt.p.size());
  w.Bytes(ckpt.p.data(), ckpt.p.size() * sizeof(float));
  w.U64(ckpt.q.size());
  w.Bytes(ckpt.q.data(), ckpt.q.size() * sizeof(float));
  const bool write_ok = w.ok();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    std::remove(tmp.c_str());
    return Status::Internal(
        StrFormat("failed writing checkpoint '%s'", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("cannot rename '%s' to '%s'",
                                      tmp.c_str(), path.c_str()));
  }
  if (bytes_written != nullptr) *bytes_written = w.written();
  return Status::Ok();
}

namespace {

/// Shared reader behind ReadCheckpoint and ReadFactorSnapshot. With
/// `factors_only` the GPU pipeline state and the accumulated trace are
/// fseek'd over instead of materialized (their lengths are validated
/// either way); everything else — header, config, fingerprint, factor
/// sizes — gets the identical loud validation.
Status ReadCheckpointBody(FILE* f, const std::string& path,
                          bool factors_only, SessionCheckpoint* out) {
  Reader r(f);
  SessionCheckpoint& ckpt = *out;
  Status error = Status::Ok();
  const uint64_t magic = r.U64();
  const uint32_t version = r.U32();
  if (!r.ok() || magic != kCheckpointMagic) {
    error = Status::InvalidArgument(
        StrFormat("'%s' is not an hsgd checkpoint", path.c_str()));
  } else if (version != kCheckpointVersion) {
    error = Status::InvalidArgument(
        StrFormat("checkpoint '%s' has version %u, expected %u",
                  path.c_str(), version, kCheckpointVersion));
  }
  if (error.ok()) {
    ckpt.config = ReadConfig(&r);
    if (r.ok()) {
      const Status config_ok = ValidateStoredConfig(ckpt.config);
      if (!config_ok.ok()) {
        error = Status::InvalidArgument(
            StrFormat("checkpoint '%s' is corrupt (%s)", path.c_str(),
                      config_ok.message().c_str()));
      }
    }
    ckpt.dataset.num_rows = r.I32();
    ckpt.dataset.num_cols = r.I32();
    ckpt.dataset.k = r.I32();
    ckpt.dataset.train_nnz = r.I64();
    ckpt.dataset.test_nnz = r.I64();
    ckpt.dataset.train_hash = r.U64();
    ckpt.dataset.test_hash = r.U64();
    ckpt.epochs_run = r.I32();
    ckpt.reached_target = r.U8() != 0;
    ckpt.sim_clock = r.F64();
    ckpt.wall_seconds = r.F64();
    ckpt.block_tasks = r.I64();
    ckpt.gpu_nnz = r.I64();
    ckpt.total_nnz_processed = r.I64();
    ckpt.duration_count = r.I64();
    ckpt.duration_sum = r.F64();
    ckpt.duration_sumsq = r.F64();
    for (int i = 0; i < 4; ++i) ckpt.scheduler_rng.s[i] = r.U64();
    ckpt.scheduler_rng.has_spare = r.U8() != 0;
    ckpt.scheduler_rng.spare = r.F64();
    ckpt.stolen_by_gpus = r.I64();
    ckpt.stolen_by_cpus = r.I64();
    // v5 growth state (fixed size, so the factors-only fast path reads
    // it too rather than special-casing a seek).
    for (int i = 0; i < 4; ++i) ckpt.growth_rng.s[i] = r.U64();
    ckpt.growth_rng.has_spare = r.U8() != 0;
    ckpt.growth_rng.spare = r.F64();
    ckpt.rating_sum = r.F64();
    ckpt.rating_count = r.I64();
    ckpt.wal_seq = r.U64();
    const uint64_t num_gpus = r.U64();
    if (r.ok() && num_gpus <= 4096) {
      if (factors_only) {
        // 3 doubles of stream state per GPU; serving has no use for them.
        if (std::fseek(f, static_cast<long>(num_gpus * 3 * sizeof(double)),
                       SEEK_CUR) != 0) {
          r.Fail();
        }
      } else {
        ckpt.gpu_streams.resize(num_gpus);
        for (GpuStreamState& s : ckpt.gpu_streams) {
          s.h2d_free = r.F64();
          s.kernel_free = r.F64();
          s.d2h_free = r.F64();
        }
      }
    } else {
      error = Status::InvalidArgument(
          StrFormat("checkpoint '%s' is corrupt (GPU count)", path.c_str()));
    }
  }
  // Every serialized length is implied by fields already read, so a
  // corrupt or bit-flipped length fails here with a Status instead of
  // attempting a multi-GB allocation.
  if (error.ok() &&
      (ckpt.dataset.num_rows <= 0 || ckpt.dataset.num_cols <= 0 ||
       ckpt.dataset.k <= 0 || ckpt.epochs_run < 0 ||
       ckpt.epochs_run > ckpt.config.max_epochs ||
       ckpt.config.max_epochs > (1 << 24))) {
    error = Status::InvalidArgument(StrFormat(
        "checkpoint '%s' is corrupt (header fields)", path.c_str()));
  }
  if (error.ok()) {
    const uint64_t num_points = r.U64();
    if (r.ok() &&
        num_points == static_cast<uint64_t>(ckpt.epochs_run)) {
      // One I32 + three F64 per serialized TracePoint.
      constexpr uint64_t kPointBytes = 4 + 3 * sizeof(double);
      if (factors_only) {
        if (std::fseek(f, static_cast<long>(num_points * kPointBytes),
                       SEEK_CUR) != 0) {
          r.Fail();
        }
      } else {
        ckpt.trace.resize(num_points);
        for (TracePoint& p : ckpt.trace) {
          p.epoch = r.I32();
          p.time = r.F64();
          p.test_rmse = r.F64();
          p.train_rmse = r.F64();
        }
      }
    } else {
      error = Status::InvalidArgument(StrFormat(
          "checkpoint '%s' is corrupt (trace length)", path.c_str()));
    }
  }
  const uint64_t expected_p =
      static_cast<uint64_t>(ckpt.dataset.num_rows) *
      static_cast<uint64_t>(ckpt.dataset.k);
  const uint64_t expected_q =
      static_cast<uint64_t>(ckpt.dataset.num_cols) *
      static_cast<uint64_t>(ckpt.dataset.k);
  for (const auto& [factors, expected] :
       {std::pair<std::vector<float>*, uint64_t>{&ckpt.p, expected_p},
        {&ckpt.q, expected_q}}) {
    if (!error.ok()) break;
    const uint64_t count = r.U64();
    if (r.ok() && count == expected) {
      factors->resize(count);
      r.Bytes(factors->data(), count * sizeof(float));
    } else {
      error = Status::InvalidArgument(StrFormat(
          "checkpoint '%s' is corrupt (factor length)", path.c_str()));
    }
  }
  if (error.ok() && !r.ok()) {
    error = Status::InvalidArgument(
        StrFormat("checkpoint '%s' is truncated", path.c_str()));
  }
  return error;
}

}  // namespace

StatusOr<SessionCheckpoint> ReadCheckpoint(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(
        StrFormat("checkpoint '%s' does not exist", path.c_str()));
  }
  SessionCheckpoint ckpt;
  const Status status =
      ReadCheckpointBody(f, path, /*factors_only=*/false, &ckpt);
  std::fclose(f);
  if (!status.ok()) return status;
  return ckpt;
}

StatusOr<FactorCheckpoint> ReadFactorSnapshot(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(
        StrFormat("checkpoint '%s' does not exist", path.c_str()));
  }
  SessionCheckpoint ckpt;
  const Status status =
      ReadCheckpointBody(f, path, /*factors_only=*/true, &ckpt);
  std::fclose(f);
  if (!status.ok()) return status;
  FactorCheckpoint factors;
  factors.config = std::move(ckpt.config);
  factors.dataset = ckpt.dataset;
  factors.epochs_run = ckpt.epochs_run;
  factors.p = std::move(ckpt.p);
  factors.q = std::move(ckpt.q);
  return factors;
}

}  // namespace hsgd
