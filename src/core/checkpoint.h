// Binary checkpoint format for hsgd::Session (versioned, self-describing
// enough to fail loudly on mismatch).
//
// Layout: a magic + version header, the full TrainConfig, a fingerprint
// of the training data (dimensions, rank, nnz counts and a content hash —
// the ratings themselves are NOT stored; Session::Restore takes the
// dataset from the caller and verifies it against the fingerprint), then
// the evolving session state: epoch counter, virtual clock, stat
// accumulators, the scheduler's RNG stream and steal tallies, per-GPU
// pipeline stream state, the trace so far, and the factor matrices.
//
// Everything else a session holds (grid cuts, blocked matrix, cost-model
// alpha, device speed draws) is deterministic from (dataset, config) and
// is rebuilt on restore rather than stored, which keeps checkpoints at
// essentially the size of the factors.
//
// Values are written in native endianness — checkpoints are a
// resume-on-the-same-machine facility, not an interchange format.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/session.h"
#include "sim/gpu_device.h"
#include "util/rng.h"
#include "util/status.h"

namespace hsgd {

inline constexpr uint64_t kCheckpointMagic = 0x485347444348504Bull;  // "HSGDCHPK"
// v2: fingerprint additionally hashes the test split (real loaded
// datasets carry a held-out split whose identity matters for resume) and
// restore validates config floats for finiteness/positivity.
// v3: the config records the RESOLVED compute-kernel variant (and the
// calibrate flag, always false by save time since Create substitutes the
// measured rate into cpu.updates_per_sec_k128); the factor matrices are
// stored dense (stride-free), independent of the SIMD padding. Restore
// re-resolves the recorded kernel and fails loudly on a machine or build
// that cannot run it — resuming under a different kernel would silently
// change the numerics.
// v4: the config additionally carries the FaultPolicy (autosave cadence
// and path, checkpoint retry, lease deadline factor, degradation
// policy), so a restored run keeps autosaving the way the original did.
// Runtime fault state (dead devices, attached FaultPlan) is NOT stored —
// like observers, plans are re-attached by the caller after Restore.
// v5: the online-append growth state (cold-row init RNG, exact running
// rating moments) and the WAL high-water mark. A grown session restored
// WITHOUT these would re-seed the growth stream and recompute the rating
// mean from dataset stats — both FP-divergent from the incremental
// accumulation, silently breaking bit-identical append replay after a
// crash. The wal_seq mark is what stream recovery uses to split the WAL
// into already-applied records (rebuild the dataset only) and unapplied
// ones (re-drive through training).
inline constexpr uint32_t kCheckpointVersion = 5;

/// Cheap identity of the data a session was trained on. Restore refuses
/// a dataset whose fingerprint differs — resuming on different ratings
/// would silently produce garbage factors.
struct DatasetFingerprint {
  int32_t num_rows = 0;
  int32_t num_cols = 0;
  int32_t k = 0;
  int64_t train_nnz = 0;
  int64_t test_nnz = 0;
  /// FNV-1a over each split's (u, v, r) bytes in order. The test split is
  /// covered too: datasets ingested by io/ carry a held-out split, and
  /// resuming against different test ratings would silently skew the
  /// RMSE trace and any early-stop decision.
  uint64_t train_hash = 0;
  uint64_t test_hash = 0;

  bool operator==(const DatasetFingerprint& other) const;
  bool operator!=(const DatasetFingerprint& other) const {
    return !(*this == other);
  }
};

DatasetFingerprint FingerprintDataset(const Dataset& dataset);

/// Complete resumable state of a Session, as stored on disk. Filled by
/// Session::SaveCheckpoint and consumed by Session::Restore; exposed here
/// so tests and tools can inspect checkpoints without a session.
struct SessionCheckpoint {
  TrainConfig config;
  DatasetFingerprint dataset;

  int32_t epochs_run = 0;
  bool reached_target = false;
  double sim_clock = 0.0;
  double wall_seconds = 0.0;

  int64_t block_tasks = 0;
  int64_t gpu_nnz = 0;
  int64_t total_nnz_processed = 0;
  int64_t duration_count = 0;
  double duration_sum = 0.0;
  double duration_sumsq = 0.0;

  RngState scheduler_rng;
  int64_t stolen_by_gpus = 0;
  int64_t stolen_by_cpus = 0;

  // v5: online-append growth state + stream durability mark.
  RngState growth_rng;
  double rating_sum = 0.0;
  int64_t rating_count = 0;
  /// Highest WAL sequence number applied to the session when this
  /// checkpoint was taken (0 = no WAL / nothing streamed). See
  /// stream/wal.h; written via Session::SaveCheckpoint's wal_seq
  /// overload, consumed by stream::OnlineTrainer::Recover.
  uint64_t wal_seq = 0;

  std::vector<GpuStreamState> gpu_streams;
  std::vector<TracePoint> trace;

  /// Row-major factor matrices (num_rows*k / num_cols*k).
  std::vector<float> p;
  std::vector<float> q;
};

/// Write `checkpoint` to `path` atomically (temp file + rename): readers
/// never observe a torn file, and a crash mid-write leaves any previous
/// checkpoint at `path` intact. On success `bytes_written` (when
/// non-null) receives the file's size — observability accounting for
/// the session's ckpt.bytes counter; 0 on failure.
Status WriteCheckpoint(const std::string& path,
                       const SessionCheckpoint& checkpoint,
                       int64_t* bytes_written = nullptr);

/// Read and validate (magic, version, structural sizes). Fails with
/// NotFound for a missing file and InvalidArgument for a corrupt or
/// version-mismatched one.
StatusOr<SessionCheckpoint> ReadCheckpoint(const std::string& path);

/// What serving needs out of a checkpoint: the trained factors, the
/// identity of the data they came from, and the config they were trained
/// under (notably the resolved kernel, for bitwise score parity with the
/// training-time predictions).
struct FactorCheckpoint {
  TrainConfig config;
  DatasetFingerprint dataset;
  int32_t epochs_run = 0;
  /// Row-major dense factors (num_rows*k / num_cols*k floats).
  std::vector<float> p;
  std::vector<float> q;
};

/// Factors-only fast path over the same file format: validates the
/// header, config and structural sizes exactly like ReadCheckpoint
/// (magic/version/fingerprint mismatches fail just as loudly), but seeks
/// past the resumable session state — RNG streams, GPU pipeline state,
/// the accumulated trace — instead of materializing it, and needs no
/// Dataset or Session rebuild afterwards. This is what a serving restart
/// pays: read the factors, build a FactorSnapshot, done.
StatusOr<FactorCheckpoint> ReadFactorSnapshot(const std::string& path);

/// Test-only failpoint simulating a short write / ENOSPC: subsequent
/// WriteCheckpoint calls fail once they have written `bytes` bytes of
/// the temp file (0 fails immediately). The write error surfaces as an
/// Internal Status and the temp file is removed — the durability
/// contract (a previous checkpoint at `path` stays intact and readable)
/// is what tests assert under this failpoint. Negative clears it.
/// Process-global and not thread-safe; tests only.
void SetCheckpointWriteFailpoint(int64_t bytes);

}  // namespace hsgd
