#include "core/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/strings.h"

namespace hsgd {

RatingStats ComputeStats(const Ratings& ratings) {
  RatingStats stats;
  if (ratings.empty()) return stats;
  double sum = 0.0, sum_sq = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const Rating& rt : ratings) {
    sum += rt.r;
    sum_sq += static_cast<double>(rt.r) * rt.r;
    mn = std::min(mn, static_cast<double>(rt.r));
    mx = std::max(mx, static_cast<double>(rt.r));
  }
  double n = static_cast<double>(ratings.size());
  stats.mean_rating = sum / n;
  double var = sum_sq / n - stats.mean_rating * stats.mean_rating;
  stats.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  stats.min_rating = mn;
  stats.max_rating = mx;
  return stats;
}

const char* PresetName(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kMovieLens: return "movielens";
    case DatasetPreset::kNetflix: return "netflix";
    case DatasetPreset::kYahooMusic: return "yahoomusic";
    case DatasetPreset::kHugewiki: return "hugewiki";
  }
  return "unknown";
}

StatusOr<DatasetPreset> PresetByName(const std::string& name) {
  std::string lower = AsciiLower(name);
  for (DatasetPreset preset : kAllPresets) {
    if (lower == PresetName(preset)) return preset;
  }
  // Friendly aliases.
  if (lower == "ml" || lower == "movielens20m") {
    return DatasetPreset::kMovieLens;
  }
  if (lower == "yahoo" || lower == "yahoo!music" || lower == "r1") {
    return DatasetPreset::kYahooMusic;
  }
  return Status::NotFound("no dataset preset named '" + name + "'");
}

SyntheticSpec PresetSpec(DatasetPreset preset) {
  // Published shapes and Table I parameter settings.
  SyntheticSpec s;
  switch (preset) {
    case DatasetPreset::kMovieLens:
      s.num_rows = 138493;
      s.num_cols = 26744;
      s.train_nnz = 19000263;
      s.test_nnz = 1000209;
      s.rating_min = 0.5;
      s.rating_max = 5.0;
      s.noise_stddev = 0.42;
      s.target_rmse = 0.50;
      s.params.k = 128;
      s.params.learning_rate = 0.005f;
      s.params.lambda_p = s.params.lambda_q = 0.05f;
      break;
    case DatasetPreset::kNetflix:
      s.num_rows = 480189;
      s.num_cols = 17770;
      s.train_nnz = 99072112;
      s.test_nnz = 1408395;
      s.rating_min = 1.0;
      s.rating_max = 5.0;
      s.noise_stddev = 0.45;
      s.target_rmse = 0.535;
      s.params.k = 128;
      s.params.learning_rate = 0.005f;
      s.params.lambda_p = s.params.lambda_q = 0.05f;
      break;
    case DatasetPreset::kYahooMusic:
      s.num_rows = 1000990;
      s.num_cols = 624961;
      s.train_nnz = 252800275;
      s.test_nnz = 4003960;
      s.rating_min = 0.0;
      s.rating_max = 100.0;
      s.noise_stddev = 11.0;
      s.target_rmse = 12.8;
      s.params.k = 128;
      s.params.learning_rate = 0.0008f;
      s.params.lambda_p = s.params.lambda_q = 1.0f;
      break;
    case DatasetPreset::kHugewiki:
      s.num_rows = 50082603;
      s.num_cols = 39780;
      s.train_nnz = 3411259583;
      s.test_nnz = 34458177;
      s.rating_min = 0.0;
      s.rating_max = 10.0;
      s.noise_stddev = 0.9;
      s.target_rmse = 1.10;
      s.params.k = 128;
      s.params.learning_rate = 0.004f;
      s.params.lambda_p = s.params.lambda_q = 0.01f;
      break;
  }
  return s;
}

double DefaultBenchScale(DatasetPreset preset) {
  // Chosen so every stand-in lands at ~1-3M training entries at --scale=1.
  switch (preset) {
    case DatasetPreset::kMovieLens: return 0.05;
    case DatasetPreset::kNetflix: return 0.02;
    case DatasetPreset::kYahooMusic: return 0.0102;
    case DatasetPreset::kHugewiki: return 0.0008;
  }
  return 1.0;
}

SyntheticSpec ScaledPresetSpec(DatasetPreset preset, double scale) {
  SyntheticSpec s = PresetSpec(preset);
  if (scale <= 0.0) scale = 1e-6;
  if (scale >= 1.0) return s;
  double dim_scale = std::sqrt(scale);
  auto scale_dim = [&](int64_t dim) {
    return std::max<int64_t>(32, static_cast<int64_t>(dim * dim_scale));
  };
  s.num_rows = scale_dim(s.num_rows);
  s.num_cols = scale_dim(s.num_cols);
  s.train_nnz =
      std::max<int64_t>(1000, static_cast<int64_t>(s.train_nnz * scale));
  s.test_nnz =
      std::max<int64_t>(200, static_cast<int64_t>(s.test_nnz * scale));
  // Keep enough ratings per row/column for the factors to be learnable
  // (Hugewiki's extreme row count would otherwise starve every row).
  int64_t dim_cap = std::max<int64_t>(32, s.train_nnz / 12);
  s.num_rows = std::min(s.num_rows, dim_cap);
  s.num_cols = std::min(s.num_cols, dim_cap);
  return s;
}

StatusOr<Dataset> MakeDataset(Ratings train, Ratings test,
                              int32_t num_rows, int32_t num_cols,
                              SgdParams params, double target_rmse) {
  if (train.empty()) {
    return Status::InvalidArgument("train split has no ratings");
  }
  if (num_rows <= 0 || num_cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("dataset needs positive dims, got %d x %d", num_rows,
                  num_cols));
  }
  if (params.k <= 0) {
    return Status::InvalidArgument("params.k must be positive");
  }
  for (const Ratings* split : {&train, &test}) {
    for (const Rating& r : *split) {
      if (r.u < 0 || r.u >= num_rows || r.v < 0 || r.v >= num_cols) {
        return Status::InvalidArgument(
            StrFormat("rating (%d, %d) outside the %d x %d matrix", r.u,
                      r.v, num_rows, num_cols));
      }
    }
  }
  Dataset ds;
  ds.train = std::move(train);
  ds.test = std::move(test);
  ds.num_rows = num_rows;
  ds.num_cols = num_cols;
  ds.params = params;
  ds.target_rmse = target_rmse;
  return ds;
}

namespace {

float Dot(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

StatusOr<Dataset> GenerateSynthetic(const SyntheticSpec& spec,
                                    uint64_t seed) {
  if (spec.num_rows <= 0 || spec.num_cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("synthetic spec needs positive dims, got %lld x %lld",
                  static_cast<long long>(spec.num_rows),
                  static_cast<long long>(spec.num_cols)));
  }
  if (spec.num_rows > std::numeric_limits<int32_t>::max() ||
      spec.num_cols > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument(
        "synthetic dims exceed int32 range; scale the spec down first");
  }
  if (spec.train_nnz <= 0) {
    return Status::InvalidArgument("synthetic spec needs train_nnz > 0");
  }
  if (spec.rating_max <= spec.rating_min) {
    return Status::InvalidArgument("rating_max must exceed rating_min");
  }
  if (spec.truth_rank <= 0 || spec.params.k <= 0) {
    return Status::InvalidArgument("ranks must be positive");
  }

  const int rank = spec.truth_rank;
  const int32_t rows = static_cast<int32_t>(spec.num_rows);
  const int32_t cols = static_cast<int32_t>(spec.num_cols);

  Rng rng(seed, /*stream=*/11);
  // Planted ground truth: per-row and per-column biases carry most of the
  // signal, a rank-`rank` interaction the rest. The split matters: biases
  // are rank-1 structure an MF model generalizes from a handful of
  // ratings per entity, so the scaled-down stand-ins converge below their
  // target RMSE the way the full datasets do. A truth dominated by the
  // high-rank interaction would leave a k=128 model memorizing instead
  // (tens of ratings per row cannot pin 128 free parameters), and test
  // RMSE would plateau far above the noise floor.
  std::vector<float> row_truth(static_cast<size_t>(rows) * rank);
  std::vector<float> col_truth(static_cast<size_t>(cols) * rank);
  std::vector<float> row_bias(static_cast<size_t>(rows));
  std::vector<float> col_bias(static_cast<size_t>(cols));
  const float truth_scale = 1.0f / std::sqrt(static_cast<float>(rank));
  for (float& x : row_truth) {
    x = static_cast<float>(rng.Gaussian()) * truth_scale;
  }
  for (float& x : col_truth) {
    x = static_cast<float>(rng.Gaussian()) * truth_scale;
  }
  for (float& x : row_bias) x = static_cast<float>(rng.Gaussian());
  for (float& x : col_bias) x = static_cast<float>(rng.Gaussian());

  const double mid = 0.5 * (spec.rating_min + spec.rating_max);
  const double gain = 0.25 * (spec.rating_max - spec.rating_min);
  const double bias_gain = 0.6 * gain;         // per side; 0.85*gain joint
  const double interaction_gain = 0.3 * gain;  // the hard-to-learn part

  auto sample = [&](int64_t count, Ratings* out) {
    out->reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      Rating rt;
      rt.u = static_cast<int32_t>(rng.UniformInt(rows));
      rt.v = static_cast<int32_t>(rng.UniformInt(cols));
      double truth =
          bias_gain * (row_bias[static_cast<size_t>(rt.u)] +
                       col_bias[static_cast<size_t>(rt.v)]) +
          interaction_gain *
              Dot(&row_truth[static_cast<size_t>(rt.u) * rank],
                  &col_truth[static_cast<size_t>(rt.v) * rank], rank);
      double value = mid + truth + spec.noise_stddev * rng.Gaussian();
      value = std::min(spec.rating_max, std::max(spec.rating_min, value));
      rt.r = static_cast<float>(value);
      out->push_back(rt);
    }
  };

  Dataset ds;
  ds.num_rows = rows;
  ds.num_cols = cols;
  ds.params = spec.params;
  sample(spec.train_nnz, &ds.train);
  sample(std::max<int64_t>(0, spec.test_nnz), &ds.test);
  // Clamping pulls tail noise inward, so the reachable test RMSE sits a
  // touch below noise_stddev; 1.18x leaves a few epochs of headroom.
  ds.target_rmse = spec.target_rmse > 0.0 ? spec.target_rmse
                                          : spec.noise_stddev * 1.18;
  return ds;
}

}  // namespace hsgd
