// Datasets: the four benchmark presets from the paper's Table I, synthetic
// stand-in generation at any scale, and the hyper-parameters attached to
// each dataset.
//
// The benches never load the real MovieLens/Netflix/Yahoo!Music/Hugewiki
// dumps; they run on synthetic matrices with the same shape, density and
// value range, scaled down by DefaultBenchScale() so a laptop finishes in
// seconds. GenerateSynthetic plants a low-rank ground truth plus noise so
// SGD has something real to learn and RMSE curves behave like the paper's.

#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"
#include "util/status.h"

namespace hsgd {

/// SGD hyper-parameters bundled with a dataset (Table I's k/lambda/gamma).
struct SgdParams {
  int k = 128;                   // factorization rank
  float learning_rate = 0.005f;  // gamma
  float lambda_p = 0.05f;        // row-factor regularizer
  float lambda_q = 0.05f;        // column-factor regularizer
};

struct SyntheticSpec {
  int64_t num_rows = 0;
  int64_t num_cols = 0;
  int64_t train_nnz = 0;
  int64_t test_nnz = 0;
  SgdParams params;
  double rating_min = 1.0;
  double rating_max = 5.0;
  double noise_stddev = 0.4;  // irreducible noise around the planted truth
  int truth_rank = 8;         // rank of the planted ground-truth factors
  double target_rmse = 0.0;   // 0 => derived from noise_stddev
};

struct Dataset {
  Ratings train;
  Ratings test;
  int32_t num_rows = 0;
  int32_t num_cols = 0;
  double target_rmse = 0.0;
  SgdParams params;

  int64_t train_size() const { return static_cast<int64_t>(train.size()); }
  int64_t test_size() const { return static_cast<int64_t>(test.size()); }
};

/// The four benchmark datasets (Table I ordering: small to large).
enum class DatasetPreset {
  kMovieLens = 0,
  kNetflix = 1,
  kYahooMusic = 2,
  kHugewiki = 3,
};

inline constexpr DatasetPreset kAllPresets[] = {
    DatasetPreset::kMovieLens,
    DatasetPreset::kNetflix,
    DatasetPreset::kYahooMusic,
    DatasetPreset::kHugewiki,
};

const char* PresetName(DatasetPreset preset);
StatusOr<DatasetPreset> PresetByName(const std::string& name);

/// Full published shape (rows/cols/nnz of the real dataset).
SyntheticSpec PresetSpec(DatasetPreset preset);

/// Per-preset shrink factor giving each synthetic stand-in a comparable,
/// laptop-sized nnz at --scale=1.
double DefaultBenchScale(DatasetPreset preset);

/// PresetSpec scaled to `scale` of the published nnz. Dimensions shrink by
/// sqrt(scale) (preserving block density) and are clamped so rows and
/// columns keep enough ratings each to be learnable.
SyntheticSpec ScaledPresetSpec(DatasetPreset preset, double scale);

/// Plants rank-`truth_rank` factors, samples train/test entries, adds
/// Gaussian noise, clamps to the rating range. Deterministic per seed.
StatusOr<Dataset> GenerateSynthetic(const SyntheticSpec& spec,
                                    uint64_t seed);

/// Assemble a Dataset from already-dense rating triplets (the io/ loaders
/// produce these; tests build them directly). Validates that the train
/// split is nonempty, every id lies in [0, num_rows) x [0, num_cols), and
/// `params.k` is positive. `target_rmse` 0 means "no early-stop target".
StatusOr<Dataset> MakeDataset(Ratings train, Ratings test,
                              int32_t num_rows, int32_t num_cols,
                              SgdParams params, double target_rmse = 0.0);

}  // namespace hsgd
