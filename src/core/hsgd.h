// Umbrella header for the hsgd library: datasets, the factor model and
// real SGD/RMSE kernels, the device simulators, the block schedulers, and
// the Session engine that ties them together (plus the legacy Trainer
// facade, checkpointing, and the top-k Recommender). The bench drivers
// include this (plus individual sim/sched headers when they poke at
// internals).
//
// Layering:
//   util/  - status, logging, strings, cli, rng, stopwatch, thread pool,
//            cpu feature detection, aligned alloc, parallel reduce
//   core/  - datasets, model, session engine + checkpoint, recommender,
//            legacy trainer facade (this directory)
//   core/kernels/ - scalar/AVX2/AVX-512 SGD + scoring kernels behind a
//            runtime dispatch table, and the rate calibrator that feeds
//            measured speeds back into sim/'s cost models
//   sim/   - simulated CPU/GPU devices, PCIe link, profiler + cost models
//   sched/ - grid division, blocked matrix, uniform & star schedulers

#pragma once

#include "core/checkpoint.h"
#include "core/dataset.h"
#include "core/kernels/calibrator.h"
#include "core/kernels/kernels.h"
#include "core/model.h"
#include "core/recommender.h"
#include "core/session.h"
#include "core/trainer.h"
#include "core/types.h"
#include "sched/blocked_matrix.h"
#include "sched/scheduler.h"
#include "sim/device_spec.h"
#include "sim/profiler.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
