// Umbrella header for the hsgd library: datasets, the factor model and
// real SGD/RMSE kernels, the device simulators, the block schedulers, and
// the Trainer that ties them together. The bench drivers include this
// (plus individual sim/sched headers when they poke at internals).
//
// Layering:
//   util/  - status, logging, strings, cli, rng, stopwatch, thread pool
//   core/  - datasets, model, SGD kernels, trainer (this directory)
//   sim/   - simulated CPU/GPU devices, PCIe link, profiler + cost models
//   sched/ - grid division, blocked matrix, uniform & star schedulers

#pragma once

#include "core/dataset.h"
#include "core/model.h"
#include "core/trainer.h"
#include "core/types.h"
#include "sched/blocked_matrix.h"
#include "sched/scheduler.h"
#include "sim/device_spec.h"
#include "sim/profiler.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
