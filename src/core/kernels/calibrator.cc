#include "core/kernels/calibrator.h"

#include <vector>

#include "util/aligned.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace hsgd {

KernelCalibration CalibrateKernel(KernelKind kind, int k,
                                  double min_seconds) {
  HSGD_CHECK(k > 0);
  auto resolved = ResolveKernelKind(kind);
  HSGD_CHECK_OK(resolved.status()) << "cannot calibrate";
  const KernelOps& ops = GetKernelOps(*resolved);

  // A factor working set comfortably larger than L2 and a block long
  // enough that per-sweep overhead vanishes; mirrors the flat-in-block-
  // size regime of Fig. 3b that updates_per_sec_k128 describes.
  const int32_t rows = 4096;
  const int32_t cols = 4096;
  const int64_t nnz = 200000;
  const int64_t stride = PaddedStride(k);
  AlignedFloatPtr p =
      AllocateAlignedFloats(static_cast<size_t>(rows) * stride);
  AlignedFloatPtr q =
      AllocateAlignedFloats(static_cast<size_t>(cols) * stride);
  Rng rng(12345);
  for (int32_t r = 0; r < rows; ++r) {
    for (int i = 0; i < k; ++i) {
      p.get()[r * stride + i] = rng.NextFloat() * 0.3f;
    }
  }
  for (int32_t c = 0; c < cols; ++c) {
    for (int i = 0; i < k; ++i) {
      q.get()[c * stride + i] = rng.NextFloat() * 0.3f;
    }
  }
  Ratings block(static_cast<size_t>(nnz));
  for (Rating& rt : block) {
    rt.u = static_cast<int32_t>(rng.UniformInt(rows));
    rt.v = static_cast<int32_t>(rng.UniformInt(cols));
    rt.r = 1.0f + 4.0f * rng.NextFloat();
  }

  // One warm-up sweep (page faults, frequency ramp), then timed sweeps
  // until the clock has accumulated enough to be trustworthy.
  volatile double sink = ops.sgd_block(p.get(), q.get(), stride, k,
                                       block.data(), nnz, 0.002f, 0.02f,
                                       0.02f);
  Stopwatch timer;
  int64_t sweeps = 0;
  double elapsed = 0.0;
  do {
    sink = ops.sgd_block(p.get(), q.get(), stride, k, block.data(), nnz,
                         0.002f, 0.02f, 0.02f);
    ++sweeps;
    elapsed = timer.Seconds();
  } while (elapsed < min_seconds);
  (void)sink;

  KernelCalibration cal;
  cal.kernel = *resolved;
  cal.k = k;
  cal.updates_per_sec =
      static_cast<double>(sweeps * nnz) / (elapsed > 0.0 ? elapsed : 1e-9);
  cal.updates_per_sec_k128 = cal.updates_per_sec * k / 128.0;
  return cal;
}

}  // namespace hsgd
