// KernelCalibrator: micro-measures the real update rate of a kernel
// variant on THIS machine, so the device simulator can plan with measured
// hardware speeds instead of the paper's 2021 testbed numbers.
//
// The simulator's CpuDeviceSpec expresses CPU speed as
// updates_per_sec_k128 and scales it by 128/k for other ranks; the
// calibrator therefore measures at the caller's configured k and converts
// back to the k=128 convention, so the spec override is consistent with
// how CpuDevice will re-derive the rate. Wired up as --calibrate in the
// benches and TrainConfig::calibrate in the Session (which persists the
// measured value into checkpoints — a resumed run never re-measures).

#pragma once

#include "core/kernels/kernels.h"

namespace hsgd {

struct KernelCalibration {
  KernelKind kernel = KernelKind::kScalar;
  int k = 0;
  /// Measured single-thread SGD update rate at rank `k` (points/second).
  double updates_per_sec = 0.0;
  /// The same rate expressed in the simulator's k=128 convention
  /// (CpuDeviceSpec::updates_per_sec_k128 = updates_per_sec * k / 128).
  double updates_per_sec_k128 = 0.0;
};

/// Measure `kind` (must be resolved and supported) at rank `k`: repeated
/// fused-update sweeps over a synthetic block sized to dodge both cache
/// residency games and timer noise, timed until at least `min_seconds`
/// of wall clock accumulates. Deterministic inputs, nondeterministic
/// wall-clock — calibration is an explicit opt-in that trades trace
/// reproducibility across machines for fidelity to the one you are on.
KernelCalibration CalibrateKernel(KernelKind kind, int k,
                                  double min_seconds = 0.05);

}  // namespace hsgd
