// Scalar reference kernels + the runtime dispatch table. The SIMD
// variants live in sibling TUs compiled with their own -m flags
// (kernels_avx2.cc, kernels_avx512.cc) and are linked in only when the
// build enables them; this TU is always portable.

#include "core/kernels/kernels.h"

#include "util/cpu_features.h"
#include "util/strings.h"

namespace hsgd {

namespace {

float DotScalar(const float* p, const float* q, int k) {
  float acc = 0.0f;
  for (int i = 0; i < k; ++i) acc += p[i] * q[i];
  return acc;
}

double SgdBlockScalar(float* p, float* q, int64_t stride, int k,
                      const Rating* ratings, int64_t n, float lr, float lp,
                      float lq) {
  double sq_err = 0.0;
  for (int64_t idx = 0; idx < n; ++idx) {
    const Rating& rt = ratings[idx];
    float* __restrict pu = p + static_cast<int64_t>(rt.u) * stride;
    float* __restrict qv = q + static_cast<int64_t>(rt.v) * stride;
    const float err = rt.r - DotScalar(pu, qv, k);
    for (int i = 0; i < k; ++i) {
      const float pi = pu[i];
      const float qi = qv[i];
      pu[i] = pi + lr * (err * qi - lp * pi);
      qv[i] = qi + lr * (err * pi - lq * qi);
    }
    sq_err += static_cast<double>(err) * err;
  }
  return sq_err;
}

double SqErrBlockScalar(const float* p, const float* q, int64_t stride,
                        int k, const Rating* ratings, int64_t n) {
  double acc = 0.0;
  for (int64_t idx = 0; idx < n; ++idx) {
    const Rating& rt = ratings[idx];
    const float* pu = p + static_cast<int64_t>(rt.u) * stride;
    const float* qv = q + static_cast<int64_t>(rt.v) * stride;
    // Error in float, exactly like sgd_block's pre-update error, so the
    // frozen-sweep == reduction bitwise contract in kernels.h holds.
    const float err = rt.r - DotScalar(pu, qv, k);
    acc += static_cast<double>(err) * err;
  }
  return acc;
}

void ScoreBlockScalar(const float* user, const float* q, int64_t stride,
                      int k, int32_t first_item, int32_t count,
                      float* out) {
  for (int32_t i = 0; i < count; ++i) {
    out[i] = DotScalar(
        user, q + static_cast<int64_t>(first_item + i) * stride, k);
  }
}

}  // namespace

const KernelOps kScalarKernelOps = {
    KernelKind::kScalar, "scalar",     DotScalar,
    SgdBlockScalar,      SqErrBlockScalar, ScoreBlockScalar,
};

#ifdef HSGD_HAVE_AVX2
extern const KernelOps kAvx2KernelOps;  // kernels_avx2.cc
#endif
#ifdef HSGD_HAVE_AVX512
extern const KernelOps kAvx512KernelOps;  // kernels_avx512.cc
#endif

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto: return "auto";
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kAvx2: return "avx2";
    case KernelKind::kAvx512: return "avx512";
  }
  return "unknown";
}

StatusOr<KernelKind> KernelKindByName(const std::string& name) {
  for (KernelKind kind : {KernelKind::kAuto, KernelKind::kScalar,
                          KernelKind::kAvx2, KernelKind::kAvx512}) {
    if (name == KernelKindName(kind)) return kind;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown kernel '%s' (expected auto, scalar, avx2 or avx512)",
      name.c_str()));
}

void ScoreBlockBatch(const KernelOps& ops, const float* const* users,
                     int num_users, const float* q, int64_t stride, int k,
                     int32_t first_item, int32_t count, float* out) {
  // One score_block sweep per user over the SAME item tile: the tile's Q
  // rows are pulled from memory by the first user and served from cache
  // to the rest. Delegating to the variant's score_block (rather than a
  // new fused kernel) keeps every batched score bitwise identical to the
  // single-query path for free.
  for (int u = 0; u < num_users; ++u) {
    ops.score_block(users[u], q, stride, k, first_item, count,
                    out + static_cast<int64_t>(u) * count);
  }
}

bool KernelSupported(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
#ifdef HSGD_HAVE_AVX2
      return GetCpuFeatures().avx2_usable();
#else
      return false;
#endif
    case KernelKind::kAvx512:
#ifdef HSGD_HAVE_AVX512
      return GetCpuFeatures().avx512_usable();
#else
      return false;
#endif
  }
  return false;
}

StatusOr<KernelKind> ResolveKernelKind(KernelKind requested) {
  if (requested == KernelKind::kAuto) {
    if (KernelSupported(KernelKind::kAvx512)) return KernelKind::kAvx512;
    if (KernelSupported(KernelKind::kAvx2)) return KernelKind::kAvx2;
    return KernelKind::kScalar;
  }
  if (!KernelSupported(requested)) {
    return Status::InvalidArgument(StrFormat(
        "kernel '%s' is not available on this machine/build "
        "(use --kernel=auto for the best supported variant)",
        KernelKindName(requested)));
  }
  return requested;
}

const KernelOps& GetKernelOps(KernelKind resolved) {
  switch (resolved) {
#ifdef HSGD_HAVE_AVX2
    case KernelKind::kAvx2: return kAvx2KernelOps;
#endif
#ifdef HSGD_HAVE_AVX512
    case KernelKind::kAvx512: return kAvx512KernelOps;
#endif
    default: return kScalarKernelOps;
  }
}

const KernelOps& DefaultKernelOps() {
  static const KernelOps& ops = GetKernelOps(*ResolveKernelKind(KernelKind::kAuto));
  return ops;
}

}  // namespace hsgd
