// Vectorized compute kernels for the three hot primitives of the engine —
// fused dot+SGD-update over a rating block, squared-error reduction, and
// batch dot-scoring — in scalar, AVX2+FMA and (optional) AVX-512F
// variants behind one dispatch table. Every caller that used to hand-roll
// the k-loop (Model::Predict, SgdUpdateBlock{,Hogwild}, Rmse,
// Recommender::TopK) now routes through a KernelOps table; which table is
// picked at runtime from cpuid (util/cpu_features.h), overridable via
// TrainConfig::kernel / the benches' --kernel flag.
//
// Layout contract. The factor matrices are stored stride-padded and
// 64-byte aligned (core/model.h): row r of a rank-k matrix lives at
// `base + r * stride` with `stride == PaddedStride(k)`, and the
// `stride - k` padding lanes are ZERO. Vector kernels exploit both
// properties — they load full SIMD lanes past `k` without masking
// (padding contributes 0 to every dot) and store full lanes back (the
// SGD update maps 0 factors to 0, so padding stays zero). The scalar
// kernels touch exactly `k` lanes with the pre-SIMD loops' accumulation
// order. (One deliberate delta from the old Rmse path: the per-rating
// error is rounded through float before squaring, exactly as the SGD
// kernel computes it — that is what makes the frozen-sweep contract
// below bitwise instead of merely close.)
//
// Within one KernelOps table the same dot-accumulation order is used by
// all four entry points, so e.g. the squared error reported by sgd_block
// at learning rate 0 equals sq_err_block's bitwise. Across tables results
// differ only by float summation order (tested to tolerance in
// kernels_test).

#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"
#include "util/status.h"

namespace hsgd {

/// Factor rows are padded to a multiple of 16 floats (one 64-byte cache
/// line, also the AVX-512 register width), so rows never split lines and
/// every SIMD variant can sweep whole rows.
inline constexpr int kFactorPadFloats = 16;
inline constexpr int kFactorAlignBytes = 64;

constexpr int PaddedStride(int k) {
  return (k + kFactorPadFloats - 1) / kFactorPadFloats * kFactorPadFloats;
}

enum class KernelKind : int32_t {
  kAuto = 0,    // resolve to the best usable variant at startup
  kScalar = 1,  // portable reference baseline
  kAvx2 = 2,    // AVX2 + FMA, 8-float lanes
  kAvx512 = 3,  // AVX-512F, 16-float lanes (guarded: compiled in only
                // when the toolchain supports -mavx512f)
};

const char* KernelKindName(KernelKind kind);
/// "auto", "scalar", "avx2", "avx512" — the --kernel flag vocabulary.
StatusOr<KernelKind> KernelKindByName(const std::string& name);

/// One variant's implementations of the three primitives (plus the single
/// dot product they are all built from). `stride` is the padded row pitch
/// of BOTH factor matrices; `k` the logical rank.
struct KernelOps {
  KernelKind kind = KernelKind::kScalar;
  const char* name = "scalar";

  /// Single dot product p . q over k lanes.
  float (*dot)(const float* p, const float* q, int k);

  /// Sequential fused predict+SGD sweep over ratings[0..n): for each
  /// rating (u, v, r) updates row u of `p` and row v of `q` in place.
  /// Returns the sum of squared pre-update errors.
  double (*sgd_block)(float* p, float* q, int64_t stride, int k,
                      const Rating* ratings, int64_t n, float learning_rate,
                      float lambda_p, float lambda_q);

  /// Squared-error reduction: sum over ratings[0..n) of (r - p_u . q_v)^2.
  double (*sq_err_block)(const float* p, const float* q, int64_t stride,
                         int k, const Rating* ratings, int64_t n);

  /// Batch dot-scoring: out[i] = user . q_{first_item + i} for
  /// i in [0, count). Each score is bitwise equal to dot() on the same
  /// operands, so rankings agree with single-item prediction.
  void (*score_block)(const float* user, const float* q, int64_t stride,
                      int k, int32_t first_item, int32_t count, float* out);
};

/// Multi-user batch scoring over one item tile — the serving layer's
/// entry point into the batch dot-scoring kernel. Scores every user row
/// in `users[0..num_users)` against items [first_item, first_item+count)
/// and writes out[u * count + i] = users[u] . q_{first_item + i}. Each
/// user's row of `out` is bitwise identical to a direct
/// ops.score_block call on the same operands, so batched and per-query
/// rankings agree exactly; the win is cache reuse — the Q tile is swept
/// once per user while it is still resident, so one pass of the factor
/// matrix through memory serves the whole batch.
void ScoreBlockBatch(const KernelOps& ops, const float* const* users,
                     int num_users, const float* q, int64_t stride, int k,
                     int32_t first_item, int32_t count, float* out);

/// Variant is compiled in AND runnable on this CPU.
bool KernelSupported(KernelKind kind);

/// kAuto -> the fastest usable variant (avx512 > avx2 > scalar; AVX-512
/// is only auto-picked where it is compiled in and the OS saves ZMM
/// state). A concrete kind resolves to itself when supported and is an
/// InvalidArgument otherwise — requesting avx2 on a machine without it
/// must fail loudly, not silently retune the engine's numerics.
StatusOr<KernelKind> ResolveKernelKind(KernelKind requested);

/// Dispatch table for a resolved (non-auto, supported) kind.
const KernelOps& GetKernelOps(KernelKind resolved);

/// GetKernelOps(ResolveKernelKind(kAuto)), resolved once and cached —
/// what Model::Predict and the kernel-parameter defaults use.
const KernelOps& DefaultKernelOps();

}  // namespace hsgd
