// AVX2 + FMA kernel variants. This TU is compiled with -mavx2 -mfma and
// linked in only when the build enables HSGD_HAVE_AVX2; the dispatcher
// guarantees its entry points run only on CPUs whose cpuid/XCR0 say the
// instructions are usable.
//
// All loops rely on the padded-zero layout contract (kernels.h): loads
// and stores may cover up to PaddedStride(k) lanes, and the SGD update
// maps zero lanes to zero, so no masking or scalar tails are needed.

#include "core/kernels/kernels.h"

#ifdef HSGD_HAVE_AVX2

#if !defined(__AVX2__) || !defined(__FMA__)
#error "kernels_avx2.cc must be compiled with -mavx2 -mfma"
#endif

#include <immintrin.h>

namespace hsgd {

namespace {

/// Lanes the 8-wide loops sweep for rank k: k rounded up to one vector.
/// Always <= PaddedStride(k), so the extra lanes are in-bounds zeros.
inline int Ceil8(int k) { return (k + 7) & ~7; }

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

/// Four-accumulator FMA dot (breaks the loop-carried add chain four
/// ways, hiding FMA latency). The identical accumulation order is shared
/// by every entry point in this table (see the header's
/// bitwise-agreement contract between sgd_block, sq_err_block and
/// score_block).
inline float DotAvx2(const float* p, const float* q, int k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  const int k32 = k & ~31;
  int i = 0;
  for (; i < k32; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(p + i),
                           _mm256_loadu_ps(q + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(p + i + 8),
                           _mm256_loadu_ps(q + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(p + i + 16),
                           _mm256_loadu_ps(q + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(p + i + 24),
                           _mm256_loadu_ps(q + i + 24), acc3);
  }
  const int kv = Ceil8(k);
  for (; i < kv; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(p + i),
                           _mm256_loadu_ps(q + i), acc0);
  }
  return HorizontalSum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                     _mm256_add_ps(acc2, acc3)));
}

/// Pull the factor rows of an upcoming rating toward L1 while the
/// current update's FMA chains run — the gather pattern is random, so
/// without this the loop stalls on a fresh row-pair miss every rating.
inline void PrefetchRows(const float* pu, const float* qv, int k) {
  for (int i = 0; i < k; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(pu + i), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(qv + i), _MM_HINT_T0);
  }
}

double SgdBlockAvx2(float* p, float* q, int64_t stride, int k,
                    const Rating* ratings, int64_t n, float lr, float lp,
                    float lq) {
  const int kv = Ceil8(k);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vlp = _mm256_set1_ps(lp);
  const __m256 vlq = _mm256_set1_ps(lq);
  double sq_err = 0.0;
  for (int64_t idx = 0; idx < n; ++idx) {
    const Rating& rt = ratings[idx];
    float* pu = p + static_cast<int64_t>(rt.u) * stride;
    float* qv = q + static_cast<int64_t>(rt.v) * stride;
    if (idx + 1 < n) {
      const Rating& next = ratings[idx + 1];
      PrefetchRows(p + static_cast<int64_t>(next.u) * stride,
                   q + static_cast<int64_t>(next.v) * stride, k);
    }
    const float err = rt.r - DotAvx2(pu, qv, k);
    const __m256 verr = _mm256_set1_ps(err);
    for (int i = 0; i < kv; i += 8) {
      const __m256 pi = _mm256_loadu_ps(pu + i);
      const __m256 qi = _mm256_loadu_ps(qv + i);
      // grad_p = err*q - lp*p ; p += lr*grad_p (and symmetrically for q).
      const __m256 gp = _mm256_fmsub_ps(verr, qi, _mm256_mul_ps(vlp, pi));
      const __m256 gq = _mm256_fmsub_ps(verr, pi, _mm256_mul_ps(vlq, qi));
      _mm256_storeu_ps(pu + i, _mm256_fmadd_ps(vlr, gp, pi));
      _mm256_storeu_ps(qv + i, _mm256_fmadd_ps(vlr, gq, qi));
    }
    sq_err += static_cast<double>(err) * err;
  }
  return sq_err;
}

double SqErrBlockAvx2(const float* p, const float* q, int64_t stride,
                      int k, const Rating* ratings, int64_t n) {
  double acc = 0.0;
  for (int64_t idx = 0; idx < n; ++idx) {
    const Rating& rt = ratings[idx];
    if (idx + 1 < n) {
      const Rating& next = ratings[idx + 1];
      PrefetchRows(p + static_cast<int64_t>(next.u) * stride,
                   q + static_cast<int64_t>(next.v) * stride, k);
    }
    // Error in float, matching sgd_block's pre-update error bitwise.
    const float err =
        rt.r - DotAvx2(p + static_cast<int64_t>(rt.u) * stride,
                       q + static_cast<int64_t>(rt.v) * stride, k);
    acc += static_cast<double>(err) * err;
  }
  return acc;
}

void ScoreBlockAvx2(const float* user, const float* q, int64_t stride,
                    int k, int32_t first_item, int32_t count, float* out) {
  for (int32_t i = 0; i < count; ++i) {
    out[i] = DotAvx2(
        user, q + static_cast<int64_t>(first_item + i) * stride, k);
  }
}

}  // namespace

extern const KernelOps kAvx2KernelOps;
const KernelOps kAvx2KernelOps = {
    KernelKind::kAvx2, "avx2",       DotAvx2,
    SgdBlockAvx2,      SqErrBlockAvx2, ScoreBlockAvx2,
};

}  // namespace hsgd

#endif  // HSGD_HAVE_AVX2
