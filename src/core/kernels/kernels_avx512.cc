// AVX-512F kernel variants (guarded: the TU is in the build only when
// the toolchain accepts -mavx512f, and the dispatcher only routes here
// when cpuid + XCR0 report ZMM state usable). The padded stride is
// exactly one 16-float ZMM register, so every row is a whole number of
// vectors — no masks, no tails.

#include "core/kernels/kernels.h"

#ifdef HSGD_HAVE_AVX512

#if !defined(__AVX512F__)
#error "kernels_avx512.cc must be compiled with -mavx512f"
#endif

#include <immintrin.h>

namespace hsgd {

namespace {

inline int Ceil16(int k) { return (k + 15) & ~15; }

/// See kernels_avx2.cc: hide the random row-gather latency by pulling
/// an upcoming rating's rows toward L1 during the current update.
inline void PrefetchRows(const float* pu, const float* qv, int k) {
  for (int i = 0; i < k; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(pu + i), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(qv + i), _MM_HINT_T0);
  }
}

inline float DotAvx512(const float* p, const float* q, int k) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  const int k32 = k & ~31;
  int i = 0;
  for (; i < k32; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(p + i),
                           _mm512_loadu_ps(q + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(p + i + 16),
                           _mm512_loadu_ps(q + i + 16), acc1);
  }
  const int kv = Ceil16(k);
  for (; i < kv; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(p + i),
                           _mm512_loadu_ps(q + i), acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

double SgdBlockAvx512(float* p, float* q, int64_t stride, int k,
                      const Rating* ratings, int64_t n, float lr, float lp,
                      float lq) {
  const int kv = Ceil16(k);
  const __m512 vlr = _mm512_set1_ps(lr);
  const __m512 vlp = _mm512_set1_ps(lp);
  const __m512 vlq = _mm512_set1_ps(lq);
  double sq_err = 0.0;
  for (int64_t idx = 0; idx < n; ++idx) {
    const Rating& rt = ratings[idx];
    float* pu = p + static_cast<int64_t>(rt.u) * stride;
    float* qv = q + static_cast<int64_t>(rt.v) * stride;
    if (idx + 1 < n) {
      const Rating& next = ratings[idx + 1];
      PrefetchRows(p + static_cast<int64_t>(next.u) * stride,
                   q + static_cast<int64_t>(next.v) * stride, k);
    }
    const float err = rt.r - DotAvx512(pu, qv, k);
    const __m512 verr = _mm512_set1_ps(err);
    for (int i = 0; i < kv; i += 16) {
      const __m512 pi = _mm512_loadu_ps(pu + i);
      const __m512 qi = _mm512_loadu_ps(qv + i);
      const __m512 gp = _mm512_fmsub_ps(verr, qi, _mm512_mul_ps(vlp, pi));
      const __m512 gq = _mm512_fmsub_ps(verr, pi, _mm512_mul_ps(vlq, qi));
      _mm512_storeu_ps(pu + i, _mm512_fmadd_ps(vlr, gp, pi));
      _mm512_storeu_ps(qv + i, _mm512_fmadd_ps(vlr, gq, qi));
    }
    sq_err += static_cast<double>(err) * err;
  }
  return sq_err;
}

double SqErrBlockAvx512(const float* p, const float* q, int64_t stride,
                        int k, const Rating* ratings, int64_t n) {
  double acc = 0.0;
  for (int64_t idx = 0; idx < n; ++idx) {
    const Rating& rt = ratings[idx];
    if (idx + 1 < n) {
      const Rating& next = ratings[idx + 1];
      PrefetchRows(p + static_cast<int64_t>(next.u) * stride,
                   q + static_cast<int64_t>(next.v) * stride, k);
    }
    // Error in float, matching sgd_block's pre-update error bitwise.
    const float err =
        rt.r - DotAvx512(p + static_cast<int64_t>(rt.u) * stride,
                         q + static_cast<int64_t>(rt.v) * stride, k);
    acc += static_cast<double>(err) * err;
  }
  return acc;
}

void ScoreBlockAvx512(const float* user, const float* q, int64_t stride,
                      int k, int32_t first_item, int32_t count,
                      float* out) {
  for (int32_t i = 0; i < count; ++i) {
    out[i] = DotAvx512(
        user, q + static_cast<int64_t>(first_item + i) * stride, k);
  }
}

}  // namespace

extern const KernelOps kAvx512KernelOps;
const KernelOps kAvx512KernelOps = {
    KernelKind::kAvx512, "avx512",       DotAvx512,
    SgdBlockAvx512,      SqErrBlockAvx512, ScoreBlockAvx512,
};

}  // namespace hsgd

#endif  // HSGD_HAVE_AVX512
