#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/parallel_reduce.h"

namespace hsgd {

Model::Model(int32_t num_rows, int32_t num_cols, int k)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      k_(k),
      stride_(PaddedStride(k)),
      p_(AllocateAlignedFloats(static_cast<size_t>(num_rows) * stride_)),
      q_(AllocateAlignedFloats(static_cast<size_t>(num_cols) * stride_)) {}

namespace {

// Shared by InitRandom and Grow so cold-start rows added later draw from
// the same range a fresh init would have used.
float InitRange(int k, double mean_rating) {
  if (mean_rating < 0.0) mean_rating = 0.0;
  float hi = 2.0f * std::sqrt(static_cast<float>(mean_rating) / k);
  if (!(hi > 0.0f)) {
    // An all-zero init can never train: every gradient is zero. Seed the
    // factors with a small positive range instead.
    constexpr float kInitFloor = 0.1f;
    HSGD_LOG(Warning) << "InitRandom: mean rating " << mean_rating
                      << " gives a degenerate init range; clamping to ["
                      << 0.0f << ", " << kInitFloor << ")";
    hi = kInitFloor;
  }
  return hi;
}

}  // namespace

void Model::InitRandom(Rng* rng, double mean_rating) {
  const float hi = InitRange(k_, mean_rating);
  // Fill only the logical k lanes of each row — the padding must stay
  // zero — drawing in the same row-major order as the dense layout so
  // seeds reproduce the same factors at any stride.
  for (int32_t u = 0; u < num_rows_; ++u) {
    float* row = Row(u);
    for (int i = 0; i < k_; ++i) row[i] = rng->NextFloat() * hi;
  }
  for (int32_t v = 0; v < num_cols_; ++v) {
    float* col = Col(v);
    for (int i = 0; i < k_; ++i) col[i] = rng->NextFloat() * hi;
  }
}

void Model::Grow(int32_t new_rows, int32_t new_cols, Rng* rng,
                 double mean_rating) {
  HSGD_CHECK(new_rows >= num_rows_ && new_cols >= num_cols_);
  if (new_rows == num_rows_ && new_cols == num_cols_) return;
  const float hi = InitRange(k_, mean_rating);
  // AllocateAlignedFloats zero-fills, so the padding lanes of the new
  // rows hold the kernel invariant without an explicit pass; only the k
  // logical lanes of each cold row are drawn. Rows first, then cols, in
  // the same order InitRandom fills, so growth consumes the rng stream
  // deterministically.
  if (new_rows > num_rows_) {
    AlignedFloatPtr grown =
        AllocateAlignedFloats(static_cast<size_t>(new_rows) * stride_);
    std::memcpy(grown.get(), p_.get(), sizeof(float) * p_size());
    for (int32_t u = num_rows_; u < new_rows; ++u) {
      float* row = grown.get() + static_cast<int64_t>(u) * stride_;
      for (int i = 0; i < k_; ++i) row[i] = rng->NextFloat() * hi;
    }
    p_ = std::move(grown);
    num_rows_ = new_rows;
  }
  if (new_cols > num_cols_) {
    AlignedFloatPtr grown =
        AllocateAlignedFloats(static_cast<size_t>(new_cols) * stride_);
    std::memcpy(grown.get(), q_.get(), sizeof(float) * q_size());
    for (int32_t v = num_cols_; v < new_cols; ++v) {
      float* col = grown.get() + static_cast<int64_t>(v) * stride_;
      for (int i = 0; i < k_; ++i) col[i] = rng->NextFloat() * hi;
    }
    q_ = std::move(grown);
    num_cols_ = new_cols;
  }
}

float Model::Predict(int32_t u, int32_t v, const KernelOps* ops) const {
  const KernelOps& kernel = ops != nullptr ? *ops : DefaultKernelOps();
  return kernel.dot(Row(u), Col(v), k_);
}

std::vector<float> Model::DenseP() const {
  std::vector<float> dense(dense_p_size());
  for (int32_t u = 0; u < num_rows_; ++u) {
    std::memcpy(dense.data() + static_cast<size_t>(u) * k_, Row(u),
                sizeof(float) * static_cast<size_t>(k_));
  }
  return dense;
}

std::vector<float> Model::DenseQ() const {
  std::vector<float> dense(dense_q_size());
  for (int32_t v = 0; v < num_cols_; ++v) {
    std::memcpy(dense.data() + static_cast<size_t>(v) * k_, Col(v),
                sizeof(float) * static_cast<size_t>(k_));
  }
  return dense;
}

void Model::SetDense(const std::vector<float>& p,
                     const std::vector<float>& q) {
  HSGD_CHECK(p.size() == dense_p_size() && q.size() == dense_q_size());
  std::memset(p_.get(), 0, sizeof(float) * p_size());
  std::memset(q_.get(), 0, sizeof(float) * q_size());
  for (int32_t u = 0; u < num_rows_; ++u) {
    std::memcpy(Row(u), p.data() + static_cast<size_t>(u) * k_,
                sizeof(float) * static_cast<size_t>(k_));
  }
  for (int32_t v = 0; v < num_cols_; ++v) {
    std::memcpy(Col(v), q.data() + static_cast<size_t>(v) * k_,
                sizeof(float) * static_cast<size_t>(k_));
  }
}

namespace {

inline const KernelOps& Resolve(const KernelOps* ops) {
  return ops != nullptr ? *ops : DefaultKernelOps();
}

}  // namespace

double SgdUpdateBlock(Model* model, const Ratings& block, SgdHyper hyper,
                      const KernelOps* ops) {
  const KernelOps& kernel = Resolve(ops);
  return kernel.sgd_block(model->p_data(), model->q_data(),
                          model->stride(), model->k(), block.data(),
                          static_cast<int64_t>(block.size()),
                          hyper.learning_rate, hyper.lambda_p,
                          hyper.lambda_q);
}

double SgdUpdateBlockHogwild(Model* model, const Ratings& block,
                             SgdHyper hyper, ThreadPool* pool,
                             const KernelOps* ops) {
  if (pool == nullptr || pool->size() == 0) {
    return SgdUpdateBlock(model, block, hyper, ops);
  }
  const KernelOps& kernel = Resolve(ops);
  const int64_t n = static_cast<int64_t>(block.size());
  return ParallelReduce(pool, n, /*grain=*/8192, [&](int64_t lo,
                                                     int64_t hi) {
    return kernel.sgd_block(model->p_data(), model->q_data(),
                            model->stride(), model->k(), block.data() + lo,
                            hi - lo, hyper.learning_rate, hyper.lambda_p,
                            hyper.lambda_q);
  });
}

double Rmse(const Model& model, const Ratings& ratings, ThreadPool* pool,
            const KernelOps* ops) {
  const int64_t n = static_cast<int64_t>(ratings.size());
  if (n == 0) return 0.0;
  const KernelOps& kernel = Resolve(ops);
  const double sq_err =
      ParallelReduce(pool, n, /*grain=*/65536, [&](int64_t lo, int64_t hi) {
        return kernel.sq_err_block(model.p_data(), model.q_data(),
                                   model.stride(), model.k(),
                                   ratings.data() + lo, hi - lo);
      });
  return std::sqrt(sq_err / static_cast<double>(n));
}

}  // namespace hsgd
