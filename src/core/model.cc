#include "core/model.h"

#include <algorithm>
#include <cmath>

namespace hsgd {

Model::Model(int32_t num_rows, int32_t num_cols, int k)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      k_(k),
      p_(static_cast<size_t>(num_rows) * k, 0.0f),
      q_(static_cast<size_t>(num_cols) * k, 0.0f) {}

void Model::InitRandom(Rng* rng, double mean_rating) {
  if (mean_rating < 0.0) mean_rating = 0.0;
  const float hi =
      2.0f * std::sqrt(static_cast<float>(mean_rating) / k_);
  for (float& x : p_) x = rng->NextFloat() * hi;
  for (float& x : q_) x = rng->NextFloat() * hi;
}

float Model::Predict(int32_t u, int32_t v) const {
  const float* p = Row(u);
  const float* q = Col(v);
  float acc = 0.0f;
  for (int i = 0; i < k_; ++i) acc += p[i] * q[i];
  return acc;
}

namespace {

/// The inner update shared by the sequential and Hogwild kernels.
/// Returns the squared pre-update error.
inline double UpdateOne(float* __restrict p, float* __restrict q, int k,
                        float r, SgdHyper hyper) {
  float dot = 0.0f;
  for (int i = 0; i < k; ++i) dot += p[i] * q[i];
  const float err = r - dot;
  const float lr = hyper.learning_rate;
  const float lp = hyper.lambda_p;
  const float lq = hyper.lambda_q;
  for (int i = 0; i < k; ++i) {
    const float pi = p[i];
    const float qi = q[i];
    p[i] = pi + lr * (err * qi - lp * pi);
    q[i] = qi + lr * (err * pi - lq * qi);
  }
  return static_cast<double>(err) * err;
}

}  // namespace

double SgdUpdateBlock(Model* model, const Ratings& block, SgdHyper hyper) {
  const int k = model->k();
  double sq_err = 0.0;
  for (const Rating& rt : block) {
    sq_err += UpdateOne(model->Row(rt.u), model->Col(rt.v), k, rt.r, hyper);
  }
  return sq_err;
}

double SgdUpdateBlockHogwild(Model* model, const Ratings& block,
                             SgdHyper hyper, ThreadPool* pool) {
  if (pool == nullptr || pool->size() == 0) {
    return SgdUpdateBlock(model, block, hyper);
  }
  const int k = model->k();
  const int64_t n = static_cast<int64_t>(block.size());
  const int64_t grain = 8192;
  const int64_t num_chunks = (n + grain - 1) / grain;
  std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
  pool->ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      const Rating& rt = block[static_cast<size_t>(i)];
      acc += UpdateOne(model->Row(rt.u), model->Col(rt.v), k, rt.r, hyper);
    }
    partial[static_cast<size_t>(lo / grain)] = acc;
  });
  double sq_err = 0.0;
  for (double x : partial) sq_err += x;
  return sq_err;
}

double Rmse(const Model& model, const Ratings& ratings, ThreadPool* pool) {
  const int64_t n = static_cast<int64_t>(ratings.size());
  if (n == 0) return 0.0;
  const int k = model.k();
  const int64_t grain = 65536;
  const int64_t num_chunks = (n + grain - 1) / grain;
  std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
  auto eval_chunk = [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      const Rating& rt = ratings[static_cast<size_t>(i)];
      const float* p = model.Row(rt.u);
      const float* q = model.Col(rt.v);
      float dot = 0.0f;
      for (int j = 0; j < k; ++j) dot += p[j] * q[j];
      const double err = static_cast<double>(rt.r) - dot;
      acc += err * err;
    }
    partial[static_cast<size_t>(lo / grain)] = acc;
  };
  if (pool != nullptr && pool->size() > 0) {
    pool->ParallelFor(0, n, grain, eval_chunk);
  } else {
    for (int64_t lo = 0; lo < n; lo += grain) {
      eval_chunk(lo, std::min(lo + grain, n));
    }
  }
  // Fixed-order reduction => identical result for any pool size.
  double sq_err = 0.0;
  for (double x : partial) sq_err += x;
  return std::sqrt(sq_err / static_cast<double>(n));
}

}  // namespace hsgd
