// Factor model P (rows x k) and Q (cols x k) plus the real SGD and RMSE
// kernels. These are genuine compute kernels — the simulator decides *when*
// a block runs and how long it takes in virtual time, but the arithmetic
// applied to the factors is the real thing, so loss curves are honest.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsgd {

class Model {
 public:
  Model(int32_t num_rows, int32_t num_cols, int k);

  /// Initialize entries uniform in [0, 2*sqrt(mean_rating/k)) so the
  /// initial prediction is centered on the mean rating.
  void InitRandom(Rng* rng, double mean_rating);

  int32_t num_rows() const { return num_rows_; }
  int32_t num_cols() const { return num_cols_; }
  int k() const { return k_; }

  float* Row(int32_t u) { return &p_[static_cast<size_t>(u) * k_]; }
  const float* Row(int32_t u) const {
    return &p_[static_cast<size_t>(u) * k_];
  }
  float* Col(int32_t v) { return &q_[static_cast<size_t>(v) * k_]; }
  const float* Col(int32_t v) const {
    return &q_[static_cast<size_t>(v) * k_];
  }

  float Predict(int32_t u, int32_t v) const;

  /// Contiguous row-major factor storage (num_rows*k / num_cols*k floats)
  /// for bulk serialization; use Row()/Col() for per-entity access.
  const float* p_data() const { return p_.data(); }
  float* p_data() { return p_.data(); }
  const float* q_data() const { return q_.data(); }
  float* q_data() { return q_.data(); }
  size_t p_size() const { return p_.size(); }
  size_t q_size() const { return q_.size(); }

 private:
  int32_t num_rows_;
  int32_t num_cols_;
  int k_;
  std::vector<float> p_;
  std::vector<float> q_;
};

struct SgdHyper {
  float learning_rate = 0.005f;
  float lambda_p = 0.05f;
  float lambda_q = 0.05f;
};

/// One sequential SGD sweep over `block`; returns the pre-update sum of
/// squared errors (free by-product of the updates).
double SgdUpdateBlock(Model* model, const Ratings& block, SgdHyper hyper);

/// Lock-free parallel sweep in Hogwild style: threads race on shared
/// factors, which is statistically fine for sparse blocks. Not
/// bit-reproducible across pool sizes — the simulator uses the sequential
/// kernel where determinism matters.
double SgdUpdateBlockHogwild(Model* model, const Ratings& block,
                             SgdHyper hyper, ThreadPool* pool);

/// Root mean squared prediction error over `ratings`. Deterministic for a
/// given input regardless of pool size (fixed-grain chunking, in-order
/// reduction). `pool` may be null for serial evaluation.
double Rmse(const Model& model, const Ratings& ratings, ThreadPool* pool);

}  // namespace hsgd
