// Factor model P (rows x k) and Q (cols x k) plus the real SGD and RMSE
// kernels. These are genuine compute kernels — the simulator decides *when*
// a block runs and how long it takes in virtual time, but the arithmetic
// applied to the factors is the real thing, so loss curves are honest.
//
// Storage is SIMD-friendly: each factor row occupies PaddedStride(k)
// floats (k rounded up to a 64-byte cache line) in a 64-byte-aligned
// allocation, and the padding lanes are zero — an invariant InitRandom
// establishes and every kernel preserves (see core/kernels/kernels.h for
// why that lets vector loops sweep whole rows unmasked). Use Row()/Col()
// for per-entity access; only the first k lanes of a row are meaningful.

#pragma once

#include <cstdint>
#include <vector>

#include "core/kernels/kernels.h"
#include "core/types.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsgd {

class Model {
 public:
  Model(int32_t num_rows, int32_t num_cols, int k);

  /// Initialize entries uniform in [0, hi) with hi = 2*sqrt(mean/k) so the
  /// initial prediction is centered on the mean rating. A degenerate mean
  /// (<= 0, e.g. an all-zero rating dump) would make hi == 0 and freeze
  /// training at the all-zero saddle point; it is clamped to a small
  /// positive floor instead, with a warning.
  void InitRandom(Rng* rng, double mean_rating);

  /// Grow to `new_rows` x `new_cols` (each must be >= the current dim).
  /// Existing factor rows are copied bit-identically into fresh aligned
  /// storage with the same PaddedStride pitch; new rows/cols are drawn
  /// from `rng` with the same [0, hi) range InitRandom would use for
  /// `mean_rating`, so cold entities start statistically like warm ones
  /// did. Padding lanes of every row — old and new — stay zero. Invalidates
  /// all Row()/Col()/p_data()/q_data() pointers.
  void Grow(int32_t new_rows, int32_t new_cols, Rng* rng,
            double mean_rating);

  int32_t num_rows() const { return num_rows_; }
  int32_t num_cols() const { return num_cols_; }
  int k() const { return k_; }
  /// Padded row pitch in floats (PaddedStride(k)); the distance between
  /// consecutive Row()/Col() pointers.
  int stride() const { return stride_; }

  float* Row(int32_t u) {
    return p_.get() + static_cast<int64_t>(u) * stride_;
  }
  const float* Row(int32_t u) const {
    return p_.get() + static_cast<int64_t>(u) * stride_;
  }
  float* Col(int32_t v) {
    return q_.get() + static_cast<int64_t>(v) * stride_;
  }
  const float* Col(int32_t v) const {
    return q_.get() + static_cast<int64_t>(v) * stride_;
  }

  /// p_u . q_v through `ops` (null = the auto-dispatched default). Pass
  /// the same ops as the surrounding Session/Recommender when the kernel
  /// is pinned away from the default — each variant's dot is bitwise
  /// consistent with its own score_block, but not across variants.
  float Predict(int32_t u, int32_t v, const KernelOps* ops = nullptr) const;

  /// Raw padded storage (num_rows*stride / num_cols*stride floats,
  /// 64-byte aligned). Kernels index it as base + row*stride.
  const float* p_data() const { return p_.get(); }
  float* p_data() { return p_.get(); }
  const float* q_data() const { return q_.get(); }
  float* q_data() { return q_.get(); }
  size_t p_size() const {
    return static_cast<size_t>(num_rows_) * stride_;
  }
  size_t q_size() const {
    return static_cast<size_t>(num_cols_) * stride_;
  }

  /// Dense (stride-free, num_rows*k / num_cols*k) factor copies for
  /// serialization — checkpoints store factors without the SIMD padding,
  /// so their size and layout do not depend on the kernel build.
  std::vector<float> DenseP() const;
  std::vector<float> DenseQ() const;
  /// Inverse of DenseP/DenseQ; `p` and `q` must be exactly
  /// num_rows*k / num_cols*k floats. Re-zeroes the padding lanes.
  void SetDense(const std::vector<float>& p, const std::vector<float>& q);
  size_t dense_p_size() const {
    return static_cast<size_t>(num_rows_) * k_;
  }
  size_t dense_q_size() const {
    return static_cast<size_t>(num_cols_) * k_;
  }

 private:
  int32_t num_rows_;
  int32_t num_cols_;
  int k_;
  int stride_;
  AlignedFloatPtr p_;
  AlignedFloatPtr q_;
};

struct SgdHyper {
  float learning_rate = 0.005f;
  float lambda_p = 0.05f;
  float lambda_q = 0.05f;
};

/// One sequential SGD sweep over `block`; returns the pre-update sum of
/// squared errors (free by-product of the updates). `ops` selects the
/// kernel variant; null means the auto-dispatched default.
double SgdUpdateBlock(Model* model, const Ratings& block, SgdHyper hyper,
                      const KernelOps* ops = nullptr);

/// Lock-free parallel sweep in Hogwild style: threads race on shared
/// factors, which is statistically fine for sparse blocks. Not
/// bit-reproducible across pool sizes — the simulator uses the sequential
/// kernel where determinism matters.
double SgdUpdateBlockHogwild(Model* model, const Ratings& block,
                             SgdHyper hyper, ThreadPool* pool,
                             const KernelOps* ops = nullptr);

/// Root mean squared prediction error over `ratings`. Deterministic for a
/// given input regardless of pool size (fixed-grain chunking, in-order
/// reduction via util::ParallelReduce). `pool` may be null for serial
/// evaluation.
double Rmse(const Model& model, const Ratings& ratings, ThreadPool* pool,
            const KernelOps* ops = nullptr);

}  // namespace hsgd
