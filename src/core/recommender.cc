#include "core/recommender.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace hsgd {

RatedIndex RatedIndex::Build(const Ratings& rated, int32_t num_users,
                             int32_t num_items) {
  RatedIndex index;
  // Counting sort into CSR: one pass for per-user counts, one to place.
  index.offsets.assign(static_cast<size_t>(num_users) + 1, 0);
  for (const Rating& r : rated) {
    if (r.u < 0 || r.u >= num_users || r.v < 0 || r.v >= num_items) {
      continue;
    }
    ++index.offsets[static_cast<size_t>(r.u) + 1];
  }
  for (size_t u = 1; u < index.offsets.size(); ++u) {
    index.offsets[u] += index.offsets[u - 1];
  }
  index.items.resize(static_cast<size_t>(index.offsets.back()));
  std::vector<int64_t> cursor(index.offsets.begin(),
                              index.offsets.end() - 1);
  for (const Rating& r : rated) {
    if (r.u < 0 || r.u >= num_users || r.v < 0 || r.v >= num_items) {
      continue;
    }
    index.items[static_cast<size_t>(cursor[static_cast<size_t>(r.u)]++)] =
        r.v;
  }
  // Sort each user's list and drop duplicate (u, v) observations, so
  // NumRated reports distinct items and matches what TopK excludes.
  size_t write = 0;
  int64_t read_begin = 0;
  for (int32_t u = 0; u < num_users; ++u) {
    const int64_t read_end = index.offsets[static_cast<size_t>(u) + 1];
    std::sort(index.items.begin() + read_begin,
              index.items.begin() + read_end);
    const size_t unique_begin = write;
    for (int64_t i = read_begin; i < read_end; ++i) {
      const int32_t item = index.items[static_cast<size_t>(i)];
      if (write == unique_begin || index.items[write - 1] != item) {
        index.items[write++] = item;
      }
    }
    read_begin = read_end;
    index.offsets[static_cast<size_t>(u) + 1] =
        static_cast<int64_t>(write);
  }
  index.items.resize(write);
  return index;
}

int64_t RatedIndex::NumRated(int32_t user) const {
  if (user < 0 || user >= num_users()) return 0;
  return offsets[static_cast<size_t>(user) + 1] -
         offsets[static_cast<size_t>(user)];
}

TopKAccumulator::TopKAccumulator(int k, const int32_t* excl_begin,
                                 const int32_t* excl_end)
    : k_(k), excl_cursor_(excl_begin), excl_end_(excl_end) {
  HSGD_CHECK(k > 0);
  heap_.reserve(static_cast<size_t>(k));
}

void TopKAccumulator::Consume(int32_t tile_begin, int32_t count,
                              const float* scores) {
  for (int32_t i = 0; i < count; ++i) {
    const int32_t v = tile_begin + i;
    // The exclusion list is sorted, so one forward cursor skips rated
    // items in O(1) amortized instead of a per-item binary search.
    while (excl_cursor_ != excl_end_ && *excl_cursor_ < v) {
      ++excl_cursor_;
    }
    if (excl_cursor_ != excl_end_ && *excl_cursor_ == v) {
      continue;
    }
    const ScoredItem candidate{v, scores[static_cast<size_t>(i)]};
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), Better);
    } else if (Better(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Better);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), Better);
    }
  }
}

std::vector<ScoredItem> TopKAccumulator::Finish() {
  // Pop the heap (worst first) into the result back-to-front.
  std::vector<ScoredItem> result(heap_.size());
  for (size_t i = result.size(); i-- > 0;) {
    std::pop_heap(heap_.begin(), heap_.end(), Better);
    result[i] = heap_.back();
    heap_.pop_back();
  }
  return result;
}

Recommender::Recommender(const Model* model, const Ratings& rated,
                         const KernelOps* ops)
    : model_(model), ops_(ops != nullptr ? ops : &DefaultKernelOps()) {
  HSGD_CHECK(model != nullptr);
  rated_ = RatedIndex::Build(rated, model_->num_rows(), model_->num_cols());
}

StatusOr<std::vector<ScoredItem>> Recommender::TopK(int32_t user,
                                                    int k) const {
  std::vector<float> scores;
  return TopK(user, k, &scores);
}

StatusOr<std::vector<ScoredItem>> Recommender::TopK(
    int32_t user, int k, std::vector<float>* score_buffer) const {
  if (user < 0 || user >= model_->num_rows()) {
    return Status::InvalidArgument(
        StrFormat("user %d out of range [0, %d)", user,
                  model_->num_rows()));
  }
  if (k <= 0) {
    return Status::InvalidArgument(StrFormat("k must be positive, got %d",
                                             k));
  }
  const int32_t num_items = model_->num_cols();
  const float* p = model_->Row(user);

  // Score the catalog in tiles through the batch dot-scoring kernel (one
  // indirect call per tile, SIMD inside), then feed each tile to the
  // shared accumulator. Scoring a rated item and discarding it is cheaper
  // than breaking the batch around it.
  if (score_buffer->size() < static_cast<size_t>(kTopKTile)) {
    score_buffer->resize(static_cast<size_t>(kTopKTile));
  }
  TopKAccumulator acc(k, rated_.Begin(user), rated_.End(user));
  for (int32_t tile_begin = 0; tile_begin < num_items;
       tile_begin += kTopKTile) {
    const int32_t count = std::min(kTopKTile, num_items - tile_begin);
    ops_->score_block(p, model_->q_data(), model_->stride(), model_->k(),
                      tile_begin, count, score_buffer->data());
    acc.Consume(tile_begin, count, score_buffer->data());
  }
  return acc.Finish();
}

}  // namespace hsgd
