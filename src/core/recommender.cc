#include "core/recommender.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"
#include "util/strings.h"

namespace hsgd {

Recommender::Recommender(const Model* model, const Ratings& rated,
                         const KernelOps* ops)
    : model_(model), ops_(ops != nullptr ? ops : &DefaultKernelOps()) {
  HSGD_CHECK(model != nullptr);
  const int32_t num_users = model_->num_rows();
  const int32_t num_items = model_->num_cols();
  // Counting sort into CSR: one pass for per-user counts, one to place.
  rated_offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
  for (const Rating& r : rated) {
    if (r.u < 0 || r.u >= num_users || r.v < 0 || r.v >= num_items) {
      continue;
    }
    ++rated_offsets_[static_cast<size_t>(r.u) + 1];
  }
  for (size_t u = 1; u < rated_offsets_.size(); ++u) {
    rated_offsets_[u] += rated_offsets_[u - 1];
  }
  rated_items_.resize(static_cast<size_t>(rated_offsets_.back()));
  std::vector<int64_t> cursor(rated_offsets_.begin(),
                              rated_offsets_.end() - 1);
  for (const Rating& r : rated) {
    if (r.u < 0 || r.u >= num_users || r.v < 0 || r.v >= num_items) {
      continue;
    }
    rated_items_[static_cast<size_t>(cursor[static_cast<size_t>(r.u)]++)] =
        r.v;
  }
  // Sort each user's list and drop duplicate (u, v) observations, so
  // NumRated reports distinct items and matches what TopK excludes.
  size_t write = 0;
  int64_t read_begin = 0;
  for (int32_t u = 0; u < num_users; ++u) {
    const int64_t read_end = rated_offsets_[static_cast<size_t>(u) + 1];
    std::sort(rated_items_.begin() + read_begin,
              rated_items_.begin() + read_end);
    const size_t unique_begin = write;
    for (int64_t i = read_begin; i < read_end; ++i) {
      const int32_t item = rated_items_[static_cast<size_t>(i)];
      if (write == unique_begin || rated_items_[write - 1] != item) {
        rated_items_[write++] = item;
      }
    }
    read_begin = read_end;
    rated_offsets_[static_cast<size_t>(u) + 1] =
        static_cast<int64_t>(write);
  }
  rated_items_.resize(write);
}

int64_t Recommender::NumRated(int32_t user) const {
  if (user < 0 || user >= model_->num_rows()) return 0;
  return rated_offsets_[static_cast<size_t>(user) + 1] -
         rated_offsets_[static_cast<size_t>(user)];
}

StatusOr<std::vector<ScoredItem>> Recommender::TopK(int32_t user,
                                                    int k) const {
  if (user < 0 || user >= model_->num_rows()) {
    return Status::InvalidArgument(
        StrFormat("user %d out of range [0, %d)", user,
                  model_->num_rows()));
  }
  if (k <= 0) {
    return Status::InvalidArgument(StrFormat("k must be positive, got %d",
                                             k));
  }
  const int32_t num_items = model_->num_cols();
  const float* p = model_->Row(user);

  // better(a, b): a outranks b — higher score, ties to the smaller item
  // id for determinism. Used as the heap comparator, it keeps the WORST
  // retained candidate on top, so a better score evicts it in O(log k).
  auto better = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };
  std::priority_queue<ScoredItem, std::vector<ScoredItem>,
                      decltype(better)>
      heap(better);

  const int64_t rated_begin = rated_offsets_[static_cast<size_t>(user)];
  const int64_t rated_end = rated_offsets_[static_cast<size_t>(user) + 1];
  int64_t rated_cursor = rated_begin;
  // Score the catalog in tiles through the batch dot-scoring kernel (one
  // indirect call per tile, SIMD inside), then walk each tile with the
  // exclusion cursor. Scoring a rated item and discarding it is cheaper
  // than breaking the batch around it.
  constexpr int32_t kTile = 1024;
  std::vector<float> scores(static_cast<size_t>(
      std::min(kTile, std::max<int32_t>(num_items, 1))));
  for (int32_t tile_begin = 0; tile_begin < num_items;
       tile_begin += kTile) {
    const int32_t count = std::min(kTile, num_items - tile_begin);
    ops_->score_block(p, model_->q_data(), model_->stride(), model_->k(),
                      tile_begin, count, scores.data());
    for (int32_t i = 0; i < count; ++i) {
      const int32_t v = tile_begin + i;
      // The exclusion list is sorted, so one forward cursor skips rated
      // items in O(1) amortized instead of a per-item binary search.
      while (rated_cursor < rated_end &&
             rated_items_[static_cast<size_t>(rated_cursor)] < v) {
        ++rated_cursor;
      }
      if (rated_cursor < rated_end &&
          rated_items_[static_cast<size_t>(rated_cursor)] == v) {
        continue;
      }
      const float score = scores[static_cast<size_t>(i)];
      if (static_cast<int>(heap.size()) < k) {
        heap.push({v, score});
      } else if (better(ScoredItem{v, score}, heap.top())) {
        heap.pop();
        heap.push({v, score});
      }
    }
  }

  std::vector<ScoredItem> result(heap.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = heap.top();
    heap.pop();
  }
  return result;
}

}  // namespace hsgd
