// Serving facade over trained factors: top-k item retrieval for a user,
// excluding the items the user already rated. This is the query half of
// the ROADMAP's serving path — a shardable server wraps this class; the
// scoring itself has no dependency on the trainer or the simulators.
//
// The recommender borrows the model (e.g. a live Session's `model()`, or
// one restored from a checkpoint) and indexes the exclusion set once at
// construction; TopK itself is read-only and safe to call from many
// threads concurrently.

#pragma once

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "core/types.h"
#include "util/status.h"

namespace hsgd {

struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;
};

class Recommender {
 public:
  /// `model` is borrowed and must outlive the recommender. `rated` lists
  /// the known (user, item) interactions to exclude from results —
  /// typically the training ratings; entries outside the model's
  /// dimensions are ignored. `ops` selects the scoring kernel variant
  /// (batch dot-scoring over the aligned factor tiles); null means the
  /// auto-dispatched default.
  Recommender(const Model* model, const Ratings& rated,
              const KernelOps* ops = nullptr);

  /// The `k` highest-scoring items for `user` (score = p_u . q_v),
  /// excluding items the user already rated. Sorted by descending score;
  /// equal scores break ties by ascending item id, so results are
  /// deterministic. Returns fewer than `k` items when the catalog minus
  /// the exclusions is smaller. InvalidArgument for an out-of-range user
  /// or non-positive k.
  StatusOr<std::vector<ScoredItem>> TopK(int32_t user, int k) const;

  int32_t num_users() const { return model_->num_rows(); }
  int32_t num_items() const { return model_->num_cols(); }
  /// Items `user` has rated (the exclusion set), sorted ascending.
  int64_t NumRated(int32_t user) const;

 private:
  const Model* model_;
  const KernelOps* ops_;
  /// CSR-style per-user exclusion lists: items of user u live in
  /// rated_items_[rated_offsets_[u] .. rated_offsets_[u + 1]), sorted.
  std::vector<int64_t> rated_offsets_;
  std::vector<int32_t> rated_items_;
};

}  // namespace hsgd
