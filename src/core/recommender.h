// Serving facade over trained factors: top-k item retrieval for a user,
// excluding the items the user already rated. This is the query half of
// the ROADMAP's serving path — serve/ wraps this machinery in a
// concurrent server; the scoring itself has no dependency on the trainer
// or the simulators.
//
// The recommender borrows the model (e.g. a live Session's `model()`, or
// one restored from a checkpoint) and indexes the exclusion set once at
// construction; TopK itself is read-only and safe to call from many
// threads concurrently.
//
// The building blocks are exposed so the serving batch path produces
// bit-identical rankings: RatedIndex is the CSR exclusion set a
// FactorSnapshot copies, and TopKAccumulator is the tile-walk + bounded
// heap every TopK variant (facade, snapshot, batched) feeds.

#pragma once

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "core/types.h"
#include "util/status.h"

namespace hsgd {

struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;
};

/// The item-tile width every TopK variant scores through score_block.
/// Shared so the batched path consumes scores in exactly the facade's
/// tile order (bitwise-identical results, and a tile of Q rows stays
/// cache-resident across a batch).
inline constexpr int32_t kTopKTile = 1024;

/// CSR-style per-user exclusion lists: items of user u live in
/// items[offsets[u] .. offsets[u + 1]), sorted ascending, duplicates
/// collapsed. Entries outside [0, num_users) x [0, num_items) are
/// dropped. Built once, then shared read-only by any number of queries.
struct RatedIndex {
  std::vector<int64_t> offsets;
  std::vector<int32_t> items;

  static RatedIndex Build(const Ratings& rated, int32_t num_users,
                          int32_t num_items);

  int32_t num_users() const {
    return static_cast<int32_t>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  /// Distinct items `user` has rated; 0 for out-of-range users.
  int64_t NumRated(int32_t user) const;
  const int32_t* Begin(int32_t user) const {
    return items.data() + offsets[static_cast<size_t>(user)];
  }
  const int32_t* End(int32_t user) const {
    return items.data() + offsets[static_cast<size_t>(user) + 1];
  }
};

/// Streaming top-k selection for ONE query: feed each scored item tile in
/// ascending-item order via Consume, then Finish for the ranked result.
/// Skips the query's sorted exclusion list with a forward cursor, keeps
/// the best k candidates in a bounded heap, and breaks score ties toward
/// the smaller item id — the exact selection logic of Recommender::TopK,
/// factored out so the serving batch path (tiles interleaved across many
/// queries) cannot drift from the facade (tiles of one query in a row).
class TopKAccumulator {
 public:
  /// `excl_begin/excl_end` delimit the query's sorted exclusion list
  /// (borrowed; may be null/null for none). `k` must be positive.
  TopKAccumulator(int k, const int32_t* excl_begin, const int32_t* excl_end);

  /// Offer items [tile_begin, tile_begin + count) with their scores.
  /// Tiles must arrive in ascending, non-overlapping item order.
  void Consume(int32_t tile_begin, int32_t count, const float* scores);

  /// The ranked result: descending score, ties by ascending item id.
  std::vector<ScoredItem> Finish();

 private:
  /// True when `a` outranks `b`. As the heap comparator this keeps the
  /// WORST retained candidate on top, so a better score evicts it in
  /// O(log k).
  static bool Better(const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  }

  int k_;
  const int32_t* excl_cursor_;
  const int32_t* excl_end_;
  /// Binary heap ordered by Better (worst retained candidate at front).
  std::vector<ScoredItem> heap_;
};

class Recommender {
 public:
  /// `model` is borrowed and must outlive the recommender. `rated` lists
  /// the known (user, item) interactions to exclude from results —
  /// typically the training ratings; entries outside the model's
  /// dimensions are ignored. `ops` selects the scoring kernel variant
  /// (batch dot-scoring over the aligned factor tiles); null means the
  /// auto-dispatched default.
  Recommender(const Model* model, const Ratings& rated,
              const KernelOps* ops = nullptr);

  /// The `k` highest-scoring items for `user` (score = p_u . q_v),
  /// excluding items the user already rated. Sorted by descending score;
  /// equal scores break ties by ascending item id, so results are
  /// deterministic. Returns fewer than `k` items when the catalog minus
  /// the exclusions is smaller. InvalidArgument for an out-of-range user
  /// or non-positive k.
  StatusOr<std::vector<ScoredItem>> TopK(int32_t user, int k) const;

  /// Same, reusing `score_buffer` as the tile scratch instead of
  /// allocating per call — the form the serving layer drives, where a
  /// worker answers thousands of queries with one resident buffer. The
  /// buffer is resized as needed (to kTopKTile floats) and holds
  /// garbage afterwards; it must not be shared between concurrent calls.
  StatusOr<std::vector<ScoredItem>> TopK(int32_t user, int k,
                                         std::vector<float>* score_buffer) const;

  int32_t num_users() const { return model_->num_rows(); }
  int32_t num_items() const { return model_->num_cols(); }
  /// Items `user` has rated (the exclusion set), sorted ascending.
  int64_t NumRated(int32_t user) const { return rated_.NumRated(user); }
  const RatedIndex& rated_index() const { return rated_; }

 private:
  const Model* model_;
  const KernelOps* ops_;
  RatedIndex rated_;
};

}  // namespace hsgd
