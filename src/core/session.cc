#include "core/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <queue>
#include <utility>

#include "core/checkpoint.h"
#include "core/kernels/calibrator.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/star_scheduler.h"
#include "sched/uniform_scheduler.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace hsgd {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kCpuOnly: return "CPU-Only";
    case Algorithm::kGpuOnly: return "GPU-Only";
    case Algorithm::kHsgd: return "HSGD";
    case Algorithm::kHsgdStar: return "HSGD*";
  }
  return "unknown";
}

SimTime Trace::TimeToReach(double rmse) const {
  if (points.empty()) return kSimTimeNever;
#ifndef NDEBUG
  for (size_t i = 1; i < points.size(); ++i) {
    assert(points[i - 1].epoch < points[i].epoch &&
           "trace points must be epoch-monotone");
  }
#endif
  for (const TracePoint& p : points) {
    if (p.test_rmse <= rmse) return p.time;
  }
  return kSimTimeNever;
}

namespace {

/// Heap events: a worker's task completing (kind 0, releases strata), a
/// worker becoming ready to acquire (kind 1), or a lease deadline
/// expiring (kind 2). At equal times releases sort first so freed strata
/// are visible, then deadlines (a lease that completes exactly at its
/// deadline wins), then acquires; seq keeps the order fully
/// deterministic. Deadline events are pushed lazily — only when a
/// block's actual finish already overshoots the deadline — so a
/// fault-free epoch's event sequence is exactly the pre-fault one.
struct Event {
  SimTime time = 0.0;
  int kind = 1;
  int64_t seq = 0;
  int worker = 0;
  BlockTask task;
};

struct EventLater {
  static int Rank(int kind) { return kind == 0 ? 0 : kind == 2 ? 1 : 2; }
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return Rank(a.kind) > Rank(b.kind);
    return a.seq > b.seq;
  }
};

int ClampStrata(int want, int64_t dim) {
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(want, dim)));
}

/// Resident column stripes per GPU under HSGD*. Two, not one: the GPU
/// finishes one stripe before opening the next, so a lagging GPU always
/// has a free (yet resident) stripe that idle CPU threads can steal from.
constexpr int kStripesPerGpu = 2;

/// Simulated timeout that flags a failed PCIe transfer before its retry.
constexpr SimTime kFaultDetectLatency = 1e-3;

Status ValidateConfig(const Dataset& ds, const TrainConfig& config) {
  if (ds.train.empty()) {
    return Status::InvalidArgument("dataset has no training ratings");
  }
  if (ds.num_rows <= 0 || ds.num_cols <= 0) {
    return Status::InvalidArgument("dataset has empty dimensions");
  }
  if (ds.params.k <= 0) {
    return Status::InvalidArgument("params.k must be positive");
  }
  if (config.max_epochs < 1) {
    return Status::InvalidArgument("max_epochs must be >= 1");
  }
  if (config.eval_threads < 1) {
    return Status::InvalidArgument("eval_threads must be >= 1");
  }
  if (config.hardware.speed_variability < 0.0) {
    return Status::InvalidArgument("speed_variability must be >= 0");
  }
  const Algorithm algo = config.algorithm;
  const int nc = config.hardware.num_cpu_threads;
  const int ng = config.hardware.num_gpus;
  const bool wants_cpu = algo != Algorithm::kGpuOnly;
  const bool wants_gpu = algo != Algorithm::kCpuOnly;
  if (wants_cpu && nc < 1) {
    return Status::InvalidArgument(
        StrFormat("%s needs at least 1 CPU thread, got %d",
                  AlgorithmName(algo), nc));
  }
  if (wants_gpu && ng < 1) {
    return Status::InvalidArgument(StrFormat(
        "%s needs at least 1 GPU, got %d", AlgorithmName(algo), ng));
  }
  return Status::Ok();
}

}  // namespace

Session::Session(Dataset dataset, TrainConfig config)
    : dataset_(std::move(dataset)), config_(config) {}

Session::~Session() = default;

StatusOr<std::unique_ptr<Session>> Session::Create(Dataset dataset,
                                                   TrainConfig config) {
  HSGD_RETURN_IF_ERROR(ValidateConfig(dataset, config));
  std::unique_ptr<Session> session(
      new Session(std::move(dataset), config));
  HSGD_RETURN_IF_ERROR(session->Init());
  return session;
}

Status Session::Init() {
  Stopwatch wall;
  const Algorithm algo = config_.algorithm;
  const int nc = config_.hardware.num_cpu_threads;
  const int ng = config_.hardware.num_gpus;
  const bool wants_cpu = algo != Algorithm::kGpuOnly;
  const bool wants_gpu = algo != Algorithm::kCpuOnly;
  const int k = dataset_.params.k;
  const int32_t rows = dataset_.num_rows;
  const int32_t cols = dataset_.num_cols;
  const int64_t n = dataset_.train_size();
  is_star_ = algo == Algorithm::kHsgdStar;

  // Resolve the compute kernel up front and pin the concrete choice into
  // the config: everything downstream (cost model, checkpoints) must see
  // the variant actually running, not "auto".
  {
    auto resolved = ResolveKernelKind(config_.kernel);
    if (!resolved.ok()) return resolved.status();
    config_.kernel = *resolved;
    kernel_ops_ = &GetKernelOps(*resolved);
  }
  if (config_.calibrate) {
    const KernelCalibration cal = CalibrateKernel(config_.kernel, k);
    HSGD_LOG(Info) << "calibrated " << KernelKindName(cal.kernel)
                   << " kernel at k=" << k << ": "
                   << cal.updates_per_sec / 1e6 << "M updates/s ("
                   << cal.updates_per_sec_k128 / 1e6
                   << "M at the k=128 convention); overriding "
                      "cpu.updates_per_sec_k128="
                   << config_.hardware.cpu.updates_per_sec_k128 / 1e6
                   << "M";
    config_.hardware.cpu.updates_per_sec_k128 = cal.updates_per_sec_k128;
    // The measured rate is now part of the config; checkpoints restore it
    // verbatim instead of re-measuring (keeps resume bit-identical).
    config_.calibrate = false;
  }

  // Per-run device speed draw. The cost model below always plans with the
  // nominal specs — the gap between plan and reality is what the dynamic
  // phase corrects.
  Rng var_rng(config_.seed, 17);
  drawn_cpu_spec_ = config_.hardware.cpu;
  drawn_gpu_spec_ = config_.hardware.gpu;
  if (config_.hardware.speed_variability > 0.0) {
    drawn_cpu_spec_.speed_factor *=
        std::exp(config_.hardware.speed_variability * var_rng.Gaussian());
    drawn_gpu_spec_.speed_factor *=
        std::exp(config_.hardware.speed_variability * var_rng.Gaussian());
  }

  // ---- Block division and scheduler -------------------------------------
  Rng shuffle_rng(config_.seed, 2);
  Grid grid;
  planned_alpha_ = 0.0;
  if (is_star_) {
    Profiler profiler(config_.hardware.gpu, config_.hardware.cpu, k);
    auto cost_model = profiler.BuildHsgdModel(dataset_);
    if (!cost_model.ok()) return cost_model.status();
    if (kStripesPerGpu * ng + nc > cols) {
      return Status::InvalidArgument(
          StrFormat("HSGD* needs %d column stripes but matrix has only %d "
                    "columns",
                    kStripesPerGpu * ng + nc, cols));
    }
    // Spare CPU stripes keep the pool over-decomposed: threads route
    // around locked columns, an idle GPU can steal from a *free* stripe
    // (stealing from a busy one could only displace its owner), and the
    // epoch tail stays parallel — with stripes ~= threads, the wind-down
    // convoys on the last few pending columns and CPU utilization craters.
    int spare = std::max(2, nc);
    spare = std::min<int64_t>(spare, cols - kStripesPerGpu * ng - nc);
    const int cpu_stripes = nc + std::max(0, spare);
    const int gpu_stripes = kStripesPerGpu * ng;
    // Row strata: enough for every worker to hold one with slack left
    // over (or the dynamic phase could never find a runnable block to
    // steal), up to 2x the worker count on big inputs — but never so many
    // that blocks collapse below a useful granule (tiny blocks drown in
    // kernel-launch overhead and CPU warm-up).
    const int64_t block_target = 600;
    const int64_t p_by_size =
        n / ((static_cast<int64_t>(gpu_stripes) + cpu_stripes) *
             block_target);
    const int p = ClampStrata(
        static_cast<int>(std::max<int64_t>(
            std::min<int64_t>(2 * (nc + ng), p_by_size), nc + ng + 2)),
        rows);
    AlphaQuery query;
    query.epoch_nnz = n;
    query.num_cpu_threads = nc;
    query.num_gpus = ng;
    query.row_strata = p;
    query.stripes_per_gpu = kStripesPerGpu;
    query.num_cpu_stripes = cpu_stripes;
    query.num_rows = rows;
    query.num_cols = cols;
    planned_alpha_ = cost_model->DecideAlpha(config_.cost_model, query);
    std::vector<double> shares;
    shares.reserve(static_cast<size_t>(gpu_stripes + cpu_stripes));
    for (int g = 0; g < gpu_stripes; ++g) {
      shares.push_back(planned_alpha_ / gpu_stripes);
    }
    for (int t = 0; t < cpu_stripes; ++t) {
      shares.push_back((1.0 - planned_alpha_) / cpu_stripes);
    }
    auto grid_or =
        BuildGridWithColShares(dataset_.train, rows, cols, p, shares);
    if (!grid_or.ok()) return grid_or.status();
    grid = *std::move(grid_or);
  } else {
    int want = algo == Algorithm::kCpuOnly ? nc
               : algo == Algorithm::kGpuOnly ? ng
                                             : nc + ng;
    auto grid_or = BuildBalancedGrid(dataset_.train, rows, cols,
                                     ClampStrata(want, rows),
                                     ClampStrata(want, cols));
    if (!grid_or.ok()) return grid_or.status();
    grid = *std::move(grid_or);
  }

  auto matrix_or = BlockedMatrix::Build(dataset_.train, grid, &shuffle_rng);
  if (!matrix_or.ok()) return matrix_or.status();
  matrix_ = *std::move(matrix_or);

  if (is_star_) {
    StarSchedulerOptions opts;
    opts.num_gpu_stripes = kStripesPerGpu * ng;
    opts.num_cpu_stripes =
        matrix_.grid().num_col_strata() - kStripesPerGpu * ng;
    opts.stripes_per_gpu = kStripesPerGpu;
    opts.dynamic = config_.dynamic_scheduling;
    // Cost-aware gate on CPU-side stealing: an excursion into a GPU
    // stripe pays one D2H for the stripe's resident column factors.
    // That is worth it when a few stolen block-sweeps amortize the
    // transfer; when the factors outweigh the work (small blocks, fat
    // stripes) the "help" would lengthen the epoch instead.
    {
      PcieLink link(drawn_gpu_spec_);
      CpuDevice probe(drawn_cpu_spec_, k);
      const double gpu_block_nnz =
          planned_alpha_ * static_cast<double>(n) /
          (kStripesPerGpu * ng * matrix_.grid().num_row_strata());
      const int64_t col_bytes =
          static_cast<int64_t>(matrix_.grid().ColStratumWidth(0)) * k * 4;
      const double pull =
          link.TransferTime(col_bytes, TransferDirection::kDeviceToHost);
      const double sweep =
          probe.UpdateTime(static_cast<int64_t>(gpu_block_nnz));
      opts.allow_cpu_steals = pull < 3.0 * sweep;
    }
    scheduler_ = std::make_unique<StarScheduler>(
        &matrix_, &matrix_.grid(), opts, Rng(config_.seed, 3));
  } else {
    scheduler_ = std::make_unique<UniformScheduler>(
        &matrix_, &matrix_.grid(), UniformSchedulerOptions{},
        Rng(config_.seed, 3));
  }

  // ---- Simulated workers -------------------------------------------------
  // PCIe cost of a CPU thread pulling a GPU-resident column stripe when
  // it steals from the GPU region (see the steal branch in RunEpoch).
  steal_link_ = std::make_unique<PcieLink>(drawn_gpu_spec_);
  if (wants_cpu) {
    for (int t = 0; t < nc; ++t) {
      // One CpuDevice per thread: identical specs (so healthy timings
      // match the old shared device bit-for-bit) but independent health,
      // letting a straggler fault hit a single thread.
      cpu_devices_.push_back(
          std::make_unique<CpuDevice>(drawn_cpu_spec_, k));
      Worker w;
      w.info = {DeviceClass::kCpuThread, t,
                static_cast<int>(workers_.size())};
      w.cpu = cpu_devices_.back().get();
      workers_.push_back(w);
    }
  }
  if (wants_gpu) {
    for (int g = 0; g < ng; ++g) {
      gpu_devices_.push_back(
          std::make_unique<GpuDevice>(drawn_gpu_spec_, k,
                                      /*pipelined=*/true));
      Worker w;
      w.info = {DeviceClass::kGpu, g, static_cast<int>(workers_.size())};
      w.gpu = gpu_devices_.back().get();
      workers_.push_back(w);
    }
  }

  // ---- Real model and evaluation ----------------------------------------
  RatingStats train_stats = ComputeStats(dataset_.train);
  model_ = std::make_unique<Model>(rows, cols, k);
  Rng model_rng(config_.seed, 1);
  model_->InitRandom(&model_rng, train_stats.mean_rating);
  eval_pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(
      std::min(16, std::max(1, config_.eval_threads))));

  worker_dead_.assign(workers_.size(), 0);
  workers_alive_ = static_cast<int>(workers_.size());
  retry_rng_ = Rng(config_.seed, 23);
  growth_rng_ = Rng(config_.seed, 29);
  rating_sum_ = train_stats.mean_rating * static_cast<double>(n);
  rating_count_ = n;
  dirty_.assign(static_cast<size_t>(matrix_.num_blocks()), 0);

  wall_seconds_ += wall.Seconds();
  return Status::Ok();
}

bool Session::Done() const {
  if (failed_) return true;
  if (config_.use_dataset_target && reached_target_) return true;
  return epochs_run_ >= config_.max_epochs;
}

Status Session::SetFaultPlan(const FaultPlan& plan) {
  const int nc = config_.hardware.num_cpu_threads;
  const int ng = config_.hardware.num_gpus;
  const bool has_cpu = config_.algorithm != Algorithm::kGpuOnly;
  const bool has_gpu = config_.algorithm != Algorithm::kCpuOnly;
  for (const FaultSpec& spec : plan.specs) {
    if (IsServeFault(spec.kind)) {
      return Status::InvalidArgument(StrFormat(
          "fault \"%s\" is a serve-loop kind; attach it to a "
          "ServeFaultInjector (SplitFaultPlan separates mixed scripts)",
          spec.ToString().c_str()));
    }
    if (spec.kind == FaultKind::kCheckpointFault) continue;
    const bool gpu_target = spec.device_class == DeviceClass::kGpu;
    const int fleet = gpu_target ? (has_gpu ? ng : 0)
                                 : (has_cpu ? nc : 0);
    if (spec.device_index >= fleet) {
      return Status::InvalidArgument(StrFormat(
          "fault \"%s\" targets %s%d but the session has %d of them",
          spec.ToString().c_str(), gpu_target ? "gpu" : "cpu",
          spec.device_index, fleet));
    }
  }
  injector_ = std::make_unique<FaultInjector>(plan);
  return Status::Ok();
}

void Session::SetObservability(const Observability& obs) {
  obs_ = obs;
  metric_ = MetricsHandles{};
  // Devices carry their own tracer hook so their internal pipeline
  // timings land on the right lane without round-tripping the session.
  for (const Worker& w : workers_) {
    if (w.gpu != nullptr) {
      w.gpu->SetTrace(obs_.trace, TraceTidForWorker(w.info.worker_index));
    }
  }
  if (obs_.trace != nullptr) {
    obs_.trace->SetThreadName(
        0, StrFormat("session (%s)", scheduler_->name()));
    for (const Worker& w : workers_) {
      obs_.trace->SetThreadName(
          TraceTidForWorker(w.info.worker_index),
          StrFormat("%s%d",
                    w.info.device_class == DeviceClass::kGpu ? "gpu" : "cpu",
                    w.info.device_index));
    }
    obs_.trace->SetThreadName(TraceTidCheckpoint(), "checkpoint");
    obs_.trace->SetThreadName(TraceTidFault(), "fault");
  }
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry* r = obs_.metrics;
    metric_.epochs = r->counter("session.epochs");
    metric_.blocks = r->counter("session.blocks");
    metric_.nnz = r->counter("session.nnz");
    metric_.steals_by_gpu = r->counter("sched.steals_by_gpu");
    metric_.steals_by_cpu = r->counter("sched.steals_by_cpu");
    metric_.devices_lost = r->counter("fault.devices_lost");
    metric_.leases_revoked = r->counter("fault.leases_revoked");
    metric_.blocks_requeued = r->counter("fault.blocks_requeued");
    metric_.blocks_lost = r->counter("fault.blocks_lost");
    metric_.transfer_faults = r->counter("fault.transfer_faults");
    metric_.ckpt_writes = r->counter("ckpt.writes");
    metric_.ckpt_bytes = r->counter("ckpt.bytes");
    metric_.ckpt_failures = r->counter("ckpt.failures");
    metric_.ckpt_retries = r->counter("ckpt.retries");
    metric_.autosave_failures = r->counter("ckpt.autosave_failures");
    metric_.sim_clock = r->gauge("session.sim_clock");
    metric_.epoch = r->gauge("session.epoch");
    metric_.test_rmse = r->gauge("session.test_rmse");
    metric_.train_rmse = r->gauge("session.train_rmse");
    metric_.workers_alive = r->gauge("session.workers_alive");
    metric_.block_seconds = r->histogram(
        "session.block_sim_seconds", obs::ExponentialBounds(1e-6, 2.0, 24));
    metric_.epoch_seconds = r->histogram(
        "session.epoch_sim_seconds", obs::ExponentialBounds(1e-3, 2.0, 20));
    metric_.worker_busy.resize(workers_.size(), nullptr);
    for (const Worker& w : workers_) {
      metric_.worker_busy[static_cast<size_t>(w.info.worker_index)] =
          r->gauge(StrFormat(
              "device.%s%d.busy_sim_seconds",
              w.info.device_class == DeviceClass::kGpu ? "gpu" : "cpu",
              w.info.device_index));
    }
  }
  // Steal tallies accumulate across the session (and across restores);
  // the registry sees only the deltas from the attach point forward.
  steals_gpu_exported_ = scheduler_->stolen_by_gpus();
  steals_cpu_exported_ = scheduler_->stolen_by_cpus();
}

void Session::ExportBarrierMetrics(const TracePoint& point) {
  if (obs_.metrics == nullptr) return;
  obs::Increment(metric_.epochs);
  obs::Set(metric_.sim_clock, clock_);
  obs::Set(metric_.epoch, point.epoch);
  obs::Set(metric_.test_rmse, point.test_rmse);
  obs::Set(metric_.train_rmse, point.train_rmse);
  obs::Set(metric_.workers_alive, workers_alive_);
  const int64_t sg = scheduler_->stolen_by_gpus();
  const int64_t sc = scheduler_->stolen_by_cpus();
  obs::Add(metric_.steals_by_gpu, sg - steals_gpu_exported_);
  obs::Add(metric_.steals_by_cpu, sc - steals_cpu_exported_);
  steals_gpu_exported_ = sg;
  steals_cpu_exported_ = sc;
  for (const Worker& w : workers_) {
    obs::Gauge* busy =
        metric_.worker_busy[static_cast<size_t>(w.info.worker_index)];
    if (w.gpu != nullptr) {
      obs::Set(busy, w.gpu->busy_seconds());
    } else if (w.cpu != nullptr) {
      obs::Set(busy, w.cpu->busy_seconds());
    }
  }
}

void Session::AddObserver(EpochObserver* observer) {
  HSGD_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void Session::RemoveObserver(EpochObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

// Notifications iterate a snapshot so a callback may add or remove
// observers (including itself) without invalidating the live iteration.
void Session::NotifyEpochBegin(int epoch) {
  const std::vector<EpochObserver*> snapshot = observers_;
  for (EpochObserver* o : snapshot) o->OnEpochBegin(*this, epoch);
}

void Session::NotifyEpochEnd(const TracePoint& point) {
  const std::vector<EpochObserver*> snapshot = observers_;
  for (EpochObserver* o : snapshot) o->OnEpochEnd(*this, point);
}

void Session::NotifyTargetReached(const TracePoint& point) {
  const std::vector<EpochObserver*> snapshot = observers_;
  for (EpochObserver* o : snapshot) o->OnTargetReached(*this, point);
}

StatusOr<TracePoint> Session::RunEpoch() {
  std::unique_lock<std::mutex> quiesce(epoch_mu_);
  return RunEpochImpl(std::move(quiesce), nullptr);
}

StatusOr<TracePoint> Session::RunIncrementalEpoch() {
  std::unique_lock<std::mutex> quiesce(epoch_mu_);
  std::vector<int> blocks;
  for (size_t b = 0; b < dirty_.size(); ++b) {
    if (dirty_[b]) blocks.push_back(static_cast<int>(b));
  }
  if (blocks.empty()) {
    return Status::FailedPrecondition(
        "no appended ratings pending an incremental epoch");
  }
  return RunEpochImpl(std::move(quiesce), &blocks);
}

StatusOr<TracePoint> Session::RunEpochImpl(
    std::unique_lock<std::mutex> quiesce, const std::vector<int>* subset) {
  HSGD_CHECK(quiesce.owns_lock());
  if (Done()) {
    return Status::FailedPrecondition(
        failed_ ? "session permanently failed after device loss"
        : reached_target_
            ? "session already reached the dataset target"
            : "session already ran its epoch budget");
  }
  Stopwatch wall;
  const Algorithm algo = config_.algorithm;
  const int ng = config_.hardware.num_gpus;
  const int k = dataset_.params.k;
  const int epoch = epochs_run_ + 1;
  const int num_workers = static_cast<int>(workers_.size());
  const Grid& grid = matrix_.grid();

  NotifyEpochBegin(epoch);
  if (subset == nullptr) {
    scheduler_->BeginEpoch();
  } else {
    scheduler_->BeginEpochSubset(*subset);
  }
  const SimTime epoch_start = clock_;
  const double deadline_factor = config_.fault.lease_deadline_factor;

  std::priority_queue<Event, std::vector<Event>, EventLater> pq;
  int64_t seq = 0;
  std::vector<char> waiting(static_cast<size_t>(num_workers), 0);
  SimTime epoch_end = epoch_start;
  /// Leases currently held: lease id -> (task, worker). Ordered so that
  /// a device death revokes its leases in issue order, deterministically.
  std::map<int64_t, std::pair<BlockTask, int>> held;
  int64_t released = 0;

  auto wake_waiters = [&](SimTime now) {
    for (int w = 0; w < num_workers; ++w) {
      if (!waiting[static_cast<size_t>(w)] ||
          worker_dead_[static_cast<size_t>(w)]) {
        continue;
      }
      waiting[static_cast<size_t>(w)] = 0;
      Event retry;
      retry.time = now;
      retry.kind = 1;
      retry.seq = seq++;
      retry.worker = w;
      pq.push(retry);
    }
  };

  auto kill_worker = [&](DeviceClass cls, int index, SimTime now) {
    for (int w = 0; w < num_workers; ++w) {
      Worker& worker = workers_[w];
      if (worker.info.device_class != cls ||
          worker.info.device_index != index) {
        continue;
      }
      if (worker_dead_[static_cast<size_t>(w)]) return;
      worker_dead_[static_cast<size_t>(w)] = 1;
      waiting[static_cast<size_t>(w)] = 0;
      --workers_alive_;
      ++fault_stats_.devices_lost;
      fault_stats_.degraded = true;
      obs::Increment(metric_.devices_lost);
      if (obs_.trace != nullptr) {
        obs_.trace->Instant(
            "fault", "device_lost", TraceTidFault(), now,
            {obs::TraceArg::Str(
                 "device",
                 StrFormat("%s%d", cls == DeviceClass::kGpu ? "gpu" : "cpu",
                           index)),
             obs::TraceArg::Int("workers_alive", workers_alive_)});
      }
      if (worker.gpu != nullptr) worker.gpu->set_health(MakeDead());
      if (worker.cpu != nullptr) worker.cpu->set_health(MakeDead());
      scheduler_->MarkWorkerDead(worker.info);
      // Revoke the dead worker's in-flight leases in issue order; their
      // pending release events turn into no-ops (LeaseOutstanding is
      // checked before any update is applied), so nothing the dead
      // device "finished" after this instant reaches the model.
      std::vector<int64_t> revoke;
      for (const auto& [lease, rec] : held) {
        if (rec.second == w) revoke.push_back(lease);
      }
      for (int64_t lease : revoke) {
        const BlockTask task = held[lease].first;
        held.erase(lease);
        ++fault_stats_.leases_revoked;
        obs::Increment(metric_.leases_revoked);
        if (scheduler_->RevokeLease(task)) {
          ++fault_stats_.blocks_requeued;
          obs::Increment(metric_.blocks_requeued);
        } else {
          ++fault_stats_.blocks_lost;
          obs::Increment(metric_.blocks_lost);
        }
        if (obs_.trace != nullptr) {
          obs_.trace->Instant("fault", "lease_revoked", TraceTidFault(),
                              now,
                              {obs::TraceArg::Int("block", task.block)});
        }
      }
      HSGD_LOG(Warning) << (cls == DeviceClass::kGpu ? "gpu" : "cpu")
                        << index << " died at t=" << now << " (epoch "
                        << epoch << "): revoked " << revoke.size()
                        << " leases, " << workers_alive_
                        << " workers remain";
      if (config_.fault.on_device_loss == DegradePolicy::kAbort ||
          workers_alive_ == 0) {
        failed_ = true;
      }
      wake_waiters(now);
      return;
    }
  };

  auto handle_faults = [&](const std::vector<const FaultSpec*>& fired,
                           SimTime now) {
    for (const FaultSpec* spec : fired) {
      switch (spec->kind) {
        case FaultKind::kGpuCrash:
        case FaultKind::kCpuCrash:
          kill_worker(spec->device_class, spec->device_index, now);
          break;
        case FaultKind::kStraggler: {
          fault_stats_.degraded = true;
          const DeviceHealth health =
              MakeDegraded(spec->slowdown, now, spec->duration);
          for (int w = 0; w < num_workers; ++w) {
            if (workers_[w].info.device_class != spec->device_class ||
                workers_[w].info.device_index != spec->device_index ||
                worker_dead_[static_cast<size_t>(w)]) {
              continue;
            }
            if (workers_[w].gpu != nullptr) {
              workers_[w].gpu->set_health(health);
            }
            if (workers_[w].cpu != nullptr) {
              workers_[w].cpu->set_health(health);
            }
            HSGD_LOG(Warning)
                << "straggler fault: " << spec->ToString() << " at t="
                << now;
            if (obs_.trace != nullptr) {
              // A bounded degradation window renders as a span over its
              // duration; an open-ended one as an instant marker.
              const int tid = TraceTidForWorker(workers_[w].info.worker_index);
              std::vector<obs::TraceArg> args = {
                  obs::TraceArg::Double("slowdown", spec->slowdown)};
              if (spec->duration < kSimTimeNever) {
                obs_.trace->Span("fault", "straggler", tid, now,
                                 now + spec->duration, std::move(args));
              } else {
                obs_.trace->Instant("fault", "straggler", tid, now,
                                    std::move(args));
              }
            }
          }
          break;
        }
        case FaultKind::kLinkFault:
          if (spec->device_index <
              static_cast<int>(gpu_devices_.size())) {
            fault_stats_.degraded = true;
            fault_stats_.transfer_faults += spec->count;
            obs::Add(metric_.transfer_faults, spec->count);
            gpu_devices_[spec->device_index]
                ->mutable_link()
                .InjectTransferFaults(spec->count, kFaultDetectLatency);
            HSGD_LOG(Warning) << "link fault: " << spec->ToString()
                              << " at t=" << now;
            if (obs_.trace != nullptr) {
              obs_.trace->Instant(
                  "fault", "link_fault", TraceTidFault(), now,
                  {obs::TraceArg::Int("gpu", spec->device_index),
                   obs::TraceArg::Int("count", spec->count)});
            }
          }
          break;
        case FaultKind::kCheckpointFault:
          break;  // consumed by autosave attempts, never fires here
        case FaultKind::kPublishPoison:
        case FaultKind::kWalIo:
        case FaultKind::kQueryStorm:
        case FaultKind::kSlowShard:
          // Serve kinds never reach the session: SetFaultPlan rejects
          // them (fault/serve_injector.h fires them instead).
          break;
      }
    }
  };

  if (injector_ != nullptr) {
    injector_->BeginEpoch(epoch, scheduler_->remaining_blocks());
    handle_faults(injector_->Poll(0), epoch_start);
    if (failed_) {
      return Status::Internal(
          workers_alive_ == 0
              ? "all workers dead; training cannot continue"
              : "device lost under DegradePolicy::kAbort");
    }
  }

  // Resident-factor uploads. GPU-Only keeps everything in device memory
  // (one initial upload); HSGD* re-syncs each GPU's column stripe at
  // every epoch boundary. Dead GPUs are skipped.
  for (int g = 0; g < static_cast<int>(gpu_devices_.size()); ++g) {
    if (gpu_devices_[g]->health().dead()) continue;
    int64_t bytes = 0;
    if (algo == Algorithm::kGpuOnly && epoch == 1) {
      // Every GPU keeps the full P and Q resident, so each pays the
      // full upload.
      bytes = (static_cast<int64_t>(dataset_.num_rows) +
               dataset_.num_cols) *
              k * 4;
    } else if (is_star_) {
      for (int s = 0; s < kStripesPerGpu; ++s) {
        bytes += static_cast<int64_t>(
                     grid.ColStratumWidth(g * kStripesPerGpu + s)) *
                 k * 4;
      }
    }
    if (bytes > 0) gpu_devices_[g]->Upload(epoch_start, bytes);
  }

  SgdHyper hyper;
  hyper.learning_rate = dataset_.params.learning_rate /
                        (1.0f + 0.05f * static_cast<float>(epoch - 1));
  hyper.lambda_p = dataset_.params.lambda_p;
  hyper.lambda_q = dataset_.params.lambda_q;

  for (int w = 0; w < num_workers; ++w) {
    if (worker_dead_[static_cast<size_t>(w)]) continue;
    Event e;
    e.time = epoch_start;
    e.kind = 1;
    e.seq = seq++;
    e.worker = w;
    pq.push(e);
  }
  // Cross-device column-stripe coherence during the dynamic phase:
  // the first CPU steal from a GPU stripe pulls its resident column
  // factors to the host (one D2H per excursion, not per block); the
  // stripe is then dirty, and the owning GPU re-uploads it if it
  // comes back before the epoch-boundary sync.
  std::vector<char> stripe_on_host(
      static_cast<size_t>(is_star_ ? kStripesPerGpu * ng : 0), 0);
  std::vector<char> stripe_dirty(stripe_on_host.size(), 0);

  auto try_acquire = [&](int w, SimTime now) {
    auto task = scheduler_->Acquire(workers_[w].info, now);
    if (!task.has_value()) {
      if (!scheduler_->EpochDone()) waiting[static_cast<size_t>(w)] = 1;
      return;
    }
    // Note the SGD arithmetic is NOT applied here: it runs when the
    // block's release event commits, so a lease revoked in between
    // leaves the model untouched and the requeued block applies exactly
    // once. For conflicting blocks release order equals acquire order
    // (strata serialization), and non-conflicting blocks touch disjoint
    // factors, so the commit-at-release numbers are bit-identical to
    // the old apply-at-acquire ones.

    SimTime finish, next_free, proc;
    // Extra seconds faults added to this block (slowdown, failed
    // transfers); exactly 0.0 on a healthy run. The lease deadline is
    // measured against the healthy portion finish - excess.
    SimTime excess = 0.0;
    if (workers_[w].gpu != nullptr) {
      GpuWorkItem item;
      item.nnz = task->nnz;
      item.rows = grid.RowStratumWidth(task->row);
      // Column factors ride along unless resident: GPU-Only keeps all
      // of Q on device; HSGD* keeps the GPU's own stripe resident —
      // except when a stealing CPU dirtied the host copy, which costs
      // the GPU one re-upload of the stripe.
      bool resident_cols =
          algo == Algorithm::kGpuOnly ||
          (is_star_ &&
           task->col / kStripesPerGpu == workers_[w].info.device_index &&
           task->col < kStripesPerGpu * ng);
      if (resident_cols && is_star_ &&
          stripe_dirty[static_cast<size_t>(task->col)]) {
        resident_cols = false;
        stripe_dirty[static_cast<size_t>(task->col)] = 0;
        stripe_on_host[static_cast<size_t>(task->col)] = 0;
      }
      item.cols = resident_cols ? 0 : grid.ColStratumWidth(task->col);
      if (algo == Algorithm::kGpuOnly) item.rows = 0;  // P resident too
      PipelineTiming t = workers_[w].gpu->Process(now, item);

      // The worker is free to fetch its next block as soon as this
      // kernel launches — that H2D rides under the running kernel,
      // which is exactly the overlap Eq. 9 credits the GPU with.
      next_free = t.kernel_start;
      // Resident blocks release at kernel end: their column factors
      // never leave the device, and the row factors' D2H is tracked on
      // the device's transfer stream. Traveling (stolen / uniform)
      // blocks hold their strata until the factors are back on host.
      finish = resident_cols ? t.kernel_done : t.d2h_done;
      proc = t.kernel_done - t.h2d_start;
      excess = (t.d2h_done - t.h2d_start) - t.healthy_span;
      gpu_nnz_ += task->nnz;
    } else {
      proc = workers_[w].cpu->ChargeAt(now, task->nnz);
      excess = proc - workers_[w].cpu->UpdateTime(task->nnz);
      // A CPU thread stealing from a GPU-resident stripe must first
      // pull the current column factors off the device — one D2H per
      // excursion (later blocks of the same stripe reuse the host
      // copy); the stripe becomes dirty for the owning GPU. If the
      // owning GPU is dead there is nothing newer on the device (block
      // updates commit to the host model at release), so orphan-stripe
      // rescues skip the pull.
      if (is_star_ && task->stolen && task->col < kStripesPerGpu * ng) {
        const int owner = task->col / kStripesPerGpu;
        const bool owner_dead =
            owner < static_cast<int>(gpu_devices_.size()) &&
            gpu_devices_[static_cast<size_t>(owner)]->health().dead();
        if (!owner_dead) {
          const size_t s = static_cast<size_t>(task->col);
          if (!stripe_on_host[s]) {
            const int64_t col_bytes =
                static_cast<int64_t>(grid.ColStratumWidth(task->col)) *
                k * 4;
            proc += steal_link_->TransferTime(
                col_bytes, TransferDirection::kDeviceToHost);
            stripe_on_host[s] = 1;
          }
          stripe_dirty[s] = 1;
        }
      }
      finish = now + proc;
      next_free = finish;
      if (obs_.trace != nullptr) {
        obs_.trace->Span("device", "cpu_block",
                         TraceTidForWorker(workers_[w].info.worker_index),
                         now, finish,
                         {obs::TraceArg::Int("block", task->block),
                          obs::TraceArg::Int("nnz", task->nnz)});
      }
    }
    if (task->stolen && obs_.trace != nullptr) {
      obs_.trace->Instant("sched", "steal",
                          TraceTidForWorker(workers_[w].info.worker_index),
                          now,
                          {obs::TraceArg::Int("block", task->block),
                           obs::TraceArg::Int("col", task->col)});
    }
    const double duration = std::max(proc, 1e-12);
    ++duration_count_;
    duration_sum_ += duration;
    duration_sumsq_ += duration * duration;
    ++total_tasks_;
    total_nnz_processed_ += task->nnz;
    obs::Increment(metric_.blocks);
    obs::Add(metric_.nnz, task->nnz);
    obs::Observe(metric_.block_seconds, duration);

    held[task->lease] = {*task, w};

    Event release;
    release.time = finish;
    release.kind = 0;
    release.seq = seq++;
    release.worker = w;
    release.task = *task;
    pq.push(release);
    Event ready;
    ready.time = next_free;
    ready.kind = 1;
    ready.seq = seq++;
    ready.worker = w;
    pq.push(ready);

    // Lease watchdog: arm a deadline only when the block is ALREADY
    // going to overshoot it (a fault is in effect). A healthy block has
    // excess == 0, so finish == healthy finish and no event is pushed —
    // fault-free epochs keep the exact pre-fault event sequence.
    if (deadline_factor > 0.0) {
      const SimTime healthy_finish = finish - excess;
      const SimTime deadline =
          now + deadline_factor * std::max(healthy_finish - now, 1e-9);
      if (finish > deadline) {
        Event expiry;
        expiry.time = deadline;
        expiry.kind = 2;
        expiry.seq = seq++;
        expiry.worker = w;
        expiry.task = *task;
        pq.push(expiry);
      }
    }
  };

  while (!scheduler_->EpochDone()) {
    if (pq.empty()) {
      // Blocks are pending but nobody is left (or able) to run them.
      failed_ = true;
      return Status::Internal(
          "simulation stalled: pending blocks but no live workers");
    }
    Event e = pq.top();
    pq.pop();
    if (e.kind == 0) {
      // A release whose lease was revoked (holder died or blew the
      // deadline) is dropped wholesale: its updates are never applied,
      // so the requeued copy of the block applies exactly once.
      if (!scheduler_->LeaseOutstanding(e.task.lease)) continue;
      // The real update: the simulator decided *when*, the kernel does
      // the arithmetic.
      SgdUpdateBlock(model_.get(), matrix_.BlockRatings(e.task.block),
                     hyper, kernel_ops_);
      held.erase(e.task.lease);
      scheduler_->Release(workers_[e.worker].info, e.task, e.time);
      epoch_end = std::max(epoch_end, e.time);
      // Freed strata may unblock starved workers.
      wake_waiters(e.time);
      ++released;
      if (injector_ != nullptr) {
        handle_faults(injector_->Poll(static_cast<int>(released)),
                      e.time);
      }
    } else if (e.kind == 2) {
      // Watchdog: the lease's deadline passed. If its release already
      // committed this is stale — ignore; otherwise revoke and requeue
      // so a survivor picks the block up.
      if (!scheduler_->LeaseOutstanding(e.task.lease)) continue;
      held.erase(e.task.lease);
      ++fault_stats_.leases_revoked;
      obs::Increment(metric_.leases_revoked);
      if (scheduler_->RevokeLease(e.task)) {
        ++fault_stats_.blocks_requeued;
        obs::Increment(metric_.blocks_requeued);
      } else {
        ++fault_stats_.blocks_lost;
        obs::Increment(metric_.blocks_lost);
      }
      if (obs_.trace != nullptr) {
        obs_.trace->Instant("fault", "lease_expired", TraceTidFault(),
                            e.time,
                            {obs::TraceArg::Int("block", e.task.block),
                             obs::TraceArg::Int("worker", e.worker)});
      }
      HSGD_LOG(Warning) << "lease on block " << e.task.block
                        << " expired at t=" << e.time
                        << " (worker " << e.worker << "); requeued";
      wake_waiters(e.time);
    } else {
      const int w = e.worker;
      if (worker_dead_[static_cast<size_t>(w)]) continue;
      // Degraded-mode scheduling: a worker wedged by at least the
      // deadline factor would blow the deadline of every block it
      // takes, so bench it — until the degradation window closes
      // (transient straggler), or permanently, in which case the
      // watchdog declares it dead.
      if (deadline_factor > 0.0) {
        const DeviceHealth& health = workers_[w].gpu != nullptr
                                         ? workers_[w].gpu->health()
                                         : workers_[w].cpu->health();
        if (health.state == HealthState::kDegraded &&
            health.SlowdownAt(e.time) >= deadline_factor) {
          if (health.degraded_until < kSimTimeNever) {
            Event retry;
            retry.time = health.degraded_until;
            retry.kind = 1;
            retry.seq = seq++;
            retry.worker = w;
            pq.push(retry);
          } else {
            kill_worker(workers_[w].info.device_class,
                        workers_[w].info.device_index, e.time);
          }
          if (failed_) {
            return Status::Internal(
                workers_alive_ == 0
                    ? "all workers dead; training cannot continue"
                    : "device lost under DegradePolicy::kAbort");
          }
          continue;
        }
      }
      try_acquire(w, e.time);
    }
    if (failed_) {
      return Status::Internal(
          workers_alive_ == 0
              ? "all workers dead; training cannot continue"
              : "device lost under DegradePolicy::kAbort");
    }
  }
  clock_ = epoch_end;  // epoch barrier: evaluate, then start together
  if (obs_.trace != nullptr) {
    obs_.trace->Span("session", StrFormat("epoch %d", epoch), 0,
                     epoch_start, epoch_end,
                     {obs::TraceArg::Int("epoch", epoch)});
  }
  obs::Observe(metric_.epoch_seconds, epoch_end - epoch_start);

  double train_rmse =
      Rmse(*model_, dataset_.train, eval_pool_.get(), kernel_ops_);
  double test_rmse =
      dataset_.test.empty()
          ? train_rmse
          : Rmse(*model_, dataset_.test, eval_pool_.get(), kernel_ops_);
  TracePoint point;
  point.epoch = epoch;
  point.time = clock_;
  point.test_rmse = test_rmse;
  point.train_rmse = train_rmse;
  assert(trace_.points.empty() || trace_.points.back().epoch < point.epoch);
  trace_.points.push_back(point);
  epochs_run_ = epoch;
  const bool reached_now =
      config_.use_dataset_target && test_rmse <= dataset_.target_rmse;
  if (reached_now) reached_target_ = true;

  // Periodic autosave with bounded retry. Failures are survivable by
  // design: training continues on a warning, one stale autosave behind.
  if (config_.fault.autosave_every > 0 &&
      !config_.fault.autosave_path.empty() &&
      epoch % config_.fault.autosave_every == 0) {
    auto attempt = [&]() -> Status {
      if (injector_ != nullptr &&
          injector_->ConsumeCheckpointFault(epoch)) {
        ++fault_stats_.checkpoint_failures;
        obs::Increment(metric_.ckpt_failures);
        return Status::Internal("injected checkpoint IO fault");
      }
      Status status = SaveCheckpoint(config_.fault.autosave_path);
      if (!status.ok()) {
        ++fault_stats_.checkpoint_failures;
        obs::Increment(metric_.ckpt_failures);
      }
      return status;
    };
    const Status saved = RetryWithBackoff(
        config_.fault.checkpoint_retry, &retry_rng_, attempt,
        [&](int attempt_no, const Status& status) {
          ++fault_stats_.checkpoint_retries;
          obs::Increment(metric_.ckpt_retries);
          HSGD_LOG(Warning)
              << "autosave attempt " << attempt_no << " failed ("
              << status.ToString() << "); backing off";
        });
    if (!saved.ok()) {
      ++fault_stats_.autosave_failures;
      obs::Increment(metric_.autosave_failures);
      HSGD_LOG(Warning) << "autosave to '" << config_.fault.autosave_path
                        << "' failed after retries: " << saved.ToString();
    }
    if (obs_.trace != nullptr) {
      // Autosaves happen at the barrier, so the span has zero virtual
      // width — its wall_ms arg carries the real cost.
      obs_.trace->Span("ckpt", "autosave", TraceTidCheckpoint(), clock_,
                       clock_,
                       {obs::TraceArg::Int("epoch", epoch),
                        obs::TraceArg::Bool("ok", saved.ok())});
    }
  }

  // Any successful epoch sweeps every dirty block (a full epoch covers
  // them trivially; a subset epoch was built from them), so the pending
  // append debt is paid either way.
  if (!dirty_.empty()) std::fill(dirty_.begin(), dirty_.end(), 0);
  pending_nnz_ = 0;

  wall_seconds_ += wall.Seconds();
  // The barrier drops before observers fire: the factors are settled for
  // this epoch, so an OnEpochEnd callback may VisitQuiesced (e.g. publish
  // a serving snapshot) without deadlocking or tearing.
  quiesce.unlock();
  // Metrics are current before observers fire, so an OnEpochEnd callback
  // reading session.metrics() sees this epoch, not the previous one.
  ExportBarrierMetrics(point);
  NotifyEpochEnd(point);
  if (reached_now) NotifyTargetReached(point);
  return point;
}

Status Session::AppendRatings(const Ratings& ratings) {
  std::lock_guard<std::mutex> quiesce(epoch_mu_);
  if (ratings.empty()) return Status::Ok();
  if (failed_) {
    return Status::FailedPrecondition(
        "session permanently failed after device loss");
  }
  int32_t new_rows = dataset_.num_rows;
  int32_t new_cols = dataset_.num_cols;
  for (const Rating& rt : ratings) {
    if (rt.u < 0 || rt.v < 0) {
      return Status::InvalidArgument(
          StrFormat("appended rating has negative id (%d, %d)", rt.u,
                    rt.v));
    }
    new_rows = std::max(new_rows, rt.u + 1);
    new_cols = std::max(new_cols, rt.v + 1);
  }
  // Fold the arrivals into the running mean BEFORE drawing cold factors,
  // so a cold row's init range reflects the data that introduced it.
  for (const Rating& rt : ratings) {
    rating_sum_ += static_cast<double>(rt.r);
  }
  rating_count_ += static_cast<int64_t>(ratings.size());
  model_->Grow(new_rows, new_cols, &growth_rng_,
               rating_sum_ / static_cast<double>(rating_count_));
  HSGD_RETURN_IF_ERROR(
      matrix_.AppendGrown(ratings, new_rows, new_cols, &dirty_));
  dataset_.train.insert(dataset_.train.end(), ratings.begin(),
                        ratings.end());
  dataset_.num_rows = new_rows;
  dataset_.num_cols = new_cols;
  appended_nnz_ += static_cast<int64_t>(ratings.size());
  pending_nnz_ += static_cast<int64_t>(ratings.size());
  return Status::Ok();
}

Status Session::VisitQuiesced(const std::function<Status()>& fn) const {
  std::unique_lock<std::mutex> quiesce(epoch_mu_, std::try_to_lock);
  if (!quiesce.owns_lock()) {
    return Status::FailedPrecondition(
        "session is mid-epoch: factors are being mutated; retry at the "
        "epoch barrier");
  }
  return fn();
}

int Session::pending_dirty_blocks() const {
  std::lock_guard<std::mutex> quiesce(epoch_mu_);
  int count = 0;
  for (uint8_t d : dirty_) count += d != 0 ? 1 : 0;
  return count;
}

Status Session::RunToCompletion() {
  while (!Done()) {
    auto point = RunEpoch();
    if (!point.ok()) return point.status();
  }
  return Status::Ok();
}

TrainStats Session::stats() const {
  TrainStats stats;
  stats.sim.reached_target = reached_target_;
  stats.sim.seconds = clock_;
  stats.sim.stolen_by_gpus = scheduler_->stolen_by_gpus();
  stats.sim.stolen_by_cpus = scheduler_->stolen_by_cpus();
  stats.sim.block_tasks = total_tasks_;
  stats.sim.nnz_processed = total_nnz_processed_;
  switch (config_.algorithm) {
    case Algorithm::kCpuOnly: stats.sim.alpha = 0.0; break;
    case Algorithm::kGpuOnly: stats.sim.alpha = 1.0; break;
    case Algorithm::kHsgd:
      stats.sim.alpha =
          total_nnz_processed_ > 0
              ? static_cast<double>(gpu_nnz_) / total_nnz_processed_
              : 0.0;
      break;
    case Algorithm::kHsgdStar: stats.sim.alpha = planned_alpha_; break;
  }
  if (duration_count_ > 1) {
    const double mean =
        duration_sum_ / static_cast<double>(duration_count_);
    const double var = std::max(
        0.0,
        duration_sumsq_ / static_cast<double>(duration_count_) -
            mean * mean);
    stats.sim.update_rate_cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  }
  stats.wall.seconds = wall_seconds_;
  return stats;
}

// ---- Checkpoint / restore -------------------------------------------------

Status Session::SaveCheckpoint(const std::string& path,
                               uint64_t wal_seq) const {
  SessionCheckpoint ckpt;
  ckpt.config = config_;
  ckpt.dataset = FingerprintDataset(dataset_);
  ckpt.epochs_run = epochs_run_;
  ckpt.reached_target = reached_target_;
  ckpt.sim_clock = clock_;
  ckpt.wall_seconds = wall_seconds_;
  ckpt.block_tasks = total_tasks_;
  ckpt.gpu_nnz = gpu_nnz_;
  ckpt.total_nnz_processed = total_nnz_processed_;
  ckpt.duration_count = duration_count_;
  ckpt.duration_sum = duration_sum_;
  ckpt.duration_sumsq = duration_sumsq_;
  ckpt.scheduler_rng = scheduler_->rng_state();
  ckpt.stolen_by_gpus = scheduler_->stolen_by_gpus();
  ckpt.stolen_by_cpus = scheduler_->stolen_by_cpus();
  ckpt.growth_rng = growth_rng_.SaveState();
  ckpt.rating_sum = rating_sum_;
  ckpt.rating_count = rating_count_;
  ckpt.wal_seq = wal_seq;
  ckpt.gpu_streams.reserve(gpu_devices_.size());
  for (const auto& gpu : gpu_devices_) {
    ckpt.gpu_streams.push_back(gpu->stream_state());
  }
  ckpt.trace = trace_.points;
  // Dense (stride-free) factors: checkpoint layout is independent of the
  // SIMD padding, so files round-trip across kernel builds.
  ckpt.p = model_->DenseP();
  ckpt.q = model_->DenseQ();
  int64_t bytes = 0;
  Status status = WriteCheckpoint(path, ckpt, &bytes);
  if (status.ok()) {
    // Counter bumps through the (possibly null) handles; mutating the
    // external registry keeps this method observably const.
    obs::Increment(metric_.ckpt_writes);
    obs::Add(metric_.ckpt_bytes, bytes);
    if (obs_.trace != nullptr) {
      // Zero-width on the virtual clock (checkpoint IO is wall time, not
      // simulated time); the wall_ms arg carries the real timing.
      obs_.trace->Span("ckpt", "checkpoint", TraceTidCheckpoint(), clock_,
                       clock_,
                       {obs::TraceArg::Int("epoch", epochs_run_),
                        obs::TraceArg::Int("bytes", bytes)});
    }
  }
  return status;
}

StatusOr<std::unique_ptr<Session>> Session::Restore(const std::string& path,
                                                    Dataset dataset) {
  auto ckpt = ReadCheckpoint(path);
  if (!ckpt.ok()) return ckpt.status();
  DatasetFingerprint fp = FingerprintDataset(dataset);
  if (fp != ckpt->dataset) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint '%s' was written for a different dataset "
        "(stored %dx%d k=%d nnz=%lld, got %dx%d k=%d nnz=%lld)",
        path.c_str(), ckpt->dataset.num_rows, ckpt->dataset.num_cols,
        ckpt->dataset.k, static_cast<long long>(ckpt->dataset.train_nnz),
        fp.num_rows, fp.num_cols, fp.k,
        static_cast<long long>(fp.train_nnz)));
  }
  auto session = Create(std::move(dataset), ckpt->config);
  if (!session.ok()) return session.status();
  HSGD_RETURN_IF_ERROR((*session)->InstallCheckpoint(*ckpt));
  return session;
}

StatusOr<std::unique_ptr<Session>> Session::RestoreGrown(
    const std::string& path, Dataset warm_dataset,
    const std::vector<Ratings>& growth_batches) {
  auto ckpt = ReadCheckpoint(path);
  if (!ckpt.ok()) return ckpt.status();
  auto session = Create(std::move(warm_dataset), ckpt->config);
  if (!session.ok()) return session.status();
  for (const Ratings& batch : growth_batches) {
    HSGD_RETURN_IF_ERROR((*session)->AppendRatings(batch));
  }
  // The fingerprint is the exactness proof: warm data + replayed growth
  // must reconstruct byte-for-byte the dataset the checkpoint was saved
  // against, or the factors we are about to install describe different
  // data.
  DatasetFingerprint fp = FingerprintDataset((*session)->dataset_);
  if (fp != ckpt->dataset) {
    return Status::InvalidArgument(StrFormat(
        "replayed growth does not reconstruct the checkpointed dataset "
        "(stored %dx%d nnz=%lld, rebuilt %dx%d nnz=%lld) — WAL and "
        "checkpoint disagree",
        ckpt->dataset.num_rows, ckpt->dataset.num_cols,
        static_cast<long long>(ckpt->dataset.train_nnz), fp.num_rows,
        fp.num_cols, static_cast<long long>(fp.train_nnz)));
  }
  HSGD_RETURN_IF_ERROR((*session)->InstallCheckpoint(*ckpt));
  // Replayed appends marked their blocks dirty, but the checkpoint was
  // saved at an ingest-quiescent point: everything replayed is already
  // trained into the installed factors. Clear, or the first TrainDirty
  // after recovery would sweep blocks the uninterrupted run would not.
  std::fill((*session)->dirty_.begin(), (*session)->dirty_.end(),
            static_cast<uint8_t>(0));
  (*session)->pending_nnz_ = 0;
  return session;
}

Status Session::InstallCheckpoint(const SessionCheckpoint& ckpt) {
  if (ckpt.p.size() != model_->dense_p_size() ||
      ckpt.q.size() != model_->dense_q_size()) {
    return Status::InvalidArgument(
        "checkpoint factor matrices do not match the session's model "
        "dimensions");
  }
  if (ckpt.gpu_streams.size() != gpu_devices_.size()) {
    return Status::InvalidArgument(
        "checkpoint GPU count does not match the session's device fleet");
  }
  if (ckpt.epochs_run < 0 || ckpt.epochs_run > config_.max_epochs ||
      static_cast<size_t>(ckpt.epochs_run) != ckpt.trace.size()) {
    return Status::InvalidArgument(
        "checkpoint epoch counter disagrees with its trace");
  }
  if (ckpt.rating_count <= 0 || !std::isfinite(ckpt.rating_sum)) {
    return Status::InvalidArgument(
        "checkpoint growth state is corrupt (rating moments)");
  }
  model_->SetDense(ckpt.p, ckpt.q);
  scheduler_->set_rng_state(ckpt.scheduler_rng);
  scheduler_->set_steal_counters(ckpt.stolen_by_gpus, ckpt.stolen_by_cpus);
  // Growth state: Init seeded growth_rng_ fresh and recomputed the
  // rating moments from dataset stats — close, but FP-different from the
  // incremental accumulation the saved session carried. Overwrite with
  // the exact persisted values so post-restore appends draw the same
  // cold-row factors the uninterrupted run would have.
  growth_rng_.RestoreState(ckpt.growth_rng);
  rating_sum_ = ckpt.rating_sum;
  rating_count_ = ckpt.rating_count;
  for (size_t g = 0; g < gpu_devices_.size(); ++g) {
    gpu_devices_[g]->set_stream_state(ckpt.gpu_streams[g]);
  }
  trace_.points = ckpt.trace;
  epochs_run_ = ckpt.epochs_run;
  reached_target_ = ckpt.reached_target;
  clock_ = ckpt.sim_clock;
  wall_seconds_ = ckpt.wall_seconds;
  total_tasks_ = ckpt.block_tasks;
  gpu_nnz_ = ckpt.gpu_nnz;
  total_nnz_processed_ = ckpt.total_nnz_processed;
  duration_count_ = ckpt.duration_count;
  duration_sum_ = ckpt.duration_sum;
  duration_sumsq_ = ckpt.duration_sumsq;
  return Status::Ok();
}

}  // namespace hsgd
