// Session: the stateful training engine behind heterogeneous SGD matrix
// factorization. Where the legacy `Trainer::Train` ran to completion and
// threw its internal state away, a Session keeps the whole execution —
// scheduler, simulated device fleet, virtual clock, RNG streams, factor
// model — alive across epochs, so callers can:
//
//   - drive training stepwise (`RunEpoch()` advances one simulated epoch
//     and returns its TracePoint),
//   - watch progress without owning the loop (`EpochObserver`),
//   - inspect mid-run state (`Done()`, `stats()`, `model()`, `trace()`),
//   - persist and resume long runs (`SaveCheckpoint()` / `Restore()`,
//     bit-identical to an uninterrupted run — see core/checkpoint.h),
//   - serve the trained factors (core/recommender.h builds on `model()`).
//
// Real SGD arithmetic updates the factors (honest RMSE curves); a
// discrete-event loop over simulated CPU threads and GPUs decides when
// each block runs and what the virtual clock reads. Same seed + same
// config => bit-identical traces, whether the epochs were run in one
// process or across a checkpoint boundary.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/kernels/kernels.h"
#include "core/model.h"
#include "core/types.h"
#include "fault/fault_plan.h"
#include "sched/blocked_matrix.h"
#include "sched/scheduler.h"
#include "sim/cpu_device.h"
#include "sim/device_spec.h"
#include "sim/gpu_device.h"
#include "sim/pcie_link.h"
#include "sim/profiler.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hsgd {

class FaultInjector;  // fault/fault_injector.h

namespace obs {
class MetricsRegistry;  // obs/metrics.h
class Tracer;           // obs/trace.h
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// Borrowed observability sinks, attached at runtime via
/// Session::SetObservability. Like observers and fault plans they are
/// runtime state — never checkpointed, re-attach after Restore — and
/// strictly passive: attaching them (or not) leaves the simulation
/// bit-identical; they only record what happened.
struct Observability {
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* trace = nullptr;
};

enum class Algorithm {
  kCpuOnly = 0,
  kGpuOnly = 1,
  kHsgd = 2,
  kHsgdStar = 3,
};

const char* AlgorithmName(Algorithm algorithm);

struct HardwareConfig {
  int num_cpu_threads = 16;
  int num_gpus = 1;
  CpuDeviceSpec cpu;
  GpuDeviceSpec gpu;
  /// Lognormal sigma of the per-run device speed draw (run-to-run
  /// hardware variability; 0 disables it). The cost model always plans
  /// with nominal speeds — correcting the resulting misprediction is the
  /// dynamic phase's job (Table III).
  double speed_variability = 0.25;
};

/// What a session does when a device dies mid-run.
enum class DegradePolicy {
  /// Requeue the dead device's in-flight blocks, redistribute its work
  /// to the survivors, and keep training (default).
  kContinueDegraded = 0,
  /// Fail the epoch with a Status; the caller decides (e.g. restore the
  /// last autosave on a bigger fleet).
  kAbort = 1,
};

/// Fault-tolerance policy knobs. All defaults are inert: no autosave,
/// and the lease watchdog arms only when a block runs slower than a
/// healthy device could — a fault-free run never pays anything.
struct FaultPolicy {
  /// Autosave a checkpoint every N completed epochs (0 disables).
  int autosave_every = 0;
  std::string autosave_path;
  /// Retry-with-backoff for (auto)checkpoint IO failures.
  RetryOptions checkpoint_retry;
  /// A block lease expires when its completion takes longer than this
  /// multiple of the healthy-device estimate; the block is then revoked
  /// and requeued on a survivor. A device degraded by at least this
  /// factor is benched instead of leased new work. <= 0 disables the
  /// watchdog.
  double lease_deadline_factor = 8.0;
  DegradePolicy on_device_loss = DegradePolicy::kContinueDegraded;
};

/// Counters the fault machinery accumulates over a session's lifetime.
struct FaultStats {
  int devices_lost = 0;
  int64_t leases_revoked = 0;
  int64_t blocks_requeued = 0;
  /// Blocks dropped after failing on two different holders (skipped for
  /// the rest of their epoch; SGD tolerates the missing updates).
  int64_t blocks_lost = 0;
  int64_t transfer_faults = 0;
  int64_t checkpoint_failures = 0;
  int64_t checkpoint_retries = 0;
  int64_t autosave_failures = 0;
  /// True once any fault fired (the run is no longer fault-free).
  bool degraded = false;
};

struct TrainConfig {
  Algorithm algorithm = Algorithm::kHsgdStar;
  HardwareConfig hardware;
  int max_epochs = 30;
  uint64_t seed = 1;
  /// Stop as soon as test RMSE reaches the dataset's target (vs always
  /// running the full epoch budget).
  bool use_dataset_target = true;
  CostModelKind cost_model = CostModelKind::kOurs;
  /// HSGD*'s dynamic work-stealing phase (off = HSGD*-M).
  bool dynamic_scheduling = true;
  /// Real threads used for RMSE evaluation (not simulated).
  int eval_threads = 8;
  /// Compute-kernel variant for the real SGD/RMSE arithmetic. kAuto is
  /// resolved to the best usable variant at Create time and the RESOLVED
  /// kind is what `config()` reports and checkpoints persist — so a
  /// resumed run replays the same numerics bit-for-bit, and restoring on
  /// a machine that lacks the recorded kernel fails loudly instead of
  /// silently diverging.
  KernelKind kernel = KernelKind::kAuto;
  /// Micro-measure the chosen kernel's real update rate at the dataset's
  /// rank (core/kernels/calibrator.h) and override
  /// hardware.cpu.updates_per_sec_k128 with it, so the simulator's cost
  /// model plans with this machine's measured speed instead of the
  /// paper's testbed rate. The measured value (not the flag) is what
  /// checkpoints persist; a restored session never re-measures.
  bool calibrate = false;
  /// Fault-tolerance policy (autosave, checkpoint retry, lease
  /// watchdog, degradation). Scripted faults themselves are attached at
  /// runtime via Session::SetFaultPlan, not configured here.
  FaultPolicy fault;
};

struct TracePoint {
  int epoch = 0;
  SimTime time = 0.0;
  double test_rmse = 0.0;
  double train_rmse = 0.0;
};

struct Trace {
  std::vector<TracePoint> points;

  /// Simulated time of the first epoch whose test RMSE <= `rmse`.
  /// Returns kSimTimeNever when no epoch got there — in particular for an
  /// empty trace (no epochs run yet), which is a legal query, not an
  /// error. Debug builds additionally assert the points are
  /// epoch-monotone (strictly increasing epoch numbers).
  SimTime TimeToReach(double rmse) const;
};

/// Virtual-clock statistics: every field here is reproducible — same
/// seed + same config yields the same values, whether the epochs ran in
/// one process or across a checkpoint/restore boundary. Regression
/// tests and acceptance checks may compare these exactly.
struct SimStats {
  bool reached_target = false;
  SimTime seconds = 0.0;
  /// GPU share of the work: the cost model's split for HSGD*, the
  /// measured share otherwise.
  double alpha = 0.0;
  int64_t stolen_by_gpus = 0;
  int64_t stolen_by_cpus = 0;
  /// Coefficient of variation of per-block processing times — the
  /// Example 3 imbalance measure (high under uniform division with
  /// heterogeneous devices, low under HSGD*'s equal-time blocks).
  double update_rate_cv = 0.0;
  int64_t block_tasks = 0;
  /// Total SGD updates applied (one per rating visit), across full and
  /// incremental epochs — the equal-update-count axis for comparing
  /// online refresh against full retrain.
  int64_t nnz_processed = 0;
};

/// Wall-clock statistics: real time this process spent inside
/// Create/RunEpoch. Never reproducible — not across runs, machines, or
/// a checkpoint/restore boundary — so nothing that must be
/// deterministic may read from here.
struct WallStats {
  double seconds = 0.0;
};

/// The two stat families, kept in separate sub-structs so a glance at a
/// call site (`stats.sim.seconds` vs `stats.wall.seconds`) shows whether
/// it is on the reproducible side of the fence.
struct TrainStats {
  SimStats sim;
  WallStats wall;
};

struct TrainResult {
  Trace trace;
  TrainStats stats;
};

class Session;
struct SessionCheckpoint;  // core/checkpoint.h

/// Callback interface for watching a session's progress without owning
/// the epoch loop (bench output, serving-side refresh hooks, progress
/// bars). Observers are borrowed, not owned, and are invoked synchronously
/// from inside RunEpoch on the calling thread. They are not serialized
/// into checkpoints — re-attach after Restore.
class EpochObserver {
 public:
  virtual ~EpochObserver() = default;
  /// Fired before epoch `epoch` (1-based) starts simulating.
  virtual void OnEpochBegin(const Session& session, int epoch) {
    (void)session;
    (void)epoch;
  }
  /// Fired after the epoch's barrier + RMSE evaluation, with its trace
  /// point. The session's trace/stats already include this epoch.
  virtual void OnEpochEnd(const Session& session, const TracePoint& point) {
    (void)session;
    (void)point;
  }
  /// Fired at most once, when test RMSE first reaches the dataset target
  /// (only under config.use_dataset_target). Follows OnEpochEnd for the
  /// same epoch.
  virtual void OnTargetReached(const Session& session,
                               const TracePoint& point) {
    (void)session;
    (void)point;
  }
};

class Session {
 public:
  /// Validates `config` against `dataset` (Status on any inconsistency:
  /// empty data, non-positive rank, no workers for the chosen algorithm,
  /// too few columns for the HSGD* stripe layout, ...), then builds the
  /// full execution state: profiler-fit cost model and nonuniform grid
  /// for HSGD*, blocked matrix, scheduler, device fleet, factor model.
  /// The dataset is taken by value and owned by the session.
  static StatusOr<std::unique_ptr<Session>> Create(Dataset dataset,
                                                   TrainConfig config);

  /// Rebuilds a session from a checkpoint written by SaveCheckpoint.
  /// `dataset` must be the same data the checkpointed session was
  /// trained on (verified via a stored fingerprint); the TrainConfig is
  /// restored from the checkpoint. The resumed session reproduces the
  /// uninterrupted run's remaining TracePoints and final TrainStats
  /// bit-for-bit (wall_seconds excepted).
  static StatusOr<std::unique_ptr<Session>> Restore(const std::string& path,
                                                    Dataset dataset);

  /// Restore for a session that GREW after its warm start (online
  /// appends). Plain Restore cannot serve this case: Init cuts the block
  /// grid from the dataset it is handed, so building from the grown data
  /// yields different stratum boundaries than the crashed session's
  /// warm-grid-plus-trailing-growth — structurally different, so
  /// re-driven appends would diverge. This variant rebuilds the exact
  /// history instead: Create over the WARM dataset (the one the crashed
  /// session was created with), replay `growth_batches` through
  /// AppendRatings in their original ingest order (reproducing the
  /// trailing-stratum growth and block-tail bucketing bit for bit), then
  /// verify the grown dataset against the checkpoint's fingerprint and
  /// install the checkpoint. The replayed growth's dirty marks are
  /// cleared afterwards: the checkpoint contract (see
  /// stream::OnlineTrainer::Checkpoint) is that saves happen at
  /// ingest-quiescent points, so every replayed rating was already
  /// trained into the checkpointed factors.
  static StatusOr<std::unique_ptr<Session>> RestoreGrown(
      const std::string& path, Dataset warm_dataset,
      const std::vector<Ratings>& growth_batches);

  ~Session();

  /// Advance one simulated epoch: schedule and run every block through
  /// the device fleet in virtual time, apply the real SGD updates, then
  /// evaluate RMSE at the epoch barrier. Returns the epoch's TracePoint.
  /// FailedPrecondition once Done().
  StatusOr<TracePoint> RunEpoch();

  /// Drive RunEpoch until Done(). Equivalent to the legacy
  /// Trainer::Train loop.
  Status RunToCompletion();

  // ---- Online training (stream ingestion) -------------------------------
  //
  // The append path grows the session in place: new dense ids extend the
  // model's factor storage (cold rows drawn from the running mean-rating
  // init range), the grid's trailing strata absorb the new index space
  // (block count — and therefore the scheduler — is invariant), and the
  // touched blocks are marked dirty for the next incremental epoch.
  // Thread safety: appends, epochs, and VisitQuiesced all serialize on
  // the epoch barrier, so a snapshot can never observe factors mid-write.

  /// Append ratings (dense ids, as produced by io::IdMap::Assign) to the
  /// training set. Ids beyond the current dimensions grow the model and
  /// grid; ratings land at their block's tail in arrival order. Blocks
  /// while an epoch is in flight on another thread. InvalidArgument on
  /// negative ids (nothing is mutated).
  Status AppendRatings(const Ratings& ratings);

  /// Advance one incremental epoch over ONLY the blocks dirtied by
  /// AppendRatings since the last epoch. Counts as a normal epoch: it
  /// consumes epoch budget, pushes a TracePoint (RMSE over the full
  /// grown dataset), and decays the learning rate on the shared
  /// schedule. FailedPrecondition when nothing is pending or Done().
  StatusOr<TracePoint> RunIncrementalEpoch();

  /// Run `fn` while the session is guaranteed quiescent (no epoch in
  /// flight, no append mutating the factors). Never blocks: if training
  /// holds the barrier, fails fast with FailedPrecondition instead —
  /// callers retry at the next epoch boundary. This is the gate that
  /// makes serve::FactorSnapshot::FromSession torn-read-safe.
  Status VisitQuiesced(const std::function<Status()>& fn) const;

  /// Blocks dirtied by appends and not yet swept by an epoch.
  int pending_dirty_blocks() const;
  /// Appended ratings not yet covered by any epoch (staleness numerator).
  int64_t pending_nnz() const { return pending_nnz_; }
  /// Ratings appended over the session's lifetime.
  int64_t appended_nnz() const { return appended_nnz_; }

  /// True when the epoch budget is exhausted or (under
  /// config.use_dataset_target) the dataset's target RMSE was reached.
  bool Done() const;

  /// Completed epochs so far (also the `epoch` of the latest TracePoint).
  int epochs_run() const { return epochs_run_; }
  /// Virtual clock after the last completed epoch barrier.
  SimTime sim_clock() const { return clock_; }
  const Trace& trace() const { return trace_; }
  /// Aggregate statistics over the epochs run so far; callable mid-run.
  TrainStats stats() const;
  /// The live factor model (updated in place every epoch). Valid for the
  /// session's lifetime; pair with core/recommender.h for top-k serving.
  const Model& model() const { return *model_; }
  const Dataset& dataset() const { return dataset_; }
  /// Note: `config().kernel` is the resolved concrete kind (never kAuto)
  /// and `config().calibrate` is false once Create has applied it — the
  /// stored config reproduces this session without re-resolution.
  const TrainConfig& config() const { return config_; }
  /// The resolved compute-kernel variant this session runs with.
  KernelKind kernel() const { return config_.kernel; }
  /// The cost model's planned GPU work share (HSGD* only; 0 otherwise).
  double planned_alpha() const { return planned_alpha_; }

  /// Observers are borrowed; callers keep them alive while attached.
  void AddObserver(EpochObserver* observer);
  void RemoveObserver(EpochObserver* observer);

  /// Attach a scripted fault plan (validated against this session's
  /// fleet). Replaces any previous plan; un-fired specs of the old plan
  /// are forgotten. Like observers, plans are runtime state: they are
  /// NOT serialized into checkpoints — re-attach after Restore (specs
  /// whose trigger point is already past fire at the next epoch start).
  /// An empty (or never-firing) plan leaves the run bit-identical to a
  /// session with no plan at all.
  Status SetFaultPlan(const FaultPlan& plan);

  /// Fault-machinery counters accumulated so far (all zero, with
  /// degraded == false, for a fault-free run).
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Attach metrics/trace sinks (either pointer may be null). Replaces
  /// any previous attachment; pass {} to detach. Sinks are borrowed —
  /// callers keep them alive while attached — and passive: a session
  /// with sinks attached produces bit-identical training results to one
  /// without. Not checkpointed; re-attach after Restore.
  void SetObservability(const Observability& obs);

  /// The attached metrics registry, or nullptr when none is attached.
  /// Read-only from the caller's perspective: snapshot it, don't feed it.
  const obs::MetricsRegistry* metrics() const { return obs_.metrics; }

  /// True when a device loss under DegradePolicy::kAbort (or the loss
  /// of every worker) permanently failed the run. Done() reports true
  /// and RunEpoch refuses with FailedPrecondition.
  bool failed() const { return failed_; }

  /// Serialize the complete resumable state (config, dataset
  /// fingerprint, factor matrices, virtual clock, RNG streams, device
  /// pipeline state, trace, stat accumulators) to `path`. Written via a
  /// temp file + rename so a crash mid-write never corrupts an existing
  /// checkpoint. Only legal between epochs (which is the only time a
  /// session is observable anyway).
  Status SaveCheckpoint(const std::string& path) const {
    return SaveCheckpoint(path, 0);
  }

  /// SaveCheckpoint recording `wal_seq` as the WAL high-water mark
  /// applied to this session — the durability contract between the
  /// checkpoint and stream/wal.h's log. Restore carries it back out via
  /// ReadCheckpoint (the session itself has no WAL state); the growth
  /// RNG and exact rating moments ARE session state and round-trip with
  /// every save, so appends after a restore stay bit-identical to the
  /// uninterrupted run.
  Status SaveCheckpoint(const std::string& path, uint64_t wal_seq) const;

 private:
  /// A simulated worker: one CPU thread (cpu != nullptr) or one GPU
  /// (gpu != nullptr). Each CPU worker carries its own CpuDevice so
  /// per-thread health (straggler faults) stays per-thread.
  struct Worker {
    WorkerInfo info;
    GpuDevice* gpu = nullptr;
    CpuDevice* cpu = nullptr;
  };

  Session(Dataset dataset, TrainConfig config);

  /// Deterministic construction of the execution state from (dataset,
  /// config): device speed draw, cost model + grid, blocked matrix,
  /// scheduler, workers, model init. Shared by Create and Restore — a
  /// restored session first rebuilds exactly what Create built, then
  /// overwrites the evolving state from the checkpoint.
  Status Init();
  Status InstallCheckpoint(const SessionCheckpoint& checkpoint);

  /// Shared epoch body. `subset` selects the pending blocks (null = all,
  /// the classic RunEpoch). Takes ownership of the held epoch barrier;
  /// releases it after the trace point is recorded but before observers
  /// fire, so an OnEpochEnd callback may legally VisitQuiesced.
  StatusOr<TracePoint> RunEpochImpl(std::unique_lock<std::mutex> quiesce,
                                    const std::vector<int>* subset);

  void NotifyEpochBegin(int epoch);
  void NotifyEpochEnd(const TracePoint& point);
  void NotifyTargetReached(const TracePoint& point);

  /// Pre-resolved registry handles, filled in SetObservability so the
  /// event loop pays one null check per record — no name lookups on the
  /// hot path. All null while no registry is attached (the obs::Add /
  /// obs::Set / obs::Observe helpers are null-safe no-ops).
  struct MetricsHandles {
    obs::Counter* epochs = nullptr;
    obs::Counter* blocks = nullptr;
    obs::Counter* nnz = nullptr;
    obs::Counter* steals_by_gpu = nullptr;
    obs::Counter* steals_by_cpu = nullptr;
    obs::Counter* devices_lost = nullptr;
    obs::Counter* leases_revoked = nullptr;
    obs::Counter* blocks_requeued = nullptr;
    obs::Counter* blocks_lost = nullptr;
    obs::Counter* transfer_faults = nullptr;
    obs::Counter* ckpt_writes = nullptr;
    obs::Counter* ckpt_bytes = nullptr;
    obs::Counter* ckpt_failures = nullptr;
    obs::Counter* ckpt_retries = nullptr;
    obs::Counter* autosave_failures = nullptr;
    obs::Gauge* sim_clock = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* test_rmse = nullptr;
    obs::Gauge* train_rmse = nullptr;
    obs::Gauge* workers_alive = nullptr;
    obs::Histogram* block_seconds = nullptr;
    obs::Histogram* epoch_seconds = nullptr;
    /// Lifetime busy-sim-seconds gauge per worker (index = worker id).
    std::vector<obs::Gauge*> worker_busy;
  };

  /// Trace lane (tid) assignment: 0 = session row, worker w = w+1, then
  /// one lane each for checkpoint and fault events.
  int TraceTidForWorker(int w) const { return w + 1; }
  int TraceTidCheckpoint() const {
    return static_cast<int>(workers_.size()) + 1;
  }
  int TraceTidFault() const {
    return static_cast<int>(workers_.size()) + 2;
  }

  /// Push the barrier-time gauge values (clock, RMSE, per-worker busy
  /// time, steal deltas) into the registry; no-op when detached.
  void ExportBarrierMetrics(const TracePoint& point);

  Dataset dataset_;
  TrainConfig config_;

  // ---- Fixed execution state (deterministic from dataset + config) ----
  bool is_star_ = false;
  double planned_alpha_ = 0.0;
  const KernelOps* kernel_ops_ = nullptr;
  CpuDeviceSpec drawn_cpu_spec_;  // after the per-run variability draw
  GpuDeviceSpec drawn_gpu_spec_;
  BlockedMatrix matrix_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<CpuDevice>> cpu_devices_;
  std::unique_ptr<PcieLink> steal_link_;
  std::vector<std::unique_ptr<GpuDevice>> gpu_devices_;
  std::vector<Worker> workers_;
  std::unique_ptr<ThreadPool> eval_pool_;

  // ---- Evolving state (persisted by SaveCheckpoint) -------------------
  std::unique_ptr<Model> model_;
  SimTime clock_ = 0.0;
  int epochs_run_ = 0;
  bool reached_target_ = false;
  Trace trace_;
  int64_t total_tasks_ = 0;
  int64_t gpu_nnz_ = 0;
  int64_t total_nnz_processed_ = 0;
  /// Streaming moments of per-block processing times (count/sum/sum of
  /// squares) for update_rate_cv — streamed rather than stored so the
  /// stat survives checkpointing in O(1) space and resumes bit-exactly.
  int64_t duration_count_ = 0;
  double duration_sum_ = 0.0;
  double duration_sumsq_ = 0.0;
  double wall_seconds_ = 0.0;

  // ---- Fault machinery (runtime state, never checkpointed) ------------
  /// Devices killed by the injector or the watchdog stay dead for the
  /// session's lifetime; a restored session starts with everyone alive.
  std::vector<char> worker_dead_;
  int workers_alive_ = 0;
  std::unique_ptr<FaultInjector> injector_;
  FaultStats fault_stats_;
  bool failed_ = false;
  /// Jitter stream for checkpoint-retry backoff (stream 23); consumed
  /// only on IO failures, so fault-free runs never touch it.
  Rng retry_rng_{0, 23};

  // ---- Online-append state (runtime, never checkpointed) --------------
  /// The epoch barrier: held for the whole of RunEpochImpl (the factor
  /// buffers may be reallocated by a concurrent append, so even reads
  /// must exclude epochs) and by AppendRatings; try-locked by
  /// VisitQuiesced.
  mutable std::mutex epoch_mu_;
  /// Per-block dirty bits set by AppendRatings, cleared by any
  /// successful epoch (a full sweep covers every dirty block too).
  std::vector<uint8_t> dirty_;
  int64_t appended_nnz_ = 0;
  int64_t pending_nnz_ = 0;
  /// Running rating moments so cold-start factor init uses the mean of
  /// everything seen so far, matching what InitRandom would have drawn.
  double rating_sum_ = 0.0;
  int64_t rating_count_ = 0;
  /// Cold-row init stream (stream 29), disjoint from the model-init
  /// stream so appends never perturb the base initialization.
  Rng growth_rng_{0, 29};

  std::vector<EpochObserver*> observers_;

  // ---- Observability (runtime state, never checkpointed) --------------
  Observability obs_;
  MetricsHandles metric_;
  /// Scheduler steal totals already exported to the registry, so each
  /// barrier adds only the delta (totals survive checkpoints; exports
  /// restart at the attach point).
  int64_t steals_gpu_exported_ = 0;
  int64_t steals_cpu_exported_ = 0;
};

}  // namespace hsgd
