#include "core/trainer.h"

namespace hsgd {

StatusOr<TrainResult> Trainer::Train(const Dataset& ds,
                                     const TrainConfig& config) {
  auto session = Session::Create(ds, config);
  if (!session.ok()) return session.status();
  HSGD_RETURN_IF_ERROR((*session)->RunToCompletion());
  TrainResult result;
  result.trace = (*session)->trace();
  result.stats = (*session)->stats();
  return result;
}

}  // namespace hsgd
