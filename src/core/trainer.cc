#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "sched/star_scheduler.h"
#include "sched/uniform_scheduler.h"
#include "sim/cpu_device.h"
#include "sim/gpu_device.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace hsgd {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kCpuOnly: return "CPU-Only";
    case Algorithm::kGpuOnly: return "GPU-Only";
    case Algorithm::kHsgd: return "HSGD";
    case Algorithm::kHsgdStar: return "HSGD*";
  }
  return "unknown";
}

SimTime Trace::TimeToReach(double rmse) const {
  for (const TracePoint& p : points) {
    if (p.test_rmse <= rmse) return p.time;
  }
  return kSimTimeNever;
}

namespace {

struct SimWorker {
  WorkerInfo info;
  GpuDevice* gpu = nullptr;  // null => CPU thread
};

/// Heap events: a worker's task completing (kind 0, releases strata) or a
/// worker becoming ready to acquire (kind 1). Releases sort before
/// acquires at equal times so freed strata are visible; seq keeps the
/// order fully deterministic.
struct Event {
  SimTime time = 0.0;
  int kind = 1;
  int64_t seq = 0;
  int worker = 0;
  BlockTask task;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

int ClampStrata(int want, int64_t dim) {
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(want, dim)));
}

/// Resident column stripes per GPU under HSGD*. Two, not one: the GPU
/// finishes one stripe before opening the next, so a lagging GPU always
/// has a free (yet resident) stripe that idle CPU threads can steal from.
constexpr int kStripesPerGpu = 2;

}  // namespace

StatusOr<TrainResult> Trainer::Train(const Dataset& ds,
                                     const TrainConfig& config) {
  Stopwatch wall;
  if (ds.train.empty()) {
    return Status::InvalidArgument("dataset has no training ratings");
  }
  if (ds.num_rows <= 0 || ds.num_cols <= 0) {
    return Status::InvalidArgument("dataset has empty dimensions");
  }
  if (ds.params.k <= 0) {
    return Status::InvalidArgument("params.k must be positive");
  }
  if (config.max_epochs < 1) {
    return Status::InvalidArgument("max_epochs must be >= 1");
  }
  const Algorithm algo = config.algorithm;
  const int nc = config.hardware.num_cpu_threads;
  const int ng = config.hardware.num_gpus;
  const bool wants_cpu = algo != Algorithm::kGpuOnly;
  const bool wants_gpu = algo != Algorithm::kCpuOnly;
  if (wants_cpu && nc < 1) {
    return Status::InvalidArgument(
        StrFormat("%s needs at least 1 CPU thread, got %d",
                  AlgorithmName(algo), nc));
  }
  if (wants_gpu && ng < 1) {
    return Status::InvalidArgument(StrFormat(
        "%s needs at least 1 GPU, got %d", AlgorithmName(algo), ng));
  }

  const int k = ds.params.k;
  const int32_t rows = ds.num_rows;
  const int32_t cols = ds.num_cols;
  const int64_t n = ds.train_size();

  // Per-run device speed draw. The cost model below always plans with the
  // nominal specs — the gap between plan and reality is what the dynamic
  // phase corrects.
  Rng var_rng(config.seed, 17);
  CpuDeviceSpec cpu_spec = config.hardware.cpu;
  GpuDeviceSpec gpu_spec = config.hardware.gpu;
  if (config.hardware.speed_variability > 0.0) {
    cpu_spec.speed_factor *=
        std::exp(config.hardware.speed_variability * var_rng.Gaussian());
    gpu_spec.speed_factor *=
        std::exp(config.hardware.speed_variability * var_rng.Gaussian());
  }

  // ---- Block division and scheduler -------------------------------------
  Rng shuffle_rng(config.seed, 2);
  Grid grid;
  double planned_alpha = 0.0;
  const bool is_star = algo == Algorithm::kHsgdStar;
  if (is_star) {
    Profiler profiler(config.hardware.gpu, config.hardware.cpu, k);
    auto cost_model = profiler.BuildHsgdModel(ds);
    if (!cost_model.ok()) return cost_model.status();
    if (kStripesPerGpu * ng + nc > cols) {
      return Status::InvalidArgument(
          StrFormat("HSGD* needs %d column stripes but matrix has only %d "
                    "columns",
                    kStripesPerGpu * ng + nc, cols));
    }
    // Spare CPU stripes keep the pool over-decomposed: threads route
    // around locked columns, an idle GPU can steal from a *free* stripe
    // (stealing from a busy one could only displace its owner), and the
    // epoch tail stays parallel — with stripes ~= threads, the wind-down
    // convoys on the last few pending columns and CPU utilization craters.
    int spare = std::max(2, nc);
    spare = std::min<int64_t>(spare, cols - kStripesPerGpu * ng - nc);
    const int cpu_stripes = nc + std::max(0, spare);
    const int gpu_stripes = kStripesPerGpu * ng;
    // Row strata: enough for every worker to hold one with slack left
    // over (or the dynamic phase could never find a runnable block to
    // steal), up to 2x the worker count on big inputs — but never so many
    // that blocks collapse below a useful granule (tiny blocks drown in
    // kernel-launch overhead and CPU warm-up).
    const int64_t block_target = 600;
    const int64_t p_by_size =
        n / ((static_cast<int64_t>(gpu_stripes) + cpu_stripes) *
             block_target);
    const int p = ClampStrata(
        static_cast<int>(std::max<int64_t>(
            std::min<int64_t>(2 * (nc + ng), p_by_size), nc + ng + 2)),
        rows);
    AlphaQuery query;
    query.epoch_nnz = n;
    query.num_cpu_threads = nc;
    query.num_gpus = ng;
    query.row_strata = p;
    query.stripes_per_gpu = kStripesPerGpu;
    query.num_cpu_stripes = cpu_stripes;
    query.num_rows = rows;
    query.num_cols = cols;
    planned_alpha = cost_model->DecideAlpha(config.cost_model, query);
    std::vector<double> shares;
    shares.reserve(static_cast<size_t>(gpu_stripes + cpu_stripes));
    for (int g = 0; g < gpu_stripes; ++g) {
      shares.push_back(planned_alpha / gpu_stripes);
    }
    for (int t = 0; t < cpu_stripes; ++t) {
      shares.push_back((1.0 - planned_alpha) / cpu_stripes);
    }
    auto grid_or = BuildGridWithColShares(ds.train, rows, cols, p, shares);
    if (!grid_or.ok()) return grid_or.status();
    grid = *std::move(grid_or);
  } else {
    int want = algo == Algorithm::kCpuOnly ? nc
               : algo == Algorithm::kGpuOnly ? ng
                                             : nc + ng;
    auto grid_or = BuildBalancedGrid(ds.train, rows, cols,
                                     ClampStrata(want, rows),
                                     ClampStrata(want, cols));
    if (!grid_or.ok()) return grid_or.status();
    grid = *std::move(grid_or);
  }

  auto matrix_or = BlockedMatrix::Build(ds.train, grid, &shuffle_rng);
  if (!matrix_or.ok()) return matrix_or.status();
  BlockedMatrix matrix = *std::move(matrix_or);

  std::unique_ptr<Scheduler> scheduler;
  if (is_star) {
    StarSchedulerOptions opts;
    opts.num_gpu_stripes = kStripesPerGpu * ng;
    opts.num_cpu_stripes = grid.num_col_strata() - kStripesPerGpu * ng;
    opts.stripes_per_gpu = kStripesPerGpu;
    opts.dynamic = config.dynamic_scheduling;
    // Cost-aware gate on CPU-side stealing: an excursion into a GPU
    // stripe pays one D2H for the stripe's resident column factors.
    // That is worth it when a few stolen block-sweeps amortize the
    // transfer; when the factors outweigh the work (small blocks, fat
    // stripes) the "help" would lengthen the epoch instead.
    {
      PcieLink link(gpu_spec);
      CpuDevice probe(cpu_spec, k);
      const double gpu_block_nnz =
          planned_alpha * static_cast<double>(n) /
          (kStripesPerGpu * ng * grid.num_row_strata());
      const int64_t col_bytes =
          static_cast<int64_t>(grid.ColStratumWidth(0)) * k * 4;
      const double pull =
          link.TransferTime(col_bytes, TransferDirection::kDeviceToHost);
      const double sweep =
          probe.UpdateTime(static_cast<int64_t>(gpu_block_nnz));
      opts.allow_cpu_steals = pull < 3.0 * sweep;
    }
    scheduler = std::make_unique<StarScheduler>(
        &matrix, &matrix.grid(), opts, Rng(config.seed, 3));
  } else {
    scheduler = std::make_unique<UniformScheduler>(
        &matrix, &matrix.grid(), UniformSchedulerOptions{},
        Rng(config.seed, 3));
  }

  // ---- Simulated workers -------------------------------------------------
  CpuDevice cpu_device(cpu_spec, k);
  // PCIe cost of a CPU thread pulling a GPU-resident column stripe when
  // it steals from the GPU region (see the steal branch below).
  PcieLink steal_link(gpu_spec);
  std::vector<std::unique_ptr<GpuDevice>> gpu_devices;
  std::vector<SimWorker> workers;
  if (wants_cpu) {
    for (int t = 0; t < nc; ++t) {
      SimWorker w;
      w.info = {DeviceClass::kCpuThread, t,
                static_cast<int>(workers.size())};
      workers.push_back(w);
    }
  }
  if (wants_gpu) {
    for (int g = 0; g < ng; ++g) {
      gpu_devices.push_back(
          std::make_unique<GpuDevice>(gpu_spec, k, /*pipelined=*/true));
      SimWorker w;
      w.info = {DeviceClass::kGpu, g, static_cast<int>(workers.size())};
      w.gpu = gpu_devices.back().get();
      workers.push_back(w);
    }
  }
  const int num_workers = static_cast<int>(workers.size());

  // ---- Real model and evaluation ----------------------------------------
  RatingStats train_stats = ComputeStats(ds.train);
  Model model(rows, cols, k);
  Rng model_rng(config.seed, 1);
  model.InitRandom(&model_rng, train_stats.mean_rating);
  ThreadPool eval_pool(static_cast<size_t>(
      std::min(16, std::max(1, config.eval_threads))));

  // ---- Event-driven epochs ----------------------------------------------
  TrainResult result;
  SimTime clock = 0.0;
  std::vector<double> durations;
  int64_t gpu_nnz = 0;
  int64_t total_nnz_processed = 0;
  int64_t total_tasks = 0;
  bool reached = false;

  for (int epoch = 1; epoch <= config.max_epochs; ++epoch) {
    scheduler->BeginEpoch();
    const SimTime epoch_start = clock;

    // Resident-factor uploads. GPU-Only keeps everything in device memory
    // (one initial upload); HSGD* re-syncs each GPU's column stripe at
    // every epoch boundary.
    for (int g = 0; g < static_cast<int>(gpu_devices.size()); ++g) {
      int64_t bytes = 0;
      if (algo == Algorithm::kGpuOnly && epoch == 1) {
        // Every GPU keeps the full P and Q resident, so each pays the
        // full upload.
        bytes = (static_cast<int64_t>(rows) + cols) * k * 4;
      } else if (is_star) {
        for (int s = 0; s < kStripesPerGpu; ++s) {
          bytes += static_cast<int64_t>(
                       grid.ColStratumWidth(g * kStripesPerGpu + s)) *
                   k * 4;
        }
      }
      if (bytes > 0) gpu_devices[g]->Upload(epoch_start, bytes);
    }

    SgdHyper hyper;
    hyper.learning_rate = ds.params.learning_rate /
                          (1.0f + 0.05f * static_cast<float>(epoch - 1));
    hyper.lambda_p = ds.params.lambda_p;
    hyper.lambda_q = ds.params.lambda_q;

    std::priority_queue<Event, std::vector<Event>, EventLater> pq;
    int64_t seq = 0;
    for (int w = 0; w < num_workers; ++w) {
      Event e;
      e.time = epoch_start;
      e.kind = 1;
      e.seq = seq++;
      e.worker = w;
      pq.push(e);
    }
    std::vector<char> waiting(static_cast<size_t>(num_workers), 0);
    SimTime epoch_end = epoch_start;
    // Cross-device column-stripe coherence during the dynamic phase:
    // the first CPU steal from a GPU stripe pulls its resident column
    // factors to the host (one D2H per excursion, not per block); the
    // stripe is then dirty, and the owning GPU re-uploads it if it
    // comes back before the epoch-boundary sync.
    std::vector<char> stripe_on_host(
        static_cast<size_t>(is_star ? kStripesPerGpu * ng : 0), 0);
    std::vector<char> stripe_dirty(stripe_on_host.size(), 0);

    auto try_acquire = [&](int w, SimTime now) {
      auto task = scheduler->Acquire(workers[w].info, now);
      if (!task.has_value()) {
        if (!scheduler->EpochDone()) waiting[static_cast<size_t>(w)] = 1;
        return;
      }
      // The real update: the simulator decided *when*, the kernel does
      // the arithmetic.
      SgdUpdateBlock(&model, matrix.BlockRatings(task->block), hyper);

      SimTime finish, next_free, proc;
      if (workers[w].gpu != nullptr) {
        GpuWorkItem item;
        item.nnz = task->nnz;
        item.rows = grid.RowStratumWidth(task->row);
        // Column factors ride along unless resident: GPU-Only keeps all
        // of Q on device; HSGD* keeps the GPU's own stripe resident —
        // except when a stealing CPU dirtied the host copy, which costs
        // the GPU one re-upload of the stripe.
        bool resident_cols =
            algo == Algorithm::kGpuOnly ||
            (is_star &&
             task->col / kStripesPerGpu == workers[w].info.device_index &&
             task->col < kStripesPerGpu * ng);
        if (resident_cols && is_star &&
            stripe_dirty[static_cast<size_t>(task->col)]) {
          resident_cols = false;
          stripe_dirty[static_cast<size_t>(task->col)] = 0;
          stripe_on_host[static_cast<size_t>(task->col)] = 0;
        }
        item.cols = resident_cols ? 0 : grid.ColStratumWidth(task->col);
        if (algo == Algorithm::kGpuOnly) item.rows = 0;  // P resident too
        PipelineTiming t = workers[w].gpu->Process(now, item);

        // The worker is free to fetch its next block as soon as this
        // kernel launches — that H2D rides under the running kernel,
        // which is exactly the overlap Eq. 9 credits the GPU with.
        next_free = t.kernel_start;
        // Resident blocks release at kernel end: their column factors
        // never leave the device, and the row factors' D2H is tracked on
        // the device's transfer stream. Traveling (stolen / uniform)
        // blocks hold their strata until the factors are back on host.
        finish = resident_cols ? t.kernel_done : t.d2h_done;
        proc = t.kernel_done - t.h2d_start;
        gpu_nnz += task->nnz;
      } else {
        proc = cpu_device.UpdateTime(task->nnz);
        // A CPU thread stealing from a GPU-resident stripe must first
        // pull the current column factors off the device — one D2H per
        // excursion (later blocks of the same stripe reuse the host
        // copy); the stripe becomes dirty for the owning GPU.
        if (is_star && task->stolen && task->col < kStripesPerGpu * ng) {
          const size_t s = static_cast<size_t>(task->col);
          if (!stripe_on_host[s]) {
            const int64_t col_bytes =
                static_cast<int64_t>(grid.ColStratumWidth(task->col)) * k *
                4;
            proc += steal_link.TransferTime(
                col_bytes, TransferDirection::kDeviceToHost);
            stripe_on_host[s] = 1;
          }
          stripe_dirty[s] = 1;
        }
        finish = now + proc;
        next_free = finish;
      }
      durations.push_back(std::max(proc, 1e-12));
      ++total_tasks;
      total_nnz_processed += task->nnz;

      Event release;
      release.time = finish;
      release.kind = 0;
      release.seq = seq++;
      release.worker = w;
      release.task = *task;
      pq.push(release);
      Event ready;
      ready.time = next_free;
      ready.kind = 1;
      ready.seq = seq++;
      ready.worker = w;
      pq.push(ready);
    };

    while (!scheduler->EpochDone()) {
      HSGD_CHECK(!pq.empty())
          << "simulation deadlock: pending blocks but no events";
      Event e = pq.top();
      pq.pop();
      if (e.kind == 0) {
        scheduler->Release(workers[e.worker].info, e.task, e.time);
        epoch_end = std::max(epoch_end, e.time);
        // Freed strata may unblock starved workers.
        for (int w = 0; w < num_workers; ++w) {
          if (!waiting[static_cast<size_t>(w)]) continue;
          waiting[static_cast<size_t>(w)] = 0;
          Event retry;
          retry.time = e.time;
          retry.kind = 1;
          retry.seq = seq++;
          retry.worker = w;
          pq.push(retry);
        }
      } else {
        try_acquire(e.worker, e.time);
      }
    }
    clock = epoch_end;  // epoch barrier: evaluate, then start together

    double train_rmse = Rmse(model, ds.train, &eval_pool);
    double test_rmse =
        ds.test.empty() ? train_rmse : Rmse(model, ds.test, &eval_pool);
    TracePoint point;
    point.epoch = epoch;
    point.time = clock;
    point.test_rmse = test_rmse;
    point.train_rmse = train_rmse;
    result.trace.points.push_back(point);
    if (config.use_dataset_target && test_rmse <= ds.target_rmse) {
      reached = true;
      break;
    }
  }

  // ---- Stats -------------------------------------------------------------
  TrainStats& stats = result.stats;
  stats.reached_target = reached;
  stats.sim_seconds = clock;
  stats.stolen_by_gpus = scheduler->stolen_by_gpus();
  stats.stolen_by_cpus = scheduler->stolen_by_cpus();
  stats.block_tasks = total_tasks;
  switch (algo) {
    case Algorithm::kCpuOnly: stats.alpha = 0.0; break;
    case Algorithm::kGpuOnly: stats.alpha = 1.0; break;
    case Algorithm::kHsgd:
      stats.alpha = total_nnz_processed > 0
                        ? static_cast<double>(gpu_nnz) / total_nnz_processed
                        : 0.0;
      break;
    case Algorithm::kHsgdStar: stats.alpha = planned_alpha; break;
  }
  if (durations.size() > 1) {
    double mean = 0.0;
    for (double d : durations) mean += d;
    mean /= static_cast<double>(durations.size());
    double var = 0.0;
    for (double d : durations) var += (d - mean) * (d - mean);
    var /= static_cast<double>(durations.size());
    stats.update_rate_cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  }
  stats.wall_seconds = wall.Seconds();
  return result;
}

}  // namespace hsgd
