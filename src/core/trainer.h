// Trainer: runs heterogeneous SGD matrix factorization end to end in
// simulated time. Real SGD arithmetic updates the factors (honest RMSE
// curves); a discrete-event loop over simulated CPU threads and GPUs
// decides when each block runs and what the virtual clock reads.
//
// Algorithms (the paper's comparison set):
//   kCpuOnly   - nc threads on a balanced nc x nc grid.
//   kGpuOnly   - GPUs only, factors resident in device memory.
//   kHsgd      - uniform division, GPU treated as one more worker.
//   kHsgdStar  - nonuniform division from the profiler-driven cost model,
//                plus the dynamic work-stealing phase.

#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"
#include "core/types.h"
#include "sim/device_spec.h"
#include "sim/profiler.h"
#include "util/status.h"

namespace hsgd {

enum class Algorithm {
  kCpuOnly = 0,
  kGpuOnly = 1,
  kHsgd = 2,
  kHsgdStar = 3,
};

const char* AlgorithmName(Algorithm algorithm);

struct HardwareConfig {
  int num_cpu_threads = 16;
  int num_gpus = 1;
  CpuDeviceSpec cpu;
  GpuDeviceSpec gpu;
  /// Lognormal sigma of the per-run device speed draw (run-to-run
  /// hardware variability; 0 disables it). The cost model always plans
  /// with nominal speeds — correcting the resulting misprediction is the
  /// dynamic phase's job (Table III).
  double speed_variability = 0.25;
};

struct TrainConfig {
  Algorithm algorithm = Algorithm::kHsgdStar;
  HardwareConfig hardware;
  int max_epochs = 30;
  uint64_t seed = 1;
  /// Stop as soon as test RMSE reaches the dataset's target (vs always
  /// running the full epoch budget).
  bool use_dataset_target = true;
  CostModelKind cost_model = CostModelKind::kOurs;
  /// HSGD*'s dynamic work-stealing phase (off = HSGD*-M).
  bool dynamic_scheduling = true;
  /// Real threads used for RMSE evaluation (not simulated).
  int eval_threads = 8;
};

struct TracePoint {
  int epoch = 0;
  SimTime time = 0.0;
  double test_rmse = 0.0;
  double train_rmse = 0.0;
};

struct Trace {
  std::vector<TracePoint> points;

  /// Simulated time of the first epoch whose test RMSE <= `rmse`;
  /// kSimTimeNever when no epoch got there.
  SimTime TimeToReach(double rmse) const;
};

struct TrainStats {
  bool reached_target = false;
  SimTime sim_seconds = 0.0;
  /// GPU share of the work: the cost model's split for HSGD*, the
  /// measured share otherwise.
  double alpha = 0.0;
  int64_t stolen_by_gpus = 0;
  int64_t stolen_by_cpus = 0;
  /// Coefficient of variation of per-block processing times — the
  /// Example 3 imbalance measure (high under uniform division with
  /// heterogeneous devices, low under HSGD*'s equal-time blocks).
  double update_rate_cv = 0.0;
  int64_t block_tasks = 0;
  double wall_seconds = 0.0;  // real time spent, for curiosity
};

struct TrainResult {
  Trace trace;
  TrainStats stats;
};

class Trainer {
 public:
  static StatusOr<TrainResult> Train(const Dataset& ds,
                                     const TrainConfig& config);
};

}  // namespace hsgd
