// Legacy one-shot training facade.
//
// DEPRECATED: Trainer::Train is a thin wrapper that creates an
// hsgd::Session, drives it to completion, and returns the final trace and
// stats. New code should use core/session.h directly — it exposes the
// same engine stepwise (RunEpoch), with observers, mid-run inspection,
// checkpoint/resume (core/checkpoint.h), and a serving facade over the
// trained factors (core/recommender.h). This header remains so existing
// callers keep compiling; the config/trace/stats vocabulary now lives in
// core/session.h.

#pragma once

#include "core/dataset.h"
#include "core/session.h"
#include "util/status.h"

namespace hsgd {

class Trainer {
 public:
  /// Runs a full training session to completion (copying `ds` into the
  /// session) and returns its trace + stats. Equivalent to
  /// Session::Create + RunToCompletion; prefer the Session API.
  static StatusOr<TrainResult> Train(const Dataset& ds,
                                     const TrainConfig& config);
};

}  // namespace hsgd
