// Fundamental value types shared by every layer: simulated time, ratings,
// and small statistics over rating sets.

#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace hsgd {

/// Virtual seconds on the simulator clock (not wall time).
using SimTime = double;

/// Sentinel for "a target was never reached" (compare with >=).
inline constexpr SimTime kSimTimeNever = 1e30;

/// One observed matrix entry: row `u` (user), column `v` (item), value `r`.
struct Rating {
  int32_t u = 0;
  int32_t v = 0;
  float r = 0.0f;
};

using Ratings = std::vector<Rating>;

/// Fisher-Yates shuffle with the library Rng (deterministic per seed).
inline void ShuffleRatings(Ratings* ratings, Rng* rng) {
  for (size_t i = ratings->size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->UniformInt(static_cast<int64_t>(i)));
    Rating tmp = (*ratings)[i - 1];
    (*ratings)[i - 1] = (*ratings)[j];
    (*ratings)[j] = tmp;
  }
}

struct RatingStats {
  double mean_rating = 0.0;
  double stddev = 0.0;
  double min_rating = 0.0;
  double max_rating = 0.0;
};

RatingStats ComputeStats(const Ratings& ratings);

}  // namespace hsgd
