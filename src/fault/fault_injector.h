// Deterministic firing engine for a FaultPlan.
//
// The session polls the injector at epoch start and after every block
// release; a spec fires exactly once, when the run first reaches its
// (epoch, release-fraction) trigger point. Because the trigger is
// counted in *released blocks* — a quantity the discrete-event trace
// makes identical for a given seed — the same plan fires at the same
// point of the same trace on every machine and thread count.
//
// Checkpoint faults are not released-block-triggered: autosave consumes
// them via ConsumeCheckpointFault at each write attempt once their
// epoch has arrived.

#pragma once

#include <cmath>
#include <vector>

#include "fault/fault_plan.h"

namespace hsgd {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), fired_(plan_.specs.size(), 0) {}

  /// Arm the injector for an epoch. `blocks_total` is the number of
  /// non-empty blocks the epoch will release (the denominator for
  /// at_fraction triggers).
  void BeginEpoch(int epoch, int blocks_total) {
    epoch_ = epoch;
    blocks_total_ = blocks_total;
  }

  /// Returns the device-fault specs newly triggered now that
  /// `blocks_released` blocks of the current epoch have been released,
  /// in plan order. Checkpoint faults never fire here.
  std::vector<const FaultSpec*> Poll(int blocks_released) {
    std::vector<const FaultSpec*> fired;
    for (size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultSpec& spec = plan_.specs[i];
      if (fired_[i] || spec.kind == FaultKind::kCheckpointFault) continue;
      if (epoch_ < spec.epoch) continue;
      if (epoch_ == spec.epoch) {
        const int threshold = static_cast<int>(
            std::ceil(spec.at_fraction * blocks_total_));
        if (blocks_released < threshold) continue;
      }
      // epoch_ > spec.epoch: the trigger point is in the past (e.g. the
      // run was restored beyond it); fire immediately rather than never.
      fired_[i] = 1;
      fired.push_back(&spec);
    }
    return fired;
  }

  /// True (and consumes one failure) when a checkpoint write attempted
  /// during `epoch` should fail. Each kCheckpointFault spec supplies
  /// `count` consecutive failures starting at its epoch.
  bool ConsumeCheckpointFault(int epoch) {
    for (size_t i = 0; i < plan_.specs.size(); ++i) {
      FaultSpec& spec = plan_.specs[i];
      if (spec.kind != FaultKind::kCheckpointFault) continue;
      if (epoch < spec.epoch || spec.count <= 0) continue;
      --spec.count;
      if (spec.count == 0) fired_[i] = 1;
      return true;
    }
    return false;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::vector<char> fired_;
  int epoch_ = 0;
  int blocks_total_ = 0;
};

}  // namespace hsgd
