#include "fault/fault_plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hsgd {
namespace {

// Small cursor over one clause; all Eat* helpers advance on success.
struct Cursor {
  const char* p;
  const char* end;

  bool AtEnd() const { return p >= end; }
  bool EatLiteral(const char* lit) {
    const char* q = p;
    for (const char* l = lit; *l; ++l, ++q) {
      if (q >= end || *q != *l) return false;
    }
    p = q;
    return true;
  }
  bool EatInt(int* out) {
    char* after = nullptr;
    long v = std::strtol(p, &after, 10);
    if (after == p || after > end) return false;
    *out = static_cast<int>(v);
    p = after;
    return true;
  }
  bool EatDouble(double* out) {
    char* after = nullptr;
    double v = std::strtod(p, &after);
    if (after == p || after > end) return false;
    *out = v;
    p = after;
    return true;
  }
};

Status ClauseError(const std::string& clause, const char* what) {
  return Status::InvalidArgument("fault plan clause \"" + clause +
                                 "\": " + what);
}

// Parses the trailing `@eN[+F][xS][forD][nC]` tail shared by all kinds.
// Serve kinds spell the trigger `@r<round>` (same field, different
// clock) and use `x`/`for`/`n` per the header's table.
Status ParseTail(Cursor* c, const std::string& clause, FaultSpec* spec) {
  const bool serve = IsServeFault(spec->kind);
  if (serve) {
    if (!c->EatLiteral("@r")) {
      return ClauseError(clause, "expected @r<round>");
    }
  } else if (!c->EatLiteral("@e")) {
    return ClauseError(clause, "expected @e<epoch>");
  }
  if (!c->EatInt(&spec->epoch) || spec->epoch < 1) {
    return ClauseError(clause, serve
                                   ? "round must be a positive integer"
                                   : "epoch must be a positive integer");
  }
  if (c->EatLiteral("+")) {
    if (serve) {
      return ClauseError(clause, "+<fraction> only applies to @e kinds");
    }
    if (!c->EatDouble(&spec->at_fraction) || spec->at_fraction < 0.0 ||
        spec->at_fraction > 1.0) {
      return ClauseError(clause, "fraction must be in [0,1]");
    }
  }
  if (c->EatLiteral("x")) {
    if (spec->kind != FaultKind::kStraggler &&
        spec->kind != FaultKind::kQueryStorm &&
        spec->kind != FaultKind::kSlowShard) {
      return ClauseError(clause,
                         "x<factor> only applies to slow:/storm/slowshard:");
    }
    if (!c->EatDouble(&spec->slowdown) || spec->slowdown <= 1.0) {
      return ClauseError(clause, "slowdown must be > 1");
    }
  }
  if (c->EatLiteral("for")) {
    if (spec->kind != FaultKind::kStraggler &&
        spec->kind != FaultKind::kQueryStorm &&
        spec->kind != FaultKind::kSlowShard) {
      return ClauseError(
          clause, "for<duration> only applies to slow:/storm/slowshard:");
    }
    if (!c->EatDouble(&spec->duration) || spec->duration <= 0.0) {
      return ClauseError(clause, "duration must be > 0");
    }
  }
  if (c->EatLiteral("n")) {
    if (spec->kind != FaultKind::kLinkFault &&
        spec->kind != FaultKind::kCheckpointFault &&
        spec->kind != FaultKind::kWalIo &&
        spec->kind != FaultKind::kPublishPoison) {
      return ClauseError(clause,
                         "n<count> only applies to link:/ckpt/walio/poison");
    }
    if (!c->EatInt(&spec->count) || spec->count < 1) {
      return ClauseError(clause, "count must be a positive integer");
    }
  }
  if (!c->AtEnd()) return ClauseError(clause, "trailing garbage");
  return Status::Ok();
}

Status ParseDevice(Cursor* c, const std::string& clause, FaultSpec* spec) {
  if (c->EatLiteral("gpu")) {
    spec->device_class = DeviceClass::kGpu;
  } else if (c->EatLiteral("cpu")) {
    spec->device_class = DeviceClass::kCpuThread;
  } else {
    return ClauseError(clause, "expected gpu<i> or cpu<i> target");
  }
  if (!c->EatInt(&spec->device_index) || spec->device_index < 0) {
    return ClauseError(clause, "device index must be >= 0");
  }
  return Status::Ok();
}

StatusOr<FaultSpec> ParseClause(const std::string& clause) {
  Cursor c{clause.data(), clause.data() + clause.size()};
  FaultSpec spec;
  if (c.EatLiteral("crash:")) {
    HSGD_RETURN_IF_ERROR(ParseDevice(&c, clause, &spec));
    spec.kind = spec.device_class == DeviceClass::kGpu
                    ? FaultKind::kGpuCrash
                    : FaultKind::kCpuCrash;
  } else if (c.EatLiteral("slow:")) {
    spec.kind = FaultKind::kStraggler;
    HSGD_RETURN_IF_ERROR(ParseDevice(&c, clause, &spec));
  } else if (c.EatLiteral("link:")) {
    spec.kind = FaultKind::kLinkFault;
    HSGD_RETURN_IF_ERROR(ParseDevice(&c, clause, &spec));
    if (spec.device_class != DeviceClass::kGpu) {
      return ClauseError(clause, "link: targets a GPU's PCIe link");
    }
  } else if (c.EatLiteral("ckpt")) {
    spec.kind = FaultKind::kCheckpointFault;
  } else if (c.EatLiteral("poison")) {
    spec.kind = FaultKind::kPublishPoison;
  } else if (c.EatLiteral("walio")) {
    spec.kind = FaultKind::kWalIo;
  } else if (c.EatLiteral("storm")) {
    spec.kind = FaultKind::kQueryStorm;
  } else if (c.EatLiteral("slowshard:")) {
    spec.kind = FaultKind::kSlowShard;
    spec.device_class = DeviceClass::kCpuThread;  // shard index, not a device
    if (!c.EatInt(&spec.device_index) || spec.device_index < 0) {
      return ClauseError(clause, "shard index must be >= 0");
    }
  } else {
    return ClauseError(clause,
                       "unknown kind (crash:/slow:/link:/ckpt/"
                       "poison/walio/storm/slowshard:)");
  }
  HSGD_RETURN_IF_ERROR(ParseTail(&c, clause, &spec));
  return spec;
}

void AppendFraction(std::string* out, double frac) {
  if (frac <= 0.0) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "+%g", frac);
  *out += buf;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGpuCrash: return "gpu-crash";
    case FaultKind::kCpuCrash: return "cpu-crash";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kLinkFault: return "link-fault";
    case FaultKind::kCheckpointFault: return "checkpoint-fault";
    case FaultKind::kPublishPoison: return "publish-poison";
    case FaultKind::kWalIo: return "wal-io";
    case FaultKind::kQueryStorm: return "query-storm";
    case FaultKind::kSlowShard: return "slow-shard";
  }
  return "unknown";
}

bool IsServeFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPublishPoison:
    case FaultKind::kWalIo:
    case FaultKind::kQueryStorm:
    case FaultKind::kSlowShard:
      return true;
    default:
      return false;
  }
}

void SplitFaultPlan(const FaultPlan& plan, FaultPlan* train,
                    FaultPlan* serve) {
  for (const FaultSpec& spec : plan.specs) {
    FaultPlan* half = IsServeFault(spec.kind) ? serve : train;
    if (half != nullptr) half->specs.push_back(spec);
  }
}

std::string FaultSpec::ToString() const {
  std::string out;
  char buf[64];
  const char* dev =
      device_class == DeviceClass::kGpu ? "gpu" : "cpu";
  switch (kind) {
    case FaultKind::kGpuCrash:
    case FaultKind::kCpuCrash:
      std::snprintf(buf, sizeof(buf), "crash:%s%d@e%d", dev, device_index,
                    epoch);
      out = buf;
      AppendFraction(&out, at_fraction);
      break;
    case FaultKind::kStraggler:
      std::snprintf(buf, sizeof(buf), "slow:%s%d@e%d", dev, device_index,
                    epoch);
      out = buf;
      AppendFraction(&out, at_fraction);
      std::snprintf(buf, sizeof(buf), "x%g", slowdown);
      out += buf;
      if (duration > 0.0) {
        std::snprintf(buf, sizeof(buf), "for%g", duration);
        out += buf;
      }
      break;
    case FaultKind::kLinkFault:
      std::snprintf(buf, sizeof(buf), "link:gpu%d@e%d", device_index,
                    epoch);
      out = buf;
      AppendFraction(&out, at_fraction);
      std::snprintf(buf, sizeof(buf), "n%d", count);
      out += buf;
      break;
    case FaultKind::kCheckpointFault:
      std::snprintf(buf, sizeof(buf), "ckpt@e%d", epoch);
      out = buf;
      AppendFraction(&out, at_fraction);
      std::snprintf(buf, sizeof(buf), "n%d", count);
      out += buf;
      break;
    case FaultKind::kPublishPoison:
      std::snprintf(buf, sizeof(buf), "poison@r%dn%d", epoch, count);
      out = buf;
      break;
    case FaultKind::kWalIo:
      std::snprintf(buf, sizeof(buf), "walio@r%dn%d", epoch, count);
      out = buf;
      break;
    case FaultKind::kQueryStorm:
      std::snprintf(buf, sizeof(buf), "storm@r%dx%g", epoch, slowdown);
      out = buf;
      if (duration > 0.0) {
        std::snprintf(buf, sizeof(buf), "for%g", duration);
        out += buf;
      }
      break;
    case FaultKind::kSlowShard:
      std::snprintf(buf, sizeof(buf), "slowshard:%d@r%dx%g", device_index,
                    epoch, slowdown);
      out = buf;
      if (duration > 0.0) {
        std::snprintf(buf, sizeof(buf), "for%g", duration);
        out += buf;
      }
      break;
  }
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultSpec& spec : specs) {
    if (!out.empty()) out += ";";
    out += spec.ToString();
  }
  return out;
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  size_t start = 0;
  while (start <= text.size()) {
    size_t sep = text.find(';', start);
    if (sep == std::string::npos) sep = text.size();
    size_t a = start, b = sep;
    while (a < b && std::isspace(static_cast<unsigned char>(text[a]))) ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(text[b - 1]))) {
      --b;
    }
    if (b > a) {
      StatusOr<FaultSpec> spec = ParseClause(text.substr(a, b - a));
      if (!spec.ok()) return spec.status();
      plan.specs.push_back(spec.value());
    }
    start = sep + 1;
  }
  return plan;
}

}  // namespace hsgd
