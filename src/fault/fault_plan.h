// Scripted, deterministic fault plans for the simulated fleet.
//
// A FaultPlan is a list of fault events, each pinned to an (epoch,
// fraction-of-blocks-released) point in the run so that a given plan +
// seed reproduces the exact same failure trace on any machine or thread
// count. The text syntax (one event per `;`-separated clause):
//
//   crash:gpu0@e3+0.5        kill GPU 0 when epoch 3 is 50% released
//   crash:cpu2@e2            kill CPU thread 2 at the start of epoch 2
//   slow:gpu1@e2+0.25x8for0.5  8x slowdown for 0.5 sim-seconds
//   slow:cpu0@e1x16          16x slowdown for the rest of the run
//   link:gpu0@e2+0.1n4       next 4 PCIe transfers on GPU 0's link fail
//   ckpt@e2n3                3 checkpoint writes fail, starting epoch 2
//
// `@eN` is the 1-based epoch, `+F` the release fraction within it
// (default 0 = epoch start). `x` is the slowdown factor, `for` the
// degraded window in simulated seconds (omitted = permanent), `n` a
// count of transfers/writes to fail.
//
// Serve/stream kinds extend the grammar to the online path. Their
// trigger clock is the PUBLISH ROUND of the serve loop (`@rN`, 1-based —
// the train kinds' epoch field, reinterpreted), their durations count
// rounds, and they are fired by fault/serve_injector.h, never by the
// session (Session::SetFaultPlan rejects them):
//
//   poison@r3n2              poison the snapshots published in rounds
//                            3..4 (NaN factors; n = publishes, default 1)
//   walio@r2n4               next 4 WAL appends fail, starting round 2
//   storm@r4x8for2           8x client load for rounds 4..5
//   slowshard:1@r5x16for3    serve shard 1 stalls 16x for rounds 5..7

#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "sched/scheduler.h"
#include "util/status.h"

namespace hsgd {

enum class FaultKind {
  kGpuCrash = 0,
  kCpuCrash = 1,
  kStraggler = 2,     // transient (or permanent) slowdown
  kLinkFault = 3,     // next `count` PCIe transfers fail-and-retry
  kCheckpointFault = 4,  // next `count` checkpoint writes fail
  // Serve/stream kinds (round-triggered; see file comment).
  kPublishPoison = 5,  // next `count` published snapshots carry NaNs
  kWalIo = 6,          // next `count` WAL appends fail
  kQueryStorm = 7,     // client load multiplied for a round window
  kSlowShard = 8,      // one serve shard stalls for a round window
};

const char* FaultKindName(FaultKind kind);

/// True for the kinds fired by the serve-loop injector
/// (fault/serve_injector.h) rather than the training session.
bool IsServeFault(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kGpuCrash;
  /// Target device (unused for kCheckpointFault and the serve kinds —
  /// except kSlowShard, which reads device_index as the shard).
  DeviceClass device_class = DeviceClass::kGpu;
  int device_index = 0;
  /// 1-based epoch (train kinds) or publish round (serve kinds) the
  /// fault arms in.
  int epoch = 1;
  /// Fires once this fraction of the epoch's blocks have been released
  /// (0.0 = epoch start). Train kinds only.
  double at_fraction = 0.0;
  /// kStraggler / kQueryStorm / kSlowShard: multiplicative factor (> 1).
  double slowdown = 8.0;
  /// kStraggler: degraded window in sim-seconds; kQueryStorm /
  /// kSlowShard: window in publish rounds. <= 0 means permanent.
  double duration = 0.0;
  /// kLinkFault / kCheckpointFault / kWalIo / kPublishPoison: how many
  /// operations fail (or publishes are poisoned).
  int count = 1;

  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  std::string ToString() const;

  /// Parse the `;`-separated clause syntax above. Whitespace around
  /// clauses is ignored; an empty string yields an empty plan.
  static StatusOr<FaultPlan> Parse(const std::string& text);
};

/// Split a mixed plan into its session half (crash/slow/link/ckpt, fed
/// to Session::SetFaultPlan) and its serve half (poison/walio/storm/
/// slowshard, fed to ServeFaultInjector) — one script drives the whole
/// chaos scenario. Either output may be null to discard that half.
void SplitFaultPlan(const FaultPlan& plan, FaultPlan* train,
                    FaultPlan* serve);

}  // namespace hsgd
