// Scripted, deterministic fault plans for the simulated fleet.
//
// A FaultPlan is a list of fault events, each pinned to an (epoch,
// fraction-of-blocks-released) point in the run so that a given plan +
// seed reproduces the exact same failure trace on any machine or thread
// count. The text syntax (one event per `;`-separated clause):
//
//   crash:gpu0@e3+0.5        kill GPU 0 when epoch 3 is 50% released
//   crash:cpu2@e2            kill CPU thread 2 at the start of epoch 2
//   slow:gpu1@e2+0.25x8for0.5  8x slowdown for 0.5 sim-seconds
//   slow:cpu0@e1x16          16x slowdown for the rest of the run
//   link:gpu0@e2+0.1n4       next 4 PCIe transfers on GPU 0's link fail
//   ckpt@e2n3                3 checkpoint writes fail, starting epoch 2
//
// `@eN` is the 1-based epoch, `+F` the release fraction within it
// (default 0 = epoch start). `x` is the slowdown factor, `for` the
// degraded window in simulated seconds (omitted = permanent), `n` a
// count of transfers/writes to fail.

#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "sched/scheduler.h"
#include "util/status.h"

namespace hsgd {

enum class FaultKind {
  kGpuCrash = 0,
  kCpuCrash = 1,
  kStraggler = 2,     // transient (or permanent) slowdown
  kLinkFault = 3,     // next `count` PCIe transfers fail-and-retry
  kCheckpointFault = 4,  // next `count` checkpoint writes fail
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kGpuCrash;
  /// Target device (unused for kCheckpointFault).
  DeviceClass device_class = DeviceClass::kGpu;
  int device_index = 0;
  /// 1-based epoch the fault arms in.
  int epoch = 1;
  /// Fires once this fraction of the epoch's blocks have been released
  /// (0.0 = epoch start).
  double at_fraction = 0.0;
  /// kStraggler: multiplicative slowdown (> 1).
  double slowdown = 8.0;
  /// kStraggler: degraded window in sim-seconds; <= 0 means permanent.
  double duration = 0.0;
  /// kLinkFault / kCheckpointFault: how many operations fail.
  int count = 1;

  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  std::string ToString() const;

  /// Parse the `;`-separated clause syntax above. Whitespace around
  /// clauses is ignored; an empty string yields an empty plan.
  static StatusOr<FaultPlan> Parse(const std::string& text);
};

}  // namespace hsgd
