#include "fault/serve_injector.h"

#include <memory>
#include <utility>

#include "util/strings.h"

namespace hsgd {

StatusOr<std::unique_ptr<ServeFaultInjector>> ServeFaultInjector::Create(
    const FaultPlan& plan, int shards) {
  for (const FaultSpec& spec : plan.specs) {
    if (!IsServeFault(spec.kind)) {
      return Status::InvalidArgument(StrFormat(
          "fault \"%s\" is a session kind; attach it via "
          "Session::SetFaultPlan (SplitFaultPlan separates mixed scripts)",
          spec.ToString().c_str()));
    }
    if (spec.kind == FaultKind::kSlowShard && shards > 0 &&
        spec.device_index >= shards) {
      return Status::InvalidArgument(StrFormat(
          "fault \"%s\" targets shard %d but the server has %d shards",
          spec.ToString().c_str(), spec.device_index, shards));
    }
  }
  return std::unique_ptr<ServeFaultInjector>(
      new ServeFaultInjector(plan));
}

bool ServeFaultInjector::Consume(FaultKind kind) {
  const int round = round_.load(std::memory_order_acquire);
  for (FaultSpec& spec : plan_.specs) {
    if (spec.kind != kind || spec.count <= 0 || round < spec.epoch) {
      continue;
    }
    --spec.count;
    if (kind == FaultKind::kPublishPoison) ++poisons_fired_;
    if (kind == FaultKind::kWalIo) ++wal_faults_fired_;
    return true;
  }
  return false;
}

double ServeFaultInjector::LoadMultiplier() const {
  const int round = round_.load(std::memory_order_acquire);
  double factor = 1.0;
  for (const FaultSpec& spec : plan_.specs) {
    if (spec.kind == FaultKind::kQueryStorm && WindowActive(spec, round)) {
      factor *= spec.slowdown;
    }
  }
  return factor;
}

double ServeFaultInjector::ShardSlowdown(int shard) const {
  const int round = round_.load(std::memory_order_acquire);
  double factor = 1.0;
  for (const FaultSpec& spec : plan_.specs) {
    if (spec.kind == FaultKind::kSlowShard &&
        spec.device_index == shard && WindowActive(spec, round) &&
        spec.slowdown > factor) {
      factor = spec.slowdown;
    }
  }
  return factor;
}

}  // namespace hsgd
