// Deterministic firing engine for the serve/stream half of a FaultPlan.
//
// The training-side FaultInjector counts released blocks; the serve loop
// has no such clock, so this injector counts PUBLISH ROUNDS instead: the
// driver calls BeginRound(r) once per iteration of its
// ingest -> train -> publish loop, and every serve fault is pinned to a
// round. Same plan + same round sequence => same failure trace, which is
// what lets bench_chaos_serving gate on exact counts (publishes rejected
// == poisons scripted, and so on).
//
// Firing surfaces, by kind:
//   kPublishPoison  PoisonThisPublish() — the trainer's publish
//                   interceptor swaps in a NaN-poisoned snapshot for the
//                   next `count` publishes from the armed round on.
//   kWalIo          ConsumeWalFault() — wired to Wal::SetIoFaultHook; the
//                   next `count` appends fail cleanly (retryable).
//   kQueryStorm     LoadMultiplier() — client threads scale their offered
//                   load while a storm window is active.
//   kSlowShard      ShardSlowdown(shard) — the server's batch-stall hook
//                   stretches that shard's service time while active.
//
// Single-driver discipline like OnlineTrainer: BeginRound /
// PoisonThisPublish / ConsumeWalFault run on the driver thread. The two
// read-side queries (LoadMultiplier, ShardSlowdown) are called from
// client/worker threads, so the round counter they derive from is
// atomic.

#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "util/status.h"

namespace hsgd {

class ServeFaultInjector {
 public:
  /// Validates that `plan` holds ONLY serve kinds (SplitFaultPlan a
  /// mixed script first) and that slowshard targets lie in
  /// [0, `shards`). `shards` <= 0 skips the shard-range check.
  static StatusOr<std::unique_ptr<ServeFaultInjector>> Create(
      const FaultPlan& plan, int shards = 0);

  /// Arm the injector for publish round `round` (1-based, monotone).
  void BeginRound(int round) {
    round_.store(round, std::memory_order_release);
  }

  /// True (consuming one poison) when the snapshot published now should
  /// be poisoned. Each kPublishPoison spec supplies `count` consecutive
  /// poisoned publishes starting at its round.
  bool PoisonThisPublish() { return Consume(FaultKind::kPublishPoison); }

  /// True (consuming one failure) when a WAL append attempted now should
  /// fail. Shaped for Wal::SetIoFaultHook.
  bool ConsumeWalFault() { return Consume(FaultKind::kWalIo); }

  /// Product of every active storm's factor (1.0 = no storm). A storm is
  /// active for rounds [round, round + duration) — duration <= 0 means
  /// the rest of the run.
  double LoadMultiplier() const;

  /// Max slowdown factor among slowshard specs active on `shard`
  /// (1.0 = healthy).
  double ShardSlowdown(int shard) const;

  const FaultPlan& plan() const { return plan_; }
  int64_t poisons_fired() const { return poisons_fired_; }
  int64_t wal_faults_fired() const { return wal_faults_fired_; }

 private:
  explicit ServeFaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  bool Consume(FaultKind kind);
  bool WindowActive(const FaultSpec& spec, int round) const {
    if (round < spec.epoch) return false;
    if (spec.duration <= 0.0) return true;
    return round < spec.epoch + static_cast<int>(spec.duration);
  }

  FaultPlan plan_;
  std::atomic<int> round_{0};
  int64_t poisons_fired_ = 0;
  int64_t wal_faults_fired_ = 0;
};

}  // namespace hsgd
