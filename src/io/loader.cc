#include "io/loader.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "util/chunking.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace hsgd::io {

namespace fs = std::filesystem;

const char* FormatName(DataFormat format) {
  switch (format) {
    case DataFormat::kMovieLens: return "movielens";
    case DataFormat::kNetflix: return "netflix";
    case DataFormat::kCsv: return "csv";
  }
  return "unknown";
}

StatusOr<DataFormat> FormatByName(const std::string& name) {
  const std::string lower = AsciiLower(name);
  for (DataFormat format :
       {DataFormat::kMovieLens, DataFormat::kNetflix, DataFormat::kCsv}) {
    if (lower == FormatName(format)) return format;
  }
  if (lower == "ml" || lower == "dat") return DataFormat::kMovieLens;
  if (lower == "nf") return DataFormat::kNetflix;
  return Status::InvalidArgument(
      "unknown data format '" + name +
      "' (expected movielens, netflix or csv)");
}

int32_t IdMap::Assign(int64_t raw) {
  auto [it, inserted] =
      to_dense_.emplace(raw, static_cast<int32_t>(to_raw_.size()));
  if (inserted) to_raw_.push_back(raw);
  return it->second;
}

int32_t IdMap::Lookup(int64_t raw) const {
  auto it = to_dense_.find(raw);
  return it == to_dense_.end() ? -1 : it->second;
}

namespace {

/// One parsed record with its source line for error reporting. Netflix
/// shards mark records seen before the shard's first section header with
/// item = kPendingItem; the merge fills them from the previous shard's
/// carry-over header.
constexpr int64_t kPendingItem = -1;

struct ParsedRec {
  int64_t user = 0;
  int64_t item = 0;
  float rating = 0.0f;
  int64_t line = 0;
};

/// A malformed line found during the shard scan, before it is known
/// whether the error budget absorbs it.
struct BadLine {
  int64_t line = 0;
  std::string detail;
};

struct ShardResult {
  std::vector<ParsedRec> recs;
  /// Netflix: the last "id:" header in the shard, or kPendingItem when
  /// the shard contains none (its records all inherit the carry-over).
  int64_t last_item = kPendingItem;
  /// Malformed lines in shard (= file) order. Capped at max_bad_lines + 1
  /// entries: keeping each shard's earliest budget+1 bad lines is enough
  /// to reconstruct both the exact global tally when the load survives
  /// (no shard can truncate without busting the budget) and the exact
  /// first-over-budget line when it does not.
  std::vector<BadLine> bad;
};

Status LineError(const std::string& path, int64_t line,
                 const std::string& detail) {
  return Status::InvalidArgument(
      StrFormat("%s:%lld: %s", path.c_str(),
                static_cast<long long>(line), detail.c_str()));
}

bool ParseI64(const char* begin, const char* end, int64_t* out) {
  if (begin == end) return false;
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseF32(const char* begin, const char* end, float* out) {
  char buf[64];
  const size_t len = static_cast<size_t>(end - begin);
  if (len == 0 || len >= sizeof(buf)) return false;
  std::memcpy(buf, begin, len);
  buf[len] = '\0';
  char* parse_end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &parse_end);
  if (parse_end != buf + len || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = static_cast<float>(v);
  return true;
}

struct Field {
  const char* begin;
  const char* end;
  std::string str() const { return std::string(begin, end); }
};

/// Split `[begin, end)` on `delim` (two-byte delimiter when `wide`) into
/// at most `max_fields` + 1 fields; returns the count, or -1 on overflow.
int SplitFields(const char* begin, const char* end, const char* delim,
                bool wide, Field* fields, int max_fields) {
  int count = 0;
  const char* cursor = begin;
  while (true) {
    if (count == max_fields) return -1;
    const char* hit = nullptr;
    for (const char* p = cursor; p + (wide ? 1 : 0) < end; ++p) {
      if (*p == delim[0] && (!wide || p[1] == delim[1])) {
        hit = p;
        break;
      }
    }
    if (hit == nullptr) {
      fields[count++] = {cursor, end};
      return count;
    }
    fields[count++] = {cursor, hit};
    cursor = hit + (wide ? 2 : 1);
  }
}

/// The delimiter for a movielens/csv line: "::" for classic .dat lines,
/// otherwise comma, tab or semicolon — detected per line so a reader
/// never needs to be told which spelling a dump uses.
const char* DetectDelim(const char* begin, const char* end, bool* wide) {
  for (const char* p = begin; p + 1 < end; ++p) {
    if (p[0] == ':' && p[1] == ':') {
      *wide = true;
      return "::";
    }
  }
  *wide = false;
  for (const char* p = begin; p < end; ++p) {
    if (*p == ',') return ",";
    if (*p == '\t') return "\t";
    if (*p == ';') return ";";
  }
  return ",";  // single-field line; the field-count check reports it
}

struct ParseContext {
  const std::string* text;
  std::string path;
  DataFormat format;
  double min_rating;
  double max_rating;
  int64_t max_bad = 0;
};

/// Resolve LoadOptions' rating bounds against the format defaults. NaN
/// counts as "unset" too — a NaN bound would otherwise make every range
/// comparison false and silently disable validation.
void ResolveRatingRange(DataFormat format, const LoadOptions& options,
                        double* min_rating, double* max_rating) {
  *min_rating = options.min_rating;
  *max_rating = options.max_rating;
  if (*min_rating == LoadOptions::kFormatDefault ||
      std::isnan(*min_rating)) {
    *min_rating = format == DataFormat::kMovieLens ? 0.0
                  : format == DataFormat::kNetflix
                      ? 1.0
                      : -std::numeric_limits<double>::infinity();
  }
  if (*max_rating == LoadOptions::kFormatDefault ||
      std::isnan(*max_rating)) {
    *max_rating = format == DataFormat::kCsv
                      ? std::numeric_limits<double>::infinity()
                      : 5.0;
  }
}

/// Record a malformed line, honoring the per-shard cap (see
/// ShardResult::bad). `size <= max_bad` admits max_bad + 1 entries
/// without ever computing max_bad + 1 (which could overflow).
void RecordBadLine(const ParseContext& ctx, ShardResult* shard,
                   int64_t line, std::string detail) {
  if (static_cast<int64_t>(shard->bad.size()) <= ctx.max_bad) {
    shard->bad.push_back({line, std::move(detail)});
  }
}

/// Trim a trailing '\r' (CRLF dumps) and surrounding spaces.
void TrimLine(const char** begin, const char** end) {
  while (*begin < *end &&
         (**begin == ' ' || **begin == '\t' || **begin == '\r')) {
    ++*begin;
  }
  while (*end > *begin && ((*end)[-1] == ' ' || (*end)[-1] == '\t' ||
                           (*end)[-1] == '\r')) {
    --*end;
  }
}

void ParseRecordLine(const ParseContext& ctx, const char* begin,
                     const char* end, int64_t line, ShardResult* shard) {
  Field fields[6];
  int count;
  if (ctx.format == DataFormat::kNetflix) {
    count = SplitFields(begin, end, ",", /*wide=*/false, fields, 6);
  } else {
    bool wide = false;
    const char* delim = DetectDelim(begin, end, &wide);
    count = SplitFields(begin, end, delim, wide, fields, 6);
  }

  ParsedRec rec;
  rec.line = line;
  if (ctx.format == DataFormat::kNetflix) {
    // "user,rating[,date]" under the current section header; the item is
    // filled by the caller (shard-local) or the merge (carry-over).
    if (count != 2 && count != 3) {
      RecordBadLine(ctx, shard, line,
                    "expected 'user,rating[,date]', got '" +
                        std::string(begin, end) + "'");
      return;
    }
    rec.item = kPendingItem;
  } else {
    // "user<d>item<d>rating[<d>timestamp]".
    if (count != 3 && count != 4) {
      RecordBadLine(ctx, shard, line,
                    "expected 'user<delim>item<delim>rating', got '" +
                        std::string(begin, end) + "'");
      return;
    }
    if (!ParseI64(fields[1].begin, fields[1].end, &rec.item)) {
      RecordBadLine(ctx, shard, line,
                    "item id '" + fields[1].str() + "' is not an integer");
      return;
    }
    if (rec.item < 0) {
      RecordBadLine(ctx, shard, line,
                    "item id '" + fields[1].str() + "' is negative");
      return;
    }
  }
  if (!ParseI64(fields[0].begin, fields[0].end, &rec.user)) {
    RecordBadLine(ctx, shard, line,
                  "user id '" + fields[0].str() + "' is not an integer");
    return;
  }
  if (rec.user < 0) {
    RecordBadLine(ctx, shard, line,
                  "user id '" + fields[0].str() + "' is negative");
    return;
  }
  const Field& rating_field =
      fields[ctx.format == DataFormat::kNetflix ? 1 : 2];
  if (!ParseF32(rating_field.begin, rating_field.end, &rec.rating)) {
    RecordBadLine(ctx, shard, line,
                  "rating '" + rating_field.str() + "' is not a number");
    return;
  }
  if (rec.rating < ctx.min_rating || rec.rating > ctx.max_rating) {
    RecordBadLine(ctx, shard, line,
                  StrFormat("rating %g outside [%g, %g]",
                            static_cast<double>(rec.rating),
                            ctx.min_rating, ctx.max_rating));
    return;
  }
  if (ctx.format == DataFormat::kNetflix &&
      shard->last_item != kPendingItem) {
    rec.item = shard->last_item;
  }
  shard->recs.push_back(rec);
}

/// True (and fills `*item`) when the line is a netflix "movie_id:"
/// section header.
bool ParseSectionHeader(const char* begin, const char* end, int64_t* item) {
  if (end - begin < 2 || end[-1] != ':') return false;
  return ParseI64(begin, end - 1, item) && *item >= 0;
}

void ParseShard(const ParseContext& ctx, const LineChunk& chunk,
                ShardResult* shard) {
  const char* data = ctx.text->data();
  size_t pos = chunk.begin;
  int64_t line = chunk.first_line;
  while (pos < chunk.end) {
    size_t nl = ctx.text->find('\n', pos);
    size_t line_end = (nl == std::string::npos || nl >= chunk.end)
                          ? chunk.end
                          : nl;
    const char* begin = data + pos;
    const char* end = data + line_end;
    TrimLine(&begin, &end);
    if (begin != end) {
      int64_t item;
      if (ctx.format == DataFormat::kNetflix &&
          ParseSectionHeader(begin, end, &item)) {
        shard->last_item = item;
      } else {
        ParseRecordLine(ctx, begin, end, line, shard);
      }
    }
    pos = line_end + 1;
    ++line;
  }
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(
        StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::string text;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal(StrFormat("error reading '%s'", path.c_str()));
  }
  return text;
}

/// True when the first line looks like a CSV header ("userId,movieId,...")
/// rather than data: it uses the CSV delimiter spelling (classic "::"
/// .dat dumps never carry headers) and its first field is not numeric.
bool FirstLineIsHeader(const std::string& text) {
  const size_t nl = text.find('\n');
  const char* begin = text.data();
  const char* end =
      text.data() + (nl == std::string::npos ? text.size() : nl);
  TrimLine(&begin, &end);
  if (begin == end) return false;
  bool wide = false;
  const char* delim = DetectDelim(begin, end, &wide);
  if (wide) return false;
  Field fields[6];
  const int count = SplitFields(begin, end, delim, wide, fields, 6);
  if (count < 2) return false;
  int64_t ignored_int;
  float ignored_float;
  return !ParseI64(fields[0].begin, fields[0].end, &ignored_int) &&
         !ParseF32(fields[0].begin, fields[0].end, &ignored_float);
}

/// Parse one file into raw (user, item, rating, line) records, chunked
/// across `threads` workers with a deterministic in-order merge.
/// Malformed lines are charged against the remaining error budget
/// (options.max_bad_lines - report->total) and appended to `report`;
/// the first line past the budget fails the parse with its LineError,
/// which with the default budget of 0 is exactly the historical
/// first-bad-line Status.
Status ParseFile(const std::string& path, DataFormat format,
                 const LoadOptions& options,
                 std::vector<ParsedRec>* out, BadLineReport* report) {
  auto text_or = ReadFileToString(path);
  if (!text_or.ok()) return text_or.status();
  const std::string text = *std::move(text_or);

  ParseContext ctx;
  ctx.text = &text;
  ctx.path = path;
  ctx.format = format;
  ctx.max_bad = std::max<int64_t>(0, options.max_bad_lines);
  ResolveRatingRange(format, options, &ctx.min_rating, &ctx.max_rating);

  size_t offset = 0;
  int64_t start_line = 1;
  if (format != DataFormat::kNetflix && FirstLineIsHeader(text)) {
    const size_t nl = text.find('\n');
    offset = nl == std::string::npos ? text.size() : nl + 1;
    start_line = 2;
  }

  const int threads = std::max(1, options.threads);
  std::vector<LineChunk> chunks =
      SplitAtLineBoundaries(text, offset, threads, start_line);
  std::vector<ShardResult> shards(chunks.size());
  {
    // The pool adds threads - 1 workers; ParallelFor's caller thread is
    // the remaining one, and with threads == 1 the loop runs serially.
    ThreadPool pool(static_cast<size_t>(threads - 1));
    pool.ParallelFor(0, static_cast<int64_t>(chunks.size()), 1,
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) {
                         ParseShard(ctx, chunks[static_cast<size_t>(i)],
                                    &shards[static_cast<size_t>(i)]);
                       }
                     });
  }

  // Deterministic merge: concatenate shards in file order, resolving
  // netflix carry-over section headers. Records seen before any header
  // existed anywhere (carry-over missing) are malformed; they join the
  // shards' parse failures in one line-sorted list judged against the
  // remaining error budget.
  std::vector<BadLine> file_bad;
  int64_t carry_item = kPendingItem;
  for (ShardResult& shard : shards) {
    for (BadLine& bad : shard.bad) file_bad.push_back(std::move(bad));
    size_t skip = 0;
    for (ParsedRec& rec : shard.recs) {
      if (rec.item != kPendingItem) break;
      if (carry_item == kPendingItem) {
        file_bad.push_back(
            {rec.line, "rating before any 'movie_id:' section header"});
        ++skip;
      } else {
        rec.item = carry_item;
      }
    }
    if (shard.last_item != kPendingItem) carry_item = shard.last_item;
    out->insert(out->end(),
                shard.recs.begin() + static_cast<ptrdiff_t>(skip),
                shard.recs.end());
  }
  // Headerless-prefix records sit at earlier lines than some parse
  // failures appended before them; sort so the budget is charged in
  // strict line order, the same order a serial scan would see.
  std::stable_sort(file_bad.begin(), file_bad.end(),
                   [](const BadLine& a, const BadLine& b) {
                     return a.line < b.line;
                   });

  const int64_t budget_left = ctx.max_bad - report->total;
  if (static_cast<int64_t>(file_bad.size()) > budget_left) {
    const BadLine& fatal = file_bad[static_cast<size_t>(budget_left)];
    return LineError(path, fatal.line, fatal.detail);
  }
  for (BadLine& bad : file_bad) {
    ++report->total;
    if (static_cast<int>(report->sample.size()) < BadLineReport::kMaxSample) {
      report->sample.push_back({path, bad.line, std::move(bad.detail)});
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<LoadedData> LoadRatings(const std::string& path, DataFormat format,
                                 const LoadOptions& options) {
  std::error_code ec;
  const bool is_dir = fs::is_directory(path, ec);
  if (ec || (!is_dir && !fs::exists(path, ec))) {
    return Status::NotFound(
        StrFormat("data path '%s' does not exist", path.c_str()));
  }

  LoadedData data;
  std::vector<ParsedRec> recs;
  // First record index contributed by each source file, so post-merge
  // errors (duplicates) can name the offending file rather than the
  // top-level directory.
  std::vector<std::pair<size_t, std::string>> origins;
  if (is_dir) {
    if (format != DataFormat::kNetflix) {
      return Status::InvalidArgument(
          StrFormat("'%s' is a directory; only the netflix format reads "
                    "per-movie directories",
                    path.c_str()));
    }
    // Per-movie mv_*.txt files, visited in sorted name order so the load
    // is deterministic across filesystems.
    std::vector<std::string> files;
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      return Status::InvalidArgument(
          StrFormat("directory '%s' holds no rating files", path.c_str()));
    }
    for (const std::string& file : files) {
      origins.emplace_back(recs.size(), file);
      HSGD_RETURN_IF_ERROR(
          ParseFile(file, format, options, &recs, &data.bad_lines));
    }
  } else {
    origins.emplace_back(0, path);
    HSGD_RETURN_IF_ERROR(
        ParseFile(path, format, options, &recs, &data.bad_lines));
  }

  if (recs.empty()) {
    return Status::InvalidArgument(
        StrFormat("'%s' contains no ratings", path.c_str()));
  }

  // Sequential remap + duplicate scan over the merged stream: dense ids
  // are assigned in first-appearance order, so the result is identical
  // for any thread count. Duplicates charge the same error budget the
  // parse phase drew from (the later record is the one quarantined).
  data.ratings.reserve(recs.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(recs.size() * 2);
  size_t origin_cursor = 0;
  for (size_t i = 0; i < recs.size(); ++i) {
    const ParsedRec& rec = recs[i];
    // The source file this record came from (line numbers are per-file);
    // records arrive in file order, so a forward cursor suffices.
    while (origin_cursor + 1 < origins.size() &&
           origins[origin_cursor + 1].first <= i) {
      ++origin_cursor;
    }
    const std::string& origin = origins[origin_cursor].second;
    if (data.users.size() == std::numeric_limits<int32_t>::max() ||
        data.items.size() == std::numeric_limits<int32_t>::max()) {
      return Status::InvalidArgument(
          StrFormat("'%s' has more distinct ids than int32 can index",
                    path.c_str()));
    }
    Rating r;
    r.u = data.users.Assign(rec.user);
    r.v = data.items.Assign(rec.item);
    r.r = rec.rating;
    const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(r.u))
                          << 32) |
                         static_cast<uint32_t>(r.v);
    if (!seen.insert(key).second) {
      std::string detail =
          StrFormat("duplicate rating for (user %lld, item %lld)",
                    static_cast<long long>(rec.user),
                    static_cast<long long>(rec.item));
      if (data.bad_lines.total >= options.max_bad_lines) {
        return LineError(origin, rec.line, detail);
      }
      ++data.bad_lines.total;
      if (static_cast<int>(data.bad_lines.sample.size()) <
          BadLineReport::kMaxSample) {
        data.bad_lines.sample.push_back(
            {origin, rec.line, std::move(detail)});
      }
      continue;
    }
    data.ratings.push_back(r);
  }
  if (options.metrics != nullptr) {
    options.metrics->counter("io.files_parsed")
        ->Add(static_cast<int64_t>(origins.size()));
    options.metrics->counter("io.ratings_loaded")
        ->Add(static_cast<int64_t>(data.ratings.size()));
    options.metrics->counter("io.bad_lines")->Add(data.bad_lines.total);
  }
  return data;
}

StatusOr<Dataset> LoadDataset(const std::string& path, DataFormat format,
                              const LoadOptions& load_options,
                              const DatasetOptions& options) {
  // Capped at 0.5: the modulo split's stride cannot hold out more than
  // every other rating, so a larger request would be silently clamped.
  if (options.test_fraction < 0.0 || options.test_fraction > 0.5) {
    return Status::InvalidArgument(
        StrFormat("test_fraction must be in [0, 0.5], got %g",
                  options.test_fraction));
  }
  auto data = LoadRatings(path, format, load_options);
  if (!data.ok()) return data.status();
  if (data->bad_lines.total > 0) {
    const BadLineRecord& first = data->bad_lines.sample.front();
    HSGD_LOG(Warning) << "'" << path << "': quarantined "
                      << data->bad_lines.total
                      << " malformed line(s) under --max-bad-lines="
                      << load_options.max_bad_lines << " (first: " << first.file
                      << ":" << first.line << ": " << first.detail << ")";
  }

  // Deterministic modulo split: every stride-th rating in file order is
  // held out, so the split is reproducible for any parse thread count.
  Ratings train, test;
  if (options.test_fraction > 0.0) {
    const int64_t stride = std::max<int64_t>(
        2, static_cast<int64_t>(std::llround(1.0 / options.test_fraction)));
    train.reserve(data->ratings.size());
    for (size_t i = 0; i < data->ratings.size(); ++i) {
      if (static_cast<int64_t>(i) % stride == stride - 1) {
        test.push_back(data->ratings[i]);
      } else {
        train.push_back(data->ratings[i]);
      }
    }
  } else {
    train = std::move(data->ratings);
  }

  SgdParams params = options.params;
  if (params.k <= 0) {
    params = PresetSpec(format == DataFormat::kNetflix
                            ? DatasetPreset::kNetflix
                            : DatasetPreset::kMovieLens)
                 .params;
  }
  return MakeDataset(std::move(train), std::move(test), data->users.size(),
                     data->items.size(), params, options.target_rmse);
}

// ---- StreamParser ---------------------------------------------------------

StreamParser::StreamParser(DataFormat format, const LoadOptions& options,
                           std::string source)
    : format_(format),
      source_(std::move(source)),
      max_bad_(std::max<int64_t>(0, options.max_bad_lines)) {
  ResolveRatingRange(format, options, &min_rating_, &max_rating_);
  // Netflix dumps never carry CSV headers; skip the first-line check so a
  // leading "123:" section header is not misread as one.
  if (format_ == DataFormat::kNetflix) header_pending_ = false;
}

Status StreamParser::ChargeBadLine(int64_t line, std::string detail) {
  // Budget charged strictly in line order — a stream sees lines in order
  // by construction, so this matches ParseFile's sorted-merge accounting
  // exactly: the (max_bad + 1)-th bad line is the one that fails.
  if (report_.total >= max_bad_) {
    failed_ = LineError(source_, line, detail);
    return failed_;
  }
  ++report_.total;
  if (static_cast<int>(report_.sample.size()) < BadLineReport::kMaxSample) {
    report_.sample.push_back({source_, line, std::move(detail)});
  }
  return Status::Ok();
}

Status StreamParser::ConsumeLine(const char* begin, const char* end,
                                 std::vector<RawRating>* out) {
  const int64_t line = line_++;
  TrimLine(&begin, &end);
  if (header_pending_) {
    header_pending_ = false;
    if (FirstLineIsHeader(std::string(begin, end))) return Status::Ok();
  }
  if (begin == end) return Status::Ok();
  int64_t item;
  if (format_ == DataFormat::kNetflix &&
      ParseSectionHeader(begin, end, &item)) {
    carry_item_ = item;
    return Status::Ok();
  }

  // One-line shard through the shared grammar: identical field splitting,
  // id/rating parsing and range checks as the batch loader's shards.
  ParseContext ctx;
  ctx.text = nullptr;
  ctx.path = source_;
  ctx.format = format_;
  ctx.min_rating = min_rating_;
  ctx.max_rating = max_rating_;
  ctx.max_bad = max_bad_;
  ShardResult shard;
  shard.last_item = carry_item_;
  ParseRecordLine(ctx, begin, end, line, &shard);
  if (!shard.bad.empty()) {
    return ChargeBadLine(line, std::move(shard.bad.front().detail));
  }
  if (shard.recs.empty()) return Status::Ok();
  const ParsedRec& rec = shard.recs.front();
  if (rec.item == kPendingItem) {
    return ChargeBadLine(line,
                         "rating before any 'movie_id:' section header");
  }
  out->push_back({rec.user, rec.item, rec.rating});
  return Status::Ok();
}

Status StreamParser::Push(const std::string& chunk,
                          std::vector<RawRating>* out) {
  if (!failed_.ok()) return failed_;
  if (finished_) {
    return Status::FailedPrecondition("StreamParser::Push after Finish");
  }
  buffer_.append(chunk);
  size_t pos = 0;
  for (;;) {
    const size_t nl = buffer_.find('\n', pos);
    if (nl == std::string::npos) break;
    HSGD_RETURN_IF_ERROR(
        ConsumeLine(buffer_.data() + pos, buffer_.data() + nl, out));
    pos = nl + 1;
  }
  buffer_.erase(0, pos);
  return Status::Ok();
}

Status StreamParser::Finish(std::vector<RawRating>* out) {
  if (!failed_.ok()) return failed_;
  if (finished_) {
    return Status::FailedPrecondition("StreamParser::Finish called twice");
  }
  finished_ = true;
  if (!buffer_.empty()) {
    // An unterminated final line parses exactly like a file's last line.
    const Status status =
        ConsumeLine(buffer_.data(), buffer_.data() + buffer_.size(), out);
    buffer_.clear();
    HSGD_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

}  // namespace hsgd::io
