// Real-dataset ingestion: loaders that turn the published rating-dump
// formats into dense, trainer-ready triplets.
//
// Supported formats (--format names in parentheses):
//
//   movielens  MovieLens dumps — "::"-delimited .dat lines
//              (user::item::rating[::timestamp]) or comma/tab CSV with an
//              optional header line.
//   netflix    Netflix Prize — per-movie "mv_*.txt" files in a directory,
//              or the combined single-file variant; both are sequences of
//              "movie_id:" section headers followed by
//              "user,rating[,date]" lines.
//   csv        Generic delimited triplets (comma, tab or semicolon),
//              optional header, no rating-range restriction.
//
// Loading is production-shaped: the file is split at line boundaries into
// chunks parsed in parallel on a util::ThreadPool (per-shard accumulation,
// deterministic in-order merge — the result is byte-identical to a serial
// parse regardless of thread count), raw ids are remapped to contiguous
// dense indices with both directions of the mapping retained (so
// Recommender results can be translated back to external ids), and every
// malformed line fails the load with a Status naming "<path>:<line>" —
// unless LoadOptions::max_bad_lines grants an error budget, in which case
// up to that many bad lines are quarantined into a counted report
// instead.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"
#include "util/status.h"

namespace hsgd::obs {
class MetricsRegistry;  // obs/metrics.h
}  // namespace hsgd::obs

namespace hsgd::io {

enum class DataFormat {
  kMovieLens = 0,
  kNetflix = 1,
  kCsv = 2,
};

const char* FormatName(DataFormat format);
StatusOr<DataFormat> FormatByName(const std::string& name);

/// Raw-id -> contiguous dense index mapping, built in first-appearance
/// (file) order so it is deterministic and independent of parse
/// parallelism. Retained by LoadedData so serving-side callers can
/// translate Recommender output back to the dump's external ids.
class IdMap {
 public:
  /// Dense index for `raw`, assigning the next free index when new.
  int32_t Assign(int64_t raw);
  /// Dense index for `raw`, or -1 when never seen.
  int32_t Lookup(int64_t raw) const;
  /// The raw id a dense index was assigned from.
  int64_t Raw(int32_t dense) const { return to_raw_[static_cast<size_t>(dense)]; }
  int32_t size() const { return static_cast<int32_t>(to_raw_.size()); }

 private:
  std::unordered_map<int64_t, int32_t> to_dense_;
  std::vector<int64_t> to_raw_;
};

struct LoadOptions {
  /// Worker threads for chunked parsing (1 = serial; results are
  /// identical either way).
  int threads = 4;
  /// Accepted rating range. Leave at kFormatDefault (NaN also works) to
  /// get the format's default: movielens [0, 5], netflix [1, 5], csv
  /// unbounded. A rating outside the range fails the load naming the
  /// offending line.
  double min_rating = kFormatDefault;
  double max_rating = kFormatDefault;
  /// Error budget: up to this many malformed lines (parse failures,
  /// out-of-range ratings, duplicates, netflix ratings before any
  /// section header) are quarantined into LoadedData::bad_lines instead
  /// of failing the load. The default 0 keeps the historical strict
  /// behavior: the first bad line fails with its "<path>:<line>"
  /// Status. When the budget is exceeded, the load fails naming the
  /// first line past it. Counting is deterministic (file order) for any
  /// thread count.
  int64_t max_bad_lines = 0;

  /// Optional borrowed metrics sink: a successful load adds its totals
  /// to the io.* counters (files_parsed, ratings_loaded, bad_lines).
  /// Null — the default — records nothing; the parse itself is
  /// unaffected either way.
  obs::MetricsRegistry* metrics = nullptr;

  static constexpr double kFormatDefault =
      -1.7976931348623157e308;  // sentinel: use the format's range
};

/// One quarantined input line.
struct BadLineRecord {
  std::string file;
  int64_t line = 0;
  std::string detail;
};

/// Where the error budget went: exact total plus the first few offending
/// lines (enough to debug a dirty dump without hauling megabytes of
/// error text around).
struct BadLineReport {
  static constexpr int kMaxSample = 20;
  int64_t total = 0;
  std::vector<BadLineRecord> sample;  // first kMaxSample, file order
};

/// A parsed dump: triplets with dense contiguous ids in file order, plus
/// the id mappings that produced them and the quarantined-line report
/// (empty under the default strict options — any bad line fails the
/// load instead).
struct LoadedData {
  Ratings ratings;
  IdMap users;
  IdMap items;
  BadLineReport bad_lines;
};

/// Parse `path` (a file; for netflix, a file or a directory of per-movie
/// files) as `format`. Fails with NotFound for a missing path and
/// InvalidArgument naming "<path>:<line>" for malformed content:
/// non-numeric or negative ids, out-of-range ratings, wrong field counts
/// (including a truncated last line), duplicate (user, item) entries, and
/// rating lines before any section header (netflix). An empty file (or
/// one holding only a header) is an error. CRLF endings and blank lines
/// are tolerated.
StatusOr<LoadedData> LoadRatings(const std::string& path, DataFormat format,
                                 const LoadOptions& options = {});

struct DatasetOptions {
  /// Deterministic held-out split: every round(1/fraction)-th rating (in
  /// file order) becomes a test entry. 0 disables the split (all train);
  /// at most 0.5 (the modulo stride cannot hold out more than half).
  double test_fraction = 0.1;
  /// Hyper-parameters for the assembled Dataset. Zero/default k means
  /// "use the format's Table I preset parameters".
  SgdParams params{/*k=*/0};
  /// Early-stop RMSE target; 0 = no target (benches print "never").
  double target_rmse = 0.0;
};

/// LoadRatings + split + core::MakeDataset: the one-call path the benches
/// use. The returned Dataset carries per-format Table I hyper-parameters
/// unless `options.params` overrides them.
StatusOr<Dataset> LoadDataset(const std::string& path, DataFormat format,
                              const LoadOptions& load_options = {},
                              const DatasetOptions& options = {});

}  // namespace hsgd::io
