// Real-dataset ingestion: loaders that turn the published rating-dump
// formats into dense, trainer-ready triplets.
//
// Supported formats (--format names in parentheses):
//
//   movielens  MovieLens dumps — "::"-delimited .dat lines
//              (user::item::rating[::timestamp]) or comma/tab CSV with an
//              optional header line.
//   netflix    Netflix Prize — per-movie "mv_*.txt" files in a directory,
//              or the combined single-file variant; both are sequences of
//              "movie_id:" section headers followed by
//              "user,rating[,date]" lines.
//   csv        Generic delimited triplets (comma, tab or semicolon),
//              optional header, no rating-range restriction.
//
// Loading is production-shaped: the file is split at line boundaries into
// chunks parsed in parallel on a util::ThreadPool (per-shard accumulation,
// deterministic in-order merge — the result is byte-identical to a serial
// parse regardless of thread count), raw ids are remapped to contiguous
// dense indices with both directions of the mapping retained (so
// Recommender results can be translated back to external ids), and every
// malformed line fails the load with a Status naming "<path>:<line>" —
// unless LoadOptions::max_bad_lines grants an error budget, in which case
// up to that many bad lines are quarantined into a counted report
// instead.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"
#include "util/status.h"

namespace hsgd::obs {
class MetricsRegistry;  // obs/metrics.h
}  // namespace hsgd::obs

namespace hsgd::io {

enum class DataFormat {
  kMovieLens = 0,
  kNetflix = 1,
  kCsv = 2,
};

const char* FormatName(DataFormat format);
StatusOr<DataFormat> FormatByName(const std::string& name);

/// Raw-id -> contiguous dense index mapping, built in first-appearance
/// (file) order so it is deterministic and independent of parse
/// parallelism. Retained by LoadedData so serving-side callers can
/// translate Recommender output back to the dump's external ids.
class IdMap {
 public:
  /// Dense index for `raw`, assigning the next free index when new.
  int32_t Assign(int64_t raw);
  /// Dense index for `raw`, or -1 when never seen.
  int32_t Lookup(int64_t raw) const;
  /// The raw id a dense index was assigned from.
  int64_t Raw(int32_t dense) const { return to_raw_[static_cast<size_t>(dense)]; }
  int32_t size() const { return static_cast<int32_t>(to_raw_.size()); }

 private:
  std::unordered_map<int64_t, int32_t> to_dense_;
  std::vector<int64_t> to_raw_;
};

struct LoadOptions {
  /// Worker threads for chunked parsing (1 = serial; results are
  /// identical either way).
  int threads = 4;
  /// Accepted rating range. Leave at kFormatDefault (NaN also works) to
  /// get the format's default: movielens [0, 5], netflix [1, 5], csv
  /// unbounded. A rating outside the range fails the load naming the
  /// offending line.
  double min_rating = kFormatDefault;
  double max_rating = kFormatDefault;
  /// Error budget: up to this many malformed lines (parse failures,
  /// out-of-range ratings, duplicates, netflix ratings before any
  /// section header) are quarantined into LoadedData::bad_lines instead
  /// of failing the load. The default 0 keeps the historical strict
  /// behavior: the first bad line fails with its "<path>:<line>"
  /// Status. When the budget is exceeded, the load fails naming the
  /// first line past it. Counting is deterministic (file order) for any
  /// thread count.
  int64_t max_bad_lines = 0;

  /// Optional borrowed metrics sink: a successful load adds its totals
  /// to the io.* counters (files_parsed, ratings_loaded, bad_lines).
  /// Null — the default — records nothing; the parse itself is
  /// unaffected either way.
  obs::MetricsRegistry* metrics = nullptr;

  static constexpr double kFormatDefault =
      -1.7976931348623157e308;  // sentinel: use the format's range
};

/// One quarantined input line.
struct BadLineRecord {
  std::string file;
  int64_t line = 0;
  std::string detail;
};

/// Where the error budget went: exact total plus the first few offending
/// lines (enough to debug a dirty dump without hauling megabytes of
/// error text around).
struct BadLineReport {
  static constexpr int kMaxSample = 20;
  int64_t total = 0;
  std::vector<BadLineRecord> sample;  // first kMaxSample, file order
};

/// A parsed dump: triplets with dense contiguous ids in file order, plus
/// the id mappings that produced them and the quarantined-line report
/// (empty under the default strict options — any bad line fails the
/// load instead).
struct LoadedData {
  Ratings ratings;
  IdMap users;
  IdMap items;
  BadLineReport bad_lines;
};

/// Parse `path` (a file; for netflix, a file or a directory of per-movie
/// files) as `format`. Fails with NotFound for a missing path and
/// InvalidArgument naming "<path>:<line>" for malformed content:
/// non-numeric or negative ids, out-of-range ratings, wrong field counts
/// (including a truncated last line), duplicate (user, item) entries, and
/// rating lines before any section header (netflix). An empty file (or
/// one holding only a header) is an error. CRLF endings and blank lines
/// are tolerated.
StatusOr<LoadedData> LoadRatings(const std::string& path, DataFormat format,
                                 const LoadOptions& options = {});

struct DatasetOptions {
  /// Deterministic held-out split: every round(1/fraction)-th rating (in
  /// file order) becomes a test entry. 0 disables the split (all train);
  /// at most 0.5 (the modulo stride cannot hold out more than half).
  double test_fraction = 0.1;
  /// Hyper-parameters for the assembled Dataset. Zero/default k means
  /// "use the format's Table I preset parameters".
  SgdParams params{/*k=*/0};
  /// Early-stop RMSE target; 0 = no target (benches print "never").
  double target_rmse = 0.0;
};

/// LoadRatings + split + core::MakeDataset: the one-call path the benches
/// use. The returned Dataset carries per-format Table I hyper-parameters
/// unless `options.params` overrides them.
StatusOr<Dataset> LoadDataset(const std::string& path, DataFormat format,
                              const LoadOptions& load_options = {},
                              const DatasetOptions& options = {});

/// One rating still in the external (raw-id) vocabulary, as a stream
/// emits it before any IdMap remapping.
struct RawRating {
  int64_t user = 0;
  int64_t item = 0;
  float rating = 0.0f;
};

/// Incremental line-oriented parser for rating streams: the same grammar,
/// rating-range validation and `max_bad_lines` error budget as
/// LoadRatings, fed chunk by chunk instead of from one file. Chunks may
/// split lines (and netflix section headers) at any byte boundary — the
/// parser carries the partial tail — so for a fixed input the records,
/// bad-line tally, and the exact first-over-budget failure are identical
/// for ANY chunking, down to pushing one byte at a time.
///
/// Differences from the batch loader, both inherent to streaming: ids
/// stay raw (callers own the IdMap so its growth can be observed), and
/// duplicates are NOT rejected — a stream legitimately re-rates pairs,
/// and the appenders treat later entries as fresher signal.
///
/// Not thread-safe; one parser per stream. After a Status failure (budget
/// exceeded) the parser is poisoned and every later call returns the same
/// error.
class StreamParser {
 public:
  /// `options` supplies the rating range (format defaults apply, as in
  /// LoadRatings) and the error budget; threads/metrics are ignored.
  /// `source` names the stream in error messages and the bad-line report.
  explicit StreamParser(DataFormat format, const LoadOptions& options = {},
                        std::string source = "<stream>");

  /// Feed the next chunk; complete lines are parsed and appended to
  /// `out`, a trailing partial line is carried until more bytes arrive.
  Status Push(const std::string& chunk, std::vector<RawRating>* out);

  /// Flush the carried partial line (an unterminated final line parses
  /// like LoadRatings' last line). The parser is then closed: further
  /// Push/Finish calls fail.
  Status Finish(std::vector<RawRating>* out);

  /// Quarantined lines so far (same counting as LoadedData::bad_lines).
  const BadLineReport& bad_lines() const { return report_; }
  /// Complete lines consumed so far (headers and blanks included).
  int64_t lines_consumed() const { return line_ - 1; }
  bool failed() const { return !failed_.ok(); }

 private:
  Status ConsumeLine(const char* begin, const char* end,
                     std::vector<RawRating>* out);
  Status ChargeBadLine(int64_t line, std::string detail);

  DataFormat format_;
  std::string source_;
  double min_rating_ = 0.0;
  double max_rating_ = 0.0;
  int64_t max_bad_ = 0;
  std::string buffer_;      // carried partial line
  int64_t line_ = 1;        // next line number (1-based, file convention)
  int64_t carry_item_ = -1; // netflix section header in effect
  bool header_pending_ = true;
  bool finished_ = false;
  BadLineReport report_;
  Status failed_ = Status::Ok();
};

}  // namespace hsgd::io
