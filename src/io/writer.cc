#include "io/writer.h"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

#include "util/strings.h"

namespace hsgd::io {

namespace {

class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : path_(path), f_(std::fopen(path.c_str(), "wb")) {}
  ~FileWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }

  bool open() const { return f_ != nullptr; }

  void Line(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 2, 3)))
#endif
  {
    if (f_ == nullptr || !ok_) return;
    va_list args;
    va_start(args, fmt);
    if (std::vfprintf(f_, fmt, args) < 0) ok_ = false;
    va_end(args);
  }

  Status Close() {
    if (f_ == nullptr) {
      return Status::Internal(
          StrFormat("cannot open '%s' for writing", path_.c_str()));
    }
    const bool close_ok = std::fclose(f_) == 0;
    f_ = nullptr;
    if (!ok_ || !close_ok) {
      return Status::Internal(
          StrFormat("failed writing '%s'", path_.c_str()));
    }
    return Status::Ok();
  }

 private:
  std::string path_;
  FILE* f_;
  bool ok_ = true;
};

}  // namespace

Status WriteMovieLens(const std::string& path, const Ratings& ratings) {
  FileWriter w(path);
  for (const Rating& r : ratings) {
    w.Line("%d::%d::%.9g\n", r.u, r.v, static_cast<double>(r.r));
  }
  return w.Close();
}

Status WriteCsv(const std::string& path, const Ratings& ratings,
                bool header) {
  FileWriter w(path);
  if (header) w.Line("userId,itemId,rating\n");
  for (const Rating& r : ratings) {
    w.Line("%d,%d,%.9g\n", r.u, r.v, static_cast<double>(r.r));
  }
  return w.Close();
}

Status WriteNetflix(const std::string& path, const Ratings& ratings) {
  // Movie-major: group by item id ascending, input order within a group.
  std::map<int32_t, std::vector<const Rating*>> by_item;
  for (const Rating& r : ratings) by_item[r.v].push_back(&r);
  FileWriter w(path);
  for (const auto& [item, group] : by_item) {
    w.Line("%d:\n", item);
    for (const Rating* r : group) {
      w.Line("%d,%.9g,2005-01-01\n", r->u, static_cast<double>(r->r));
    }
  }
  return w.Close();
}

}  // namespace hsgd::io
