// Rating-dump writers, one per supported format. Their job is test
// leverage, not archival: they let the suite synthesize fixtures in any
// format and do write -> read round-trips against io/loader.h, and give
// operators a way to export a dataset in a loadable form.
//
// The u/v fields of each Rating are written verbatim as the dump's raw
// ids; ratings print with enough digits ("%.9g") that the float survives
// a round-trip bit-exactly. MovieLens and CSV preserve input order
// line-for-line; Netflix groups ratings by item (ascending id, the
// format's movie-major shape), preserving input order within each group.

#pragma once

#include <string>

#include "core/types.h"
#include "util/status.h"

namespace hsgd::io {

/// "user::item::rating" lines (the MovieLens .dat spelling).
Status WriteMovieLens(const std::string& path, const Ratings& ratings);

/// "user,item,rating" lines, preceded by a "userId,itemId,rating" header
/// when `header` is set.
Status WriteCsv(const std::string& path, const Ratings& ratings,
                bool header = true);

/// Combined-file Netflix variant: "item:" section headers followed by
/// "user,rating,2005-01-01" lines (the date is a placeholder; the reader
/// ignores it).
Status WriteNetflix(const std::string& path, const Ratings& ratings);

}  // namespace hsgd::io
