#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace hsgd::obs {

Json Json::Bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::Double(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::Set(const std::string& key, Json value) {
  assert(kind_ == Kind::kObject && "Set() needs an object");
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  assert(kind_ == Kind::kArray && "Push() needs an array");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble: *out += JsonNumber(double_); break;
    case Kind::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      break;
    case Kind::kArray:
    case Kind::kObject: {
      const bool object = kind_ == Kind::kObject;
      out->push_back(object ? '{' : '[');
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        if (object) {
          out->push_back('"');
          *out += JsonEscape(children_[i].first);
          *out += pretty ? "\": " : "\":";
        }
        children_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) newline(depth);
      out->push_back(object ? '}' : ']');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace hsgd::obs
