// Minimal JSON value tree for the observability layer's machine-readable
// artifacts (metrics dumps, Chrome trace events, RunReports). Build a
// value with the static constructors, compose with Set/Push, and Dump it.
// Object keys keep insertion order so artifacts diff cleanly run to run.
//
// This is a writer, not a parser: nothing in the engine consumes JSON —
// the tests carry their own tiny parser to validate what we emit.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hsgd::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Int(int64_t v);
  static Json Double(double v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }

  /// Object member (the value is moved in). Returns *this for chaining.
  /// Aborts (assert) when called on a non-object.
  Json& Set(const std::string& key, Json value);
  /// Array element. Aborts (assert) when called on a non-array.
  Json& Push(Json value);

  size_t size() const { return children_.size(); }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact one-line form. Non-finite doubles are
  /// emitted as null (JSON has no NaN/Inf).
  std::string Dump(int indent = 2) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  /// Array elements (keys empty) or object members, in insertion order.
  std::vector<std::pair<std::string, Json>> children_;
};

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included). Exposed for the streaming trace writer, which is too hot
/// for value trees.
std::string JsonEscape(const std::string& s);

/// Render a double the way Dump does ("%.17g", null for non-finite).
std::string JsonNumber(double v);

}  // namespace hsgd::obs
