#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/logging.h"
#include "util/strings.h"

namespace hsgd::obs {

namespace internal {

int ThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  HSGD_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HSGD_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  cells_.reserve(internal::kShards);
  for (int s = 0; s < internal::kShards; ++s) {
    cells_.push_back(std::make_unique<Cell>(bounds_.size() + 1));
  }
}

void Histogram::Observe(double v) {
  Cell& cell = *cells_[internal::ThreadShard()];
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  cell.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  // CAS loop in lieu of C++20 atomic<double>::fetch_add.
  uint64_t prev = cell.sum_bits.load(std::memory_order_relaxed);
  double sum;
  uint64_t want;
  do {
    std::memcpy(&sum, &prev, sizeof(sum));
    sum += v;
    std::memcpy(&want, &sum, sizeof(want));
  } while (!cell.sum_bits.compare_exchange_weak(
      prev, want, std::memory_order_relaxed));
}

double HistogramSnapshot::Percentile(double q) const {
  if (count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b == buckets.size() - 1) {
      // Overflow bucket: no upper edge to interpolate toward; clamp to
      // its lower edge (the last finite bound).
      return bounds.back();
    }
    const double hi = bounds[b];
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const int64_t in_bucket = buckets[b];
    if (in_bucket == 0) return hi;
    const double before = static_cast<double>(cumulative - in_bucket);
    const double frac = (target - before) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds.back();
}

int64_t MetricsSnapshot::CounterValue(const std::string& name,
                                      int64_t missing) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return missing;
}

double MetricsSnapshot::GaugeValue(const std::string& name,
                                   double missing) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return missing;
}

Json MetricsSnapshot::ToJson() const {
  Json root = Json::Object();
  root.Set("schema", Json::Str("hsgd.metrics/v1"));
  Json cs = Json::Object();
  for (const auto& [name, value] : counters) cs.Set(name, Json::Int(value));
  root.Set("counters", std::move(cs));
  Json gs = Json::Object();
  for (const auto& [name, value] : gauges) {
    gs.Set(name, Json::Double(value));
  }
  root.Set("gauges", std::move(gs));
  Json hs = Json::Object();
  for (const auto& [name, h] : histograms) {
    Json entry = Json::Object();
    Json bounds = Json::Array();
    for (double b : h.bounds) bounds.Push(Json::Double(b));
    Json buckets = Json::Array();
    for (int64_t c : h.buckets) buckets.Push(Json::Int(c));
    entry.Set("bounds", std::move(bounds));
    entry.Set("buckets", std::move(buckets));
    entry.Set("count", Json::Int(h.count));
    entry.Set("sum", Json::Double(h.sum));
    entry.Set("p50", Json::Double(h.Percentile(0.50)));
    entry.Set("p99", Json::Double(h.Percentile(0.99)));
    hs.Set(name, std::move(entry));
  }
  root.Set("histograms", std::move(hs));
  return root;
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string n = PromName(name);
    out += "# TYPE " + n + " counter\n";
    out += StrFormat("%s %lld\n", n.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    const std::string n = PromName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + JsonNumber(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = PromName(name);
    out += "# TYPE " + n + " histogram\n";
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          b < h.bounds.size() ? JsonNumber(h.bounds[b]) : "+Inf";
      out += StrFormat("%s_bucket{le=\"%s\"} %lld\n", n.c_str(),
                       le.c_str(), static_cast<long long>(cumulative));
    }
    out += n + "_sum " + JsonNumber(h.sum) + "\n";
    out += StrFormat("%s_count %lld\n", n.c_str(),
                     static_cast<long long>(h.count));
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HSGD_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HSGD_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  HSGD_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered as another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    HSGD_CHECK(slot->bounds() == bounds)
        << "histogram '" << name << "' re-registered with other bounds";
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds_;
    hs.buckets.assign(h->bounds_.size() + 1, 0);
    double sum = 0.0;
    for (const auto& cell : h->cells_) {
      for (size_t b = 0; b < hs.buckets.size(); ++b) {
        hs.buckets[b] += cell->counts[b].load(std::memory_order_relaxed);
      }
      hs.count += cell->count.load(std::memory_order_relaxed);
      const uint64_t bits = cell->sum_bits.load(std::memory_order_relaxed);
      double cell_sum;
      std::memcpy(&cell_sum, &bits, sizeof(cell_sum));
      sum += cell_sum;
    }
    hs.sum = sum;
    snap.histograms.emplace_back(name, std::move(hs));
  }
  return snap;
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      int count) {
  HSGD_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

}  // namespace hsgd::obs
