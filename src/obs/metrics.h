// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms, exported as JSON or a Prometheus-style text dump.
//
// Write-side design: counters and histograms write to per-thread sharded
// cache-line-sized cells (a thread picks its cell once, round-robin, and
// keeps it for life), so concurrent increments from the eval pool or a
// future serving layer never contend on one line. Reads aggregate the
// cells on Snapshot — slightly stale under concurrent writers, but every
// increment is an atomic add, so nothing is ever lost: quiesce, then
// Snapshot, and the totals are exact.
//
// The registry hands out stable pointers: register once (cheap mutex +
// map lookup), then bump through the pointer on the hot path with no
// lookup at all. Instrumented code holds `Counter*` that may be null
// (observability detached) — use the null-safe free helpers below, which
// compile to a test-and-skip when disabled.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace hsgd::obs {

namespace internal {
/// This thread's shard slot, assigned round-robin on first use.
int ThreadShard();
inline constexpr int kShards = 16;
}  // namespace internal

/// Monotonic counter. Add is one relaxed atomic add on a thread-private
/// cache line.
class Counter {
 public:
  void Add(int64_t delta) {
    cells_[internal::ThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  /// Sum over all shards. Exact once writers quiesce.
  int64_t Value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  Cell cells_[internal::kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the
/// first N buckets, plus an implicit +inf overflow bucket. Bucket counts
/// are sharded like Counter cells; sum/count ride along for the mean.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  struct alignas(64) Cell {
    explicit Cell(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<int64_t>> counts;
    std::atomic<int64_t> count{0};
    /// Stored as bits of a double (atomic<double>::fetch_add is C++20).
    std::atomic<uint64_t> sum_bits{0};
  };
  std::vector<std::unique_ptr<Cell>> cells_;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  /// bounds.size() + 1 entries; the last is the +inf overflow bucket.
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count > 0 ? sum / count : 0.0; }
  /// Quantile `q` in [0, 1], linearly interpolated inside the bucket the
  /// q-th observation landed in (Prometheus histogram_quantile rules:
  /// the overflow bucket clamps to its lower edge). 0 when empty.
  double Percentile(double q) const;
};

/// Point-in-time aggregation of a registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by exact name; `missing` when absent.
  int64_t CounterValue(const std::string& name, int64_t missing = 0) const;
  double GaugeValue(const std::string& name, double missing = 0.0) const;

  /// {"schema": "hsgd.metrics/v1", "counters": {...}, "gauges": {...},
  ///  "histograms": {name: {bounds, buckets, count, sum, p50, p99}}}
  Json ToJson() const;
  /// Prometheus text exposition ("# TYPE" lines; histograms as
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`).
  /// Metric names have [^a-zA-Z0-9_:] mapped to '_'.
  std::string ToPrometheus() const;
};

class MetricsRegistry {
 public:
  /// Find-or-create; the returned pointer is stable for the registry's
  /// lifetime. Re-registering a name as a different metric kind aborts.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` must be strictly increasing and non-empty; mismatched
  /// bounds on re-registration abort.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Null-safe helpers: instrumented code keeps possibly-null metric
// pointers and calls these unconditionally; detached observability costs
// one predictable branch.
inline void Add(Counter* c, int64_t delta) {
  if (c != nullptr) c->Add(delta);
}
inline void Increment(Counter* c) { Add(c, 1); }
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Observe(v);
}

/// Exponential bucket edges: `count` edges starting at `start`, each
/// `factor` times the previous — the standard latency-histogram shape.
std::vector<double> ExponentialBounds(double start, double factor,
                                      int count);

}  // namespace hsgd::obs
