#include "obs/report.h"

#include <cstdio>
#include <utility>

#include "util/strings.h"

namespace hsgd::obs {

RunReport::RunReport(std::string bench) : bench_(std::move(bench)) {}

void RunReport::AttachMetrics(const MetricsSnapshot& snapshot) {
  metrics_ = snapshot.ToJson();
  have_metrics_ = true;
}

Json RunReport::ToJson() const {
  Json root = Json::Object();
  root.Set("schema", Json::Str(kSchema));
  root.Set("bench", Json::Str(bench_));
  root.Set("config", config_);
  root.Set("results", results_);
  if (have_metrics_) root.Set("metrics", metrics_);
  return root;
}

Status RunReport::WriteTo(const std::string& path) const {
  const std::string out = ToJson().Dump(2) + "\n";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot open report file '%s'", path.c_str()));
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Status::Internal(
        StrFormat("short write to report file '%s'", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace hsgd::obs
