// Structured run reports: the one JSON schema every bench emits, in
// place of the per-binary ad-hoc fprintf JSON that grew alongside the
// benches. One envelope:
//
//   {
//     "schema":  "hsgd.run_report/v1",
//     "bench":   "<binary's short name>",
//     "config":  { flag/config key-values the run used },
//     "results": [ bench-specific entries, one per dataset/scenario/run ],
//     "metrics": { hsgd.metrics/v1 snapshot }          // when attached
//   }
//
// "config" and "results" are open objects — each bench keeps its own
// vocabulary there — but the envelope, the schema tag and the metrics
// block are shared, so one jq expression can sanity-check any artifact
// (`jq -e '.schema == "hsgd.run_report/v1"' BENCH_*.json`) and
// trend-tracking tooling can ingest them uniformly.

#pragma once

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace hsgd::obs {

class RunReport {
 public:
  /// `bench` is the binary's short name ("fig12", "fault_recovery", ...).
  explicit RunReport(std::string bench);

  /// Open config object: record the knobs the run actually used.
  Json& config() { return config_; }
  /// Open results array: push one entry per dataset/scenario/sweep point.
  Json& results() { return results_; }

  /// Attach a metrics snapshot (rendered into the "metrics" block).
  void AttachMetrics(const MetricsSnapshot& snapshot);

  /// Assemble the envelope.
  Json ToJson() const;
  /// Dump the envelope to `path` (pretty-printed, trailing newline).
  Status WriteTo(const std::string& path) const;

  static constexpr const char* kSchema = "hsgd.run_report/v1";

 private:
  std::string bench_;
  Json config_ = Json::Object();
  Json results_ = Json::Array();
  bool have_metrics_ = false;
  Json metrics_ = Json::Null();
};

}  // namespace hsgd::obs
