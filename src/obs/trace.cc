#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"
#include "util/strings.h"

namespace hsgd::obs {

TraceArg TraceArg::Int(std::string key, int64_t v) {
  return {std::move(key),
          StrFormat("%lld", static_cast<long long>(v))};
}

TraceArg TraceArg::Double(std::string key, double v) {
  return {std::move(key), JsonNumber(v)};
}

TraceArg TraceArg::Str(std::string key, const std::string& v) {
  return {std::move(key), "\"" + JsonEscape(v) + "\""};
}

TraceArg TraceArg::Bool(std::string key, bool v) {
  return {std::move(key), v ? "true" : "false"};
}

void Tracer::Push(Event event) {
  event.wall_ms = wall_.Millis();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::Span(const char* category, std::string name, int tid,
                  SimTime begin, SimTime end, std::vector<TraceArg> args) {
  Event e;
  e.category = category;
  e.name = std::move(name);
  e.phase = 'X';
  e.tid = tid;
  e.ts_us = begin * 1e6;
  e.dur_us = (end - begin) * 1e6;
  if (e.dur_us < 0.0) e.dur_us = 0.0;
  e.args = std::move(args);
  Push(std::move(e));
}

void Tracer::Instant(const char* category, std::string name, int tid,
                     SimTime at, std::vector<TraceArg> args) {
  Event e;
  e.category = category;
  e.name = std::move(name);
  e.phase = 'i';
  e.tid = tid;
  e.ts_us = at * 1e6;
  e.args = std::move(args);
  Push(std::move(e));
}

void Tracer::SetThreadName(int tid, const std::string& name) {
  Event e;
  e.category = "__metadata";
  e.name = "thread_name";
  e.phase = 'M';
  e.tid = tid;
  e.args.push_back(TraceArg::Str("name", name));
  Push(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::AppendEvent(std::string* out, const Event& e) {
  *out += "{\"name\":\"";
  *out += JsonEscape(e.name);
  *out += "\",\"cat\":\"";
  *out += e.category;
  *out += "\",\"ph\":\"";
  out->push_back(e.phase);
  *out += "\",\"pid\":1,\"tid\":";
  *out += StrFormat("%d", e.tid);
  if (e.phase != 'M') {
    *out += ",\"ts\":" + JsonNumber(e.ts_us);
    if (e.phase == 'X') *out += ",\"dur\":" + JsonNumber(e.dur_us);
    if (e.phase == 'i') *out += ",\"s\":\"t\"";
  }
  *out += ",\"args\":{";
  bool first = true;
  if (e.phase != 'M') {
    *out += "\"wall_ms\":" + JsonNumber(e.wall_ms);
    first = false;
  }
  for (const TraceArg& arg : e.args) {
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    *out += JsonEscape(arg.key);
    *out += "\":";
    *out += arg.json_value;
  }
  *out += "}}";
}

Status Tracer::WriteJson(const std::string& path) const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < events_.size(); ++i) {
      if (i > 0) out += ",\n";
      AppendEvent(&out, events_[i]);
    }
  }
  out += "\n]}\n";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot open trace file '%s'", path.c_str()));
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Status::Internal(
        StrFormat("short write to trace file '%s'", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace hsgd::obs
