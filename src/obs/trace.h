// Epoch timeline tracer: records spans and instants against the
// simulator's virtual clock and writes Chrome trace-event JSON, loadable
// in chrome://tracing and Perfetto (ui.perfetto.dev).
//
// Conventions:
//   - ts/dur are the sim's virtual clock, in microseconds (the trace
//     viewer's native unit) — one trace second == one simulated second.
//   - every event carries a "wall_ms" arg: real milliseconds since the
//     tracer was created, so virtual-time anomalies can be correlated
//     with what the host was actually doing.
//   - tid 0 is the session row; each simulated worker gets its own tid
//     (named via SetThreadName metadata events), so per-device block
//     execution renders as one lane per device.
//   - categories name the emitting subsystem: "session", "device",
//     "transfer", "sched", "ckpt", "fault", "io".
//
// The tracer is passive: it never touches the simulation, draws no RNG,
// and is only consulted behind a null check — a session without one runs
// the exact pre-observability instruction stream.
//
// Thread safety: Span/Instant/SetThreadName may be called from any
// thread (one mutex push per event; tracing is opt-in and the event loop
// is single-threaded, so this is nowhere near hot).

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace hsgd::obs {

/// One pre-rendered event arg: value is already valid JSON (use
/// TraceArg::Int/Double/Str).
struct TraceArg {
  std::string key;
  std::string json_value;

  static TraceArg Int(std::string key, int64_t v);
  static TraceArg Double(std::string key, double v);
  static TraceArg Str(std::string key, const std::string& v);
  static TraceArg Bool(std::string key, bool v);
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Complete ('X') event spanning virtual [begin, end] on `tid`.
  void Span(const char* category, std::string name, int tid, SimTime begin,
            SimTime end, std::vector<TraceArg> args = {});
  /// Instant ('i') event at virtual time `at`.
  void Instant(const char* category, std::string name, int tid, SimTime at,
               std::vector<TraceArg> args = {});
  /// Thread-name metadata so viewers label the lane.
  void SetThreadName(int tid, const std::string& name);

  size_t event_count() const;

  /// Serialize everything recorded so far as {"traceEvents": [...],
  /// "displayTimeUnit": "ms"} to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    const char* category;
    std::string name;
    char phase;  // 'X' complete, 'i' instant, 'M' metadata
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    double wall_ms = 0.0;
    std::vector<TraceArg> args;
  };

  void Push(Event event);
  static void AppendEvent(std::string* out, const Event& e);

  mutable std::mutex mu_;
  std::vector<Event> events_;
  Stopwatch wall_;
};

}  // namespace hsgd::obs
