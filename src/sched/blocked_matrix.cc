#include "sched/blocked_matrix.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/strings.h"

namespace hsgd {

namespace {

/// Cuts [0, dim) into bounds so that segment i ends where the cumulative
/// histogram mass first reaches cum_targets[i]. Bounds are forced strictly
/// increasing and to leave room for the remaining segments, so the result
/// is always a partition into non-empty index ranges. Works off an
/// explicit prefix-sum so a clamped cut never desynchronizes the mass
/// accounting for later segments.
std::vector<int32_t> CutByMass(const std::vector<int64_t>& histogram,
                               const std::vector<double>& cum_targets) {
  const int32_t dim = static_cast<int32_t>(histogram.size());
  const int segments = static_cast<int>(cum_targets.size());
  std::vector<int64_t> prefix(static_cast<size_t>(dim) + 1, 0);
  for (int32_t i = 0; i < dim; ++i) {
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + histogram[static_cast<size_t>(i)];
  }
  std::vector<int32_t> bounds;
  bounds.reserve(segments + 1);
  bounds.push_back(0);
  for (int s = 0; s < segments - 1; ++s) {
    const double target = cum_targets[s];
    // Smallest cut whose prefix mass reaches the target.
    auto it = std::lower_bound(prefix.begin(), prefix.end(), target,
                               [](int64_t mass, double t) {
                                 return static_cast<double>(mass) < t;
                               });
    int32_t cut = static_cast<int32_t>(it - prefix.begin());
    cut = std::max(cut, bounds.back() + 1);
    // Leave at least one index for each remaining segment.
    cut = std::min(cut, dim - static_cast<int32_t>(segments - 1 - s));
    bounds.push_back(cut);
  }
  bounds.push_back(dim);
  return bounds;
}

Status ValidateGridArgs(const Ratings& ratings, int64_t num_rows,
                        int64_t num_cols, int p, int q) {
  if (num_rows <= 0 || num_cols <= 0) {
    return Status::InvalidArgument("grid needs positive matrix dims");
  }
  if (p < 1 || q < 1) {
    return Status::InvalidArgument(
        StrFormat("grid needs at least 1x1 strata, got %dx%d", p, q));
  }
  if (p > num_rows || q > num_cols) {
    return Status::InvalidArgument(
        StrFormat("grid %dx%d exceeds matrix dims %lldx%lld", p, q,
                  static_cast<long long>(num_rows),
                  static_cast<long long>(num_cols)));
  }
  for (const Rating& rt : ratings) {
    if (rt.u < 0 || rt.u >= num_rows || rt.v < 0 || rt.v >= num_cols) {
      return Status::InvalidArgument(
          StrFormat("rating (%d, %d) outside matrix %lldx%lld", rt.u, rt.v,
                    static_cast<long long>(num_rows),
                    static_cast<long long>(num_cols)));
    }
  }
  return Status::Ok();
}

}  // namespace

int Grid::RowOf(int32_t u) const {
  auto it = std::upper_bound(row_bounds.begin(), row_bounds.end(), u);
  return static_cast<int>(it - row_bounds.begin()) - 1;
}

int Grid::ColOf(int32_t v) const {
  auto it = std::upper_bound(col_bounds.begin(), col_bounds.end(), v);
  return static_cast<int>(it - col_bounds.begin()) - 1;
}

void Grid::ExtendTo(int32_t num_rows, int32_t num_cols) {
  HSGD_CHECK(!row_bounds.empty() && !col_bounds.empty());
  if (num_rows > row_bounds.back()) row_bounds.back() = num_rows;
  if (num_cols > col_bounds.back()) col_bounds.back() = num_cols;
}

StatusOr<Grid> BuildBalancedGrid(const Ratings& ratings, int64_t num_rows,
                                 int64_t num_cols, int p, int q) {
  std::vector<double> row_shares(p, 1.0 / p);
  std::vector<double> col_shares(q, 1.0 / q);
  HSGD_RETURN_IF_ERROR(ValidateGridArgs(ratings, num_rows, num_cols, p, q));

  std::vector<int64_t> row_hist(static_cast<size_t>(num_rows), 0);
  std::vector<int64_t> col_hist(static_cast<size_t>(num_cols), 0);
  for (const Rating& rt : ratings) {
    ++row_hist[static_cast<size_t>(rt.u)];
    ++col_hist[static_cast<size_t>(rt.v)];
  }
  const double total = static_cast<double>(ratings.size());

  auto cum_targets = [&](const std::vector<double>& shares) {
    std::vector<double> cum(shares.size());
    double acc = 0.0;
    for (size_t i = 0; i < shares.size(); ++i) {
      acc += shares[i];
      cum[i] = acc * total;
    }
    return cum;
  };

  Grid grid;
  grid.row_bounds = CutByMass(row_hist, cum_targets(row_shares));
  grid.col_bounds = CutByMass(col_hist, cum_targets(col_shares));
  return grid;
}

StatusOr<Grid> BuildGridWithColShares(
    const Ratings& ratings, int64_t num_rows, int64_t num_cols, int p,
    const std::vector<double>& col_shares) {
  const int q = static_cast<int>(col_shares.size());
  HSGD_RETURN_IF_ERROR(ValidateGridArgs(ratings, num_rows, num_cols, p, q));
  double share_sum = 0.0;
  for (double s : col_shares) {
    if (s <= 0.0) {
      return Status::InvalidArgument("column shares must be positive");
    }
    share_sum += s;
  }

  std::vector<int64_t> row_hist(static_cast<size_t>(num_rows), 0);
  std::vector<int64_t> col_hist(static_cast<size_t>(num_cols), 0);
  for (const Rating& rt : ratings) {
    ++row_hist[static_cast<size_t>(rt.u)];
    ++col_hist[static_cast<size_t>(rt.v)];
  }
  const double total = static_cast<double>(ratings.size());

  std::vector<double> row_cum(p);
  for (int i = 0; i < p; ++i) row_cum[i] = total * (i + 1) / p;
  std::vector<double> col_cum(q);
  double acc = 0.0;
  for (int i = 0; i < q; ++i) {
    acc += col_shares[i] / share_sum;
    col_cum[i] = acc * total;
  }

  Grid grid;
  grid.row_bounds = CutByMass(row_hist, row_cum);
  grid.col_bounds = CutByMass(col_hist, col_cum);
  return grid;
}

StatusOr<BlockedMatrix> BlockedMatrix::Build(const Ratings& ratings,
                                             const Grid& grid, Rng* rng) {
  if (grid.num_row_strata() < 1 || grid.num_col_strata() < 1) {
    return Status::InvalidArgument("grid has no strata");
  }
  BlockedMatrix bm;
  bm.grid_ = grid;
  bm.blocks_.assign(static_cast<size_t>(grid.num_blocks()), Ratings());

  // Counting pass sizes each bucket exactly (millions of ratings; avoids
  // vector regrowth churn).
  std::vector<int64_t> counts(bm.blocks_.size(), 0);
  const int32_t max_row = grid.row_bounds.back();
  const int32_t max_col = grid.col_bounds.back();
  for (const Rating& rt : ratings) {
    if (rt.u < 0 || rt.u >= max_row || rt.v < 0 || rt.v >= max_col) {
      return Status::InvalidArgument(
          StrFormat("rating (%d, %d) outside grid extent %dx%d", rt.u,
                    rt.v, max_row, max_col));
    }
    ++counts[static_cast<size_t>(
        grid.BlockIndex(grid.RowOf(rt.u), grid.ColOf(rt.v)))];
  }
  for (size_t b = 0; b < bm.blocks_.size(); ++b) {
    bm.blocks_[b].reserve(static_cast<size_t>(counts[b]));
  }
  for (const Rating& rt : ratings) {
    bm.blocks_[static_cast<size_t>(grid.BlockIndex(
                   grid.RowOf(rt.u), grid.ColOf(rt.v)))]
        .push_back(rt);
  }
  if (rng != nullptr) {
    for (Ratings& block : bm.blocks_) ShuffleRatings(&block, rng);
  }
  bm.total_nnz_ = static_cast<int64_t>(ratings.size());
  return bm;
}

Status BlockedMatrix::AppendGrown(const Ratings& ratings, int32_t new_rows,
                                  int32_t new_cols,
                                  std::vector<uint8_t>* dirty) {
  if (blocks_.empty()) {
    return Status::FailedPrecondition("append into an unbuilt matrix");
  }
  if (new_rows < grid_.row_bounds.back() ||
      new_cols < grid_.col_bounds.back()) {
    return Status::InvalidArgument(
        StrFormat("append cannot shrink grid extent %dx%d to %dx%d",
                  grid_.row_bounds.back(), grid_.col_bounds.back(),
                  new_rows, new_cols));
  }
  // Validate before mutating: a bad rating must not leave the grid
  // half-extended or some blocks appended.
  for (const Rating& rt : ratings) {
    if (rt.u < 0 || rt.u >= new_rows || rt.v < 0 || rt.v >= new_cols) {
      return Status::InvalidArgument(
          StrFormat("appended rating (%d, %d) outside grown extent %dx%d",
                    rt.u, rt.v, new_rows, new_cols));
    }
  }
  grid_.ExtendTo(new_rows, new_cols);
  if (dirty != nullptr &&
      dirty->size() < static_cast<size_t>(num_blocks())) {
    dirty->resize(static_cast<size_t>(num_blocks()), 0);
  }
  // Appends land at block tails in arrival order (no shuffle): an
  // incremental pass visits fresh ratings last, after the block's settled
  // prefix, which is the recency order an online update wants.
  for (const Rating& rt : ratings) {
    const int block = grid_.BlockIndex(grid_.RowOf(rt.u), grid_.ColOf(rt.v));
    blocks_[static_cast<size_t>(block)].push_back(rt);
    if (dirty != nullptr) (*dirty)[static_cast<size_t>(block)] = 1;
  }
  total_nnz_ += static_cast<int64_t>(ratings.size());
  return Status::Ok();
}

}  // namespace hsgd
