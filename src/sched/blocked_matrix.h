// Block division of the rating matrix (Section IV): a Grid of row/column
// stratum boundaries, balanced-load cut construction, and the
// BlockedMatrix that buckets the training ratings into grid cells.
//
// Idiom follows the classic 2D-tiled SGD executors (DSGD, Galois'
// Fixed2DTiledExecutor): tasks are (row stratum x column stratum) tiles,
// and two tasks may run concurrently iff they share neither stratum.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace hsgd {

struct Grid {
  /// Stratum boundaries: row stratum i covers [row_bounds[i],
  /// row_bounds[i+1]); strictly increasing, covering [0, num_rows).
  std::vector<int32_t> row_bounds;
  std::vector<int32_t> col_bounds;

  int num_row_strata() const {
    return static_cast<int>(row_bounds.size()) - 1;
  }
  int num_col_strata() const {
    return static_cast<int>(col_bounds.size()) - 1;
  }
  int num_blocks() const { return num_row_strata() * num_col_strata(); }
  int BlockIndex(int row, int col) const {
    return row * num_col_strata() + col;
  }
  int32_t RowStratumWidth(int row) const {
    return row_bounds[row + 1] - row_bounds[row];
  }
  int32_t ColStratumWidth(int col) const {
    return col_bounds[col + 1] - col_bounds[col];
  }

  /// Stratum containing row index u / column index v (binary search).
  int RowOf(int32_t u) const;
  int ColOf(int32_t v) const;

  /// Extend the grid extent to cover `num_rows` x `num_cols` by widening
  /// the LAST row/column stratum. The strata counts — and therefore every
  /// BlockIndex — are unchanged, so schedulers sized off this grid stay
  /// valid; new (cold) indices all land in the trailing stratum.
  void ExtendTo(int32_t num_rows, int32_t num_cols);
};

/// Equal-load p x q grid: cuts are placed on the nnz mass so every row
/// stratum carries ~1/p of the ratings and every column stratum ~1/q
/// (within one row/column of slack, since cuts fall on index boundaries).
StatusOr<Grid> BuildBalancedGrid(const Ratings& ratings, int64_t num_rows,
                                 int64_t num_cols, int p, int q);

/// Nonuniform column division for HSGD*: `col_shares` gives each column
/// stripe's share of the nnz mass (normalized internally); rows still get
/// `p` equal-load strata.
StatusOr<Grid> BuildGridWithColShares(const Ratings& ratings,
                                      int64_t num_rows, int64_t num_cols,
                                      int p,
                                      const std::vector<double>& col_shares);

class BlockedMatrix {
 public:
  BlockedMatrix() = default;

  /// Bucket `ratings` into the grid's cells; each block's ratings are
  /// shuffled with `rng` (SGD visits entries in random order within a
  /// block). `rng` may be null to keep insertion order.
  static StatusOr<BlockedMatrix> Build(const Ratings& ratings,
                                       const Grid& grid, Rng* rng);

  /// Online-append path: extend the grid to cover `new_rows` x `new_cols`
  /// (trailing-stratum growth; block count is invariant), then bucket
  /// `ratings` onto the existing blocks' tails in arrival order. Marks
  /// each block that received ratings in `dirty` (sized/indexed by block;
  /// grown to num_blocks() if shorter). Fails without mutating anything
  /// if a rating falls outside the grown extent.
  Status AppendGrown(const Ratings& ratings, int32_t new_rows,
                     int32_t new_cols, std::vector<uint8_t>* dirty);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const Ratings& BlockRatings(int block) const { return blocks_[block]; }
  int64_t BlockNnz(int block) const {
    return static_cast<int64_t>(blocks_[block].size());
  }
  int64_t total_nnz() const { return total_nnz_; }
  const Grid& grid() const { return grid_; }

 private:
  Grid grid_;
  std::vector<Ratings> blocks_;
  int64_t total_nnz_ = 0;
};

}  // namespace hsgd
