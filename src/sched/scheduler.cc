#include "sched/scheduler.h"

#include "util/logging.h"

namespace hsgd {

Scheduler::Scheduler(const BlockedMatrix* matrix, const Grid* grid, Rng rng)
    : matrix_(matrix), grid_(grid), rng_(rng) {
  HSGD_CHECK(matrix != nullptr && grid != nullptr);
  row_busy_.assign(static_cast<size_t>(grid->num_row_strata()), 0);
  col_busy_.assign(static_cast<size_t>(grid->num_col_strata()), 0);
  col_owner_.assign(static_cast<size_t>(grid->num_col_strata()), -1);
  done_.assign(static_cast<size_t>(grid->num_blocks()), 0);
}

void Scheduler::BeginEpoch() {
  HSGD_CHECK(in_flight_ == 0) << "BeginEpoch with tasks still in flight";
  remaining_ = 0;
  for (int b = 0; b < matrix_->num_blocks(); ++b) {
    if (matrix_->BlockNnz(b) > 0) {
      done_[static_cast<size_t>(b)] = 0;
      ++remaining_;
    } else {
      done_[static_cast<size_t>(b)] = 1;  // nothing to do in empty blocks
    }
  }
  outstanding_.clear();
  requeued_.assign(static_cast<size_t>(matrix_->num_blocks()), 0);
}

void Scheduler::BeginEpochSubset(const std::vector<int>& blocks) {
  HSGD_CHECK(in_flight_ == 0)
      << "BeginEpochSubset with tasks still in flight";
  remaining_ = 0;
  done_.assign(static_cast<size_t>(matrix_->num_blocks()), 1);
  for (int b : blocks) {
    HSGD_CHECK(b >= 0 && b < matrix_->num_blocks());
    if (matrix_->BlockNnz(b) > 0 && done_[static_cast<size_t>(b)]) {
      done_[static_cast<size_t>(b)] = 0;
      ++remaining_;
    }
  }
  outstanding_.clear();
  requeued_.assign(static_cast<size_t>(matrix_->num_blocks()), 0);
}

bool Scheduler::BlockRunnable(int row, int col) const {
  if (row_busy_[static_cast<size_t>(row)] != 0 ||
      col_busy_[static_cast<size_t>(col)] != 0) {
    return false;
  }
  return !done_[static_cast<size_t>(grid_->BlockIndex(row, col))];
}

BlockTask Scheduler::TakeBlock(const WorkerInfo& worker, int row, int col,
                               bool stolen) {
  BlockTask task;
  task.row = row;
  task.col = col;
  task.block = grid_->BlockIndex(row, col);
  task.nnz = matrix_->BlockNnz(task.block);
  task.stolen = stolen;
  ++row_busy_[static_cast<size_t>(row)];
  ++col_busy_[static_cast<size_t>(col)];
  col_owner_[static_cast<size_t>(col)] = worker.worker_index;
  done_[static_cast<size_t>(task.block)] = 1;
  --remaining_;
  ++in_flight_;
  task.lease = next_lease_++;
  outstanding_.insert(task.lease);
  if (stolen) {
    if (worker.device_class == DeviceClass::kGpu) {
      stolen_by_gpus_ += task.nnz;
    } else {
      stolen_by_cpus_ += task.nnz;
    }
  }
  return task;
}

void Scheduler::Release(const WorkerInfo& worker, const BlockTask& task,
                        SimTime now) {
  (void)worker;
  (void)now;
  HSGD_CHECK(task.row >= 0 && task.col >= 0);
  HSGD_CHECK(row_busy_[static_cast<size_t>(task.row)] > 0 &&
             col_busy_[static_cast<size_t>(task.col)] > 0)
      << "Release of a task whose strata are not locked";
  --row_busy_[static_cast<size_t>(task.row)];
  --col_busy_[static_cast<size_t>(task.col)];
  if (col_busy_[static_cast<size_t>(task.col)] == 0) {
    col_owner_[static_cast<size_t>(task.col)] = -1;
  }
  --in_flight_;
  if (task.lease >= 0) outstanding_.erase(task.lease);
}

bool Scheduler::RevokeLease(const BlockTask& task) {
  if (!LeaseOutstanding(task.lease)) return false;
  outstanding_.erase(task.lease);
  HSGD_CHECK(task.row >= 0 && task.col >= 0);
  HSGD_CHECK(row_busy_[static_cast<size_t>(task.row)] > 0 &&
             col_busy_[static_cast<size_t>(task.col)] > 0)
      << "Revoke of a task whose strata are not locked";
  --row_busy_[static_cast<size_t>(task.row)];
  --col_busy_[static_cast<size_t>(task.col)];
  if (col_busy_[static_cast<size_t>(task.col)] == 0) {
    col_owner_[static_cast<size_t>(task.col)] = -1;
  }
  --in_flight_;
  const size_t b = static_cast<size_t>(task.block);
  if (!requeued_[b]) {
    requeued_[b] = 1;
    done_[b] = 0;  // pending again; any worker may re-acquire it
    ++remaining_;
    ++requeued_blocks_;
    return true;
  }
  // Second failure on the same block: give up on it for this epoch so a
  // cursed block can't ping-pong between dying devices forever.
  ++lost_blocks_;
  return false;
}

}  // namespace hsgd
