// Scheduler vocabulary and the shared stratum-locking core.
//
// Safety contract (the DSGD exclusivity invariant): between Acquire and
// Release, a task owns its row stratum and its column stratum; the
// scheduler never hands a *different* worker a task sharing either, so
// concurrent blocks touch disjoint model factors and SGD needs no factor
// locks. The one sanctioned overlap: a worker may hold two blocks of its
// own column stripe (StarScheduler's GPU pipelining — the device keeps
// the stripe's column factors resident and serializes its kernels, so
// the overlap never races on factors).

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "sched/blocked_matrix.h"
#include "util/rng.h"

namespace hsgd {

enum class DeviceClass { kCpuThread = 0, kGpu = 1 };

struct WorkerInfo {
  DeviceClass device_class = DeviceClass::kCpuThread;
  /// Index of the device within its class (CPU thread id / GPU id).
  int device_index = 0;
  /// Global worker id assigned by the trainer.
  int worker_index = 0;
};

struct BlockTask {
  int block = -1;
  int row = -1;
  int col = -1;
  int64_t nnz = 0;
  /// True when the block came from another device class's region
  /// (HSGD*'s dynamic phase).
  bool stolen = false;
  /// Monotonically increasing lease id stamped by TakeBlock. A lease
  /// stays outstanding until Release or RevokeLease consumes it; a
  /// revoked lease's later Release must be dropped by the caller
  /// (checked via LeaseOutstanding) so its updates are never applied.
  int64_t lease = -1;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Reset per-epoch state: every non-empty block becomes pending again.
  /// Outstanding (unreleased) tasks must not span epochs.
  virtual void BeginEpoch();

  /// BeginEpoch restricted to `blocks` (block indices): only the listed
  /// non-empty blocks become pending; everything else starts the epoch
  /// done. The incremental-training path uses this to sweep just the
  /// blocks that received appended ratings. Policy schedulers need no
  /// override — they derive runnability from the shared done bits.
  void BeginEpochSubset(const std::vector<int>& blocks);

  /// Short policy name for reports and metrics ("star", "uniform").
  virtual const char* name() const = 0;

  /// Hand `worker` a runnable block at simulated time `now`, or nullopt
  /// when nothing is available (epoch drained, or every candidate's
  /// stratum is momentarily locked — retry after the next Release).
  virtual std::optional<BlockTask> Acquire(const WorkerInfo& worker,
                                           SimTime now) = 0;

  /// Return the task's strata to the pool and mark the block done.
  virtual void Release(const WorkerInfo& worker, const BlockTask& task,
                       SimTime now);

  /// True while `lease` was issued and neither Released nor revoked.
  /// The session checks this before applying a block's SGD updates at
  /// release time, which is what makes revocation double-apply-safe.
  bool LeaseOutstanding(int64_t lease) const {
    return lease >= 0 && outstanding_.count(lease) != 0;
  }

  /// Take back a lease whose holder died or blew its deadline: unlock
  /// the strata and return the block to the pending pool. A block is
  /// requeued at most once — a second revocation drops it for the rest
  /// of the epoch (tallied in lost_blocks) so a wedged block can't spin
  /// forever. Returns true when the block was requeued. No-op (false)
  /// if the lease is no longer outstanding.
  bool RevokeLease(const BlockTask& task);

  /// Tell the scheduler a worker is gone for good; it must stop routing
  /// that worker's home region to it. Base implementation is a no-op —
  /// pool schedulers have no per-worker regions.
  virtual void MarkWorkerDead(const WorkerInfo& worker) { (void)worker; }

  /// True once every non-empty block was processed and released.
  bool EpochDone() const { return remaining_ == 0 && in_flight_ == 0; }

  int num_blocks() const { return matrix_->num_blocks(); }
  /// Non-empty blocks not yet taken this epoch (the denominator for
  /// fraction-of-epoch fault triggers when read right after BeginEpoch).
  int remaining_blocks() const { return remaining_; }
  int64_t stolen_by_gpus() const { return stolen_by_gpus_; }
  int64_t stolen_by_cpus() const { return stolen_by_cpus_; }
  int64_t requeued_blocks() const { return requeued_blocks_; }
  int64_t lost_blocks() const { return lost_blocks_; }

  /// Checkpoint hooks: the policy RNG and steal tallies are the only
  /// scheduler state that survives an epoch boundary (strata locks and
  /// done bits reset in BeginEpoch), so persisting them plus rebuilding
  /// the scheduler from config reproduces it exactly.
  RngState rng_state() const { return rng_.SaveState(); }
  void set_rng_state(const RngState& state) { rng_.RestoreState(state); }
  void set_steal_counters(int64_t by_gpus, int64_t by_cpus) {
    stolen_by_gpus_ = by_gpus;
    stolen_by_cpus_ = by_cpus;
  }

 protected:
  Scheduler(const BlockedMatrix* matrix, const Grid* grid, Rng rng);

  bool BlockRunnable(int row, int col) const;
  /// Locks strata, flags `stolen` bookkeeping; returns the filled task.
  BlockTask TakeBlock(const WorkerInfo& worker, int row, int col,
                      bool stolen);

  const BlockedMatrix* matrix_;
  const Grid* grid_;
  /// Policy RNG shared by the concrete schedulers (held here so the
  /// session checkpointer can reach it through the base pointer).
  Rng rng_;
  /// Hold counts per stratum (a column can be held twice, but only by
  /// the same worker — see col_owner_).
  std::vector<int> row_busy_;
  std::vector<int> col_busy_;
  /// worker_index currently holding each busy column stratum.
  std::vector<int> col_owner_;
  std::vector<char> done_;
  int remaining_ = 0;
  int in_flight_ = 0;
  int64_t stolen_by_gpus_ = 0;
  int64_t stolen_by_cpus_ = 0;
  /// Lease bookkeeping. `outstanding_` is only ever membership-tested
  /// (never iterated), so unordered iteration can't leak into the
  /// deterministic event order. `requeued_` marks blocks already given
  /// their one second chance this epoch.
  std::unordered_set<int64_t> outstanding_;
  int64_t next_lease_ = 0;
  std::vector<char> requeued_;
  int64_t requeued_blocks_ = 0;
  int64_t lost_blocks_ = 0;
};

}  // namespace hsgd
