#include "sched/star_scheduler.h"

#include "util/logging.h"

namespace hsgd {

StarScheduler::StarScheduler(const BlockedMatrix* matrix, const Grid* grid,
                             StarSchedulerOptions options, Rng rng)
    : Scheduler(matrix, grid, rng), options_(options) {
  HSGD_CHECK(options_.num_gpu_stripes + options_.num_cpu_stripes ==
             grid->num_col_strata())
      << "stripe counts (" << options_.num_gpu_stripes << " gpu + "
      << options_.num_cpu_stripes << " cpu) must match grid columns "
      << grid->num_col_strata();
  stripe_orphaned_.assign(static_cast<size_t>(grid->num_col_strata()), 0);
}

void StarScheduler::MarkWorkerDead(const WorkerInfo& worker) {
  if (worker.device_class != DeviceClass::kGpu) return;
  const int spg = options_.stripes_per_gpu;
  const int first =
      (worker.device_index * spg) % options_.num_gpu_stripes;
  for (int i = 0; i < spg && first + i < options_.num_gpu_stripes; ++i) {
    stripe_orphaned_[static_cast<size_t>(first + i)] = 1;
    have_orphans_ = true;
  }
}

int StarScheduler::StripeOf(const WorkerInfo& worker) const {
  if (worker.device_class == DeviceClass::kGpu) {
    return (worker.device_index * options_.stripes_per_gpu) %
           options_.num_gpu_stripes;
  }
  return options_.num_gpu_stripes +
         worker.device_index % options_.num_cpu_stripes;
}

int StarScheduler::FindRunnableRow(int stripe) const {
  const int p = grid_->num_row_strata();
  // Rotating start decorrelates workers that would otherwise all chase
  // row stratum 0 at epoch start. Column availability is the caller's
  // responsibility (the home path may legally see its own held column).
  const int offset = (stripe * 131) % p;
  for (int i = 0; i < p; ++i) {
    const int row = (offset + i) % p;
    if (row_busy_[static_cast<size_t>(row)] == 0 &&
        !done_[static_cast<size_t>(grid_->BlockIndex(row, stripe))]) {
      return row;
    }
  }
  return -1;
}

int StarScheduler::StripePending(int stripe) const {
  int pending = 0;
  for (int row = 0; row < grid_->num_row_strata(); ++row) {
    if (!done_[static_cast<size_t>(grid_->BlockIndex(row, stripe))]) {
      ++pending;
    }
  }
  return pending;
}

int StarScheduler::PickStripe(int begin, int end, int skip,
                              int* row) const {
  int best_stripe = -1, best_pending = 0;
  for (int stripe = begin; stripe < end; ++stripe) {
    if (stripe == skip) continue;
    if (col_busy_[static_cast<size_t>(stripe)]) continue;
    const int pending = StripePending(stripe);
    if (pending <= best_pending) continue;
    const int found = FindRunnableRow(stripe);
    if (found < 0) continue;
    best_stripe = stripe;
    best_pending = pending;
    *row = found;
  }
  return best_stripe;
}

std::optional<BlockTask> StarScheduler::Acquire(const WorkerInfo& worker,
                                                SimTime now) {
  (void)now;
  if (remaining_ == 0) return std::nullopt;
  const bool is_gpu = worker.device_class == DeviceClass::kGpu;
  const int gpu_end = options_.num_gpu_stripes;
  const int q = grid_->num_col_strata();

  // 1) Home stripes: the static (cost-model) assignment. A GPU works its
  // resident stripes one at a time — continuing the stripe it currently
  // holds first (up to two blocks there: the depth-2 pipeline that
  // overlaps the next block's H2D copy with the running kernel, safe
  // because the stripe's column factors live on the device and its
  // kernels are serialized), then opening a fresh own stripe. Finishing
  // stripes in sequence rather than round-robin keeps the rest of the
  // GPU's region free for CPU thieves should the GPU fall behind.
  if (is_gpu) {
    const int first = StripeOf(worker);
    const int spg = options_.stripes_per_gpu;
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < spg; ++i) {
        const int stripe = first + i;
        const int holds = col_busy_[static_cast<size_t>(stripe)];
        const bool eligible =
            pass == 0
                ? (holds == 1 && col_owner_[static_cast<size_t>(stripe)] ==
                                     worker.worker_index)
                : holds == 0;
        if (!eligible) continue;
        const int row = FindRunnableRow(stripe);
        if (row >= 0) return TakeBlock(worker, row, stripe, false);
      }
    }
  } else {
    // CPU threads: preferred stripe first, then roam the shared pool
    // (not a steal — spare stripes exist precisely so nobody waits on a
    // lock).
    const int home = StripeOf(worker);
    if (col_busy_[static_cast<size_t>(home)] == 0) {
      const int row = FindRunnableRow(home);
      if (row >= 0) return TakeBlock(worker, row, home, /*stolen=*/false);
    }
    int row = -1;
    const int stripe = PickStripe(gpu_end, q, home, &row);
    if (stripe >= 0) return TakeBlock(worker, row, stripe, false);
  }
  // 1.5) Orphan rescue: a dead GPU's stripes are nobody's home region
  // any more, so any worker may sweep them — ahead of (and exempt from)
  // the dynamic-phase gates below, since even HSGD*-M must not strand
  // their blocks. Free, most-backlogged orphan first, same heuristic as
  // PickStripe.
  if (have_orphans_) {
    int best_stripe = -1, best_pending = 0, best_row = -1;
    for (int stripe = 0; stripe < gpu_end; ++stripe) {
      if (!stripe_orphaned_[static_cast<size_t>(stripe)]) continue;
      if (col_busy_[static_cast<size_t>(stripe)]) continue;
      const int pending = StripePending(stripe);
      if (pending <= best_pending) continue;
      const int found = FindRunnableRow(stripe);
      if (found < 0) continue;
      best_stripe = stripe;
      best_pending = pending;
      best_row = found;
    }
    if (best_stripe >= 0) {
      return TakeBlock(worker, best_row, best_stripe, /*stolen=*/true);
    }
  }
  if (!options_.dynamic) return std::nullopt;
  if (!is_gpu && !options_.allow_cpu_steals) return std::nullopt;

  // 2) Dynamic phase: steal from the other class's region — but only
  // once this worker's own region is truly drained. A momentary row or
  // column lock is not idleness: the pending block will free up within
  // one block-time, while a steal commits this worker (at the wrong
  // speed) for a whole foreign block and locks its stripe out from under
  // the rightful class.
  const int spg = options_.stripes_per_gpu;
  const int own_begin = is_gpu ? worker.device_index * spg : gpu_end;
  const int own_end = is_gpu ? own_begin + spg : q;
  for (int stripe = own_begin; stripe < own_end; ++stripe) {
    if (StripePending(stripe) > 0) return std::nullopt;
  }
  // The victim region must still have a real backlog — more pending
  // blocks than stripes, i.e. at least a full round beyond what its own
  // workers already have in hand. Tail blocks are left alone: a thief is
  // slower per foreign block (launch overhead, cold factors), and
  // grabbing the last ones can push the epoch's finish line out instead
  // of pulling it in.
  const int victim_begin = is_gpu ? gpu_end : 0;
  const int victim_end = is_gpu ? q : gpu_end;
  int victim_pending = 0;
  for (int stripe = victim_begin; stripe < victim_end; ++stripe) {
    victim_pending += StripePending(stripe);
  }
  if (victim_pending <= victim_end - victim_begin) return std::nullopt;
  // Only free stripes qualify — two blocks of one stripe share a column
  // stratum and can never run concurrently, so raiding a busy stripe
  // would just displace its owner (zero-sum); a free one adds
  // parallelism.
  int row = -1;
  const int stripe = PickStripe(victim_begin, victim_end, -1, &row);
  if (stripe >= 0) return TakeBlock(worker, row, stripe, /*stolen=*/true);
  return std::nullopt;
}

}  // namespace hsgd
