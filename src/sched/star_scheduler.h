// HSGD*'s nonuniform-division scheduler (Sections V-VI).
//
// The column axis is divided into device-class regions: one stripe per
// GPU (together alpha of the nnz mass, as decided by the cost model, kept
// resident in that GPU's memory) and a pool of stripes for the CPU
// threads (the rest). Big blocks keep the GPU's SIMT array saturated;
// small blocks keep CPU threads cheap. Since stripes are disjoint in
// columns, concurrent workers only ever contend on row strata.
//
// The CPU pool deliberately holds more stripes than threads: a stripe
// whose column is momentarily locked can be bypassed (threads roam their
// class region), and — crucially — an idle GPU can steal from a *free*
// stripe, adding real parallelism instead of displacing the stripe's
// owner. Two blocks of one stripe share a column stratum and can never
// run concurrently, so stealing from a busy stripe is always zero-sum.
//
// Dynamic phase: a worker whose class region is drained steals runnable
// blocks from the most-backlogged free stripe of the other class (the
// cross-device rebalancing Table III measures); steals are tallied in
// stolen_by_gpus()/stolen_by_cpus().

#pragma once

#include "sched/scheduler.h"

namespace hsgd {

struct StarSchedulerOptions {
  /// Column stripes 0..num_gpu_stripes-1 belong to GPUs (stripes_per_gpu
  /// consecutive stripes each), the rest form the CPU pool. Must sum to
  /// the grid's column stratum count; num_cpu_stripes may exceed the CPU
  /// thread count (spare stripes).
  int num_gpu_stripes = 1;
  int num_cpu_stripes = 1;
  /// A GPU with 2+ resident stripes works one at a time, which leaves the
  /// others stealable — without this, a lagging GPU's region is locked
  /// continuously and idle CPUs could never rebalance toward it.
  int stripes_per_gpu = 1;
  /// Enable the dynamic work-stealing phase (full HSGD*). When off, a
  /// worker with a drained class region idles until the epoch ends
  /// (HSGD*-M).
  bool dynamic = true;
  /// Whether idle CPU threads may steal from GPU stripes. The trainer
  /// disables this when the PCIe round-trip for a stripe's resident
  /// column factors dwarfs the block sweep itself — stealing would slow
  /// the epoch down, not rescue it.
  bool allow_cpu_steals = true;
};

class StarScheduler : public Scheduler {
 public:
  StarScheduler(const BlockedMatrix* matrix, const Grid* grid,
                StarSchedulerOptions options, Rng rng);

  const char* name() const override { return "star"; }

  std::optional<BlockTask> Acquire(const WorkerInfo& worker,
                                   SimTime now) override;

  /// A dead GPU's resident stripes become orphans: nobody's home region,
  /// rescueable by any surviving worker (even under HSGD*-M, where the
  /// ordinary steal gates stay closed). Dead CPU threads need no
  /// handling — the pool stripes were always shared.
  void MarkWorkerDead(const WorkerInfo& worker) override;

  /// The worker's home stripe: a GPU's resident stripe, or the CPU
  /// thread's preferred pool stripe (CPU threads roam the pool when their
  /// home stripe is locked or drained).
  int StripeOf(const WorkerInfo& worker) const;

 private:
  /// Runnable row in `stripe`, scanning from the stripe's rotating
  /// offset; -1 when none.
  int FindRunnableRow(int stripe) const;
  int StripePending(int stripe) const;
  /// Most-backlogged free stripe in [begin, end) with a runnable block;
  /// fills *row, returns the stripe or -1.
  int PickStripe(int begin, int end, int skip, int* row) const;

  StarSchedulerOptions options_;
  /// Stripes whose owner GPU died; sticky across epochs (device death is
  /// permanent within a run).
  std::vector<char> stripe_orphaned_;
  bool have_orphans_ = false;
};

}  // namespace hsgd
