#include "sched/uniform_scheduler.h"

namespace hsgd {

UniformScheduler::UniformScheduler(const BlockedMatrix* matrix,
                                   const Grid* grid,
                                   UniformSchedulerOptions options, Rng rng)
    : Scheduler(matrix, grid, rng), options_(options) {}

std::optional<BlockTask> UniformScheduler::Acquire(const WorkerInfo& worker,
                                                   SimTime now) {
  (void)now;
  if (remaining_ == 0) return std::nullopt;
  const int p = grid_->num_row_strata();
  const int q = grid_->num_col_strata();

  // Reservoir-sample one runnable block so each candidate is equally
  // likely without materializing the candidate list.
  int pick_row = -1, pick_col = -1;
  int64_t seen = 0;
  for (int row = 0; row < p; ++row) {
    if (row_busy_[static_cast<size_t>(row)]) continue;
    for (int col = 0; col < q; ++col) {
      if (!BlockRunnable(row, col)) continue;
      ++seen;
      if (!options_.random_pick) {
        pick_row = row;
        pick_col = col;
        break;
      }
      if (rng_.UniformInt(seen) == 0) {
        pick_row = row;
        pick_col = col;
      }
    }
    if (!options_.random_pick && pick_row >= 0) break;
  }
  if (pick_row < 0) return std::nullopt;
  return TakeBlock(worker, pick_row, pick_col, /*stolen=*/false);
}

}  // namespace hsgd
