// Uniform-division scheduler: HSGD's baseline policy (and the executor
// for CPU-Only / GPU-Only). Every worker — the GPU is just one more
// worker — draws a random runnable block from the shared p x q grid.

#pragma once

#include "sched/scheduler.h"

namespace hsgd {

struct UniformSchedulerOptions {
  /// Pick uniformly among runnable blocks (true, HSGD's policy) or take
  /// the first runnable block in scan order (false, deterministic probes).
  bool random_pick = true;
};

class UniformScheduler : public Scheduler {
 public:
  UniformScheduler(const BlockedMatrix* matrix, const Grid* grid,
                   UniformSchedulerOptions options, Rng rng);

  const char* name() const override { return "uniform"; }

  std::optional<BlockTask> Acquire(const WorkerInfo& worker,
                                   SimTime now) override;

 private:
  UniformSchedulerOptions options_;
};

}  // namespace hsgd
