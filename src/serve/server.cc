#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace hsgd::serve {

RecServer::RecServer(const ServeConfig& config) : config_(config) {}

StatusOr<std::unique_ptr<RecServer>> RecServer::Create(
    const ServeConfig& config, SnapshotPtr initial,
    obs::MetricsRegistry* metrics, obs::Tracer* trace) {
  if (config.shards < 1 || config.shards > 4096) {
    return Status::InvalidArgument(
        StrFormat("shards must be in [1, 4096], got %d", config.shards));
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument(
        StrFormat("max_batch must be positive, got %d", config.max_batch));
  }
  if (config.max_queue < 0) {
    return Status::InvalidArgument(
        StrFormat("max_queue must be >= 0, got %d", config.max_queue));
  }
  auto resolved = ResolveKernelKind(config.kernel);
  HSGD_RETURN_IF_ERROR(resolved.status());

  auto server = std::unique_ptr<RecServer>(new RecServer(config));
  server->config_.kernel = *resolved;
  server->ops_ = &GetKernelOps(*resolved);
  if (initial != nullptr) server->Publish(std::move(initial));

  if (metrics != nullptr) {
    server->m_requests_ = metrics->counter("serve.requests");
    server->m_ok_ = metrics->counter("serve.ok");
    server->m_shed_ = metrics->counter("serve.shed");
    server->m_rejected_ = metrics->counter("serve.rejected");
    server->m_deadline_miss_ = metrics->counter("serve.deadline_miss");
    server->m_cold_ = metrics->counter("serve.cold_users");
    server->m_invalid_ = metrics->counter("serve.invalid");
    server->m_batches_ = metrics->counter("serve.batches");
    server->m_publishes_ = metrics->counter("serve.snapshot_publishes");
    server->m_snapshot_version_ = metrics->gauge("serve.snapshot_version");
    // 10us .. ~84s exponential edges: covers sub-ms in-process serving
    // through badly overloaded tails.
    server->m_latency_ = metrics->histogram(
        "serve.latency_seconds", obs::ExponentialBounds(1e-5, 2.0, 24));
    server->m_batch_size_ = metrics->histogram(
        "serve.batch_size", obs::ExponentialBounds(1.0, 2.0, 12));
  }
  server->tracer_ = trace;
  if (trace != nullptr) {
    for (int s = 0; s < config.shards; ++s) {
      trace->SetThreadName(s, StrFormat("serve shard %d", s));
    }
  }

  server->shards_.reserve(config.shards);
  for (int s = 0; s < config.shards; ++s) {
    server->shards_.push_back(std::make_unique<Shard>());
  }
  server->pool_ =
      std::make_unique<ThreadPool>(static_cast<size_t>(config.shards));
  RecServer* raw = server.get();
  for (int s = 0; s < config.shards; ++s) {
    server->pool_->Submit([raw, s] { raw->ShardLoop(s); });
  }
  return server;
}

RecServer::~RecServer() { Shutdown(); }

void RecServer::Publish(SnapshotPtr snapshot) {
  const uint64_t version = snapshot != nullptr ? snapshot->version() : 0;
  holder_.Publish(std::move(snapshot));
  counts_.publishes.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(m_publishes_);
  obs::Set(m_snapshot_version_, static_cast<double>(version));
}

std::future<StatusOr<TopKResponse>> RecServer::Submit(
    const TopKRequest& request) {
  counts_.requests.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(m_requests_);
  std::promise<StatusOr<TopKResponse>> promise;
  std::future<StatusOr<TopKResponse>> future = promise.get_future();

  Pending pending;
  pending.request = request;
  pending.enqueue_s = clock_.Seconds();
  pending.promise = std::move(promise);

  Shard& shard = *shards_[ShardFor(request)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load(std::memory_order_acquire)) {
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_rejected_);
      pending.promise.set_value(
          Status::Unavailable("server is shutting down"));
      return future;
    }
    if (config_.max_queue > 0 &&
        shard.queue.size() >= static_cast<size_t>(config_.max_queue)) {
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_rejected_);
      pending.promise.set_value(Status::Unavailable(
          StrFormat("shard queue full (%d queued)", config_.max_queue)));
      return future;
    }
    shard.queue.push_back(std::move(pending));
  }
  shard.cv.notify_one();
  return future;
}

StatusOr<TopKResponse> RecServer::Query(const TopKRequest& request) {
  return Submit(request).get();
}

void RecServer::ShardLoop(int shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return !shard.queue.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (shard.queue.empty()) {
        // Stopping and fully drained.
        return;
      }
      const size_t take = std::min(shard.queue.size(),
                                   static_cast<size_t>(config_.max_batch));
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
    }
    ProcessBatch(shard_index, &batch);
  }
}

void RecServer::ProcessBatch(int shard_index, std::vector<Pending>* batch) {
  const double batch_begin_s = clock_.Seconds();
  // ONE snapshot per batch: a concurrent Publish changes later batches,
  // never the one in flight, so a batch's answers can't mix two models.
  const SnapshotPtr snapshot = holder_.Acquire();

  // Triage: shed expired requests, resolve raw ids, collect the scorable
  // queries. `live` maps scorable-query position -> batch position.
  std::vector<TopKQuery> queries;
  std::vector<size_t> live;
  queries.reserve(batch->size());
  live.reserve(batch->size());
  int64_t shed = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    Pending& pending = (*batch)[i];
    if (snapshot == nullptr) {
      pending.promise.set_value(
          Status::Unavailable("no snapshot published yet"));
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_rejected_);
      continue;
    }
    if (config_.latency_budget_s > 0.0 &&
        batch_begin_s - pending.enqueue_s > config_.latency_budget_s) {
      ++shed;
      counts_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_shed_);
      pending.promise.set_value(Status::DeadlineExceeded(StrFormat(
          "request queued %.1fms, budget %.1fms",
          (batch_begin_s - pending.enqueue_s) * 1e3,
          config_.latency_budget_s * 1e3)));
      continue;
    }
    int32_t dense_user;
    if (pending.request.raw) {
      auto resolved = snapshot->DenseUser(pending.request.user);
      if (!resolved.ok()) {
        counts_.cold_users.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_cold_);
        pending.promise.set_value(resolved.status());
        continue;
      }
      dense_user = *resolved;
    } else {
      if (pending.request.user < 0 ||
          pending.request.user > INT32_MAX) {
        counts_.invalid.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_invalid_);
        pending.promise.set_value(Status::InvalidArgument(StrFormat(
            "user id %lld is not a dense index",
            static_cast<long long>(pending.request.user))));
        continue;
      }
      dense_user = static_cast<int32_t>(pending.request.user);
    }
    queries.push_back({dense_user, pending.request.k});
    live.push_back(i);
  }

  if (!queries.empty()) {
    counts_.batches.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(m_batches_);
    obs::Observe(m_batch_size_, static_cast<double>(queries.size()));
    // Thread-local so each shard worker keeps one resident buffer across
    // its lifetime of batches.
    static thread_local std::vector<float> scratch;
    auto results =
        BatchTopK(*snapshot, queries.data(), queries.size(), ops_,
                  &scratch);
    const double done_s = clock_.Seconds();
    for (size_t qi = 0; qi < results.size(); ++qi) {
      Pending& pending = (*batch)[live[qi]];
      if (!results[qi].ok()) {
        counts_.invalid.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_invalid_);
        pending.promise.set_value(results[qi].status());
        continue;
      }
      TopKResponse response;
      response.items = *std::move(results[qi]);
      if (snapshot->has_id_maps()) {
        response.raw_items.reserve(response.items.size());
        for (const ScoredItem& item : response.items) {
          response.raw_items.push_back(snapshot->RawItem(item.item));
        }
      }
      response.snapshot_version = snapshot->version();
      response.latency_s = done_s - pending.enqueue_s;
      counts_.ok.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_ok_);
      obs::Observe(m_latency_, response.latency_s);
      if (config_.latency_budget_s > 0.0 &&
          response.latency_s > config_.latency_budget_s) {
        counts_.deadline_miss.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_deadline_miss_);
      }
      pending.promise.set_value(std::move(response));
    }
  }

  if (tracer_ != nullptr) {
    tracer_->Span(
        "serve", "batch", shard_index, batch_begin_s, clock_.Seconds(),
        {obs::TraceArg::Int("queries", static_cast<int64_t>(queries.size())),
         obs::TraceArg::Int("shed", shed),
         obs::TraceArg::Int(
             "snapshot_version",
             snapshot != nullptr
                 ? static_cast<int64_t>(snapshot->version())
                 : -1)});
  }
}

void RecServer::Shutdown() {
  if (joined_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    // The store above is ordered before this lock/unlock pair, so a
    // worker that re-checks under the lock cannot miss it.
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
  // ThreadPool's destructor joins the shard loops (they exit once their
  // queues drain).
  pool_.reset();
  joined_ = true;
}

ServeCounters RecServer::counters() const {
  ServeCounters counters;
  counters.requests = counts_.requests.load(std::memory_order_relaxed);
  counters.ok = counts_.ok.load(std::memory_order_relaxed);
  counters.shed_deadline =
      counts_.shed_deadline.load(std::memory_order_relaxed);
  counters.rejected = counts_.rejected.load(std::memory_order_relaxed);
  counters.deadline_miss =
      counts_.deadline_miss.load(std::memory_order_relaxed);
  counters.cold_users = counts_.cold_users.load(std::memory_order_relaxed);
  counters.invalid = counts_.invalid.load(std::memory_order_relaxed);
  counters.batches = counts_.batches.load(std::memory_order_relaxed);
  counters.publishes = counts_.publishes.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace hsgd::serve
