#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace hsgd::serve {

RecServer::RecServer(const ServeConfig& config) : config_(config) {}

StatusOr<std::unique_ptr<RecServer>> RecServer::Create(
    const ServeConfig& config, SnapshotPtr initial,
    obs::MetricsRegistry* metrics, obs::Tracer* trace) {
  if (config.shards < 1 || config.shards > 4096) {
    return Status::InvalidArgument(
        StrFormat("shards must be in [1, 4096], got %d", config.shards));
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument(
        StrFormat("max_batch must be positive, got %d", config.max_batch));
  }
  if (config.max_queue < 0) {
    return Status::InvalidArgument(
        StrFormat("max_queue must be >= 0, got %d", config.max_queue));
  }
  if (config.breaker_enabled) {
    if (config.breaker_window < 1 || config.breaker_probes < 1) {
      return Status::InvalidArgument(StrFormat(
          "breaker window/probes must be positive, got %d/%d",
          config.breaker_window, config.breaker_probes));
    }
    if (config.breaker_miss_ratio <= 0.0 ||
        config.breaker_miss_ratio > 1.0) {
      return Status::InvalidArgument(
          StrFormat("breaker_miss_ratio must be in (0, 1], got %g",
                    config.breaker_miss_ratio));
    }
    if (config.breaker_open_s <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("breaker_open_s must be positive, got %g",
                    config.breaker_open_s));
    }
  }
  auto resolved = ResolveKernelKind(config.kernel);
  HSGD_RETURN_IF_ERROR(resolved.status());

  auto server = std::unique_ptr<RecServer>(new RecServer(config));
  server->config_.kernel = *resolved;
  server->ops_ = &GetKernelOps(*resolved);
  if (initial != nullptr) {
    // A corrupt initial snapshot fails construction outright — there is
    // no last-known-good to fall back to yet.
    HSGD_RETURN_IF_ERROR(server->Publish(std::move(initial)));
  }

  if (metrics != nullptr) {
    server->m_requests_ = metrics->counter("serve.requests");
    server->m_ok_ = metrics->counter("serve.ok");
    server->m_shed_ = metrics->counter("serve.shed");
    server->m_rejected_ = metrics->counter("serve.rejected");
    server->m_deadline_miss_ = metrics->counter("serve.deadline_miss");
    server->m_cold_ = metrics->counter("serve.cold_users");
    server->m_invalid_ = metrics->counter("serve.invalid");
    server->m_batches_ = metrics->counter("serve.batches");
    server->m_publishes_ = metrics->counter("serve.snapshot_publishes");
    server->m_publish_rejected_ =
        metrics->counter("serve.publish_rejected");
    server->m_breaker_rejected_ =
        metrics->counter("serve.breaker.rejected");
    server->m_predictive_rejected_ =
        metrics->counter("serve.breaker.predictive_rejected");
    server->m_breaker_opens_ = metrics->counter("serve.breaker.opens");
    server->m_breaker_half_opens_ =
        metrics->counter("serve.breaker.half_opens");
    server->m_breaker_closes_ = metrics->counter("serve.breaker.closes");
    server->m_open_shards_ = metrics->gauge("serve.breaker.open_shards");
    server->m_snapshot_version_ = metrics->gauge("serve.snapshot_version");
    // 10us .. ~84s exponential edges: covers sub-ms in-process serving
    // through badly overloaded tails.
    server->m_latency_ = metrics->histogram(
        "serve.latency_seconds", obs::ExponentialBounds(1e-5, 2.0, 24));
    server->m_batch_size_ = metrics->histogram(
        "serve.batch_size", obs::ExponentialBounds(1.0, 2.0, 12));
  }
  server->tracer_ = trace;
  if (trace != nullptr) {
    for (int s = 0; s < config.shards; ++s) {
      trace->SetThreadName(s, StrFormat("serve shard %d", s));
    }
  }

  server->shards_.reserve(config.shards);
  for (int s = 0; s < config.shards; ++s) {
    server->shards_.push_back(std::make_unique<Shard>());
  }
  server->pool_ =
      std::make_unique<ThreadPool>(static_cast<size_t>(config.shards));
  RecServer* raw = server.get();
  for (int s = 0; s < config.shards; ++s) {
    server->pool_->Submit([raw, s] { raw->ShardLoop(s); });
  }
  return server;
}

RecServer::~RecServer() { Shutdown(); }

Status RecServer::Publish(SnapshotPtr snapshot) {
  const uint64_t version = snapshot != nullptr ? snapshot->version() : 0;
  Status published = holder_.PublishValidated(std::move(snapshot));
  if (!published.ok()) {
    // Rejection leaves the last-known-good snapshot serving untouched.
    counts_.publish_rejected.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(m_publish_rejected_);
    return published;
  }
  counts_.publishes.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(m_publishes_);
  obs::Set(m_snapshot_version_, static_cast<double>(version));
  return Status::Ok();
}

std::future<StatusOr<TopKResponse>> RecServer::Submit(
    const TopKRequest& request) {
  counts_.requests.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(m_requests_);
  std::promise<StatusOr<TopKResponse>> promise;
  std::future<StatusOr<TopKResponse>> future = promise.get_future();

  Pending pending;
  pending.request = request;
  pending.enqueue_s = clock_.Seconds();
  pending.promise = std::move(promise);

  Shard& shard = *shards_[ShardFor(request)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load(std::memory_order_acquire) ||
        draining_.load(std::memory_order_acquire)) {
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_rejected_);
      pending.promise.set_value(
          Status::Unavailable("server is shutting down"));
      return future;
    }
    if (BreakerLive()) {
      Status admitted = AdmitUnderControl(shard, pending.enqueue_s);
      if (!admitted.ok()) {
        pending.promise.set_value(admitted);
        return future;
      }
    }
    if (config_.max_queue > 0 &&
        shard.queue.size() >= static_cast<size_t>(config_.max_queue)) {
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_rejected_);
      pending.promise.set_value(Status::Unavailable(
          StrFormat("shard queue full (%d queued)", config_.max_queue)));
      return future;
    }
    shard.queue.push_back(std::move(pending));
  }
  shard.cv.notify_one();
  return future;
}

Status RecServer::AdmitUnderControl(Shard& shard, double now_s) {
  // Open: fail fast until the cooldown expires, then half-open with a
  // fresh probe budget.
  if (shard.breaker == BreakerState::kOpen) {
    if (now_s < shard.open_until_s) {
      counts_.breaker_rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_breaker_rejected_);
      return Status::Unavailable(
          "circuit open: shard shedding after sustained deadline misses");
    }
    shard.breaker = BreakerState::kHalfOpen;
    shard.probes_admitted = 0;
    shard.probes_resolved = 0;
    shard.probe_missed = false;
    counts_.breaker_half_opens.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(m_breaker_half_opens_);
    NoteShardUnopened();
  }
  // Half-open: admit exactly the probe budget, reject the rest until the
  // probes resolve one way or the other.
  if (shard.breaker == BreakerState::kHalfOpen) {
    if (shard.probes_admitted >= config_.breaker_probes) {
      counts_.breaker_rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_breaker_rejected_);
      return Status::Unavailable(
          "circuit half-open: probe budget exhausted");
    }
    ++shard.probes_admitted;
    return Status::Ok();  // probes bypass the predictive check
  }
  // Closed: shed predictively when the queue-depth * EWMA service time
  // projection says this request would miss its deadline anyway —
  // cheaper than admitting it and shedding at dequeue.
  if (shard.ewma_service_s > 0.0) {
    const double projected_s =
        (static_cast<double>(shard.queue.size()) + 1.0) *
        shard.ewma_service_s;
    if (projected_s > config_.latency_budget_s) {
      counts_.predictive_rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_predictive_rejected_);
      return Status::Unavailable(StrFormat(
          "projected wait %.2fms exceeds the %.2fms budget",
          projected_s * 1e3, config_.latency_budget_s * 1e3));
    }
  }
  return Status::Ok();
}

void RecServer::UpdateControlAfterBatch(Shard& shard, double now_s,
                                        int total, int miss,
                                        double service_s) {
  if (service_s > 0.0) {
    // EWMA with a 0.2 step: reacts within a handful of batches without
    // flapping on one slow sweep.
    shard.ewma_service_s =
        shard.ewma_service_s <= 0.0
            ? service_s
            : 0.8 * shard.ewma_service_s + 0.2 * service_s;
  }
  if (total <= 0) return;
  if (shard.breaker == BreakerState::kHalfOpen) {
    shard.probes_resolved += total;
    if (miss > 0) shard.probe_missed = true;
    if (shard.probe_missed) {
      // A probe missed its deadline: back to open for another cooldown.
      shard.breaker = BreakerState::kOpen;
      shard.open_until_s = now_s + config_.breaker_open_s;
      counts_.breaker_opens.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_breaker_opens_);
      NoteShardOpened();
    } else if (shard.probes_resolved >= config_.breaker_probes) {
      // Every probe hit: the shard has recovered.
      shard.breaker = BreakerState::kClosed;
      shard.window_total = 0;
      shard.window_miss = 0;
      counts_.breaker_closes.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_breaker_closes_);
    }
    return;
  }
  if (shard.breaker == BreakerState::kClosed) {
    shard.window_total += total;
    shard.window_miss += miss;
    if (shard.window_total >= config_.breaker_window) {
      if (static_cast<double>(shard.window_miss) >=
          config_.breaker_miss_ratio *
              static_cast<double>(shard.window_total)) {
        shard.breaker = BreakerState::kOpen;
        shard.open_until_s = now_s + config_.breaker_open_s;
        counts_.breaker_opens.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_breaker_opens_);
        NoteShardOpened();
      }
      shard.window_total = 0;
      shard.window_miss = 0;
    }
  }
  // Open with no admission: completions here are stragglers admitted
  // before the trip; they don't feed any window.
}

void RecServer::NoteShardOpened() {
  const int open = open_shards_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::Set(m_open_shards_, static_cast<double>(open));
}

void RecServer::NoteShardUnopened() {
  const int open = open_shards_.fetch_sub(1, std::memory_order_relaxed) - 1;
  obs::Set(m_open_shards_, static_cast<double>(open));
}

StatusOr<TopKResponse> RecServer::Query(const TopKRequest& request) {
  return Submit(request).get();
}

void RecServer::ShardLoop(int shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return !shard.queue.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (shard.queue.empty()) {
        // Stopping and fully drained.
        return;
      }
      const size_t take = std::min(shard.queue.size(),
                                   static_cast<size_t>(config_.max_batch));
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
      shard.in_flight = true;
    }
    ProcessBatch(shard_index, &batch);
    {
      // Batch fully resolved; wake any Drain() waiting on this shard.
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.in_flight = false;
    }
    shard.cv.notify_all();
  }
}

void RecServer::ProcessBatch(int shard_index, std::vector<Pending>* batch) {
  if (stall_hook_) {
    // Chaos hook: a degraded shard stalls before scoring (slowshard).
    const double stall_s = stall_hook_(shard_index);
    if (stall_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));
    }
  }
  const double batch_begin_s = clock_.Seconds();
  // Breaker window feed: completions and deadline misses in this batch
  // (a shed request is a definite miss; cold/invalid resolve instantly
  // and count as hits).
  int win_total = 0;
  int win_miss = 0;
  double service_sample_s = 0.0;
  // ONE snapshot per batch: a concurrent Publish changes later batches,
  // never the one in flight, so a batch's answers can't mix two models.
  const SnapshotPtr snapshot = holder_.Acquire();

  // Triage: shed expired requests, resolve raw ids, collect the scorable
  // queries. `live` maps scorable-query position -> batch position.
  std::vector<TopKQuery> queries;
  std::vector<size_t> live;
  queries.reserve(batch->size());
  live.reserve(batch->size());
  int64_t shed = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    Pending& pending = (*batch)[i];
    if (snapshot == nullptr) {
      pending.promise.set_value(
          Status::Unavailable("no snapshot published yet"));
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_rejected_);
      continue;
    }
    if (config_.latency_budget_s > 0.0 &&
        batch_begin_s - pending.enqueue_s > config_.latency_budget_s) {
      ++shed;
      ++win_total;
      ++win_miss;
      counts_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_shed_);
      pending.promise.set_value(Status::DeadlineExceeded(StrFormat(
          "request queued %.1fms, budget %.1fms",
          (batch_begin_s - pending.enqueue_s) * 1e3,
          config_.latency_budget_s * 1e3)));
      continue;
    }
    int32_t dense_user;
    if (pending.request.raw) {
      auto resolved = snapshot->DenseUser(pending.request.user);
      if (!resolved.ok()) {
        ++win_total;
        counts_.cold_users.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_cold_);
        pending.promise.set_value(resolved.status());
        continue;
      }
      dense_user = *resolved;
    } else {
      if (pending.request.user < 0 ||
          pending.request.user > INT32_MAX) {
        ++win_total;
        counts_.invalid.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_invalid_);
        pending.promise.set_value(Status::InvalidArgument(StrFormat(
            "user id %lld is not a dense index",
            static_cast<long long>(pending.request.user))));
        continue;
      }
      dense_user = static_cast<int32_t>(pending.request.user);
    }
    queries.push_back({dense_user, pending.request.k});
    live.push_back(i);
  }

  if (!queries.empty()) {
    counts_.batches.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(m_batches_);
    obs::Observe(m_batch_size_, static_cast<double>(queries.size()));
    // Thread-local so each shard worker keeps one resident buffer across
    // its lifetime of batches.
    static thread_local std::vector<float> scratch;
    auto results =
        BatchTopK(*snapshot, queries.data(), queries.size(), ops_,
                  &scratch);
    const double done_s = clock_.Seconds();
    service_sample_s = (done_s - batch_begin_s) /
                       static_cast<double>(queries.size());
    for (size_t qi = 0; qi < results.size(); ++qi) {
      Pending& pending = (*batch)[live[qi]];
      ++win_total;
      if (!results[qi].ok()) {
        counts_.invalid.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_invalid_);
        pending.promise.set_value(results[qi].status());
        continue;
      }
      TopKResponse response;
      response.items = *std::move(results[qi]);
      if (snapshot->has_id_maps()) {
        response.raw_items.reserve(response.items.size());
        for (const ScoredItem& item : response.items) {
          response.raw_items.push_back(snapshot->RawItem(item.item));
        }
      }
      response.snapshot_version = snapshot->version();
      response.latency_s = done_s - pending.enqueue_s;
      counts_.ok.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(m_ok_);
      obs::Observe(m_latency_, response.latency_s);
      if (config_.latency_budget_s > 0.0 &&
          response.latency_s > config_.latency_budget_s) {
        ++win_miss;
        counts_.deadline_miss.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(m_deadline_miss_);
      }
      pending.promise.set_value(std::move(response));
    }
  }

  if (BreakerLive() && (win_total > 0 || service_sample_s > 0.0)) {
    Shard& control_shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(control_shard.mu);
    UpdateControlAfterBatch(control_shard, clock_.Seconds(), win_total,
                            win_miss, service_sample_s);
  }

  if (tracer_ != nullptr) {
    tracer_->Span(
        "serve", "batch", shard_index, batch_begin_s, clock_.Seconds(),
        {obs::TraceArg::Int("queries", static_cast<int64_t>(queries.size())),
         obs::TraceArg::Int("shed", shed),
         obs::TraceArg::Int(
             "snapshot_version",
             snapshot != nullptr
                 ? static_cast<int64_t>(snapshot->version())
                 : -1)});
  }
}

void RecServer::Drain() {
  draining_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    // Wake the worker for anything still queued, then wait for it to
    // resolve every promise. A Submit that raced the draining_ store and
    // enqueued is simply part of what we wait for — nothing is dropped.
    shard->cv.notify_all();
    shard->cv.wait(lock,
                   [&] { return shard->queue.empty() && !shard->in_flight; });
  }
}

void RecServer::Shutdown() {
  if (joined_) return;
  // Drain first: every already-admitted request resolves its future
  // before any worker is asked to exit, so no promise is ever abandoned.
  Drain();
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    // The store above is ordered before this lock/unlock pair, so a
    // worker that re-checks under the lock cannot miss it.
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
  // ThreadPool's destructor joins the shard loops (they exit once their
  // queues drain).
  pool_.reset();
  joined_ = true;
}

ServeCounters RecServer::counters() const {
  ServeCounters counters;
  counters.requests = counts_.requests.load(std::memory_order_relaxed);
  counters.ok = counts_.ok.load(std::memory_order_relaxed);
  counters.shed_deadline =
      counts_.shed_deadline.load(std::memory_order_relaxed);
  counters.rejected = counts_.rejected.load(std::memory_order_relaxed);
  counters.deadline_miss =
      counts_.deadline_miss.load(std::memory_order_relaxed);
  counters.cold_users = counts_.cold_users.load(std::memory_order_relaxed);
  counters.invalid = counts_.invalid.load(std::memory_order_relaxed);
  counters.batches = counts_.batches.load(std::memory_order_relaxed);
  counters.publishes = counts_.publishes.load(std::memory_order_relaxed);
  counters.publish_rejected =
      counts_.publish_rejected.load(std::memory_order_relaxed);
  counters.breaker_rejected =
      counts_.breaker_rejected.load(std::memory_order_relaxed);
  counters.predictive_rejected =
      counts_.predictive_rejected.load(std::memory_order_relaxed);
  counters.breaker_opens =
      counts_.breaker_opens.load(std::memory_order_relaxed);
  counters.breaker_half_opens =
      counts_.breaker_half_opens.load(std::memory_order_relaxed);
  counters.breaker_closes =
      counts_.breaker_closes.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace hsgd::serve
