// RecServer: the concurrent recommendation-serving request loop.
//
// Architecture (in-process driver loop — the API is socket-shaped so an
// epoll/io_uring front end can be bolted on later without touching the
// scoring path):
//
//   Submit(request)                 user-sharded queues      micro-batch
//   ── admission check ──> shard = user mod S ──> worker s ──> coalesce
//        (queue bound)         mutex+cv queue        up to max_batch
//                                                        │
//                              ┌─────────────────────────┘
//                              ▼
//            SnapshotHolder::Acquire()  (one pin per BATCH, lock-free)
//                              ▼
//            deadline check: shed requests held past the latency budget
//                              ▼
//            BatchTopK: one tile-major factor sweep answers the batch
//                              ▼
//            fulfill futures, record latency / batch-size / trace span
//
// Requests for the same user always land on the same shard (their
// exclusion lists and factor rows stay cache-warm there), and a batch is
// scored against exactly ONE snapshot — a concurrent Publish affects
// only later batches, so results are never a torn mix of two models.
//
// Load shedding is typed: a request rejected at admission (queue full or
// server stopped) fails Unavailable; one held past the latency budget is
// shed with DeadlineExceeded before any scoring work is wasted on it; a
// raw id the model has no factors for is NotFound (cold user). A request
// that completes over budget still returns its result, counted as a
// deadline miss.
//
// Overload control is ADAPTIVE when enabled (breaker_enabled + a latency
// budget): admission rejects work the deadline math says cannot be
// served in time, instead of waiting for a static queue bound to fill.
// Two mechanisms layer on the hard max_queue cap, both per shard:
//
//   predictive shedding  an EWMA of per-request service time projects
//                        the wait a new request would inherit
//                        ((queued+1) * ewma); a projection past the
//                        budget rejects at Submit — cheaper than
//                        admitting and shedding at dequeue.
//   circuit breaker      a sliding window of completions tracks the
//                        deadline-miss ratio. Sustained misses OPEN the
//                        shard's breaker: admission fails fast for a
//                        cooldown, letting the queue clear. After the
//                        cooldown the breaker HALF-OPENS and admits a
//                        probe budget; an all-hit probe set closes it,
//                        any probe miss re-opens. The hysteresis
//                        (windowed open, probed close) keeps the breaker
//                        from flapping on noise.
//
// Shutdown is graceful: Drain() stops admission (new submits fail
// Unavailable) and blocks until every queued request and in-flight batch
// has resolved its promise, so no future is ever abandoned; Shutdown =
// Drain + join.
//
// Publication is validated: Publish runs the snapshot through
// FactorSnapshot::Validate and REJECTS corrupt candidates (typed error,
// publish_rejected counter) — serving continues on the last-known-good
// snapshot. See serve/snapshot.h.
//
// All counters/histograms/spans go through borrowed obs/ sinks (may be
// null); a small always-on atomic counter block backs the bench and
// tests without requiring a registry.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "core/kernels/kernels.h"
#include "serve/snapshot.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace hsgd::obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Gauge;
class Histogram;
}  // namespace hsgd::obs

namespace hsgd::serve {

struct ServeConfig {
  /// Worker shards (threads AND queues; requests shard by user id).
  int shards = 4;
  /// Max queries coalesced into one scoring sweep.
  int max_batch = 32;
  /// Per-shard admission bound; a full queue rejects with Unavailable.
  /// 0 = unbounded.
  int max_queue = 1024;
  /// Latency budget in seconds: requests still queued past it are shed
  /// with DeadlineExceeded; completed-but-late ones count as deadline
  /// misses. <= 0 disables both.
  double latency_budget_s = 0.0;
  /// Scoring kernel (resolved at Create; kAuto = best supported).
  KernelKind kernel = KernelKind::kAuto;

  // Adaptive overload control (file comment). Requires a positive
  // latency_budget_s; without one there is no deadline to adapt to and
  // the flag is ignored.
  /// Master switch for the per-shard breaker + predictive shedding.
  bool breaker_enabled = false;
  /// Completions per miss-ratio evaluation window.
  int breaker_window = 64;
  /// Deadline-miss ratio (shed + late completions) that opens the
  /// breaker, in (0, 1].
  double breaker_miss_ratio = 0.5;
  /// Fail-fast cooldown after opening, in seconds, before half-opening.
  double breaker_open_s = 0.05;
  /// Probe requests admitted half-open; all must hit the deadline to
  /// close the breaker, one miss re-opens it.
  int breaker_probes = 8;
};

struct TopKRequest {
  /// Dense user index, or an external raw id when `raw` is set (resolved
  /// through the snapshot's IdMap; cold ids fail NotFound).
  int64_t user = 0;
  bool raw = false;
  int k = 10;
};

struct TopKResponse {
  /// Ranked items (dense indices), descending score.
  std::vector<ScoredItem> items;
  /// External ids for `items`, filled when the snapshot carries id maps.
  std::vector<int64_t> raw_items;
  /// Version of the snapshot that scored this request.
  uint64_t snapshot_version = 0;
  /// End-to-end seconds from Submit to completion.
  double latency_s = 0.0;
};

/// Always-on request accounting (plain reads of atomics; exact once the
/// server is idle). The obs registry mirrors these under serve.*.
struct ServeCounters {
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t shed_deadline = 0;   // dropped at dequeue: budget exhausted
  int64_t rejected = 0;        // dropped at admission: queue full/stopped
  int64_t deadline_miss = 0;   // completed, but over budget
  int64_t cold_users = 0;      // raw id with no trained factors
  int64_t invalid = 0;         // malformed query (range/k)
  int64_t batches = 0;         // scoring sweeps run
  int64_t publishes = 0;       // snapshots installed
  int64_t publish_rejected = 0;    // corrupt snapshots refused
  int64_t breaker_rejected = 0;    // rejected while a breaker was open
  int64_t predictive_rejected = 0; // rejected by projected-wait math
  int64_t breaker_opens = 0;       // closed/half-open -> open transitions
  int64_t breaker_half_opens = 0;  // open -> half-open transitions
  int64_t breaker_closes = 0;      // half-open -> closed transitions
};

class RecServer {
 public:
  /// `initial` may be null (queries fail Unavailable until the first
  /// Publish). `metrics`/`trace` are borrowed sinks, either may be null.
  /// Fails if the config is malformed or the kernel is unsupported.
  static StatusOr<std::unique_ptr<RecServer>> Create(
      const ServeConfig& config, SnapshotPtr initial,
      obs::MetricsRegistry* metrics = nullptr,
      obs::Tracer* trace = nullptr);

  /// Drains queued requests, then joins the workers.
  ~RecServer();

  RecServer(const RecServer&) = delete;
  RecServer& operator=(const RecServer&) = delete;

  /// Install a new snapshot without blocking in-flight queries — batches
  /// already scoring finish on the snapshot they pinned; later batches
  /// see the new one. The candidate is validated first
  /// (SnapshotHolder::PublishValidated): a null or corrupt snapshot is
  /// REJECTED with a typed error, counted in publish_rejected, and the
  /// last-known-good snapshot keeps serving.
  Status Publish(SnapshotPtr snapshot);
  /// The snapshot new batches would score against right now.
  SnapshotPtr CurrentSnapshot() const { return holder_.Acquire(); }

  /// Enqueue a query; the future resolves when a worker answers (or
  /// sheds) it. Safe from any thread.
  std::future<StatusOr<TopKResponse>> Submit(const TopKRequest& request);
  /// Submit + wait, for callers with nothing to overlap.
  StatusOr<TopKResponse> Query(const TopKRequest& request);

  /// Graceful quiesce: stop admitting (new submits fail Unavailable),
  /// then block until every queued request and in-flight batch has
  /// resolved its promise. Workers stay alive and a later Publish still
  /// works, but admission never reopens. Safe to call from any thread;
  /// idempotent.
  void Drain();

  /// Drain, then join the workers. Idempotent; the destructor calls it.
  /// Any Submit racing Shutdown either lands before the drain (and is
  /// fully served) or fails Unavailable — its future always resolves.
  void Shutdown();

  /// Chaos/test hook, called at the top of every batch with the shard
  /// index; a positive return stalls that shard's worker for that many
  /// seconds before scoring (simulating a degraded shard). Install
  /// before traffic starts; not synchronized against in-flight batches.
  void SetBatchStallHook(std::function<double(int)> hook) {
    stall_hook_ = std::move(hook);
  }

  ServeCounters counters() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct Pending {
    TopKRequest request;
    double enqueue_s = 0.0;  // server clock at Submit
    std::promise<StatusOr<TopKResponse>> promise;
  };

  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// One shard: a mutex/cv guarded queue its worker drains in batches,
  /// plus the shard's overload-control state (all guarded by `mu`; the
  /// worker touches it once per batch, admission once per submit).
  struct alignas(64) Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    /// True while the worker is scoring a dequeued batch; Drain waits
    /// for queue.empty() && !in_flight on `cv`.
    bool in_flight = false;
    // --- breaker + predictive admission (breaker_enabled only) ---
    BreakerState breaker = BreakerState::kClosed;
    /// EWMA of per-request service seconds (0 until the first batch).
    double ewma_service_s = 0.0;
    /// Sliding completion window feeding the miss-ratio evaluation.
    int window_total = 0;
    int window_miss = 0;
    /// Server-clock time the open cooldown expires.
    double open_until_s = 0.0;
    /// Half-open probe accounting.
    int probes_admitted = 0;
    int probes_resolved = 0;
    bool probe_missed = false;
  };

  explicit RecServer(const ServeConfig& config);

  void ShardLoop(int shard_index);
  /// Answer (or shed) one dequeued batch against a single snapshot.
  void ProcessBatch(int shard_index, std::vector<Pending>* batch);
  /// True when adaptive overload control is live (flag + budget).
  bool BreakerLive() const {
    return config_.breaker_enabled && config_.latency_budget_s > 0.0;
  }
  /// Admission-side breaker/predictive gate; call with `shard.mu` held.
  /// Ok admits; a typed error rejects (already counted).
  Status AdmitUnderControl(Shard& shard, double now_s);
  /// Completion-side state machine step; call with `shard.mu` held.
  /// `total`/`miss` are this batch's completions and deadline misses
  /// (shed requests count as misses), `service_s` the per-request
  /// service-time sample.
  void UpdateControlAfterBatch(Shard& shard, double now_s, int total,
                               int miss, double service_s);
  /// Breaker transition helpers: bump the open-shard count (mirrored to
  /// the serve.breaker.open_shards gauge) as shards open/close.
  void NoteShardOpened();
  void NoteShardUnopened();

  int ShardFor(const TopKRequest& request) const {
    return static_cast<int>(static_cast<uint64_t>(request.user) %
                            static_cast<uint64_t>(config_.shards));
  }

  ServeConfig config_;
  const KernelOps* ops_ = nullptr;
  SnapshotHolder holder_;
  /// Server-lifetime wall clock: enqueue stamps, latencies, trace ts.
  Stopwatch clock_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  /// Set by Drain: admission closed, workers still draining/alive.
  std::atomic<bool> draining_{false};
  bool joined_ = false;
  /// Shards currently in the open (fail-fast) breaker state.
  std::atomic<int> open_shards_{0};
  std::function<double(int)> stall_hook_;

  struct {
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> shed_deadline{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> deadline_miss{0};
    std::atomic<int64_t> cold_users{0};
    std::atomic<int64_t> invalid{0};
    std::atomic<int64_t> batches{0};
    std::atomic<int64_t> publishes{0};
    std::atomic<int64_t> publish_rejected{0};
    std::atomic<int64_t> breaker_rejected{0};
    std::atomic<int64_t> predictive_rejected{0};
    std::atomic<int64_t> breaker_opens{0};
    std::atomic<int64_t> breaker_half_opens{0};
    std::atomic<int64_t> breaker_closes{0};
  } counts_;

  // Borrowed obs sinks + pre-resolved handles (null when detached).
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_ok_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_deadline_miss_ = nullptr;
  obs::Counter* m_cold_ = nullptr;
  obs::Counter* m_invalid_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_publishes_ = nullptr;
  obs::Counter* m_publish_rejected_ = nullptr;
  obs::Counter* m_breaker_rejected_ = nullptr;
  obs::Counter* m_predictive_rejected_ = nullptr;
  obs::Counter* m_breaker_opens_ = nullptr;
  obs::Counter* m_breaker_half_opens_ = nullptr;
  obs::Counter* m_breaker_closes_ = nullptr;
  obs::Gauge* m_snapshot_version_ = nullptr;
  obs::Gauge* m_open_shards_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
};

}  // namespace hsgd::serve
