// RecServer: the concurrent recommendation-serving request loop.
//
// Architecture (in-process driver loop — the API is socket-shaped so an
// epoll/io_uring front end can be bolted on later without touching the
// scoring path):
//
//   Submit(request)                 user-sharded queues      micro-batch
//   ── admission check ──> shard = user mod S ──> worker s ──> coalesce
//        (queue bound)         mutex+cv queue        up to max_batch
//                                                        │
//                              ┌─────────────────────────┘
//                              ▼
//            SnapshotHolder::Acquire()  (one pin per BATCH, lock-free)
//                              ▼
//            deadline check: shed requests held past the latency budget
//                              ▼
//            BatchTopK: one tile-major factor sweep answers the batch
//                              ▼
//            fulfill futures, record latency / batch-size / trace span
//
// Requests for the same user always land on the same shard (their
// exclusion lists and factor rows stay cache-warm there), and a batch is
// scored against exactly ONE snapshot — a concurrent Publish affects
// only later batches, so results are never a torn mix of two models.
//
// Load shedding is typed: a request rejected at admission (queue full or
// server stopped) fails Unavailable; one held past the latency budget is
// shed with DeadlineExceeded before any scoring work is wasted on it; a
// raw id the model has no factors for is NotFound (cold user). A request
// that completes over budget still returns its result, counted as a
// deadline miss.
//
// All counters/histograms/spans go through borrowed obs/ sinks (may be
// null); a small always-on atomic counter block backs the bench and
// tests without requiring a registry.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "core/kernels/kernels.h"
#include "serve/snapshot.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace hsgd::obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Gauge;
class Histogram;
}  // namespace hsgd::obs

namespace hsgd::serve {

struct ServeConfig {
  /// Worker shards (threads AND queues; requests shard by user id).
  int shards = 4;
  /// Max queries coalesced into one scoring sweep.
  int max_batch = 32;
  /// Per-shard admission bound; a full queue rejects with Unavailable.
  /// 0 = unbounded.
  int max_queue = 1024;
  /// Latency budget in seconds: requests still queued past it are shed
  /// with DeadlineExceeded; completed-but-late ones count as deadline
  /// misses. <= 0 disables both.
  double latency_budget_s = 0.0;
  /// Scoring kernel (resolved at Create; kAuto = best supported).
  KernelKind kernel = KernelKind::kAuto;
};

struct TopKRequest {
  /// Dense user index, or an external raw id when `raw` is set (resolved
  /// through the snapshot's IdMap; cold ids fail NotFound).
  int64_t user = 0;
  bool raw = false;
  int k = 10;
};

struct TopKResponse {
  /// Ranked items (dense indices), descending score.
  std::vector<ScoredItem> items;
  /// External ids for `items`, filled when the snapshot carries id maps.
  std::vector<int64_t> raw_items;
  /// Version of the snapshot that scored this request.
  uint64_t snapshot_version = 0;
  /// End-to-end seconds from Submit to completion.
  double latency_s = 0.0;
};

/// Always-on request accounting (plain reads of atomics; exact once the
/// server is idle). The obs registry mirrors these under serve.*.
struct ServeCounters {
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t shed_deadline = 0;   // dropped at dequeue: budget exhausted
  int64_t rejected = 0;        // dropped at admission: queue full/stopped
  int64_t deadline_miss = 0;   // completed, but over budget
  int64_t cold_users = 0;      // raw id with no trained factors
  int64_t invalid = 0;         // malformed query (range/k)
  int64_t batches = 0;         // scoring sweeps run
  int64_t publishes = 0;       // snapshots installed
};

class RecServer {
 public:
  /// `initial` may be null (queries fail Unavailable until the first
  /// Publish). `metrics`/`trace` are borrowed sinks, either may be null.
  /// Fails if the config is malformed or the kernel is unsupported.
  static StatusOr<std::unique_ptr<RecServer>> Create(
      const ServeConfig& config, SnapshotPtr initial,
      obs::MetricsRegistry* metrics = nullptr,
      obs::Tracer* trace = nullptr);

  /// Drains queued requests, then joins the workers.
  ~RecServer();

  RecServer(const RecServer&) = delete;
  RecServer& operator=(const RecServer&) = delete;

  /// Install a new snapshot without blocking in-flight queries — batches
  /// already scoring finish on the snapshot they pinned; later batches
  /// see the new one.
  void Publish(SnapshotPtr snapshot);
  /// The snapshot new batches would score against right now.
  SnapshotPtr CurrentSnapshot() const { return holder_.Acquire(); }

  /// Enqueue a query; the future resolves when a worker answers (or
  /// sheds) it. Safe from any thread.
  std::future<StatusOr<TopKResponse>> Submit(const TopKRequest& request);
  /// Submit + wait, for callers with nothing to overlap.
  StatusOr<TopKResponse> Query(const TopKRequest& request);

  /// Stop admitting, drain every queued request, join the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  ServeCounters counters() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct Pending {
    TopKRequest request;
    double enqueue_s = 0.0;  // server clock at Submit
    std::promise<StatusOr<TopKResponse>> promise;
  };

  /// One shard: a mutex/cv guarded queue its worker drains in batches.
  struct alignas(64) Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
  };

  explicit RecServer(const ServeConfig& config);

  void ShardLoop(int shard_index);
  /// Answer (or shed) one dequeued batch against a single snapshot.
  void ProcessBatch(int shard_index, std::vector<Pending>* batch);

  int ShardFor(const TopKRequest& request) const {
    return static_cast<int>(static_cast<uint64_t>(request.user) %
                            static_cast<uint64_t>(config_.shards));
  }

  ServeConfig config_;
  const KernelOps* ops_ = nullptr;
  SnapshotHolder holder_;
  /// Server-lifetime wall clock: enqueue stamps, latencies, trace ts.
  Stopwatch clock_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  bool joined_ = false;

  struct {
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> shed_deadline{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> deadline_miss{0};
    std::atomic<int64_t> cold_users{0};
    std::atomic<int64_t> invalid{0};
    std::atomic<int64_t> batches{0};
    std::atomic<int64_t> publishes{0};
  } counts_;

  // Borrowed obs sinks + pre-resolved handles (null when detached).
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_ok_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_deadline_miss_ = nullptr;
  obs::Counter* m_cold_ = nullptr;
  obs::Counter* m_invalid_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_publishes_ = nullptr;
  obs::Gauge* m_snapshot_version_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
};

}  // namespace hsgd::serve
