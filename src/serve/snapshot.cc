#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "core/checkpoint.h"
#include "core/session.h"
#include "util/strings.h"

namespace hsgd::serve {

namespace {

/// Copy an IdMap by replaying its first-appearance order (IdMap has no
/// copy interface; Assign in raw order reproduces it exactly).
io::IdMap CopyIdMap(const io::IdMap& source) {
  io::IdMap copy;
  for (int32_t dense = 0; dense < source.size(); ++dense) {
    copy.Assign(source.Raw(dense));
  }
  return copy;
}

}  // namespace

StatusOr<std::shared_ptr<const FactorSnapshot>> FactorSnapshot::FromModel(
    const Model& model, const Ratings& rated, uint64_t version,
    const io::IdMap* users, const io::IdMap* items) {
  auto snapshot = std::shared_ptr<FactorSnapshot>(new FactorSnapshot());
  snapshot->num_users_ = model.num_rows();
  snapshot->num_items_ = model.num_cols();
  snapshot->k_ = model.k();
  snapshot->stride_ = model.stride();
  snapshot->version_ = version;
  // The model is already in the padded aligned layout the kernels want;
  // one memcpy per matrix and the snapshot is scoring-ready.
  snapshot->p_ = AllocateAlignedFloats(model.p_size());
  snapshot->q_ = AllocateAlignedFloats(model.q_size());
  std::memcpy(snapshot->p_.get(), model.p_data(),
              model.p_size() * sizeof(float));
  std::memcpy(snapshot->q_.get(), model.q_data(),
              model.q_size() * sizeof(float));
  snapshot->rated_ =
      RatedIndex::Build(rated, model.num_rows(), model.num_cols());
  if (users != nullptr && items != nullptr) {
    if (users->size() != model.num_rows() ||
        items->size() != model.num_cols()) {
      return Status::InvalidArgument(StrFormat(
          "id maps (%d users, %d items) do not match the model "
          "(%d x %d)",
          users->size(), items->size(), model.num_rows(),
          model.num_cols()));
    }
    snapshot->users_ = CopyIdMap(*users);
    snapshot->items_ = CopyIdMap(*items);
    snapshot->has_id_maps_ = true;
  } else if (users != nullptr || items != nullptr) {
    return Status::InvalidArgument(
        "id maps must be given for both users and items, or neither");
  }
  return std::shared_ptr<const FactorSnapshot>(std::move(snapshot));
}

StatusOr<std::shared_ptr<const FactorSnapshot>> FactorSnapshot::FromSession(
    const Session& session, uint64_t version, const io::IdMap* users,
    const io::IdMap* items) {
  // The copy must not race Hogwild workers mid-epoch (torn factor rows)
  // or an append (the grow path REALLOCATES the factor buffers, so a
  // concurrent copy would read freed memory). VisitQuiesced try-locks
  // the epoch barrier: success means the factors are settled for the
  // whole copy; contention surfaces as FailedPrecondition.
  StatusOr<std::shared_ptr<const FactorSnapshot>> result =
      Status::FailedPrecondition("snapshot attempted mid-epoch");
  HSGD_RETURN_IF_ERROR(session.VisitQuiesced([&]() -> Status {
    result = FromModel(session.model(), session.dataset().train, version,
                       users, items);
    return Status::Ok();
  }));
  return result;
}

StatusOr<std::shared_ptr<const FactorSnapshot>>
FactorSnapshot::FromDenseFactors(const std::vector<float>& p,
                                 const std::vector<float>& q,
                                 int32_t num_users, int32_t num_items,
                                 int k, const Ratings& rated,
                                 uint64_t version, const io::IdMap* users,
                                 const io::IdMap* items) {
  if (num_users <= 0 || num_items <= 0 || k <= 0) {
    return Status::InvalidArgument(StrFormat(
        "non-positive snapshot dimensions (%d x %d, k=%d)", num_users,
        num_items, k));
  }
  if (p.size() != static_cast<size_t>(num_users) * k ||
      q.size() != static_cast<size_t>(num_items) * k) {
    return Status::InvalidArgument(StrFormat(
        "factor sizes (%zu, %zu) do not match %d x %d at rank %d",
        p.size(), q.size(), num_users, num_items, k));
  }
  // Re-pad the dense rows into the aligned SIMD layout (see core/model.h);
  // AllocateAlignedFloats zero-fills, so the padding-lane invariant the
  // kernels rely on holds.
  Model model(num_users, num_items, k);
  model.SetDense(p, q);
  return FromModel(model, rated, version, users, items);
}

StatusOr<std::shared_ptr<const FactorSnapshot>>
FactorSnapshot::FromCheckpoint(const std::string& path,
                               const Ratings& rated, uint64_t version,
                               const io::IdMap* users,
                               const io::IdMap* items) {
  auto factors = ReadFactorSnapshot(path);
  HSGD_RETURN_IF_ERROR(factors.status());
  return FromDenseFactors(factors->p, factors->q,
                          factors->dataset.num_rows,
                          factors->dataset.num_cols, factors->dataset.k,
                          rated, version, users, items);
}

namespace {

/// Index of the first non-finite float in [data, data+n), or -1. The
/// scan is branch-light on the hot (all-finite) path: isfinite compiles
/// to a compare against the exponent mask, and the buffer is the padded
/// aligned layout so it vectorizes cleanly.
int64_t FirstNonFinite(const float* data, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return i;
  }
  return -1;
}

}  // namespace

Status FactorSnapshot::Validate() const {
  if (num_users_ <= 0 || num_items_ <= 0 || k_ <= 0) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot v%llu has non-positive dimensions (%d x %d, k=%d)",
        static_cast<unsigned long long>(version_), num_users_, num_items_,
        k_));
  }
  if (stride_ < k_) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot v%llu stride %d < rank %d",
        static_cast<unsigned long long>(version_), stride_, k_));
  }
  if (p_ == nullptr || q_ == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("snapshot v%llu is missing factor buffers",
                  static_cast<unsigned long long>(version_)));
  }
  if (has_id_maps_ &&
      (users_.size() != num_users_ || items_.size() != num_items_)) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot v%llu id maps (%d users, %d items) do not cover the "
        "factors (%d x %d)",
        static_cast<unsigned long long>(version_), users_.size(),
        items_.size(), num_users_, num_items_));
  }
  // Padding lanes are zero-filled by AllocateAlignedFloats, so scanning
  // the whole padded buffers needs no per-row bounds logic.
  const int64_t p_n = static_cast<int64_t>(num_users_) * stride_;
  const int64_t q_n = static_cast<int64_t>(num_items_) * stride_;
  int64_t bad = FirstNonFinite(p_.get(), p_n);
  if (bad >= 0) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot v%llu has a non-finite user factor (row %lld lane %lld)",
        static_cast<unsigned long long>(version_),
        static_cast<long long>(bad / stride_),
        static_cast<long long>(bad % stride_)));
  }
  bad = FirstNonFinite(q_.get(), q_n);
  if (bad >= 0) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot v%llu has a non-finite item factor (row %lld lane %lld)",
        static_cast<unsigned long long>(version_),
        static_cast<long long>(bad / stride_),
        static_cast<long long>(bad % stride_)));
  }
  return Status::Ok();
}

SnapshotPtr FactorSnapshot::PoisonedCopy(const FactorSnapshot& src) {
  auto copy = std::shared_ptr<FactorSnapshot>(new FactorSnapshot());
  copy->num_users_ = src.num_users_;
  copy->num_items_ = src.num_items_;
  copy->k_ = src.k_;
  copy->stride_ = src.stride_;
  copy->version_ = src.version_;
  const size_t p_n = static_cast<size_t>(src.num_users_) * src.stride_;
  const size_t q_n = static_cast<size_t>(src.num_items_) * src.stride_;
  copy->p_ = AllocateAlignedFloats(p_n);
  copy->q_ = AllocateAlignedFloats(q_n);
  std::memcpy(copy->p_.get(), src.p_.get(), p_n * sizeof(float));
  std::memcpy(copy->q_.get(), src.q_.get(), q_n * sizeof(float));
  copy->rated_ = src.rated_;
  if (src.has_id_maps_) {
    copy->users_ = CopyIdMap(src.users_);
    copy->items_ = CopyIdMap(src.items_);
    copy->has_id_maps_ = true;
  }
  // One NaN in the first live lane — the minimal corruption the publish
  // gate must reject.
  copy->p_.get()[0] = std::numeric_limits<float>::quiet_NaN();
  return copy;
}

StatusOr<int32_t> FactorSnapshot::DenseUser(int64_t raw_user) const {
  if (!has_id_maps_) {
    if (raw_user < 0 || raw_user >= num_users_) {
      return Status::NotFound(StrFormat(
          "cold user: id %lld outside the model's [0, %d) user range",
          static_cast<long long>(raw_user), num_users_));
    }
    return static_cast<int32_t>(raw_user);
  }
  const int32_t dense = users_.Lookup(raw_user);
  if (dense < 0) {
    return Status::NotFound(StrFormat(
        "cold user: raw id %lld has no trained factors",
        static_cast<long long>(raw_user)));
  }
  return dense;
}

std::vector<StatusOr<std::vector<ScoredItem>>> BatchTopK(
    const FactorSnapshot& snapshot, const TopKQuery* queries, size_t n,
    const KernelOps* ops, std::vector<float>* scratch) {
  if (ops == nullptr) ops = &DefaultKernelOps();
  std::vector<float> local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;

  // Validate up front; only valid queries join the batched sweep.
  std::vector<Status> errors(n, Status::Ok());
  std::vector<size_t> valid;
  valid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const TopKQuery& query = queries[i];
    if (query.user < 0 || query.user >= snapshot.num_users()) {
      errors[i] = Status::InvalidArgument(
          StrFormat("user %d out of range [0, %d)", query.user,
                    snapshot.num_users()));
    } else if (query.k <= 0) {
      errors[i] = Status::InvalidArgument(
          StrFormat("k must be positive, got %d", query.k));
    } else {
      valid.push_back(i);
    }
  }

  const RatedIndex& rated = snapshot.rated_index();
  std::vector<const float*> rows;
  std::vector<TopKAccumulator> accs;
  rows.reserve(valid.size());
  accs.reserve(valid.size());
  for (size_t i : valid) {
    const int32_t user = queries[i].user;
    rows.push_back(snapshot.UserRow(user));
    accs.emplace_back(queries[i].k, rated.Begin(user), rated.End(user));
  }

  // The batched sweep: tiles outermost, so each Q tile crosses memory
  // once and serves every query while cache-resident. Per query the tile
  // order and score_block operands are exactly the Recommender facade's,
  // which is what makes batched results bitwise equal to sequential ones.
  const int32_t num_items = snapshot.num_items();
  if (!valid.empty()) {
    const size_t needed = valid.size() * static_cast<size_t>(kTopKTile);
    if (scratch->size() < needed) scratch->resize(needed);
    for (int32_t tile_begin = 0; tile_begin < num_items;
         tile_begin += kTopKTile) {
      const int32_t count = std::min(kTopKTile, num_items - tile_begin);
      ScoreBlockBatch(*ops, rows.data(), static_cast<int>(rows.size()),
                      snapshot.q_data(), snapshot.stride(), snapshot.k(),
                      tile_begin, count, scratch->data());
      for (size_t vi = 0; vi < valid.size(); ++vi) {
        accs[vi].Consume(tile_begin, count,
                         scratch->data() + vi * static_cast<size_t>(count));
      }
    }
  }

  std::vector<StatusOr<std::vector<ScoredItem>>> results;
  results.reserve(n);
  size_t vi = 0;
  for (size_t i = 0; i < n; ++i) {
    if (errors[i].ok()) {
      results.push_back(accs[vi++].Finish());
    } else {
      results.push_back(errors[i]);
    }
  }
  return results;
}

SnapshotPtr SnapshotHolder::Acquire() const {
  for (;;) {
    const uint32_t i = cur_.load();  // seq_cst, see class comment
    const Slot& slot = slots_[i];
    slot.pins.fetch_add(1);
    if (cur_.load() == i) {
      // Pin validated: a publisher targeting this slot either saw our
      // pin (and waits) or already flipped cur_ (and the re-check would
      // have failed). Safe to copy the shared_ptr.
      SnapshotPtr snap = slot.snap;
      slot.pins.fetch_sub(1);
      return snap;
    }
    // A publish flipped slots between our load and pin; retry on the
    // fresh slot.
    slot.pins.fetch_sub(1);
  }
}

void SnapshotHolder::Publish(SnapshotPtr snapshot) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint32_t next = 1 - cur_.load();
  Slot& slot = slots_[next];
  // Drain readers still mid-copy on the idle slot (pinned before the
  // PREVIOUS flip). Their critical section is a shared_ptr copy, so this
  // spin is nanoseconds, and it is the only wait anywhere in the scheme —
  // readers themselves never wait at all.
  while (slot.pins.load() != 0) {
    std::this_thread::yield();
  }
  slot.snap = std::move(snapshot);
  cur_.store(next);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

Status SnapshotHolder::PublishValidated(SnapshotPtr snapshot) {
  if (snapshot == nullptr) {
    rejected_publishes_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("refusing to publish a null snapshot");
  }
  Status valid = snapshot->Validate();
  if (!valid.ok()) {
    // Reject WITHOUT touching the slots: the last-known-good snapshot
    // keeps serving, which is the entire rollback policy.
    rejected_publishes_.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }
  Publish(std::move(snapshot));
  return Status::Ok();
}

}  // namespace hsgd::serve
