// Serving-side factor snapshots and their lock-free publication.
//
// A FactorSnapshot is an immutable, 64-byte-aligned copy of a trained
// model's factor matrices plus everything a query needs that the raw
// factors don't carry: the per-user rated-item exclusion lists (exactly
// what Recommender excludes) and, when the ratings came from a real dump,
// the raw<->dense id maps so results can be translated back to external
// ids. Snapshots are captured from a live Session between epochs, from a
// checkpoint file via the factors-only fast path (core/checkpoint.h's
// ReadFactorSnapshot), or from any Model directly; once built they are
// never mutated, so any number of threads may score against one without
// coordination.
//
// SnapshotHolder is the publication point: a double-buffered, pin-counted
// slot pair in the epoch/RCU style. Readers pin the current slot, copy
// its shared_ptr (nanoseconds), unpin, and then score against their copy
// for as long as they like; Publish installs the next snapshot into the
// idle slot and flips an atomic index. Readers never take a lock and
// never block on a refresh — a publish waits only for the handful of
// readers mid-copy on the slot it is about to reuse, two publishes back.
//
// BatchTopK is the batched scoring stage: it answers many TopK queries
// with ONE tile-major sweep of the item-factor matrix (each Q tile is
// pulled from memory once and served to every query in the batch via
// kernels' ScoreBlockBatch), while producing results bit-identical to
// per-query Recommender::TopK — both feed the same TopKAccumulator in
// the same tile order.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/recommender.h"
#include "core/types.h"
#include "io/loader.h"
#include "util/aligned.h"
#include "util/status.h"

namespace hsgd {
class Session;  // core/session.h
}  // namespace hsgd

namespace hsgd::serve {

class FactorSnapshot;
using SnapshotPtr = std::shared_ptr<const FactorSnapshot>;

class FactorSnapshot {
 public:
  /// Deep-copies `model`'s factors (already stride-padded and aligned)
  /// and indexes `rated` as the exclusion set. `users`/`items` (optional,
  /// copied) translate raw external ids; pass the loader's IdMaps when
  /// the ratings came from a real dump. `version` tags the snapshot for
  /// observability and swap tests — callers pick any monotonic scheme.
  static StatusOr<std::shared_ptr<const FactorSnapshot>> FromModel(
      const Model& model, const Ratings& rated, uint64_t version,
      const io::IdMap* users = nullptr, const io::IdMap* items = nullptr);

  /// FromModel over a live session's current factors and its training
  /// ratings, gated on the session's epoch barrier: the copy runs only
  /// while the session is quiescent (no epoch in flight, no append
  /// mutating — or reallocating — the factor buffers). If training holds
  /// the barrier this fails fast with kFailedPrecondition instead of
  /// tearing; retry at the next epoch boundary (e.g. from an OnEpochEnd
  /// observer, which fires after the barrier drops). `users`/`items`
  /// (optional, both or neither) are copied in so raw-id lookups resolve
  /// against the vocabulary as of THIS snapshot — a stream-grown session
  /// passes its current maps and cold raw ids stay typed NotFound until
  /// the publish that actually covers them.
  static StatusOr<std::shared_ptr<const FactorSnapshot>> FromSession(
      const Session& session, uint64_t version,
      const io::IdMap* users = nullptr, const io::IdMap* items = nullptr);

  /// Builds a snapshot from a checkpoint file via the factors-only fast
  /// path — no Dataset, no Session rebuild. The checkpoint stores no
  /// ratings, so the exclusion set (typically the training ratings) and
  /// any id maps come from the caller; an empty `rated` serves the full
  /// catalog to everyone.
  static StatusOr<std::shared_ptr<const FactorSnapshot>> FromCheckpoint(
      const std::string& path, const Ratings& rated,
      uint64_t version, const io::IdMap* users = nullptr,
      const io::IdMap* items = nullptr);

  /// Core builder: dense row-major factors (num_users*k / num_items*k),
  /// re-padded into aligned SIMD layout. InvalidArgument on size
  /// mismatches or non-positive dimensions.
  static StatusOr<std::shared_ptr<const FactorSnapshot>> FromDenseFactors(
      const std::vector<float>& p, const std::vector<float>& q,
      int32_t num_users, int32_t num_items, int k, const Ratings& rated,
      uint64_t version, const io::IdMap* users = nullptr,
      const io::IdMap* items = nullptr);

  /// Cheap integrity scan gating publication (SnapshotHolder::
  /// PublishValidated): every factor value finite (the padded lanes are
  /// zero-filled, so the whole aligned buffer is scanned), dimensions
  /// positive, stride >= k, and — when id maps are present — map sizes
  /// matching the factor row counts. A snapshot that fails here would
  /// serve NaN scores or crash raw-id translation, so a failing publish
  /// is rejected and serving stays on the last-known-good snapshot.
  /// Returns Ok or a FailedPrecondition naming the first defect.
  Status Validate() const;

  /// Chaos/test helper: a deep copy of `src` with one NaN planted in the
  /// user factors — the smallest corruption Validate() must catch. Keeps
  /// src's version so a rejected publish is distinguishable from a
  /// version rollback. Used by the publish-poison fault and tests; never
  /// by production code.
  static SnapshotPtr PoisonedCopy(const FactorSnapshot& src);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int k() const { return k_; }
  /// Padded row pitch in floats, as core/model.h lays factors out.
  int stride() const { return stride_; }
  uint64_t version() const { return version_; }

  const float* UserRow(int32_t user) const {
    return p_.get() + static_cast<int64_t>(user) * stride_;
  }
  const float* q_data() const { return q_.get(); }

  const RatedIndex& rated_index() const { return rated_; }
  int64_t NumRated(int32_t user) const { return rated_.NumRated(user); }

  /// Raw-id translation. Snapshots built without id maps treat dense ids
  /// as the external vocabulary (identity mapping).
  bool has_id_maps() const { return has_id_maps_; }
  /// Dense index for an external user id; NotFound for a cold user the
  /// model has no factors for (a typed miss, never a crash).
  StatusOr<int32_t> DenseUser(int64_t raw_user) const;
  /// External id for a dense item index (identity without maps).
  int64_t RawItem(int32_t dense_item) const {
    return has_id_maps_ ? items_.Raw(dense_item)
                        : static_cast<int64_t>(dense_item);
  }

 private:
  FactorSnapshot() = default;

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  int k_ = 0;
  int stride_ = 0;
  uint64_t version_ = 0;
  AlignedFloatPtr p_;
  AlignedFloatPtr q_;
  RatedIndex rated_;
  bool has_id_maps_ = false;
  io::IdMap users_;
  io::IdMap items_;
};

/// One TopK query against a snapshot: dense user id and result size.
struct TopKQuery {
  int32_t user = 0;
  int k = 0;
};

/// Answers `queries[0..n)` against one snapshot with a single tile-major
/// sweep of the item factors. Per-query results are bit-identical to
/// Recommender::TopK on the same factors/exclusions/kernel: same tile
/// size, same score_block operands, same accumulator. Invalid queries
/// (user out of range, k <= 0) get their own InvalidArgument entry
/// without failing the batch. `ops` null means the auto-dispatched
/// default; `scratch` (optional) is reused as the num-queries x tile
/// score buffer so a serving worker allocates nothing per batch.
std::vector<StatusOr<std::vector<ScoredItem>>> BatchTopK(
    const FactorSnapshot& snapshot, const TopKQuery* queries, size_t n,
    const KernelOps* ops = nullptr, std::vector<float>* scratch = nullptr);

/// Lock-free snapshot publication: double-buffered slots with per-slot
/// pin counts.
///
/// Read side (Acquire): load the current slot index, pin the slot,
/// re-check the index, copy the shared_ptr, unpin. The re-check makes the
/// pin safe: if a publish flipped slots between load and pin, the
/// re-check fails and the reader retries on the fresh slot — it never
/// dereferences a slot it hasn't validly pinned. Wait-free in practice
/// (a retry needs a concurrent publish, which happens per refresh, not
/// per query).
///
/// Write side (Publish): serialize publishers, wait for the pin count of
/// the IDLE slot to drain (readers still mid-copy from two publishes
/// ago — a nanoseconds-scale window), install the new snapshot there,
/// flip the index. In-flight queries keep scoring against whatever
/// shared_ptr they already copied; nothing is ever torn or freed early.
///
/// Every atomic here is seq_cst deliberately: the pin/re-check handshake
/// is the hazard-pointer pattern, whose correctness argument needs the
/// single total order (a publisher's drain-check must not read a stale
/// pin count an acquire load would permit). This path runs once per
/// batch and once per refresh — ordering cost is irrelevant.
class SnapshotHolder {
 public:
  SnapshotHolder() = default;
  explicit SnapshotHolder(SnapshotPtr initial) { Publish(std::move(initial)); }

  SnapshotHolder(const SnapshotHolder&) = delete;
  SnapshotHolder& operator=(const SnapshotHolder&) = delete;

  /// The current snapshot (null only if nothing was ever published).
  /// The returned shared_ptr keeps the snapshot alive for as long as the
  /// caller holds it, across any number of subsequent publishes.
  SnapshotPtr Acquire() const;

  /// Atomically replace the served snapshot. Never blocks readers;
  /// multiple publishers serialize among themselves.
  void Publish(SnapshotPtr snapshot);

  /// Publish with a validity gate: a null snapshot is InvalidArgument
  /// and one failing FactorSnapshot::Validate() is FailedPrecondition;
  /// both are counted in rejected_publishes() and install NOTHING — the
  /// previously published snapshot keeps serving untouched, which is the
  /// whole rollback policy (last-known-good is simply never replaced by
  /// a bad candidate). Ok means the snapshot is live.
  Status PublishValidated(SnapshotPtr snapshot);

  /// Publishes so far (0 = Acquire still returns null).
  int64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// Candidates PublishValidated refused (never installed).
  int64_t rejected_publishes() const {
    return rejected_publishes_.load(std::memory_order_relaxed);
  }

  /// Test-only: total outstanding reader pins across both slots. Settled
  /// (no Acquire mid-copy) it must read 0 — Acquire's critical section
  /// is a shared_ptr copy, so nonzero is only ever transient.
  int64_t DebugPins() const {
    return slots_[0].pins.load() + slots_[1].pins.load();
  }

 private:
  struct alignas(64) Slot {
    SnapshotPtr snap;
    mutable std::atomic<int64_t> pins{0};
  };

  Slot slots_[2];
  std::atomic<uint32_t> cur_{0};
  std::atomic<int64_t> publishes_{0};
  std::atomic<int64_t> rejected_publishes_{0};
  std::mutex publish_mu_;
};

}  // namespace hsgd::serve
