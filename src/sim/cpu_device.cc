#include "sim/cpu_device.h"

namespace hsgd {

CpuDevice::CpuDevice(const CpuDeviceSpec& spec, int k) : spec_(spec) {
  if (k <= 0) k = 1;
  steady_rate_ = spec.updates_per_sec_k128 * (128.0 / k) * spec.speed_factor;
}

double CpuDevice::UpdateRate(int64_t nnz) const {
  if (nnz <= 0) return steady_rate_;
  double n = static_cast<double>(nnz);
  return steady_rate_ * n / (n + spec_.warmup_nnz);
}

SimTime CpuDevice::UpdateTime(int64_t nnz) const {
  if (nnz <= 0) return 0.0;
  return static_cast<double>(nnz) / UpdateRate(nnz);
}

}  // namespace hsgd
