// Simulated CPU thread (Observation 2, Fig. 3b): per-thread SGD update
// speed is essentially flat in block size, with only a mild cache warm-up
// penalty on tiny blocks, and scales inversely with the rank k.

#pragma once

#include <cstdint>

#include "core/types.h"
#include "sim/device_spec.h"

namespace hsgd {

class CpuDevice {
 public:
  CpuDevice(const CpuDeviceSpec& spec, int k);

  /// Points/second one thread sustains on a block of `nnz` points.
  double UpdateRate(int64_t nnz) const;

  /// Seconds one thread needs to sweep a block of `nnz` points.
  SimTime UpdateTime(int64_t nnz) const;

 private:
  CpuDeviceSpec spec_;
  double steady_rate_;  // k- and variability-adjusted flat rate
};

}  // namespace hsgd
