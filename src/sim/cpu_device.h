// Simulated CPU thread (Observation 2, Fig. 3b): per-thread SGD update
// speed is essentially flat in block size, with only a mild cache warm-up
// penalty on tiny blocks, and scales inversely with the rank k.

#pragma once

#include <cstdint>

#include "core/types.h"
#include "sim/device_health.h"
#include "sim/device_spec.h"

namespace hsgd {

class CpuDevice {
 public:
  CpuDevice(const CpuDeviceSpec& spec, int k);

  /// Points/second one thread sustains on a block of `nnz` points.
  double UpdateRate(int64_t nnz) const;

  /// Seconds one thread needs to sweep a block of `nnz` points.
  /// Health-blind — cost probes and lease-deadline estimates use this.
  SimTime UpdateTime(int64_t nnz) const;

  /// UpdateTime scaled by health().SlowdownAt(now) — what the event loop
  /// charges a possibly-degraded thread. Identical to UpdateTime while
  /// healthy.
  SimTime UpdateTimeAt(SimTime now, int64_t nnz) const {
    return UpdateTime(nnz) * health_.SlowdownAt(now);
  }

  /// UpdateTimeAt that also accrues the thread's busy-time accounting —
  /// what the event loop charges when the block actually runs (cost
  /// probes keep using the const UpdateTimeAt). Same value, same
  /// arithmetic; the accumulator is never read back by the simulation.
  SimTime ChargeAt(SimTime now, int64_t nnz) {
    const SimTime t = UpdateTimeAt(now, nnz);
    busy_seconds_ += t;
    return t;
  }

  /// Virtual seconds this thread has spent sweeping blocks (lifetime).
  double busy_seconds() const { return busy_seconds_; }

  const DeviceHealth& health() const { return health_; }
  void set_health(const DeviceHealth& health) { health_ = health; }

 private:
  CpuDeviceSpec spec_;
  double steady_rate_;  // k- and variability-adjusted flat rate
  DeviceHealth health_;
  double busy_seconds_ = 0.0;
};

}  // namespace hsgd
