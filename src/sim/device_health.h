// Device health vocabulary for the fault-tolerance layer (src/fault/).
//
// Every simulated device (CpuDevice, GpuDevice, PcieLink) carries a
// DeviceHealth that the FaultInjector mutates and the Session's event
// loop consults: a kDegraded device runs its work `slowdown` times
// slower until `degraded_until` on the virtual clock, and a kDead device
// never receives work again (its in-flight block leases are revoked and
// requeued on survivors).
//
// The default-constructed state is healthy with slowdown 1.0, and every
// timing path multiplies by SlowdownAt() unconditionally — multiplying
// by exactly 1.0 — so a fault-free run is bit-identical to a build that
// never heard of this header.

#pragma once

#include "core/types.h"

namespace hsgd {

enum class HealthState {
  kHealthy = 0,
  /// Running, but slower than its spec (straggler / thermal throttle /
  /// flaky link retries). Work keeps flowing unless the slowdown is bad
  /// enough that the scheduler benches the device (see
  /// FaultPolicy::lease_deadline_factor).
  kDegraded = 1,
  /// Crashed or declared dead by the watchdog. Never scheduled again.
  kDead = 2,
};

inline const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kDead: return "dead";
  }
  return "unknown";
}

struct DeviceHealth {
  HealthState state = HealthState::kHealthy;
  /// Processing-time multiplier while degraded (>= 1).
  double slowdown = 1.0;
  /// Virtual time the degradation clears (kSimTimeNever = rest of run).
  SimTime degraded_until = 0.0;

  bool dead() const { return state == HealthState::kDead; }

  /// The multiplier in effect at `now`: `slowdown` inside a degraded
  /// window, exactly 1.0 otherwise (so healthy timing is bit-identical
  /// to a health-blind computation).
  double SlowdownAt(SimTime now) const {
    if (state == HealthState::kDegraded && now < degraded_until) {
      return slowdown;
    }
    return 1.0;
  }
};

/// A degraded window starting at `now`; `duration` <= 0 means the rest
/// of the run.
inline DeviceHealth MakeDegraded(double slowdown, SimTime now,
                                 SimTime duration) {
  DeviceHealth h;
  h.state = HealthState::kDegraded;
  h.slowdown = slowdown;
  h.degraded_until = duration > 0.0 ? now + duration : kSimTimeNever;
  return h;
}

inline DeviceHealth MakeDead() {
  DeviceHealth h;
  h.state = HealthState::kDead;
  return h;
}

}  // namespace hsgd
