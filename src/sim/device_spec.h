// Hardware descriptions for the simulated devices. Numbers default to the
// paper's testbed shape: ~6M updates/s per CPU thread at k=128 (flat in
// block size, Fig. 3b), a GPU whose SIMT kernel saturates around 128M
// updates/s at W=128 (Fig. 3a / Fig. 7), and a PCIe 3.0 x16 link peaking
// near 12GB/s (Fig. 6).

#pragma once

namespace hsgd {

struct CpuDeviceSpec {
  /// Per-thread steady update rate at k=128 (points/second).
  double updates_per_sec_k128 = 6.0e6;
  /// Small-block cache warm-up: rate is scaled by nnz/(nnz+warmup_nnz).
  /// Kept small — Fig. 3b's observation is that CPU update speed is
  /// essentially flat in block size.
  double warmup_nnz = 50.0;
  /// Run-to-run speed multiplier (device variability; 1 = nominal).
  double speed_factor = 1.0;
};

struct GpuDeviceSpec {
  /// SIMT width the scheduler can fill (the paper's W).
  int parallel_workers = 128;
  /// Points/second a single worker sustains at k=128.
  double worker_point_rate_k128 = 1.0e6;
  /// Fixed kernel launch + epilogue overhead (seconds).
  double kernel_launch_overhead = 10e-6;
  /// On-device memory bandwidth for factor traffic (bytes/second).
  double device_mem_bw = 300e9;
  /// PCIe peak bandwidths by direction (GB/s) and per-transfer latency.
  double pcie_h2d_peak_gbps = 12.6;
  double pcie_d2h_peak_gbps = 12.1;
  double pcie_latency = 15e-6;
  /// Run-to-run speed multiplier (device variability; 1 = nominal).
  double speed_factor = 1.0;
};

}  // namespace hsgd
