#include "sim/gpu_device.h"

#include <algorithm>

#include "obs/trace.h"

namespace hsgd {

SimtKernelModel::SimtKernelModel(const GpuDeviceSpec& spec, int k)
    : spec_(spec), k_(k > 0 ? k : 1) {
  double worker_rate =
      spec.worker_point_rate_k128 * (128.0 / k_) * spec.speed_factor;
  point_time_ = 1.0 / worker_rate;
  peak_rate_ = worker_rate * spec.parallel_workers;
}

SimTime SimtKernelModel::ExecTime(int64_t nnz, int64_t rows,
                                  int64_t cols) const {
  if (nnz <= 0) return 0.0;
  const int w = std::max(1, spec_.parallel_workers);
  const int64_t serial_iters = (nnz + w - 1) / w;
  const double compute_time = static_cast<double>(serial_iters) * point_time_;
  // Each update streams ~k*8 bytes of factor traffic through device
  // memory; at large W the kernel goes memory-bound and stops scaling.
  const double mem_time = static_cast<double>(nnz) * k_ * 8.0 /
                          (spec_.device_mem_bw * spec_.speed_factor);
  const double factor_bytes =
      static_cast<double>(std::max<int64_t>(0, rows) +
                          std::max<int64_t>(0, cols)) *
      k_ * 4.0;
  return spec_.kernel_launch_overhead + std::max(compute_time, mem_time) +
         factor_bytes / spec_.device_mem_bw;
}

GpuDevice::GpuDevice(const GpuDeviceSpec& spec, int k, bool pipelined)
    : spec_(spec),
      k_(k > 0 ? k : 1),
      pipelined_(pipelined),
      kernel_(spec, k),
      link_(spec) {}

PipelineTiming GpuDevice::Process(SimTime ready, const GpuWorkItem& item) {
  const int64_t factor_count =
      std::max<int64_t>(0, item.rows) + std::max<int64_t>(0, item.cols);
  const int64_t bytes_in =
      item.nnz * RatingBytes() + factor_count * FactorBytes();
  const int64_t bytes_out = factor_count * FactorBytes();

  PipelineTiming t;
  t.h2d_start = std::max(ready, h2d_free_);
  // A faulted transfer pays the failed attempt + detection timeout before
  // the retry succeeds; exactly 0.0 extra on a clean link.
  const SimTime h2d_penalty = link_.ConsumeFaultPenalty(
      bytes_in, TransferDirection::kHostToDevice);
  t.h2d_done = t.h2d_start + h2d_penalty +
               link_.TransferTime(bytes_in,
                                  TransferDirection::kHostToDevice);
  t.kernel_start = std::max(t.h2d_done, kernel_free_);
  const SimTime exec_healthy =
      kernel_.ExecTime(item.nnz, item.rows, item.cols);
  // SlowdownAt is exactly 1.0 outside a degraded window, so healthy runs
  // stay bit-identical to the health-blind computation.
  const SimTime exec =
      exec_healthy * health_.SlowdownAt(t.kernel_start);
  t.kernel_done = t.kernel_start + exec;
  t.d2h_start = std::max(t.kernel_done, d2h_free_);
  t.d2h_done =
      t.d2h_start + link_.TransferTime(bytes_out,
                                       TransferDirection::kDeviceToHost);
  t.healthy_span =
      (t.d2h_done - t.h2d_start) - (exec - exec_healthy) - h2d_penalty;
  if (pipelined_) {
    // Streams free up independently: the next block's H2D can run under
    // this block's kernel.
    h2d_free_ = t.h2d_done;
    kernel_free_ = t.kernel_done;
    d2h_free_ = t.d2h_done;
  } else {
    h2d_free_ = kernel_free_ = d2h_free_ = t.d2h_done;
  }
  busy_seconds_ += exec;
  h2d_bytes_ += bytes_in;
  d2h_bytes_ += bytes_out;
  if (tracer_ != nullptr) {
    if (bytes_in > 0) {
      tracer_->Span("transfer", "h2d", trace_tid_, t.h2d_start, t.h2d_done,
                    {obs::TraceArg::Int("bytes", bytes_in)});
    }
    tracer_->Span("device", "kernel", trace_tid_, t.kernel_start,
                  t.kernel_done, {obs::TraceArg::Int("nnz", item.nnz)});
    if (bytes_out > 0) {
      tracer_->Span("transfer", "d2h", trace_tid_, t.d2h_start, t.d2h_done,
                    {obs::TraceArg::Int("bytes", bytes_out)});
    }
  }
  return t;
}

SimTime GpuDevice::Upload(SimTime ready, int64_t bytes) {
  SimTime start = std::max(ready, h2d_free_);
  SimTime done =
      start +
      link_.ConsumeFaultPenalty(bytes, TransferDirection::kHostToDevice) +
      link_.TransferTime(bytes, TransferDirection::kHostToDevice);
  h2d_free_ = done;
  if (!pipelined_) kernel_free_ = d2h_free_ = done;
  return done;
}

}  // namespace hsgd
