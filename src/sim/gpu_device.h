// Simulated GPU (Observation 1, Fig. 3a/7): a SIMT kernel-time model whose
// throughput saturates with block size, and a three-stage device pipeline
// (H2D copy -> kernel -> D2H copy) whose stages overlap across consecutive
// blocks when `pipelined` — the overlap the paper's Eq. 9 cost model
// (max of transfer and kernel streams) captures.

#pragma once

#include <cstdint>

#include "core/types.h"
#include "sim/device_health.h"
#include "sim/device_spec.h"
#include "sim/pcie_link.h"

namespace hsgd {

namespace obs {
class Tracer;  // obs/trace.h
}  // namespace obs

/// Kernel-only execution time: launch overhead + ceil(nnz/W) serial
/// iterations per worker + factor traffic from device memory. Throughput
/// nnz/ExecTime rises steeply while the W workers are underfilled and
/// flattens at W * worker_rate.
class SimtKernelModel {
 public:
  SimtKernelModel(const GpuDeviceSpec& spec, int k);

  SimTime ExecTime(int64_t nnz, int64_t rows, int64_t cols) const;

  /// Saturated points/second (the Fig. 3a plateau).
  double PeakRate() const { return peak_rate_; }

 private:
  GpuDeviceSpec spec_;
  int k_;
  double point_time_;  // seconds per point per worker at this k
  double peak_rate_;
};

/// One block's work as seen by the GPU: `rows`/`cols` are the number of
/// distinct row/column factors that must travel with it. Callers set
/// rows or cols to 0 for factors already resident in device memory (e.g.
/// the column stripe a GPU owns across a whole epoch under HSGD*).
struct GpuWorkItem {
  int64_t nnz = 0;
  int64_t rows = 0;
  int64_t cols = 0;
};

/// The device's only cross-epoch state: when each of the three pipeline
/// streams next becomes free. Persisted by the session checkpointer so a
/// restored run resumes with identical pipeline occupancy.
struct GpuStreamState {
  SimTime h2d_free = 0.0;
  SimTime kernel_free = 0.0;
  SimTime d2h_free = 0.0;
};

struct PipelineTiming {
  SimTime h2d_start = 0.0;
  SimTime h2d_done = 0.0;
  SimTime kernel_start = 0.0;
  SimTime kernel_done = 0.0;
  SimTime d2h_start = 0.0;
  SimTime d2h_done = 0.0;
  /// The span ready..d2h_done this block would have taken on a healthy
  /// device and a clean link — what the lease watchdog compares the real
  /// finish against. Equals (d2h_done - h2d_start) when no fault was in
  /// effect.
  SimTime healthy_span = 0.0;
};

class GpuDevice {
 public:
  GpuDevice(const GpuDeviceSpec& spec, int k, bool pipelined = true);

  /// Run one block through the copy/kernel/copy pipeline, starting no
  /// earlier than `ready`. Returns the stage timestamps; the block's
  /// updated factors are back on the host at d2h_done.
  PipelineTiming Process(SimTime ready, const GpuWorkItem& item);

  /// Charge a bare H2D transfer (e.g. uploading a resident column stripe
  /// at epoch start); returns its completion time.
  SimTime Upload(SimTime ready, int64_t bytes);

  const SimtKernelModel& kernel_model() const { return kernel_; }
  const PcieLink& link() const { return link_; }
  /// Mutable link access for fault injection (transfer faults charge the
  /// retry inside Process/Upload).
  PcieLink& mutable_link() { return link_; }
  int k() const { return k_; }

  /// Fault-layer health: Process scales kernel time by
  /// health().SlowdownAt(kernel start); a dead device must never be
  /// given work (the session revokes its leases instead).
  const DeviceHealth& health() const { return health_; }
  void set_health(const DeviceHealth& health) { health_ = health; }

  /// Attach the epoch-timeline tracer; `tid` is this device's lane in
  /// the trace. Passive (emits h2d/kernel/d2h spans, reads nothing
  /// back); detached — the default — leaves Process bit-identical.
  void SetTrace(obs::Tracer* tracer, int tid) {
    tracer_ = tracer;
    trace_tid_ = tid;
  }

  /// Observability accounting, accumulated over the device's lifetime
  /// (virtual seconds the kernel stream was busy; bytes that crossed the
  /// link in each direction). Maintained unconditionally — plain adds on
  /// values the simulation never reads back — and surfaced as gauges by
  /// the session at each epoch barrier.
  double busy_seconds() const { return busy_seconds_; }
  int64_t h2d_bytes() const { return h2d_bytes_; }
  int64_t d2h_bytes() const { return d2h_bytes_; }

  GpuStreamState stream_state() const {
    return {h2d_free_, kernel_free_, d2h_free_};
  }
  void set_stream_state(const GpuStreamState& state) {
    h2d_free_ = state.h2d_free;
    kernel_free_ = state.kernel_free;
    d2h_free_ = state.d2h_free;
  }

  /// Host<->device bytes for a rating triple / one factor vector.
  static int64_t RatingBytes() { return 12; }
  int64_t FactorBytes() const { return static_cast<int64_t>(k_) * 4; }

 private:
  GpuDeviceSpec spec_;
  int k_;
  bool pipelined_;
  SimtKernelModel kernel_;
  PcieLink link_;
  DeviceHealth health_;
  SimTime h2d_free_ = 0.0;
  SimTime kernel_free_ = 0.0;
  SimTime d2h_free_ = 0.0;
  obs::Tracer* tracer_ = nullptr;  // borrowed; never owned
  int trace_tid_ = 0;
  double busy_seconds_ = 0.0;
  int64_t h2d_bytes_ = 0;
  int64_t d2h_bytes_ = 0;
};

}  // namespace hsgd
