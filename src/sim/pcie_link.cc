#include "sim/pcie_link.h"

namespace hsgd {

PcieLink::PcieLink(const GpuDeviceSpec& spec)
    : h2d_bytes_per_sec_(spec.pcie_h2d_peak_gbps * 1e9),
      d2h_bytes_per_sec_(spec.pcie_d2h_peak_gbps * 1e9),
      latency_(spec.pcie_latency) {}

SimTime PcieLink::TransferTime(int64_t bytes, TransferDirection dir) const {
  if (bytes <= 0) return 0.0;
  double bw = dir == TransferDirection::kHostToDevice ? h2d_bytes_per_sec_
                                                      : d2h_bytes_per_sec_;
  return latency_ + static_cast<double>(bytes) / bw;
}

double PcieLink::EffectiveBandwidthGbps(int64_t bytes,
                                        TransferDirection dir) const {
  if (bytes <= 0) return 0.0;
  return static_cast<double>(bytes) / TransferTime(bytes, dir) / 1e9;
}

void PcieLink::InjectTransferFaults(int count, SimTime detect_latency) {
  if (count <= 0) return;
  pending_faults_ += count;
  fault_detect_latency_ = detect_latency;
}

SimTime PcieLink::ConsumeFaultPenalty(int64_t bytes, TransferDirection dir) {
  if (pending_faults_ <= 0) return 0.0;
  --pending_faults_;
  // The failed attempt runs (some of) the wire before the timeout flags
  // it; charge a full retry worth of wire time plus the detection lag.
  const SimTime penalty = TransferTime(bytes, dir) + fault_detect_latency_;
  ++faults_consumed_;
  penalty_seconds_ += penalty;
  return penalty;
}

}  // namespace hsgd
