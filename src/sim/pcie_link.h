// PCIe transfer-time model (Fig. 6): a fixed per-transfer latency plus a
// bandwidth term, which yields the measured ramp — a few GB/s effective at
// 64KB, saturating at the link peak in the tens of MB.

#pragma once

#include <cstdint>

#include "core/types.h"
#include "sim/device_health.h"
#include "sim/device_spec.h"

namespace hsgd {

enum class TransferDirection { kHostToDevice, kDeviceToHost };

class PcieLink {
 public:
  explicit PcieLink(const GpuDeviceSpec& spec);

  /// Seconds to move `bytes` in `dir`; zero bytes cost nothing. Health-
  /// blind — cost-model probes and deadline estimates call this freely
  /// without consuming injected faults.
  SimTime TransferTime(int64_t bytes, TransferDirection dir) const;

  /// bytes / TransferTime, in GB/s — what Fig. 6 plots.
  double EffectiveBandwidthGbps(int64_t bytes, TransferDirection dir) const;

  /// Fault injection: the next `count` transfers each fail once and are
  /// retried — the caller of ConsumeFaultPenalty pays the failed
  /// attempt's wire time plus `detect_latency` (the timeout that flagged
  /// it) on top of the ordinary TransferTime. The link reports
  /// kDegraded while faults are pending.
  void InjectTransferFaults(int count, SimTime detect_latency);

  /// Extra seconds the next transfer of `bytes` costs; consumes one
  /// pending fault, or returns exactly 0.0 when the link is clean.
  SimTime ConsumeFaultPenalty(int64_t bytes, TransferDirection dir);

  int pending_faults() const { return pending_faults_; }
  /// Observability accounting: injected faults this link has consumed so
  /// far, and the total penalty seconds they charged. Plain accumulators
  /// the simulation never reads back.
  int64_t faults_consumed() const { return faults_consumed_; }
  SimTime penalty_seconds() const { return penalty_seconds_; }
  DeviceHealth health() const {
    DeviceHealth h;
    if (pending_faults_ > 0) {
      h.state = HealthState::kDegraded;
      h.degraded_until = kSimTimeNever;
    }
    return h;
  }

 private:
  double h2d_bytes_per_sec_;
  double d2h_bytes_per_sec_;
  double latency_;
  int pending_faults_ = 0;
  SimTime fault_detect_latency_ = 0.0;
  int64_t faults_consumed_ = 0;
  SimTime penalty_seconds_ = 0.0;
};

}  // namespace hsgd
