// PCIe transfer-time model (Fig. 6): a fixed per-transfer latency plus a
// bandwidth term, which yields the measured ramp — a few GB/s effective at
// 64KB, saturating at the link peak in the tens of MB.

#pragma once

#include <cstdint>

#include "core/types.h"
#include "sim/device_spec.h"

namespace hsgd {

enum class TransferDirection { kHostToDevice, kDeviceToHost };

class PcieLink {
 public:
  explicit PcieLink(const GpuDeviceSpec& spec);

  /// Seconds to move `bytes` in `dir`; zero bytes cost nothing.
  SimTime TransferTime(int64_t bytes, TransferDirection dir) const;

  /// bytes / TransferTime, in GB/s — what Fig. 6 plots.
  double EffectiveBandwidthGbps(int64_t bytes, TransferDirection dir) const;

 private:
  double h2d_bytes_per_sec_;
  double d2h_bytes_per_sec_;
  double latency_;
};

}  // namespace hsgd
