#include "sim/profiler.h"

#include <algorithm>
#include <cmath>

namespace hsgd {

const char* CostModelName(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kQilin: return "qilin";
    case CostModelKind::kOurs: return "ours";
  }
  return "unknown";
}

double HsgdCostModel::CpuEpochTime(double nnz, int threads,
                                   double block_nnz) const {
  if (threads < 1) threads = 1;
  if (block_nnz < 1.0) block_nnz = 1.0;
  // rate(b) = R * b / (b + warmup) => time = (nnz + warmup * num_blocks) / R
  const double effective_rate =
      cpu_rate * block_nnz / (block_nnz + cpu_warmup_nnz);
  return nnz / (effective_rate * threads);
}

double HsgdCostModel::GpuEpochTimeQilin(double nnz) const {
  if (nnz <= 0.0) return 0.0;
  return qilin_a + qilin_b * nnz;
}

double HsgdCostModel::GpuEpochTimeOurs(double nnz, int blocks,
                                       double rows_per_block) const {
  if (nnz <= 0.0) return 0.0;
  if (blocks < 1) blocks = 1;
  const double block_nnz = nnz / blocks;
  const int w = std::max(1, gpu_workers);
  // Kernel stream: every block pays the launch plus its (possibly
  // underfilled) SIMT sweep.
  const double iters = std::ceil(block_nnz / w);
  const double kernel_stream =
      blocks * (gpu_launch + iters * gpu_worker_point_time);
  // Transfer stream: ratings plus traveling row factors, per block.
  const double block_in_bytes =
      block_nnz * rating_bytes + rows_per_block * factor_bytes;
  const double in_stream =
      blocks * (pcie_latency + block_in_bytes / pcie_in_bps);
  const double block_out_bytes = rows_per_block * factor_bytes;
  const double out_stream =
      blocks * (pcie_latency + block_out_bytes / pcie_out_bps);
  // Eq. 9: overlapped streams bound the epoch; the first block's H2D is
  // the pipeline fill.
  const double fill = pcie_latency + block_in_bytes / pcie_in_bps;
  return std::max(kernel_stream, std::max(in_stream, out_stream)) + fill;
}

double HsgdCostModel::DecideAlpha(CostModelKind kind,
                                  const AlphaQuery& query) const {
  const double n = static_cast<double>(query.epoch_nnz);
  if (n <= 0.0) return 0.5;
  const int ng = std::max(1, query.num_gpus);
  const int strata = std::max(1, query.row_strata);
  const int cpu_stripes = std::max(1, query.num_cpu_stripes);
  const double rows_per_block =
      static_cast<double>(query.num_rows) / strata;

  const int gpu_blocks = strata * std::max(1, query.stripes_per_gpu);
  auto gpu_time = [&](double alpha) {
    const double share = alpha * n / ng;  // per-GPU share
    if (kind == CostModelKind::kQilin) return GpuEpochTimeQilin(share);
    return GpuEpochTimeOurs(share, gpu_blocks, rows_per_block);
  };
  auto cpu_time = [&](double alpha) {
    const double share = (1.0 - alpha) * n;
    const double block_nnz = share / (cpu_stripes * strata);
    return CpuEpochTime(share, query.num_cpu_threads, block_nnz);
  };

  // g(alpha) = gpu_time - cpu_time is increasing in alpha; bisect the root.
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (gpu_time(mid) > cpu_time(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  double alpha = 0.5 * (lo + hi);
  return std::min(0.98, std::max(0.02, alpha));
}

Profiler::Profiler(const GpuDeviceSpec& gpu, const CpuDeviceSpec& cpu,
                   int k)
    : gpu_(gpu), cpu_(cpu), k_(k > 0 ? k : 1) {}

StatusOr<HsgdCostModel> Profiler::BuildHsgdModel(const Dataset& ds) const {
  if (ds.train.empty()) {
    return Status::FailedPrecondition(
        "cannot profile an empty dataset: no training ratings");
  }
  if (ds.num_rows <= 0 || ds.num_cols <= 0) {
    return Status::InvalidArgument("dataset has empty dimensions");
  }

  HsgdCostModel m;
  m.gpu_workers = std::max(1, gpu_.parallel_workers);
  m.rating_bytes = static_cast<double>(GpuDevice::RatingBytes());
  m.factor_bytes = static_cast<double>(k_) * 4.0;

  // CPU probes: a small and a large timed block recover the steady rate
  // and the warm-up knee (rate(b) = R * b / (b + w): two equations, two
  // unknowns in 1/rate space).
  CpuDevice cpu(cpu_, k_);
  const int64_t n = ds.train_size();
  {
    const double b1 = 500.0, b2 = 200000.0;
    const double u1 = 1.0 / cpu.UpdateRate(static_cast<int64_t>(b1));
    const double u2 = 1.0 / cpu.UpdateRate(static_cast<int64_t>(b2));
    const double w_over_r = (u1 - u2) / (1.0 / b1 - 1.0 / b2);
    const double inv_r = u2 - w_over_r / b2;
    m.cpu_rate =
        inv_r > 0.0 ? 1.0 / inv_r : cpu.UpdateRate(static_cast<int64_t>(b2));
    m.cpu_warmup_nnz = std::max(0.0, w_over_r * m.cpu_rate);
  }

  // Probe blocks are prefixes of the training set, so their row/column
  // footprint shrinks proportionally with the carved size.
  auto probe_item = [&](int64_t nnz) {
    GpuWorkItem item;
    item.nnz = nnz;
    item.rows = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(ds.num_rows) * nnz / n));
    item.cols = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(ds.num_cols) * nnz / n));
    return item;
  };

  // Qilin fit: two timed runs on a *non-pipelined* device (transfer and
  // kernel serialized), a straight line through the two points.
  {
    const int64_t x1 = std::max<int64_t>(1, n / 32);
    const int64_t x2 = std::max<int64_t>(x1 + 1, n / 8);
    GpuDevice probe(gpu_, k_, /*pipelined=*/false);
    PipelineTiming t1 = probe.Process(0.0, probe_item(x1));
    double m1 = t1.d2h_done - t1.h2d_start;
    PipelineTiming t2 = probe.Process(t1.d2h_done, probe_item(x2));
    double m2 = t2.d2h_done - t2.h2d_start;
    m.qilin_b = (m2 - m1) / static_cast<double>(x2 - x1);
    m.qilin_a = m1 - m.qilin_b * static_cast<double>(x1);
    if (m.qilin_a < 0.0) m.qilin_a = 0.0;
  }

  // Our fit: recover the effective per-iteration time from two *large*
  // kernel-only probes — both deep in the asymptotic regime, so the
  // slope reflects whichever of compute or memory bandwidth actually
  // binds at this W (a small/large pair would straddle the regimes and
  // blend their slopes) — then the launch overhead from a one-iteration
  // probe against that slope.
  {
    SimtKernelModel kernel(gpu_, k_);
    const double iters_1 = 1024.0, iters_2 = 8192.0;
    const double t_1 =
        kernel.ExecTime(static_cast<int64_t>(iters_1) * m.gpu_workers, 0, 0);
    const double t_2 =
        kernel.ExecTime(static_cast<int64_t>(iters_2) * m.gpu_workers, 0, 0);
    m.gpu_worker_point_time = (t_2 - t_1) / (iters_2 - iters_1);
    const double t_small = kernel.ExecTime(m.gpu_workers, 0, 0);
    m.gpu_launch = t_small - m.gpu_worker_point_time;
    if (m.gpu_launch < 0.0) m.gpu_launch = 0.0;

    PcieLink link(gpu_);
    const int64_t mb = 1 << 20;
    m.pcie_latency = link.TransferTime(1, TransferDirection::kHostToDevice);
    m.pcie_in_bps =
        static_cast<double>(64 * mb) /
        (link.TransferTime(64 * mb, TransferDirection::kHostToDevice) -
         m.pcie_latency);
    m.pcie_out_bps =
        static_cast<double>(64 * mb) /
        (link.TransferTime(64 * mb, TransferDirection::kDeviceToHost) -
         m.pcie_latency);
  }

  return m;
}

}  // namespace hsgd
