// Profiler-driven cost models (Section V of the paper, Table II).
//
// The Profiler "runs" probe blocks through the device simulators exactly
// the way a real profiler would time microbenchmarks, then fits two
// alternative GPU cost models:
//
//  - Qilin (HSGD*-Q): a linear T(x) = a + b*x fit through two probe sizes,
//    measured on a non-pipelined device — transfer and kernel summed
//    serially, saturation curvature ignored.
//  - Ours (HSGD*-M, Eq. 9): transfer and kernel modeled as separate
//    streams, per-epoch GPU time = max(stream totals) + pipeline fill,
//    with launch overhead and SIMT underfill modeled per block.
//
// HsgdCostModel::DecideAlpha equalizes the CPU-side and GPU-side epoch
// times under the chosen model and returns the GPU work fraction alpha.

#pragma once

#include <cstdint>

#include "core/dataset.h"
#include "sim/cpu_device.h"
#include "sim/gpu_device.h"
#include "util/status.h"

namespace hsgd {

enum class CostModelKind { kQilin = 0, kOurs = 1 };

const char* CostModelName(CostModelKind kind);

/// Everything DecideAlpha needs to know about the planned execution.
struct AlphaQuery {
  int64_t epoch_nnz = 0;
  int num_cpu_threads = 1;
  int num_gpus = 1;
  int row_strata = 1;      // blocks per column stripe per epoch
  int stripes_per_gpu = 1; // resident column stripes per GPU
  int num_cpu_stripes = 1; // column stripes in the CPU pool
  int64_t num_rows = 0;    // matrix dims (factor-traffic estimate)
  int64_t num_cols = 0;
};

struct HsgdCostModel {
  // CPU side: steady per-thread rate (points/second) plus the small-block
  // warm-up knee, both recovered from two probe sizes.
  double cpu_rate = 6e6;
  double cpu_warmup_nnz = 0.0;

  // Qilin: GPU epoch-time ~= qilin_a + qilin_b * x for a share of x points.
  double qilin_a = 0.0;
  double qilin_b = 0.0;

  // Ours: explicit stream parameters recovered from probes.
  int gpu_workers = 128;
  double gpu_launch = 0.0;        // seconds per kernel launch
  double gpu_worker_point_time = 0.0;  // seconds/point for one worker
  double pcie_in_bps = 1.0;
  double pcie_out_bps = 1.0;
  double pcie_latency = 0.0;
  double rating_bytes = 12.0;
  double factor_bytes = 512.0;  // per factor vector (k * 4)

  /// `block_nnz` is the per-block granularity the share will be carved
  /// into — small blocks pay the warm-up knee on every sweep.
  double CpuEpochTime(double nnz, int threads, double block_nnz) const;
  double GpuEpochTimeQilin(double nnz) const;
  /// `blocks` kernel launches, `rows_per_block` row-factor vectors
  /// traveling with each block (column factors stripe-resident).
  double GpuEpochTimeOurs(double nnz, int blocks,
                          double rows_per_block) const;
  /// GPU work fraction equalizing both sides under `kind`, in [0.02, 0.98].
  double DecideAlpha(CostModelKind kind, const AlphaQuery& query) const;
};

class Profiler {
 public:
  Profiler(const GpuDeviceSpec& gpu, const CpuDeviceSpec& cpu, int k);

  /// Probe the simulated devices on blocks carved to `ds`'s shape and fit
  /// both cost models. Fails on an empty dataset.
  StatusOr<HsgdCostModel> BuildHsgdModel(const Dataset& ds) const;

 private:
  GpuDeviceSpec gpu_;
  CpuDeviceSpec cpu_;
  int k_;
};

}  // namespace hsgd
