#include "stream/stream.h"

#include <algorithm>
#include <utility>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace hsgd::stream {

io::IdMap DenseIdentityMap(int32_t size) {
  io::IdMap map;
  for (int32_t i = 0; i < size; ++i) map.Assign(i);
  return map;
}

// ---- SyntheticStream ------------------------------------------------------

SyntheticStream::SyntheticStream(const SyntheticStreamSpec& spec)
    : spec_(spec), rng_(spec.seed, 31) {}

int64_t SyntheticStream::DrawEntity(int32_t warm, int32_t* cold,
                                    double cold_rate) {
  if (rng_.NextDouble() < cold_rate) {
    return static_cast<int64_t>(warm) + (*cold)++;
  }
  // 80/20 hot-set skew over everything emitted so far (cold entities join
  // the pool once introduced, so a freshly-arrived user keeps rating).
  const int32_t pool = warm + *cold;
  const int32_t hot = std::max<int32_t>(1, pool / 5);
  if (rng_.NextDouble() < 0.8) return rng_.UniformInt(hot);
  return rng_.UniformInt(pool);
}

std::vector<io::RawRating> SyntheticStream::NextBatch(int64_t n) {
  std::vector<io::RawRating> batch;
  batch.reserve(static_cast<size_t>(std::max<int64_t>(0, n)));
  for (int64_t i = 0; i < n; ++i) {
    io::RawRating rec;
    rec.user = spec_.raw_user_base +
               DrawEntity(spec_.warm_users, &cold_users_,
                          spec_.cold_user_rate);
    rec.item = spec_.raw_item_base +
               DrawEntity(spec_.warm_items, &cold_items_,
                          spec_.cold_item_rate);
    rec.rating = spec_.min_rating +
                 rng_.NextFloat() * (spec_.max_rating - spec_.min_rating);
    batch.push_back(rec);
  }
  return batch;
}

// ---- OnlineTrainer --------------------------------------------------------

StatusOr<std::unique_ptr<OnlineTrainer>> OnlineTrainer::Create(
    std::unique_ptr<Session> session, io::IdMap users, io::IdMap items,
    Publisher publisher, obs::MetricsRegistry* metrics,
    const WalIngestOptions* wal) {
  if (session == nullptr) {
    return Status::InvalidArgument("OnlineTrainer needs a live session");
  }
  if (users.size() != session->dataset().num_rows ||
      items.size() != session->dataset().num_cols) {
    return Status::InvalidArgument(StrFormat(
        "id maps (%d users, %d items) do not describe the session's "
        "dataset (%d x %d)",
        users.size(), items.size(), session->dataset().num_rows,
        session->dataset().num_cols));
  }
  std::unique_ptr<OnlineTrainer> trainer(new OnlineTrainer());
  trainer->retry_rng_ = Rng(session->config().seed, 37);
  trainer->session_ = std::move(session);
  trainer->users_ = std::move(users);
  trainer->items_ = std::move(items);
  trainer->publisher_ = std::move(publisher);
  if (wal != nullptr) {
    auto log = Wal::Open(wal->wal, metrics);
    if (!log.ok()) return log.status();
    trainer->wal_ = *std::move(log);
    trainer->wal_options_ = *wal;
    // A fresh trainer over a non-empty log: the caller wants Recover(),
    // not Create() — silently appending after unreplayed records would
    // desync the mark from the session.
    if (trainer->wal_->last_seq() != 0) {
      return Status::FailedPrecondition(StrFormat(
          "WAL at '%s' already holds %llu records; use "
          "OnlineTrainer::Recover to rebuild from it (or point Create at "
          "a fresh directory)",
          wal->wal.dir.c_str(),
          static_cast<unsigned long long>(trainer->wal_->last_seq())));
    }
  }
  trainer->AttachMetrics(metrics);
  return trainer;
}

void OnlineTrainer::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metric_.ingested = metrics->counter("stream.ingested");
  metric_.cold_users = metrics->counter("stream.cold_users");
  metric_.cold_items = metrics->counter("stream.cold_items");
  metric_.epochs = metrics->counter("stream.epochs");
  metric_.publishes = metrics->counter("stream.publishes");
  metric_.publish_rejected = metrics->counter("stream.publish_rejected");
  metric_.wal_retries = metrics->counter("stream.wal.append_retries");
  metric_.wal_replayed = metrics->counter("stream.wal.replayed_batches");
  metric_.staleness = metrics->gauge("stream.staleness_ratings");
  metric_.version = metrics->gauge("stream.version");
  metric_.wal_applied_seq = metrics->gauge("stream.wal.applied_seq");
  metric_.publish_seconds = metrics->histogram(
      "stream.publish_wall_seconds", obs::ExponentialBounds(1e-5, 2.0, 20));
  metric_.batch_size = metrics->histogram(
      "stream.ingest_batch_size", obs::ExponentialBounds(1.0, 2.0, 20));
}

StatusOr<IngestResult> OnlineTrainer::Ingest(
    const std::vector<io::RawRating>& batch) {
  for (const io::RawRating& rec : batch) {
    if (rec.user < 0 || rec.item < 0) {
      return Status::InvalidArgument(
          StrFormat("streamed rating has negative raw id (%lld, %lld)",
                    static_cast<long long>(rec.user),
                    static_cast<long long>(rec.item)));
    }
  }
  uint64_t seq = wal_applied_seq_;
  if (wal_ != nullptr) {
    // Durability first: the batch must be on disk before any of it is
    // applied, or a crash after apply would lose an acknowledged ingest.
    // Transient IO errors retry under the deadline; exhaustion fails the
    // Ingest with nothing applied (and nothing acknowledged).
    Status logged = RetryWithBackoffUntil(
        wal_options_.retry, &retry_rng_, wal_options_.retry_budget_s,
        [&]() -> Status {
          auto appended = wal_->Append(batch);
          if (!appended.ok()) return appended.status();
          seq = *appended;
          return Status::Ok();
        },
        [&](int, const Status&) {
          ++wal_retries_;
          obs::Increment(metric_.wal_retries);
        });
    if (!logged.ok()) return logged;
  }
  auto result = ApplyBatch(batch);
  if (result.ok() && wal_ != nullptr) {
    wal_applied_seq_ = seq;
    obs::Set(metric_.wal_applied_seq, static_cast<double>(seq));
  }
  return result;
}

StatusOr<IngestResult> OnlineTrainer::ReplayIngest(const WalRecord& record) {
  if (record.seq != wal_applied_seq_ + 1) {
    return Status::InvalidArgument(StrFormat(
        "replay out of order: record seq %llu, expected %llu",
        static_cast<unsigned long long>(record.seq),
        static_cast<unsigned long long>(wal_applied_seq_ + 1)));
  }
  auto result = ApplyBatch(record.batch);
  if (result.ok()) {
    wal_applied_seq_ = record.seq;
    obs::Increment(metric_.wal_replayed);
    obs::Set(metric_.wal_applied_seq, static_cast<double>(record.seq));
  }
  return result;
}

StatusOr<IngestResult> OnlineTrainer::ApplyBatch(
    const std::vector<io::RawRating>& batch) {
  const int32_t users_before = users_.size();
  const int32_t items_before = items_.size();
  Ratings dense;
  dense.reserve(batch.size());
  for (const io::RawRating& rec : batch) {
    Rating r;
    r.u = users_.Assign(rec.user);
    r.v = items_.Assign(rec.item);
    r.r = rec.rating;
    dense.push_back(r);
  }
  HSGD_RETURN_IF_ERROR(session_->AppendRatings(dense));
  // The maps and the grown session must agree — the next publish copies
  // both, and a divergence here is exactly the stale-dense-id aliasing
  // bug this layer exists to prevent.
  HSGD_CHECK(users_.size() == session_->dataset().num_rows &&
             items_.size() == session_->dataset().num_cols);
  IngestResult result;
  result.accepted = static_cast<int64_t>(batch.size());
  result.cold_users = users_.size() - users_before;
  result.cold_items = items_.size() - items_before;
  obs::Add(metric_.ingested, result.accepted);
  obs::Add(metric_.cold_users, result.cold_users);
  obs::Add(metric_.cold_items, result.cold_items);
  obs::Observe(metric_.batch_size,
               static_cast<double>(result.accepted));
  obs::Set(metric_.staleness, static_cast<double>(session_->pending_nnz()));
  return result;
}

StatusOr<TracePoint> OnlineTrainer::TrainDirty() {
  auto point = session_->RunIncrementalEpoch();
  if (point.ok()) {
    obs::Increment(metric_.epochs);
    obs::Set(metric_.staleness,
             static_cast<double>(session_->pending_nnz()));
  }
  return point;
}

StatusOr<serve::SnapshotPtr> OnlineTrainer::PublishSnapshot() {
  Stopwatch wall;
  auto snapshot = serve::FactorSnapshot::FromSession(
      *session_, version_ + 1, &users_, &items_);
  if (!snapshot.ok()) return snapshot.status();
  serve::SnapshotPtr outgoing = *snapshot;
  if (interceptor_) outgoing = interceptor_(std::move(outgoing));
  if (publisher_) {
    Status published = publisher_(outgoing);
    if (!published.ok()) {
      // Not installed: the consumer keeps its last-known-good snapshot
      // and our version stays put (the next attempt re-snapshots under
      // the same version number).
      ++publish_rejected_;
      obs::Increment(metric_.publish_rejected);
      return published;
    }
  }
  ++version_;
  ++publishes_;
  obs::Increment(metric_.publishes);
  obs::Set(metric_.version, static_cast<double>(version_));
  obs::Observe(metric_.publish_seconds, wall.Seconds());
  return outgoing;
}

Status OnlineTrainer::Checkpoint(const std::string& path) {
  if (session_->pending_nnz() != 0) {
    return Status::FailedPrecondition(StrFormat(
        "%lld ingested ratings are not yet trained; run TrainDirty "
        "before checkpointing (recovery rebuilds dirty state on the "
        "assumption that checkpoints are ingest-quiescent)",
        static_cast<long long>(session_->pending_nnz())));
  }
  if (wal_ != nullptr) {
    // The checkpoint is about to claim "everything through
    // wal_applied_seq_ is durable"; make the log agree before the claim
    // hits disk.
    HSGD_RETURN_IF_ERROR(wal_->Sync());
  }
  return session_->SaveCheckpoint(path, wal_applied_seq_);
}

StatusOr<OnlineTrainer::RecoverResult> OnlineTrainer::Recover(
    Dataset warm, io::IdMap users, io::IdMap items,
    const std::string& checkpoint_path, const WalIngestOptions& wal,
    Publisher publisher, obs::MetricsRegistry* metrics) {
  auto ckpt = ReadCheckpoint(checkpoint_path);
  if (!ckpt.ok()) return ckpt.status();
  const uint64_t mark = ckpt->wal_seq;

  auto replay = Wal::Replay(wal.wal.dir);
  if (!replay.ok()) return replay.status();
  if (!replay->records.empty() && replay->records.front().seq != 1) {
    return Status::FailedPrecondition(StrFormat(
        "WAL at '%s' starts at seq %llu (truncated below the warm "
        "base?); recovery needs the full streamed tail from seq 1",
        wal.wal.dir.c_str(),
        static_cast<unsigned long long>(replay->records.front().seq)));
  }
  if (replay->last_seq < mark) {
    return Status::FailedPrecondition(StrFormat(
        "WAL ends at seq %llu but the checkpoint's high-water mark is "
        "%llu — the log is missing acknowledged records",
        static_cast<unsigned long long>(replay->last_seq),
        static_cast<unsigned long long>(mark)));
  }

  // Dense-resolve the covered records (seq <= mark) through the warm id
  // maps, growing them exactly as the crashed trainer's Ingest did; the
  // grown batches feed RestoreGrown's bit-exact history replay.
  std::vector<Ratings> growth;
  std::vector<WalRecord> unapplied;
  int64_t replayed = 0;
  for (WalRecord& record : replay->records) {
    if (record.seq > mark) {
      unapplied.push_back(std::move(record));
      continue;
    }
    Ratings dense;
    dense.reserve(record.batch.size());
    for (const io::RawRating& rec : record.batch) {
      Rating r;
      r.u = users.Assign(rec.user);
      r.v = items.Assign(rec.item);
      r.r = rec.rating;
      dense.push_back(r);
    }
    growth.push_back(std::move(dense));
    ++replayed;
  }

  auto session =
      Session::RestoreGrown(checkpoint_path, std::move(warm), growth);
  if (!session.ok()) return session.status();

  RecoverResult result;
  // Create() refuses a non-empty WAL, so wire the trainer by hand: same
  // fields, plus the replayed mark. Wal::Open re-truncates any torn
  // tail (idempotent — Replay above already measured it).
  std::unique_ptr<OnlineTrainer> trainer(new OnlineTrainer());
  trainer->retry_rng_ = Rng((*session)->config().seed, 37);
  trainer->session_ = *std::move(session);
  trainer->users_ = std::move(users);
  trainer->items_ = std::move(items);
  trainer->publisher_ = std::move(publisher);
  auto log = Wal::Open(wal.wal, metrics);
  if (!log.ok()) return log.status();
  trainer->wal_ = *std::move(log);
  trainer->wal_options_ = wal;
  trainer->wal_applied_seq_ = mark;
  trainer->AttachMetrics(metrics);
  obs::Add(trainer->metric_.wal_replayed, replayed);
  obs::Set(trainer->metric_.wal_applied_seq, static_cast<double>(mark));

  result.trainer = std::move(trainer);
  result.unapplied = std::move(unapplied);
  result.checkpoint_seq = mark;
  result.replayed_batches = replayed;
  result.truncated_bytes = replay->truncated_bytes;
  return result;
}

}  // namespace hsgd::stream
