#include "stream/stream.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace hsgd::stream {

io::IdMap DenseIdentityMap(int32_t size) {
  io::IdMap map;
  for (int32_t i = 0; i < size; ++i) map.Assign(i);
  return map;
}

// ---- SyntheticStream ------------------------------------------------------

SyntheticStream::SyntheticStream(const SyntheticStreamSpec& spec)
    : spec_(spec), rng_(spec.seed, 31) {}

int64_t SyntheticStream::DrawEntity(int32_t warm, int32_t* cold,
                                    double cold_rate) {
  if (rng_.NextDouble() < cold_rate) {
    return static_cast<int64_t>(warm) + (*cold)++;
  }
  // 80/20 hot-set skew over everything emitted so far (cold entities join
  // the pool once introduced, so a freshly-arrived user keeps rating).
  const int32_t pool = warm + *cold;
  const int32_t hot = std::max<int32_t>(1, pool / 5);
  if (rng_.NextDouble() < 0.8) return rng_.UniformInt(hot);
  return rng_.UniformInt(pool);
}

std::vector<io::RawRating> SyntheticStream::NextBatch(int64_t n) {
  std::vector<io::RawRating> batch;
  batch.reserve(static_cast<size_t>(std::max<int64_t>(0, n)));
  for (int64_t i = 0; i < n; ++i) {
    io::RawRating rec;
    rec.user = spec_.raw_user_base +
               DrawEntity(spec_.warm_users, &cold_users_,
                          spec_.cold_user_rate);
    rec.item = spec_.raw_item_base +
               DrawEntity(spec_.warm_items, &cold_items_,
                          spec_.cold_item_rate);
    rec.rating = spec_.min_rating +
                 rng_.NextFloat() * (spec_.max_rating - spec_.min_rating);
    batch.push_back(rec);
  }
  return batch;
}

// ---- OnlineTrainer --------------------------------------------------------

StatusOr<std::unique_ptr<OnlineTrainer>> OnlineTrainer::Create(
    std::unique_ptr<Session> session, io::IdMap users, io::IdMap items,
    Publisher publisher, obs::MetricsRegistry* metrics) {
  if (session == nullptr) {
    return Status::InvalidArgument("OnlineTrainer needs a live session");
  }
  if (users.size() != session->dataset().num_rows ||
      items.size() != session->dataset().num_cols) {
    return Status::InvalidArgument(StrFormat(
        "id maps (%d users, %d items) do not describe the session's "
        "dataset (%d x %d)",
        users.size(), items.size(), session->dataset().num_rows,
        session->dataset().num_cols));
  }
  std::unique_ptr<OnlineTrainer> trainer(new OnlineTrainer());
  trainer->session_ = std::move(session);
  trainer->users_ = std::move(users);
  trainer->items_ = std::move(items);
  trainer->publisher_ = std::move(publisher);
  if (metrics != nullptr) {
    trainer->metric_.ingested = metrics->counter("stream.ingested");
    trainer->metric_.cold_users = metrics->counter("stream.cold_users");
    trainer->metric_.cold_items = metrics->counter("stream.cold_items");
    trainer->metric_.epochs = metrics->counter("stream.epochs");
    trainer->metric_.publishes = metrics->counter("stream.publishes");
    trainer->metric_.staleness = metrics->gauge("stream.staleness_ratings");
    trainer->metric_.version = metrics->gauge("stream.version");
    trainer->metric_.publish_seconds = metrics->histogram(
        "stream.publish_wall_seconds", obs::ExponentialBounds(1e-5, 2.0, 20));
    trainer->metric_.batch_size = metrics->histogram(
        "stream.ingest_batch_size", obs::ExponentialBounds(1.0, 2.0, 20));
  }
  return trainer;
}

StatusOr<IngestResult> OnlineTrainer::Ingest(
    const std::vector<io::RawRating>& batch) {
  for (const io::RawRating& rec : batch) {
    if (rec.user < 0 || rec.item < 0) {
      return Status::InvalidArgument(
          StrFormat("streamed rating has negative raw id (%lld, %lld)",
                    static_cast<long long>(rec.user),
                    static_cast<long long>(rec.item)));
    }
  }
  const int32_t users_before = users_.size();
  const int32_t items_before = items_.size();
  Ratings dense;
  dense.reserve(batch.size());
  for (const io::RawRating& rec : batch) {
    Rating r;
    r.u = users_.Assign(rec.user);
    r.v = items_.Assign(rec.item);
    r.r = rec.rating;
    dense.push_back(r);
  }
  HSGD_RETURN_IF_ERROR(session_->AppendRatings(dense));
  // The maps and the grown session must agree — the next publish copies
  // both, and a divergence here is exactly the stale-dense-id aliasing
  // bug this layer exists to prevent.
  HSGD_CHECK(users_.size() == session_->dataset().num_rows &&
             items_.size() == session_->dataset().num_cols);
  IngestResult result;
  result.accepted = static_cast<int64_t>(batch.size());
  result.cold_users = users_.size() - users_before;
  result.cold_items = items_.size() - items_before;
  obs::Add(metric_.ingested, result.accepted);
  obs::Add(metric_.cold_users, result.cold_users);
  obs::Add(metric_.cold_items, result.cold_items);
  obs::Observe(metric_.batch_size,
               static_cast<double>(result.accepted));
  obs::Set(metric_.staleness, static_cast<double>(session_->pending_nnz()));
  return result;
}

StatusOr<TracePoint> OnlineTrainer::TrainDirty() {
  auto point = session_->RunIncrementalEpoch();
  if (point.ok()) {
    obs::Increment(metric_.epochs);
    obs::Set(metric_.staleness,
             static_cast<double>(session_->pending_nnz()));
  }
  return point;
}

StatusOr<serve::SnapshotPtr> OnlineTrainer::PublishSnapshot() {
  Stopwatch wall;
  auto snapshot = serve::FactorSnapshot::FromSession(
      *session_, version_ + 1, &users_, &items_);
  if (!snapshot.ok()) return snapshot.status();
  ++version_;
  ++publishes_;
  if (publisher_) publisher_(*snapshot);
  obs::Increment(metric_.publishes);
  obs::Set(metric_.version, static_cast<double>(version_));
  obs::Observe(metric_.publish_seconds, wall.Seconds());
  return *snapshot;
}

}  // namespace hsgd::stream
