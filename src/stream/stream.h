// Online training: the train-and-publish loop that makes "train and
// serve concurrently from one process" real.
//
// The pieces PR 8 left unconnected — `Session` (batch training),
// `serve::SnapshotHolder` (lock-free publication), `io::IdMap` (raw-id
// vocabulary) — are driven here by an `OnlineTrainer`:
//
//   Ingest(raw batch)   raw ids -> dense via the trainer's OWN IdMaps
//                       (cold users/items grow the maps, the model's
//                       aligned factor storage, and the grid's trailing
//                       strata), appended to the session's dataset with
//                       the touched blocks marked dirty.
//   TrainDirty()        one incremental SGD epoch over only the dirty
//                       blocks (Scheduler::BeginEpochSubset).
//   PublishSnapshot()   a barrier-synchronized factor copy
//                       (FactorSnapshot::FromSession, which fails with
//                       kFailedPrecondition rather than tear mid-epoch)
//                       carrying THIS publish's id maps, handed to the
//                       publisher callback (typically
//                       SnapshotHolder::Publish / RecServer::Publish).
//
// Staleness semantics: a rating is stale from Ingest until the first
// PublishSnapshot after an epoch swept its block. `stream.staleness_ratings`
// gauges the pending count; queries for a cold user keep returning typed
// kNotFound until the publish whose maps cover it — never a stale dense-id
// aliasing from an older snapshot.
//
// Durability (WAL-backed ingest, optional): when Create is given
// WalOptions, every Ingest batch is appended to the write-ahead log —
// with deadline-bounded retries on transient IO errors — BEFORE it is
// applied to the session, so an acknowledged ingest survives a crash.
// Checkpoint() records the WAL sequence applied so far as the
// checkpoint's high-water mark; Recover() reopens the log, rebuilds the
// grown session bit-exactly (Session::RestoreGrown + the checkpoint's
// dataset fingerprint as the proof), and hands back the unapplied
// records (seq > mark) for the driver to re-drive through ReplayIngest
// with its original ingest/train cadence. The WAL is never auto-pruned:
// checkpoints store factors, not ratings, so the whole streamed tail
// since the warm base must stay replayable (Wal::TruncateBefore is an
// operator decision, taken only when the warm base itself is re-snapshotted).
//
// Publish rejection: the publisher returns Status; a rejection (e.g.
// RecServer refusing a corrupt snapshot) leaves version/publish counters
// unadvanced and is surfaced to the driver — the server keeps serving
// its last-known-good snapshot.
//
// All OnlineTrainer methods are intended for one driver thread; the
// concurrency boundary is the published snapshot (any number of serving
// threads) and the session's epoch barrier, not this class.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/session.h"
#include "io/loader.h"
#include "serve/snapshot.h"
#include "stream/wal.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace hsgd::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Gauge;
class Histogram;
}  // namespace hsgd::obs

namespace hsgd::stream {

/// Identity vocabulary for sessions whose training data was born dense
/// (synthetic presets): raw id i maps to dense id i, for i in [0, size).
/// Seeding an OnlineTrainer with identity maps keeps the raw/dense
/// distinction honest even when they start out equal — streamed cold ids
/// then extend both sides consistently.
io::IdMap DenseIdentityMap(int32_t size);

/// A seeded synthetic arrival process: warm entities are drawn with an
/// 80/20 hot-set skew from the vocabulary emitted so far, cold entities
/// arrive at the configured rates and permanently join the warm pool.
/// Raw ids are `raw_user_base + ordinal` (ditto items) — offset the bases
/// so a raw id is never numerically equal to its dense index and any
/// identity-fallback bug becomes observable instead of silently correct.
struct SyntheticStreamSpec {
  int32_t warm_users = 0;  // ordinals [0, warm_users) preexist the stream
  int32_t warm_items = 0;
  double cold_user_rate = 0.02;  // per-arrival probability of a new user
  double cold_item_rate = 0.01;
  float min_rating = 1.0f;
  float max_rating = 5.0f;
  int64_t raw_user_base = 0;
  int64_t raw_item_base = 0;
  uint64_t seed = 1;
};

class SyntheticStream {
 public:
  explicit SyntheticStream(const SyntheticStreamSpec& spec);

  /// The next `n` arrivals, in order. Deterministic for a given spec.
  std::vector<io::RawRating> NextBatch(int64_t n);

  /// Entities emitted cold so far (beyond the warm preset).
  int32_t cold_users_emitted() const { return cold_users_; }
  int32_t cold_items_emitted() const { return cold_items_; }

 private:
  int64_t DrawEntity(int32_t warm, int32_t* cold, double cold_rate);

  SyntheticStreamSpec spec_;
  Rng rng_;
  int32_t cold_users_ = 0;
  int32_t cold_items_ = 0;
};

struct IngestResult {
  int64_t accepted = 0;
  /// Entities first seen in this batch (IdMap growth = model growth).
  int32_t cold_users = 0;
  int32_t cold_items = 0;
};

class OnlineTrainer {
 public:
  /// Receives each published snapshot and reports whether it was
  /// accepted; typically binds RecServer::Publish (which validates and
  /// may reject) or wraps SnapshotHolder::PublishValidated. Runs on the
  /// driver thread inside PublishSnapshot. A non-Ok return means the
  /// snapshot was NOT installed; the trainer leaves its version
  /// unadvanced and surfaces the status.
  using Publisher = std::function<Status(serve::SnapshotPtr)>;

  /// Chaos/test hook: maps the about-to-be-published snapshot to what is
  /// actually handed to the publisher (e.g. FactorSnapshot::PoisonedCopy
  /// under a publish-poison fault). Identity when unset.
  using PublishInterceptor =
      std::function<serve::SnapshotPtr(serve::SnapshotPtr)>;

  /// WAL ingest policy bundled with the log location (Create takes a
  /// pointer; null = no WAL, PR-9 behavior bit for bit).
  struct WalIngestOptions {
    WalOptions wal;
    /// Transient append failures (injected IO faults, EINTR-ish) are
    /// retried under this envelope, bounded by `retry_budget_s` seconds
    /// of wall clock — the ingest path has latency obligations, so a
    /// sick log fails the Ingest (typed, nothing applied) rather than
    /// stalling the driver loop.
    RetryOptions retry;
    double retry_budget_s = 0.25;
  };

  /// Everything Recover() rebuilt, plus the work left for the driver.
  struct RecoverResult {
    std::unique_ptr<OnlineTrainer> trainer;
    /// Records logged but NOT covered by the checkpoint (seq > mark),
    /// in seq order. Re-drive each through ReplayIngest with the same
    /// ingest/train cadence the original run used.
    std::vector<WalRecord> unapplied;
    /// The checkpoint's WAL high-water mark.
    uint64_t checkpoint_seq = 0;
    /// Batches replayed into the rebuilt session (seq <= mark).
    int64_t replayed_batches = 0;
    /// Torn bytes truncated from the log tail (crash mid-append).
    int64_t truncated_bytes = 0;
  };

  /// Takes ownership of a live `session` and the id maps describing its
  /// CURRENT dataset (use DenseIdentityMap for synthetic data, or the
  /// maps LoadRatings built for a real dump). InvalidArgument when the
  /// map sizes disagree with the session's dimensions or the session is
  /// null. `metrics` (borrowed, may be null) receives the stream.*
  /// instruments. `wal` (optional) arms durable ingest: the log is
  /// opened (replaying/truncating any torn tail) and every subsequent
  /// Ingest is logged before it is applied.
  static StatusOr<std::unique_ptr<OnlineTrainer>> Create(
      std::unique_ptr<Session> session, io::IdMap users, io::IdMap items,
      Publisher publisher, obs::MetricsRegistry* metrics = nullptr,
      const WalIngestOptions* wal = nullptr);

  /// Crash recovery for a WAL-armed trainer. Reads the checkpoint's WAL
  /// mark, replays the log (truncating a torn tail), rebuilds the grown
  /// session bit-exactly via Session::RestoreGrown (the checkpoint's
  /// dataset fingerprint proves warm + replayed growth reconstruct the
  /// crashed session's data), reopens the WAL for appending, and
  /// returns the unapplied tail for the driver to re-drive. `warm` /
  /// `users` / `items` describe the WARM base (pre-stream), exactly as
  /// first handed to Create. Requires an existing checkpoint: a WAL
  /// with no checkpoint means re-running the warm bootstrap + full
  /// replay from scratch, which is the driver's call, not this helper's.
  static StatusOr<RecoverResult> Recover(
      Dataset warm, io::IdMap users, io::IdMap items,
      const std::string& checkpoint_path, const WalIngestOptions& wal,
      Publisher publisher, obs::MetricsRegistry* metrics = nullptr);

  /// Append a raw batch: when a WAL is armed the batch is made durable
  /// first (retried within the options' deadline; a final failure
  /// returns the error with NOTHING applied), then ids are resolved
  /// (growing the trainer's maps for cold entities) and the dense
  /// ratings appended to the session. InvalidArgument on negative raw
  /// ids, with nothing mutated or logged.
  StatusOr<IngestResult> Ingest(const std::vector<io::RawRating>& batch);

  /// Recovery-path ingest: applies a replayed WAL record WITHOUT
  /// re-appending it to the log. Records must arrive in seq order
  /// (checkpoint_seq+1, +2, ...); InvalidArgument otherwise.
  StatusOr<IngestResult> ReplayIngest(const WalRecord& record);

  /// Durable save: fsyncs the WAL (when armed), then writes the session
  /// checkpoint stamped with the WAL sequence applied so far. Refused
  /// (FailedPrecondition) while ratings are ingested-but-untrained —
  /// recovery's dirty-state reconstruction (Session::RestoreGrown)
  /// relies on checkpoints being taken at ingest-quiescent points.
  Status Checkpoint(const std::string& path);

  /// One incremental epoch over the blocks dirtied since the last epoch.
  /// FailedPrecondition when nothing is pending (harmless; skip and keep
  /// ingesting).
  StatusOr<TracePoint> TrainDirty();

  /// Barrier-synchronized snapshot of the session's current factors +
  /// THIS moment's id maps, with a fresh monotonic version, handed
  /// through the interceptor (if any) to the publisher. A publisher
  /// rejection is returned as-is with version/publish counters
  /// unadvanced (counted in publish_rejected()); the next attempt
  /// re-snapshots under the same version. On success returns what was
  /// actually published.
  StatusOr<serve::SnapshotPtr> PublishSnapshot();

  /// Install (or clear, with nullptr) the publish interceptor.
  void SetPublishInterceptor(PublishInterceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }

  const Session& session() const { return *session_; }
  Session* mutable_session() { return session_.get(); }
  const io::IdMap& users() const { return users_; }
  const io::IdMap& items() const { return items_; }
  /// Version of the last successful publish (0 = none yet).
  uint64_t version() const { return version_; }
  int64_t publishes() const { return publishes_; }
  /// Publishes the publisher refused (snapshot not installed).
  int64_t publish_rejected() const { return publish_rejected_; }
  /// Ratings ingested but not yet covered by an epoch.
  int64_t pending_nnz() const { return session_->pending_nnz(); }
  /// The armed WAL, or null. Exposed for chaos hooks
  /// (Wal::SetIoFaultHook) and tests; production drivers don't touch it.
  Wal* wal() { return wal_.get(); }
  /// Highest WAL seq whose batch has been applied to the session
  /// (0 = none; always wal()->last_seq() minus any in-flight failure).
  uint64_t wal_applied_seq() const { return wal_applied_seq_; }
  /// WAL append retries taken so far (transient faults absorbed).
  int64_t wal_retries() const { return wal_retries_; }

 private:
  OnlineTrainer() = default;

  /// Shared dense-resolve + append body of Ingest/ReplayIngest.
  StatusOr<IngestResult> ApplyBatch(const std::vector<io::RawRating>& batch);
  /// Resolve the stream.* instrument handles (null registry = no-op).
  void AttachMetrics(obs::MetricsRegistry* metrics);

  std::unique_ptr<Session> session_;
  io::IdMap users_;
  io::IdMap items_;
  Publisher publisher_;
  PublishInterceptor interceptor_;
  uint64_t version_ = 0;
  int64_t publishes_ = 0;
  int64_t publish_rejected_ = 0;

  std::unique_ptr<Wal> wal_;
  WalIngestOptions wal_options_;
  uint64_t wal_applied_seq_ = 0;
  int64_t wal_retries_ = 0;
  /// Jitter source for WAL append backoff (stream 37; only consumed
  /// when an append actually fails, so fault-free runs never draw).
  Rng retry_rng_{1, 37};

  struct Metrics {
    obs::Counter* ingested = nullptr;
    obs::Counter* cold_users = nullptr;
    obs::Counter* cold_items = nullptr;
    obs::Counter* epochs = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Counter* publish_rejected = nullptr;
    obs::Counter* wal_retries = nullptr;
    obs::Counter* wal_replayed = nullptr;
    obs::Gauge* staleness = nullptr;
    obs::Gauge* version = nullptr;
    obs::Gauge* wal_applied_seq = nullptr;
    obs::Histogram* publish_seconds = nullptr;
    obs::Histogram* batch_size = nullptr;
  } metric_;
};

}  // namespace hsgd::stream
