// Online training: the train-and-publish loop that makes "train and
// serve concurrently from one process" real.
//
// The pieces PR 8 left unconnected — `Session` (batch training),
// `serve::SnapshotHolder` (lock-free publication), `io::IdMap` (raw-id
// vocabulary) — are driven here by an `OnlineTrainer`:
//
//   Ingest(raw batch)   raw ids -> dense via the trainer's OWN IdMaps
//                       (cold users/items grow the maps, the model's
//                       aligned factor storage, and the grid's trailing
//                       strata), appended to the session's dataset with
//                       the touched blocks marked dirty.
//   TrainDirty()        one incremental SGD epoch over only the dirty
//                       blocks (Scheduler::BeginEpochSubset).
//   PublishSnapshot()   a barrier-synchronized factor copy
//                       (FactorSnapshot::FromSession, which fails with
//                       kFailedPrecondition rather than tear mid-epoch)
//                       carrying THIS publish's id maps, handed to the
//                       publisher callback (typically
//                       SnapshotHolder::Publish / RecServer::Publish).
//
// Staleness semantics: a rating is stale from Ingest until the first
// PublishSnapshot after an epoch swept its block. `stream.staleness_ratings`
// gauges the pending count; queries for a cold user keep returning typed
// kNotFound until the publish whose maps cover it — never a stale dense-id
// aliasing from an older snapshot.
//
// All OnlineTrainer methods are intended for one driver thread; the
// concurrency boundary is the published snapshot (any number of serving
// threads) and the session's epoch barrier, not this class.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/session.h"
#include "io/loader.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/status.h"

namespace hsgd::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Gauge;
class Histogram;
}  // namespace hsgd::obs

namespace hsgd::stream {

/// Identity vocabulary for sessions whose training data was born dense
/// (synthetic presets): raw id i maps to dense id i, for i in [0, size).
/// Seeding an OnlineTrainer with identity maps keeps the raw/dense
/// distinction honest even when they start out equal — streamed cold ids
/// then extend both sides consistently.
io::IdMap DenseIdentityMap(int32_t size);

/// A seeded synthetic arrival process: warm entities are drawn with an
/// 80/20 hot-set skew from the vocabulary emitted so far, cold entities
/// arrive at the configured rates and permanently join the warm pool.
/// Raw ids are `raw_user_base + ordinal` (ditto items) — offset the bases
/// so a raw id is never numerically equal to its dense index and any
/// identity-fallback bug becomes observable instead of silently correct.
struct SyntheticStreamSpec {
  int32_t warm_users = 0;  // ordinals [0, warm_users) preexist the stream
  int32_t warm_items = 0;
  double cold_user_rate = 0.02;  // per-arrival probability of a new user
  double cold_item_rate = 0.01;
  float min_rating = 1.0f;
  float max_rating = 5.0f;
  int64_t raw_user_base = 0;
  int64_t raw_item_base = 0;
  uint64_t seed = 1;
};

class SyntheticStream {
 public:
  explicit SyntheticStream(const SyntheticStreamSpec& spec);

  /// The next `n` arrivals, in order. Deterministic for a given spec.
  std::vector<io::RawRating> NextBatch(int64_t n);

  /// Entities emitted cold so far (beyond the warm preset).
  int32_t cold_users_emitted() const { return cold_users_; }
  int32_t cold_items_emitted() const { return cold_items_; }

 private:
  int64_t DrawEntity(int32_t warm, int32_t* cold, double cold_rate);

  SyntheticStreamSpec spec_;
  Rng rng_;
  int32_t cold_users_ = 0;
  int32_t cold_items_ = 0;
};

struct IngestResult {
  int64_t accepted = 0;
  /// Entities first seen in this batch (IdMap growth = model growth).
  int32_t cold_users = 0;
  int32_t cold_items = 0;
};

class OnlineTrainer {
 public:
  /// Receives each published snapshot; typically binds
  /// RecServer::Publish or SnapshotHolder::Publish. Runs on the driver
  /// thread inside PublishSnapshot.
  using Publisher = std::function<void(serve::SnapshotPtr)>;

  /// Takes ownership of a live `session` and the id maps describing its
  /// CURRENT dataset (use DenseIdentityMap for synthetic data, or the
  /// maps LoadRatings built for a real dump). InvalidArgument when the
  /// map sizes disagree with the session's dimensions or the session is
  /// null. `metrics` (borrowed, may be null) receives the stream.*
  /// instruments.
  static StatusOr<std::unique_ptr<OnlineTrainer>> Create(
      std::unique_ptr<Session> session, io::IdMap users, io::IdMap items,
      Publisher publisher, obs::MetricsRegistry* metrics = nullptr);

  /// Append a raw batch: ids are resolved (growing the trainer's maps
  /// for cold entities) and the dense ratings appended to the session.
  /// InvalidArgument on negative raw ids, with nothing mutated.
  StatusOr<IngestResult> Ingest(const std::vector<io::RawRating>& batch);

  /// One incremental epoch over the blocks dirtied since the last epoch.
  /// FailedPrecondition when nothing is pending (harmless; skip and keep
  /// ingesting).
  StatusOr<TracePoint> TrainDirty();

  /// Barrier-synchronized snapshot of the session's current factors +
  /// THIS moment's id maps, with a fresh monotonic version, handed to
  /// the publisher. Also returned so drivers can inspect what went out.
  StatusOr<serve::SnapshotPtr> PublishSnapshot();

  const Session& session() const { return *session_; }
  Session* mutable_session() { return session_.get(); }
  const io::IdMap& users() const { return users_; }
  const io::IdMap& items() const { return items_; }
  /// Version of the last successful publish (0 = none yet).
  uint64_t version() const { return version_; }
  int64_t publishes() const { return publishes_; }
  /// Ratings ingested but not yet covered by an epoch.
  int64_t pending_nnz() const { return session_->pending_nnz(); }

 private:
  OnlineTrainer() = default;

  std::unique_ptr<Session> session_;
  io::IdMap users_;
  io::IdMap items_;
  Publisher publisher_;
  uint64_t version_ = 0;
  int64_t publishes_ = 0;

  struct Metrics {
    obs::Counter* ingested = nullptr;
    obs::Counter* cold_users = nullptr;
    obs::Counter* cold_items = nullptr;
    obs::Counter* epochs = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Gauge* staleness = nullptr;
    obs::Gauge* version = nullptr;
    obs::Histogram* publish_seconds = nullptr;
    obs::Histogram* batch_size = nullptr;
  } metric_;
};

}  // namespace hsgd::stream
