#include "stream/wal.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/strings.h"

namespace hsgd::stream {
namespace {

constexpr uint64_t kWalMagic = 0x4853474457414C31ull;  // "HSGDWAL1"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = sizeof(uint64_t) + sizeof(uint32_t) +
                                sizeof(uint64_t);
/// u64 seq + u32 count.
constexpr size_t kPayloadFixed = sizeof(uint64_t) + sizeof(uint32_t);
/// i64 user + i64 item + f32 rating.
constexpr size_t kRatingBytes = 2 * sizeof(int64_t) + sizeof(float);
/// A record length beyond this is corruption, not a big batch.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Byte-counted write failpoint (tests): fail after this many further
/// bytes; < 0 disabled.
int64_t g_wal_write_failpoint = -1;

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string SegmentName(uint64_t first_seq) {
  return StrFormat("wal-%016llx.log",
                   static_cast<unsigned long long>(first_seq));
}

/// Parses "wal-<hex16>.log"; false for anything else in the directory.
bool ParseSegmentName(const char* name, uint64_t* first_seq) {
  size_t len = std::strlen(name);
  if (len != 4 + 16 + 4 || std::strncmp(name, "wal-", 4) != 0 ||
      std::strcmp(name + 20, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (int i = 4; i < 20; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *first_seq = v;
  return true;
}

struct SegmentFile {
  uint64_t first_seq = 0;
  std::string path;
};

/// Segment files in `dir`, ascending by first_seq. NotFound when the
/// directory itself is missing.
StatusOr<std::vector<SegmentFile>> ListSegments(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound(
        StrFormat("WAL directory '%s' does not exist", dir.c_str()));
  }
  std::vector<SegmentFile> segments;
  while (dirent* entry = readdir(d)) {
    uint64_t first_seq;
    if (ParseSegmentName(entry->d_name, &first_seq)) {
      segments.push_back({first_seq, dir + "/" + entry->d_name});
    }
  }
  closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.first_seq < b.first_seq;
            });
  return segments;
}

/// Reads one segment, appending intact records to `out`. `expect_seq`
/// (in/out) enforces cross-segment contiguity; 0 means "accept whatever
/// the first record claims" (the log's head may have been GC'd).
/// `is_last` selects torn-tail truncation over hard failure. On a
/// truncation the file is shortened in place and `truncated_bytes` gets
/// the dropped size.
Status ReadSegment(const SegmentFile& segment, bool is_last,
                   uint64_t* expect_seq, std::vector<WalRecord>* out,
                   int64_t* truncated_bytes) {
  FILE* f = std::fopen(segment.path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot open WAL segment '%s'", segment.path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);

  auto truncate_to = [&](long offset, const char* why) -> Status {
    std::fclose(f);
    f = nullptr;
    if (!is_last) {
      return Status::Internal(StrFormat(
          "WAL segment '%s' is corrupt mid-log (%s at offset %ld) — not "
          "a torn tail; refusing to guess",
          segment.path.c_str(), why, offset));
    }
    if (truncate(segment.path.c_str(), offset) != 0) {
      return Status::Internal(StrFormat(
          "cannot truncate torn tail of '%s'", segment.path.c_str()));
    }
    *truncated_bytes += file_size - offset;
    return Status::Ok();
  };

  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t first_seq = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 ||
      std::fread(&version, sizeof(version), 1, f) != 1 ||
      std::fread(&first_seq, sizeof(first_seq), 1, f) != 1) {
    // A crash between segment creation and the header landing: the
    // final segment may legally be shorter than a header. Truncate it
    // to nothing (Open will re-roll it).
    return truncate_to(0, "incomplete header");
  }
  if (magic != kWalMagic || version != kWalVersion ||
      first_seq != segment.first_seq) {
    std::fclose(f);
    return Status::Internal(StrFormat(
        "'%s' is not a valid WAL segment (bad header)",
        segment.path.c_str()));
  }

  long offset = static_cast<long>(kHeaderBytes);
  std::vector<unsigned char> payload;
  for (;;) {
    uint32_t len = 0;
    uint32_t crc = 0;
    const size_t got_len = std::fread(&len, 1, sizeof(len), f);
    if (got_len == 0) break;  // clean end of segment
    if (got_len < sizeof(len) ||
        std::fread(&crc, sizeof(crc), 1, f) != 1) {
      return truncate_to(offset, "partial record length");
    }
    if (len < kPayloadFixed || len > kMaxPayloadBytes) {
      return truncate_to(offset, "absurd record length");
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      return truncate_to(offset, "partial record payload");
    }
    if (WalCrc32(payload.data(), len) != crc) {
      return truncate_to(offset, "CRC mismatch");
    }
    WalRecord record;
    std::memcpy(&record.seq, payload.data(), sizeof(uint64_t));
    uint32_t count = 0;
    std::memcpy(&count, payload.data() + sizeof(uint64_t), sizeof(count));
    if (len != kPayloadFixed + static_cast<size_t>(count) * kRatingBytes) {
      return truncate_to(offset, "count/length mismatch");
    }
    const uint64_t want =
        *expect_seq != 0 ? *expect_seq
                         : (out->empty() ? record.seq : 0);
    if (record.seq != want) {
      // A seq gap is lost acknowledged data, never a torn tail.
      std::fclose(f);
      return Status::Internal(StrFormat(
          "WAL '%s' has a sequence gap (expected %llu, found %llu)",
          segment.path.c_str(), static_cast<unsigned long long>(want),
          static_cast<unsigned long long>(record.seq)));
    }
    record.batch.resize(count);
    const unsigned char* p = payload.data() + kPayloadFixed;
    for (uint32_t i = 0; i < count; ++i) {
      std::memcpy(&record.batch[i].user, p, sizeof(int64_t));
      std::memcpy(&record.batch[i].item, p + 8, sizeof(int64_t));
      std::memcpy(&record.batch[i].rating, p + 16, sizeof(float));
      p += kRatingBytes;
    }
    *expect_seq = record.seq + 1;
    out->push_back(std::move(record));
    offset += static_cast<long>(2 * sizeof(uint32_t) + len);
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace

void SetWalWriteFailpoint(int64_t bytes) { g_wal_write_failpoint = bytes; }

uint32_t WalCrc32(const void* data, size_t bytes) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<WalReplayResult> Wal::Replay(const std::string& dir) {
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  WalReplayResult result;
  result.segments = static_cast<int>(segments->size());
  uint64_t expect_seq = 0;
  for (size_t i = 0; i < segments->size(); ++i) {
    // First-seq claims must chain: segment i+1 starts where i's records
    // end. Checked implicitly via expect_seq inside ReadSegment, except
    // that an all-torn final segment is allowed to contribute nothing.
    HSGD_RETURN_IF_ERROR(ReadSegment(
        (*segments)[i], /*is_last=*/i + 1 == segments->size(), &expect_seq,
        &result.records, &result.truncated_bytes));
  }
  if (!result.records.empty()) result.last_seq = result.records.back().seq;
  return result;
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const WalOptions& options,
                                         obs::MetricsRegistry* metrics) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL needs a directory");
  }
  if (options.segment_bytes < static_cast<int64_t>(kHeaderBytes) + 64) {
    return Status::InvalidArgument(StrFormat(
        "WAL segment_bytes too small (%lld)",
        static_cast<long long>(options.segment_bytes)));
  }
  if (options.fsync_every < 0) {
    return Status::InvalidArgument("WAL fsync_every must be >= 0");
  }
  if (mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrFormat(
        "cannot create WAL directory '%s'", options.dir.c_str()));
  }
  // The replay pass truncates any torn tail, so the append position is
  // always after a fully intact record (or a fresh segment).
  auto replay = Replay(options.dir);
  if (!replay.ok()) return replay.status();

  std::unique_ptr<Wal> wal(new Wal());
  wal->options_ = options;
  wal->last_seq_ = replay->last_seq;
  wal->segments_ = replay->segments;
  if (metrics != nullptr) {
    wal->m_appends_ = metrics->counter("stream.wal.appends");
    wal->m_append_failures_ =
        metrics->counter("stream.wal.append_failures");
    wal->m_bytes_ = metrics->counter("stream.wal.bytes");
    wal->m_syncs_ = metrics->counter("stream.wal.syncs");
    wal->m_last_seq_ = metrics->gauge("stream.wal.last_seq");
    wal->m_segments_ = metrics->gauge("stream.wal.segments");
    obs::Set(wal->m_last_seq_, static_cast<double>(wal->last_seq_));
    obs::Set(wal->m_segments_, static_cast<double>(wal->segments_));
  }

  // Append into the newest segment if it has room, else roll a new one.
  auto segments = ListSegments(options.dir);
  if (!segments.ok()) return segments.status();
  if (!segments->empty()) {
    const SegmentFile& tail = segments->back();
    FILE* f = std::fopen(tail.path.c_str(), "ab");
    if (f == nullptr) {
      return Status::Internal(
          StrFormat("cannot reopen WAL segment '%s'", tail.path.c_str()));
    }
    std::fseek(f, 0, SEEK_END);
    wal->file_ = f;
    wal->file_path_ = tail.path;
    wal->file_bytes_ = std::ftell(f);
    if (wal->file_bytes_ < static_cast<long>(kHeaderBytes)) {
      // Fully-truncated torn segment: rewrite its header in place.
      std::fclose(f);
      wal->file_ = nullptr;
      std::remove(tail.path.c_str());
      --wal->segments_;
      HSGD_RETURN_IF_ERROR(wal->RollSegment(wal->last_seq_ + 1));
    }
  } else {
    HSGD_RETURN_IF_ERROR(wal->RollSegment(wal->last_seq_ + 1));
  }
  obs::Set(wal->m_segments_, static_cast<double>(wal->segments_));
  return wal;
}

Wal::~Wal() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status Wal::RollSegment(uint64_t first_seq) {
  if (file_ != nullptr) {
    // Never abandon buffered bytes of a sealed segment.
    std::fflush(file_);
    fsync(fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path = options_.dir + "/" + SegmentName(first_seq);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot create WAL segment '%s'", path.c_str()));
  }
  uint64_t magic = kWalMagic;
  uint32_t version = kWalVersion;
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&version, sizeof(version), 1, f) == 1 &&
            std::fwrite(&first_seq, sizeof(first_seq), 1, f) == 1;
  if (!ok) {
    std::fclose(f);
    std::remove(path.c_str());
    return Status::Internal(
        StrFormat("cannot write WAL segment header '%s'", path.c_str()));
  }
  file_ = f;
  file_path_ = path;
  file_bytes_ = static_cast<int64_t>(kHeaderBytes);
  ++segments_;
  obs::Set(m_segments_, static_cast<double>(segments_));
  return Status::Ok();
}

StatusOr<uint64_t> Wal::Append(const std::vector<io::RawRating>& batch) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "WAL poisoned by an earlier write failure; reopen to recover");
  }
  if (io_fault_hook_ && io_fault_hook_()) {
    // Injected fault: fails BEFORE any byte lands, so it is retryable
    // without poisoning — exactly the shape of a transient EIO.
    obs::Increment(m_append_failures_);
    return Status::Internal("injected WAL IO error");
  }
  if (file_bytes_ >= options_.segment_bytes) {
    HSGD_RETURN_IF_ERROR(RollSegment(last_seq_ + 1));
  }

  const uint64_t seq = last_seq_ + 1;
  const uint32_t count = static_cast<uint32_t>(batch.size());
  const uint32_t len = static_cast<uint32_t>(
      kPayloadFixed + static_cast<size_t>(count) * kRatingBytes);
  std::vector<unsigned char> buf;
  buf.resize(2 * sizeof(uint32_t) + len);
  unsigned char* p = buf.data() + 2 * sizeof(uint32_t);
  std::memcpy(p, &seq, sizeof(seq));
  std::memcpy(p + 8, &count, sizeof(count));
  unsigned char* q = p + kPayloadFixed;
  for (const io::RawRating& rec : batch) {
    std::memcpy(q, &rec.user, sizeof(int64_t));
    std::memcpy(q + 8, &rec.item, sizeof(int64_t));
    std::memcpy(q + 16, &rec.rating, sizeof(float));
    q += kRatingBytes;
  }
  const uint32_t crc = WalCrc32(p, len);
  std::memcpy(buf.data(), &len, sizeof(len));
  std::memcpy(buf.data() + sizeof(len), &crc, sizeof(crc));

  size_t to_write = buf.size();
  if (g_wal_write_failpoint >= 0 &&
      g_wal_write_failpoint < static_cast<int64_t>(to_write)) {
    // Short write at the failpoint: part of the record lands on disk,
    // then the device reports no space. The torn tail is REAL — flushed
    // so replay sees exactly what a crash would leave.
    const size_t partial = static_cast<size_t>(g_wal_write_failpoint);
    if (partial > 0) std::fwrite(buf.data(), 1, partial, file_);
    std::fflush(file_);
    poisoned_ = true;
    obs::Increment(m_append_failures_);
    return Status::Internal(StrFormat(
        "WAL short write on '%s' (failpoint)", file_path_.c_str()));
  }
  if (g_wal_write_failpoint >= 0) {
    g_wal_write_failpoint -= static_cast<int64_t>(to_write);
  }
  if (std::fwrite(buf.data(), 1, to_write, file_) != to_write) {
    std::fflush(file_);
    poisoned_ = true;
    obs::Increment(m_append_failures_);
    return Status::Internal(
        StrFormat("WAL write failed on '%s'", file_path_.c_str()));
  }
  file_bytes_ += static_cast<int64_t>(to_write);
  last_seq_ = seq;
  ++appends_since_sync_;
  if (options_.fsync_every > 0 &&
      appends_since_sync_ >= options_.fsync_every) {
    HSGD_RETURN_IF_ERROR(Sync());
  }
  obs::Increment(m_appends_);
  obs::Add(m_bytes_, static_cast<int64_t>(to_write));
  obs::Set(m_last_seq_, static_cast<double>(last_seq_));
  return seq;
}

Status Wal::Sync() {
  if (file_ == nullptr) return Status::Ok();
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    poisoned_ = true;
    return Status::Internal(
        StrFormat("WAL fsync failed on '%s'", file_path_.c_str()));
  }
  appends_since_sync_ = 0;
  obs::Increment(m_syncs_);
  return Status::Ok();
}

Status Wal::TruncateBefore(uint64_t seq) {
  auto segments = ListSegments(options_.dir);
  if (!segments.ok()) return segments.status();
  for (size_t i = 0; i + 1 < segments->size(); ++i) {
    // Segment i's records all precede segment i+1's first_seq; it is
    // disposable exactly when that whole range is below `seq`.
    const SegmentFile& segment = (*segments)[i];
    if ((*segments)[i + 1].first_seq > seq) break;
    if (segment.path == file_path_) break;
    if (std::remove(segment.path.c_str()) != 0) {
      return Status::Internal(StrFormat(
          "cannot remove WAL segment '%s'", segment.path.c_str()));
    }
    --segments_;
  }
  obs::Set(m_segments_, static_cast<double>(segments_));
  return Status::Ok();
}

}  // namespace hsgd::stream
