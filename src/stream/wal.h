// Segment-based write-ahead log for streamed ratings.
//
// The online path's durability story: `OnlineTrainer::Ingest` appends the
// raw batch here BEFORE resolving ids or touching the session, so a crash
// at any later point loses nothing — restart replays the log. Checkpoints
// record the WAL high-water mark actually applied to the session
// (core/checkpoint.h v5), and recovery replays records <= mark to rebuild
// the grown dataset/id maps and re-drives records > mark through training.
//
// On-disk format (native endianness, like checkpoints — a
// resume-on-the-same-machine facility, not interchange):
//
//   segment file  wal-<first_seq:016x>.log
//     header      u64 magic, u32 version, u64 first_seq
//     record*     u32 payload_len, u32 crc32(payload), payload
//   payload       u64 seq, u32 count, count x (i64 user, i64 item,
//                 f32 rating)
//
// One record per ingest BATCH, not per rating: recovery must reproduce
// the exact pre-crash Ingest/TrainDirty cadence for bit-identical
// factors, and the batch boundary is part of that cadence. Sequence
// numbers are assigned per record, contiguous and ascending across
// segments.
//
// Torn-tail semantics: a crash mid-append leaves a partial or
// CRC-corrupt record at the END of the LAST segment. Replay detects it,
// truncates the file back to the last intact record, and reports the
// dropped bytes — that record was never acknowledged, so dropping it is
// correct. Corruption anywhere else (mid-file, or in a non-final
// segment) is not explainable by a crash and fails loudly with Internal
// instead of being silently discarded.
//
// Appends fsync every `fsync_every` records (1 = every append, the
// durability default; 0 = leave flushing to the OS). A failed append
// poisons the handle — the file may hold a torn tail, and the only safe
// continuation is to reopen (which truncates it) — except for failures
// injected via the IO fault hook, which fire BEFORE any byte is written
// and are therefore cleanly retryable.

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/loader.h"
#include "util/status.h"

namespace hsgd::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Gauge;
}  // namespace hsgd::obs

namespace hsgd::stream {

struct WalOptions {
  /// Directory holding the segment files (created if missing).
  std::string dir;
  /// Roll to a fresh segment once the current one exceeds this size.
  int64_t segment_bytes = 4 << 20;
  /// fsync after every N successful appends (1 = each append; 0 = never).
  int fsync_every = 1;
};

/// One logged ingest batch, as replay returns it.
struct WalRecord {
  uint64_t seq = 0;
  std::vector<io::RawRating> batch;
};

struct WalReplayResult {
  /// Every intact record, ascending contiguous seqs.
  std::vector<WalRecord> records;
  /// Highest intact seq (0 = empty log).
  uint64_t last_seq = 0;
  /// Bytes of torn tail truncated off the final segment (0 = clean).
  int64_t truncated_bytes = 0;
  int segments = 0;
};

class Wal {
 public:
  /// Open (or create) the log in `options.dir`, scan existing segments,
  /// truncate any torn tail, and position for appending after the
  /// highest intact record. `metrics` (borrowed, may be null) receives
  /// the stream.wal.* instruments.
  static StatusOr<std::unique_ptr<Wal>> Open(
      const WalOptions& options, obs::MetricsRegistry* metrics = nullptr);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Durably log one ingest batch; returns its sequence number. Internal
  /// on IO failure — injected-hook failures are retryable, real short
  /// writes poison the handle (see file comment). Empty batches are
  /// logged too (they still consume a seq, keeping recovery's cadence
  /// replay exact).
  StatusOr<uint64_t> Append(const std::vector<io::RawRating>& batch);

  /// Force an fsync of the current segment regardless of fsync_every.
  Status Sync();

  /// Highest sequence number appended or recovered (0 = empty).
  uint64_t last_seq() const { return last_seq_; }
  /// True once a real (non-injected) write failure poisoned the handle.
  bool poisoned() const { return poisoned_; }

  /// Garbage-collect whole segments whose every record has seq < `seq`.
  /// Segment-granular: records >= seq are never removed, some < seq may
  /// survive. The open segment is never deleted.
  Status TruncateBefore(uint64_t seq);

  /// Scan `dir` without opening for append: validates headers, CRCs and
  /// seq contiguity, truncates a torn tail on the final segment (the
  /// file IS modified), and returns every intact record. NotFound when
  /// the directory does not exist; an empty directory is an empty log.
  static StatusOr<WalReplayResult> Replay(const std::string& dir);

  /// Chaos hook: when set and returning true, the next Append fails with
  /// Internal BEFORE writing any byte — a clean, retryable injected IO
  /// error (ServeFaultInjector::ConsumeWalFault is the intended source).
  /// Not thread-safe against concurrent Append; install before traffic.
  void SetIoFaultHook(std::function<bool()> hook) {
    io_fault_hook_ = std::move(hook);
  }

 private:
  Wal() = default;

  /// Close the current segment and start a new one whose header claims
  /// `first_seq`.
  Status RollSegment(uint64_t first_seq);

  WalOptions options_;
  FILE* file_ = nullptr;
  std::string file_path_;
  int64_t file_bytes_ = 0;
  uint64_t last_seq_ = 0;
  int appends_since_sync_ = 0;
  bool poisoned_ = false;
  std::function<bool()> io_fault_hook_;

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_append_failures_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_syncs_ = nullptr;
  obs::Gauge* m_last_seq_ = nullptr;
  obs::Gauge* m_segments_ = nullptr;
  int segments_ = 0;
};

/// Test-only failpoint simulating a short write / ENOSPC, byte-counted
/// like checkpoint.h's: subsequent Append calls fail once they have
/// written `bytes` further bytes (part of the record lands on disk — a
/// genuinely torn tail Replay must truncate). Negative clears it.
/// Process-global and not thread-safe; tests only.
void SetWalWriteFailpoint(int64_t bytes);

/// CRC32 (IEEE, reflected) over `bytes` — exposed for tests that
/// hand-corrupt records.
uint32_t WalCrc32(const void* data, size_t bytes);

}  // namespace hsgd::stream
