// Cache-line-aligned float allocation for the factor matrices. The SIMD
// kernels rely on rows starting at 64-byte boundaries (no split-line
// loads) and on the allocation being zero-filled — the layout's padding
// lanes must read 0.0f and the SGD update preserves zeros, so vector
// loops may sweep whole padded rows without masking.

#pragma once

#include <cstdlib>
#include <cstring>
#include <memory>

namespace hsgd {

struct AlignedFreeDeleter {
  void operator()(float* p) const noexcept { std::free(p); }
};

using AlignedFloatPtr = std::unique_ptr<float[], AlignedFreeDeleter>;

/// `count` floats, 64-byte aligned, zero-filled. Never returns null —
/// allocation failure aborts (matching operator new's default stance).
inline AlignedFloatPtr AllocateAlignedFloats(size_t count) {
  constexpr size_t kAlignment = 64;
  // aligned_alloc requires a size that is a multiple of the alignment.
  size_t bytes = count * sizeof(float);
  bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  if (bytes == 0) bytes = kAlignment;
  float* p = static_cast<float*>(std::aligned_alloc(kAlignment, bytes));
  if (p == nullptr) std::abort();
  std::memset(p, 0, bytes);
  return AlignedFloatPtr(p);
}

}  // namespace hsgd
