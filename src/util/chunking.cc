#include "util/chunking.h"

#include <algorithm>
#include <cstddef>

namespace hsgd {

std::vector<LineChunk> SplitAtLineBoundaries(const std::string& text,
                                             size_t offset,
                                             int max_chunks,
                                             int64_t start_line) {
  std::vector<LineChunk> chunks;
  if (offset >= text.size()) return chunks;
  if (max_chunks < 1) max_chunks = 1;
  const size_t total = text.size() - offset;
  const size_t target = std::max<size_t>(1, total / static_cast<size_t>(max_chunks));

  size_t begin = offset;
  int64_t line = start_line;
  while (begin < text.size()) {
    size_t end = begin + target;
    if (end >= text.size() ||
        static_cast<int>(chunks.size()) + 1 == max_chunks) {
      end = text.size();
    } else {
      // Extend to the next newline so no line straddles two chunks.
      size_t nl = text.find('\n', end);
      end = nl == std::string::npos ? text.size() : nl + 1;
    }
    LineChunk chunk;
    chunk.begin = begin;
    chunk.end = end;
    chunk.first_line = line;
    chunks.push_back(chunk);
    line += static_cast<int64_t>(
        std::count(text.begin() + static_cast<std::ptrdiff_t>(begin),
                   text.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
    begin = end;
  }
  return chunks;
}

}  // namespace hsgd
