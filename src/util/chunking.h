// Line-boundary chunking for parallel text parsing: split a text buffer
// into at most `max_chunks` byte ranges that each start at a line start
// and end just past a newline (except possibly the last), with the
// 1-based line number of each chunk's first line precomputed so shard
// parsers can report exact line numbers without global coordination.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsgd {

struct LineChunk {
  size_t begin = 0;        // byte offset of the chunk's first line start
  size_t end = 0;          // one past the chunk's last byte
  int64_t first_line = 1;  // 1-based line number of the line at `begin`
};

/// Split `text[offset..)` into at most `max_chunks` contiguous chunks cut
/// only at line boundaries. Chunks are non-empty, cover the range exactly,
/// and are returned in file order, so shard-parallel parsing with an
/// in-order merge is byte-for-byte equivalent to a serial scan.
/// `first_line` numbers start at `start_line` (the line number of the
/// byte at `offset`; pass 2 when a header line was stripped).
std::vector<LineChunk> SplitAtLineBoundaries(const std::string& text,
                                             size_t offset,
                                             int max_chunks,
                                             int64_t start_line = 1);

}  // namespace hsgd
