#include "util/cli.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"

namespace hsgd {

Status CliFlags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 2 || arg[0] != '-') {
      return Status::InvalidArgument("unexpected positional argument '" +
                                     arg + "'");
    }
    size_t name_start = (arg.size() > 2 && arg[1] == '-') ? 2 : 1;
    std::string body = arg.substr(name_start);
    if (body.empty()) {
      return Status::InvalidArgument("empty flag name in '" + arg + "'");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("empty flag name in '" + arg + "'");
      }
      values_[name] = body.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean flag
    }
  }
  return Status::Ok();
}

Status CliFlags::Parse(int argc, char** argv,
                       const std::vector<FlagSpec>& known) {
  HSGD_RETURN_IF_ERROR(Parse(argc, argv));
  for (const auto& [name, value] : values_) {
    (void)value;
    if (name == "help") continue;
    bool found = false;
    for (const FlagSpec& spec : known) {
      if (spec.name == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag --" + name +
                                     "; run with --help to list the "
                                     "accepted flags");
    }
  }
  return Status::Ok();
}

std::string FormatFlagTable(const std::vector<FlagSpec>& specs) {
  size_t widest = std::string("--help").size();
  std::vector<std::string> left;
  left.reserve(specs.size());
  for (const FlagSpec& spec : specs) {
    std::string entry = "--" + spec.name;
    if (!spec.value_hint.empty()) entry += "=" + spec.value_hint;
    widest = std::max(widest, entry.size());
    left.push_back(std::move(entry));
  }
  std::string out = "Flags:\n";
  for (size_t i = 0; i < specs.size(); ++i) {
    out += "  " + left[i] +
           std::string(widest - left[i].size() + 2, ' ') + specs[i].help +
           "\n";
  }
  out += "  --help" + std::string(widest - 6 + 2, ' ') +
         "print this flag table and exit\n";
  return out;
}

bool CliFlags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::GetString(const std::string& name,
                                const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t CliFlags::GetInt(const std::string& name,
                         int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || (end && *end != '\0')) {
    HSGD_LOG(Warning) << "flag --" << name << "=" << it->second
                      << " is not an integer; using default "
                      << default_value;
    return default_value;
  }
  return static_cast<int64_t>(v);
}

double CliFlags::GetDouble(const std::string& name,
                           double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || (end && *end != '\0')) {
    HSGD_LOG(Warning) << "flag --" << name << "=" << it->second
                      << " is not a number; using default " << default_value;
    return default_value;
  }
  return v;
}

bool CliFlags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::string v = AsciiLower(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return default_value;
}

}  // namespace hsgd
