// Tiny --flag=value command line parser.
//
// Accepted forms: --name=value, --name value, --name (boolean true), and
// the single-dash spellings of the same. Positional arguments are
// rejected. Two parsing modes:
//
//   Parse(argc, argv)         permissive — any flag name is accepted;
//                             callers query by name with a default.
//   Parse(argc, argv, known)  strict — a flag not in `known` is an error
//                             naming the offending flag (so a typo'd
//                             --epoch=5 fails loudly instead of silently
//                             running the default budget). "--help" is
//                             always accepted in strict mode.
//
// FormatFlagTable renders the `known` registry as the --help text.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace hsgd {

/// One entry of a strict-mode flag registry: the flag's name (without
/// dashes), a short value placeholder for the help text (e.g. "<mult>";
/// empty for bare booleans), and a one-line description.
struct FlagSpec {
  std::string name;
  std::string value_hint;
  std::string help;
};

/// Render the registry as an aligned help table, one flag per line.
std::string FormatFlagTable(const std::vector<FlagSpec>& specs);

class CliFlags {
 public:
  /// Permissive parse: unknown flags are stored like any other.
  Status Parse(int argc, char** argv);
  /// Strict parse: any flag whose name is not in `known` (and is not
  /// "help") is an InvalidArgument naming that flag.
  Status Parse(int argc, char** argv, const std::vector<FlagSpec>& known);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hsgd
