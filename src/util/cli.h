// Tiny --flag=value command line parser.
//
// Accepted forms: --name=value, --name value, --name (boolean true), and
// the single-dash spellings of the same. Unknown flags are fine — callers
// query by name with a default. Positional arguments are rejected.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace hsgd {

class CliFlags {
 public:
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hsgd
