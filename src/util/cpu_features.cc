#include "util/cpu_features.h"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace hsgd {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XCR0 via xgetbv, encoded as raw bytes so the TU needs no -mxsave.
uint64_t ReadXcr0() {
  unsigned int eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  f.avx = (ecx & (1u << 28)) != 0;
  f.fma = (ecx & (1u << 12)) != 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
  }
  if (osxsave) {
    const uint64_t xcr0 = ReadXcr0();
    // SSE (bit 1) + YMM (bit 2) state saved.
    f.os_ymm = (xcr0 & 0x6) == 0x6;
    // Additionally opmask (5) + ZMM low (6) + ZMM high (7).
    f.os_zmm = (xcr0 & 0xE6) == 0xE6;
  }
  return f;
}

#else

CpuFeatures Detect() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

}  // namespace hsgd
