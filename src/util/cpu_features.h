// Runtime x86 feature detection for the kernel dispatcher (cpuid +
// xgetbv). The "usable" flags below fold three conditions together: the
// CPU advertises the instruction set, the OS saves the corresponding
// register state across context switches (XCR0), and — for FMA — the
// companion extension the kernels assume is also present. On non-x86
// targets every flag is false and the dispatcher falls back to scalar.

#pragma once

namespace hsgd {

struct CpuFeatures {
  // Raw cpuid bits.
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  // OS has enabled saving of the YMM / ZMM+opmask register state.
  bool os_ymm = false;
  bool os_zmm = false;

  /// AVX2 kernels are runnable: AVX2 + FMA + OS YMM state.
  bool avx2_usable() const { return avx2 && fma && os_ymm; }
  /// AVX-512 kernels are runnable: AVX-512F + FMA + OS ZMM state.
  bool avx512_usable() const { return avx512f && fma && os_zmm; }
};

/// Detected once on first call, then cached (detection is a handful of
/// cpuid leaves — cheap, but callers sit on hot dispatch paths).
const CpuFeatures& GetCpuFeatures();

}  // namespace hsgd
