#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace hsgd {
namespace internal {

namespace {

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo: return "I";
    case LogSeverity::kWarning: return "W";
    case LogSeverity::kError: return "E";
    case LogSeverity::kFatal: return "F";
  }
  return "?";
}

LogSeverity ParseLogLevel(const char* value) {
  if (value == nullptr || *value == '\0') return LogSeverity::kInfo;
  if (value[0] >= '0' && value[0] <= '3' && value[1] == '\0') {
    return static_cast<LogSeverity>(value[0] - '0');
  }
  // Case-insensitive prefix match, so "warn" and "WARNING" both work.
  const char c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(value[0])));
  switch (c) {
    case 'i': return LogSeverity::kInfo;
    case 'w': return LogSeverity::kWarning;
    case 'e': return LogSeverity::kError;
    case 'f': return LogSeverity::kFatal;
    default:
      std::fprintf(stderr,
                   "[W logging.cc] unrecognized HSGD_LOG_LEVEL '%s'; "
                   "using info\n",
                   value);
      return LogSeverity::kInfo;
  }
}

/// Small sequential per-thread id (t0 = first logging thread), far more
/// readable in interleaved output than a pthread handle.
int ThreadLogId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

LogSeverity MinLogSeverity() {
  static const LogSeverity level =
      ParseLogLevel(std::getenv("HSGD_LOG_LEVEL"));
  return level;
}

bool LogEnabled(LogSeverity severity) {
  return severity >= MinLogSeverity() || severity == LogSeverity::kFatal;
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now.time_since_epoch())
          .count() %
      1000000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &secs);
#else
  localtime_r(&secs, &tm_buf);
#endif
  char prefix[80];
  std::snprintf(prefix, sizeof(prefix),
                "[%s %02d%02d %02d:%02d:%02d.%06d t%d ",
                SeverityTag(severity), tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(micros), ThreadLogId());
  stream_ << prefix << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str() << std::flush;
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace hsgd
