#include "util/logging.h"

#include <cstdlib>

namespace hsgd {
namespace internal {

namespace {
const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo: return "I";
    case LogSeverity::kWarning: return "W";
    case LogSeverity::kError: return "E";
    case LogSeverity::kFatal: return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str() << std::flush;
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace hsgd
