// Streaming check macros and a tiny leveled logger.
//
//   HSGD_CHECK(cond) << "extra context";        // aborts when cond is false
//   HSGD_CHECK_OK(status_or_statusor) << "..."; // aborts when !ok()
//   HSGD_LOG(Info) << "message";
//
// The emitted severity floor is runtime-selectable: set HSGD_LOG_LEVEL to
// info | warning | error | fatal (or 0-3) before launch; default info.
// Suppressed HSGD_LOG statements never construct the message (the stream
// expression is not evaluated). Fatal cannot be suppressed, and every
// line carries a timestamp + thread-id prefix:
//
//   [W 0808 14:03:22.123456 t0 session.cc:585] gpu 0 lost at ...
//
// Fatal messages are flushed to stderr before abort().

#pragma once

#include <iostream>
#include <sstream>

#include "util/status.h"

namespace hsgd {
namespace internal {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// The floor parsed from HSGD_LOG_LEVEL, once, on first log statement.
LogSeverity MinLogSeverity();

/// Whether a HSGD_LOG(severity) statement emits. Fatal always does.
bool LogEnabled(LogSeverity severity);

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

// operator& has lower precedence than operator<< and higher than ?:, which
// lets the CHECK macros swallow the streamed expression in the pass case.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

// Statement-shaped early-out: when the severity is below the runtime
// floor the loop body — and with it the entire streamed expression —
// never runs. The body executes at most once either way.
#define HSGD_LOG(severity)                                            \
  for (bool _hsgd_log_on = ::hsgd::internal::LogEnabled(              \
           ::hsgd::internal::LogSeverity::k##severity);               \
       _hsgd_log_on; _hsgd_log_on = false)                            \
  ::hsgd::internal::LogMessage(                                       \
      __FILE__, __LINE__, ::hsgd::internal::LogSeverity::k##severity) \
      .stream()

#define HSGD_CHECK(cond)                                            \
  (cond) ? (void)0                                                  \
         : ::hsgd::internal::LogMessageVoidify() &                  \
               ::hsgd::internal::LogMessage(                        \
                   __FILE__, __LINE__,                              \
                   ::hsgd::internal::LogSeverity::kFatal)           \
                       .stream()                                    \
                   << "Check failed: " #cond " "

// Statement-shaped but still streamable: the loop body runs at most once
// because the fatal LogMessage aborts in its destructor.
#define HSGD_CHECK_OK(expr)                                              \
  for (const ::hsgd::Status _hsgd_chk_st =                               \
           ::hsgd::internal::GetStatus((expr));                          \
       !_hsgd_chk_st.ok();)                                              \
  ::hsgd::internal::LogMessage(__FILE__, __LINE__,                       \
                               ::hsgd::internal::LogSeverity::kFatal)    \
          .stream()                                                      \
      << "Status not OK: " << _hsgd_chk_st.ToString() << " "

}  // namespace hsgd
