#include "util/parallel_reduce.h"

#include <algorithm>
#include <vector>

#include "util/thread_pool.h"

namespace hsgd {

double ParallelReduce(ThreadPool* pool, int64_t n, int64_t grain,
                      const std::function<double(int64_t, int64_t)>& fn) {
  if (n <= 0) return 0.0;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (n + grain - 1) / grain;
  std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
  auto run_chunk = [&](int64_t lo, int64_t hi) {
    partial[static_cast<size_t>(lo / grain)] = fn(lo, hi);
  };
  if (pool != nullptr && pool->size() > 0) {
    pool->ParallelFor(0, n, grain, run_chunk);
  } else {
    for (int64_t lo = 0; lo < n; lo += grain) {
      run_chunk(lo, std::min(lo + grain, n));
    }
  }
  // Fixed-order reduction => identical result for any pool size.
  double sum = 0.0;
  for (double x : partial) sum += x;
  return sum;
}

}  // namespace hsgd
