// Deterministic parallel sum over an index range: [0, n) is split into
// fixed chunks of `grain` items, `fn(lo, hi)` produces each chunk's
// partial, and the partials are added in chunk order — so the result is
// bit-identical for any pool size (including no pool at all). This is the
// reduction shape the SGD/RMSE paths need for reproducible traces; it was
// previously hand-rolled per call site in core/model.cc.

#pragma once

#include <cstdint>
#include <functional>

namespace hsgd {

class ThreadPool;

/// Sum of fn(lo, hi) over [0, n) chunked by `grain` (>= 1). `pool` may be
/// null or empty for serial evaluation; the chunk decomposition — and
/// therefore the reduction order — does not depend on it.
double ParallelReduce(ThreadPool* pool, int64_t n, int64_t grain,
                      const std::function<double(int64_t, int64_t)>& fn);

}  // namespace hsgd
