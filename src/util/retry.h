// Bounded retry with exponential backoff and jitter, for real-world IO
// (checkpoint writes) — not simulated time.

#pragma once

#include <chrono>
#include <thread>

#include "util/rng.h"
#include "util/status.h"

namespace hsgd {

struct RetryOptions {
  /// Total tries, including the first. 1 disables retrying.
  int max_attempts = 4;
  /// Wall-clock seconds slept before the second attempt.
  double initial_backoff = 0.005;
  double multiplier = 2.0;
  /// Each sleep is scaled by a uniform factor in [1-jitter, 1+jitter]
  /// drawn from `rng` (nothing is drawn when every attempt succeeds, so
  /// a fault-free run's RNG stream is untouched).
  double jitter = 0.2;
  double max_backoff = 0.25;
};

/// Runs `fn` (returning Status) until it succeeds or the attempt budget
/// is exhausted; returns the final Status. `on_retry(attempt, status)`
/// is invoked before each sleep — pass a no-op lambda if uninterested.
template <typename Fn, typename OnRetry>
Status RetryWithBackoff(const RetryOptions& options, Rng* rng, Fn&& fn,
                        OnRetry&& on_retry) {
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  double backoff = options.initial_backoff;
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = fn();
    if (status.ok()) return status;
    if (attempt == attempts) break;
    on_retry(attempt, status);
    double sleep_s = backoff;
    if (rng != nullptr && options.jitter > 0.0) {
      sleep_s *= 1.0 + options.jitter * (2.0 * rng->NextDouble() - 1.0);
    }
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_s));
    }
    backoff *= options.multiplier;
    if (backoff > options.max_backoff) backoff = options.max_backoff;
  }
  return status;
}

template <typename Fn>
Status RetryWithBackoff(const RetryOptions& options, Rng* rng, Fn&& fn) {
  return RetryWithBackoff(options, rng, static_cast<Fn&&>(fn),
                          [](int, const Status&) {});
}

/// Deadline-aware variant: retries until `fn` succeeds, the attempt
/// budget runs out, OR `budget_s` wall-clock seconds have elapsed since
/// entry — whichever comes first. The absolute budget is what callers on
/// a latency path (WAL appends, autosaves racing a serving deadline)
/// need: max-attempts alone can oversleep arbitrarily under backoff
/// growth. Each sleep is clamped to the remaining budget; a retry whose
/// sleep would land past the deadline still gets its final attempt at
/// the boundary (the deadline bounds waiting, not work). `budget_s <= 0`
/// allows the first attempt only. Returns the last failing Status on
/// exhaustion.
template <typename Fn, typename OnRetry>
Status RetryWithBackoffUntil(const RetryOptions& options, Rng* rng,
                             double budget_s, Fn&& fn, OnRetry&& on_retry) {
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(budget_s);
  double backoff = options.initial_backoff;
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = fn();
    if (status.ok()) return status;
    if (attempt == attempts) break;
    const double remaining =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0.0) break;
    on_retry(attempt, status);
    double sleep_s = backoff;
    if (rng != nullptr && options.jitter > 0.0) {
      sleep_s *= 1.0 + options.jitter * (2.0 * rng->NextDouble() - 1.0);
    }
    if (sleep_s > remaining) sleep_s = remaining;
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
    backoff *= options.multiplier;
    if (backoff > options.max_backoff) backoff = options.max_backoff;
  }
  return status;
}

template <typename Fn>
Status RetryWithBackoffUntil(const RetryOptions& options, Rng* rng,
                             double budget_s, Fn&& fn) {
  return RetryWithBackoffUntil(options, rng, budget_s,
                               static_cast<Fn&&>(fn),
                               [](int, const Status&) {});
}

}  // namespace hsgd
