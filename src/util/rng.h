// Deterministic, platform-independent RNG (splitmix64-seeded
// xoshiro256**). The library never uses std::random distributions — their
// output is implementation-defined and would break cross-platform
// reproducibility of Trainer::Train.

#pragma once

#include <cmath>
#include <cstdint>

namespace hsgd {

/// Complete generator state, exposed so long-running components (the
/// session checkpointer) can persist and restore an Rng bit-exactly.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_spare = false;
  double spare = 0.0;
};

class Rng {
 public:
  /// `stream` decorrelates generators sharing one user seed (model init,
  /// shuffles, scheduler, device variability each get their own stream).
  explicit Rng(uint64_t seed, uint64_t stream = 0) {
    uint64_t x = seed * 0x9E3779B97F4A7C15ull + (stream + 1) * 0xBF58476D1CE4E5B9ull;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(&x);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, n); n must be > 0.
  int64_t UniformInt(int64_t n) {
    // Modulo bias is negligible for n << 2^64 (our use cases).
    return static_cast<int64_t>(NextU64() % static_cast<uint64_t>(n));
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    u2 = NextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    double two_pi_u2 = 2.0 * 3.14159265358979323846 * u2;
    spare_ = mag * std::sin(two_pi_u2);
    has_spare_ = true;
    return mag * std::cos(two_pi_u2);
  }

  RngState SaveState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.has_spare = has_spare_;
    st.spare = spare_;
    return st;
  }

  void RestoreState(const RngState& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    has_spare_ = st.has_spare;
    spare_ = st.spare;
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace hsgd
