// Minimal Status / StatusOr error-handling vocabulary used across the
// hsgd library. Modeled on absl::Status but dependency-free.

#pragma once

#include <cassert>
#include <string>
#include <utility>

namespace hsgd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kInternal = 3,
  kFailedPrecondition = 4,
  /// The serving layer's typed load-shedding outcomes: a request held
  /// past its latency budget vs one rejected before it ever queued.
  kDeadlineExceeded = 5,
  kUnavailable = 6,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case StatusCode::kNotFound: name = "NOT_FOUND"; break;
      case StatusCode::kInternal: name = "INTERNAL"; break;
      case StatusCode::kFailedPrecondition: name = "FAILED_PRECONDITION"; break;
      case StatusCode::kDeadlineExceeded: name = "DEADLINE_EXCEEDED"; break;
      case StatusCode::kUnavailable: name = "UNAVAILABLE"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error result. Accessing the value of a non-ok StatusOr is a
/// programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(const Status& status) : status_(status) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(Status&& status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), has_value_(true), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(has_value_);
    return value_;
  }
  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  bool has_value_ = false;
  T value_{};
};

namespace internal {
inline const Status& GetStatus(const Status& s) { return s; }
template <typename T>
const Status& GetStatus(const StatusOr<T>& s) {
  return s.status();
}
}  // namespace internal

#define HSGD_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    const ::hsgd::Status _hsgd_status =                   \
        ::hsgd::internal::GetStatus((expr));              \
    if (!_hsgd_status.ok()) return _hsgd_status;          \
  } while (0)

}  // namespace hsgd
