// Wall-clock stopwatch (real time, as opposed to SimTime which is the
// simulator's virtual clock).

#pragma once

#include <chrono>

namespace hsgd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hsgd
