#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hsgd {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(delim, start);
    if (end == std::string::npos) end = s.size();
    size_t lo = start, hi = end;
    while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1])))
      --hi;
    if (hi > lo) out.push_back(s.substr(lo, hi - lo));
    start = end + 1;
  }
  return out;
}

std::string WithThousandsSep(int64_t value) {
  bool negative = value < 0;
  // Avoid overflow on INT64_MIN by formatting digits as unsigned.
  uint64_t v = negative ? 0u - static_cast<uint64_t>(value)
                        : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string HumanBytes(int64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (v == static_cast<int64_t>(v)) {
    return StrFormat("%lld%s", static_cast<long long>(v), kUnits[unit]);
  }
  return StrFormat("%.1f%s", v, kUnits[unit]);
}

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace hsgd
