// printf-style formatting and small string helpers used by the benches
// and the library's human-readable output.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsgd {

/// printf into a std::string.
std::string StrFormat(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Split on a single-character delimiter; empty tokens are dropped and
/// surrounding whitespace is trimmed ("a, b," -> {"a", "b"}).
std::vector<std::string> Split(const std::string& s, char delim);

/// "1234567" -> "1,234,567" (handles negatives).
std::string WithThousandsSep(int64_t value);

/// "65536" -> "64KB"; powers of 1024, one decimal when inexact.
std::string HumanBytes(int64_t bytes);

/// ASCII lower-casing (locale independent).
std::string AsciiLower(const std::string& s);

}  // namespace hsgd
