#include "util/thread_pool.h"

#include <atomic>

namespace hsgd {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  if (num_chunks == 1 || threads_.empty()) {
    for (int64_t lo = begin; lo < end; lo += grain) {
      fn(lo, lo + grain < end ? lo + grain : end);
    }
    return;
  }

  // Shared work-claiming state. Everything a helper task touches lives in
  // this block (or is copied into the lambda) because a losing helper can
  // still be finishing its no-op loop iteration after ParallelFor returns.
  struct ForState {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();

  auto run_chunks = [state, fn, begin, end, grain, num_chunks] {
    for (;;) {
      int64_t chunk = state->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      int64_t lo = begin + chunk * grain;
      int64_t hi = lo + grain < end ? lo + grain : end;
      fn(lo, hi);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = threads_.size() < static_cast<size_t>(num_chunks - 1)
                       ? threads_.size()
                       : static_cast<size_t>(num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(run_chunks);
  run_chunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
}

}  // namespace hsgd
