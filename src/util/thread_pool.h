// Fixed-size worker pool with a blocking ParallelFor. Used by the real
// (non-simulated) kernels: Hogwild SGD and parallel RMSE evaluation.
//
// ParallelFor chunks [begin, end) by a fixed grain so the work
// decomposition — and therefore any order-sensitive reduction done by the
// caller over chunk results — is independent of the pool size.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hsgd {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueue a task; runs as soon as a worker frees up.
  void Submit(std::function<void()> fn);

  /// Run fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
  /// at most `grain` items; blocks until every chunk completes. The caller
  /// thread participates, so this works even for a pool of size 0.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace hsgd
