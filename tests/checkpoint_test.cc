// Checkpoint durability tests: WriteCheckpoint's atomic temp + rename
// contract under injected short writes (SetCheckpointWriteFailpoint).
// Whatever byte the "device" dies at, the previous checkpoint at the
// destination path must stay byte-identical and readable, and no *.tmp
// litter may survive. Also covers the v4 FaultPolicy config round-trip.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/hsgd.h"
#include "test_main.h"

namespace hsgd {
namespace {

namespace fs = std::filesystem;

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticSpec spec;
  spec.num_rows = 300;
  spec.num_cols = 200;
  spec.train_nnz = 12000;
  spec.test_nnz = 1200;
  spec.params.k = 8;
  spec.params.learning_rate = 0.01f;
  spec.noise_stddev = 0.3;
  auto ds = GenerateSynthetic(spec, seed);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TrainConfig SmallConfig() {
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgd;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = 4;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return cfg;
}

std::string ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_TRUE(f != nullptr);
  if (f == nullptr) return {};
  std::string bytes;
  char buf[1 << 14];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

// A short write at any offset must surface as a failed Status while the
// previous checkpoint stays byte-identical, readable, and tmp-free.
void TestFailpointPreservesPreviousCheckpoint() {
  Dataset ds = SmallDataset();
  auto session = Session::Create(ds, SmallConfig());
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  EXPECT_TRUE((*session)->RunEpoch().ok());

  const std::string path = "checkpoint_test_durable.ckpt";
  const std::string tmp = path + ".tmp";
  EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());
  const std::string baseline = ReadFileBytes(path);
  EXPECT_TRUE(baseline.size() > 8000u);  // failpoints below must hit mid-file

  // Advance the session so a successful overwrite WOULD change the file.
  EXPECT_TRUE((*session)->RunEpoch().ok());

  for (int64_t failpoint : {0, 1, 9, 1000, 8000}) {
    SetCheckpointWriteFailpoint(failpoint);
    const Status overwrite = (*session)->SaveCheckpoint(path);
    SetCheckpointWriteFailpoint(-1);
    EXPECT_FALSE(overwrite.ok());
    if (overwrite.ok()) continue;
    EXPECT_TRUE(overwrite.code() == StatusCode::kInternal);
    // Durability: previous bytes intact, still readable, no tmp litter.
    EXPECT_TRUE(ReadFileBytes(path) == baseline);
    EXPECT_FALSE(fs::exists(tmp));
    auto back = ReadCheckpoint(path);
    EXPECT_TRUE(back.ok());
    if (back.ok()) EXPECT_EQ(back->epochs_run, 1);
    EXPECT_TRUE(Session::Restore(path, ds).ok());
  }

  // Failpoint cleared: the overwrite lands and the file actually moves.
  EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());
  EXPECT_TRUE(ReadFileBytes(path) != baseline);
  EXPECT_FALSE(fs::exists(tmp));
  auto after = ReadCheckpoint(path);
  EXPECT_TRUE(after.ok());
  if (after.ok()) EXPECT_EQ(after->epochs_run, 2);
  auto resumed = Session::Restore(path, ds);
  EXPECT_TRUE(resumed.ok());
  if (resumed.ok()) EXPECT_EQ((*resumed)->epochs_run(), 2);

  std::remove(path.c_str());
}

// Failing the very first write to a fresh path must leave NO file behind
// (neither the destination nor the temp).
void TestFailpointOnFreshPathLeavesNothing() {
  Dataset ds = SmallDataset();
  auto session = Session::Create(ds, SmallConfig());
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  EXPECT_TRUE((*session)->RunEpoch().ok());

  const std::string path = "checkpoint_test_fresh.ckpt";
  std::remove(path.c_str());
  SetCheckpointWriteFailpoint(0);
  EXPECT_FALSE((*session)->SaveCheckpoint(path).ok());
  SetCheckpointWriteFailpoint(-1);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// v4: the FaultPolicy travels with the config, so a restored run keeps
// autosaving (cadence, path, retry envelope, watchdog, policy) the way
// the original did.
void TestFaultPolicyRoundTrip() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig();
  cfg.fault.autosave_every = 3;
  cfg.fault.autosave_path = "checkpoint_test_auto.ckpt";
  cfg.fault.checkpoint_retry.max_attempts = 7;
  cfg.fault.checkpoint_retry.initial_backoff = 0.001;
  cfg.fault.checkpoint_retry.multiplier = 3.0;
  cfg.fault.checkpoint_retry.jitter = 0.5;
  cfg.fault.checkpoint_retry.max_backoff = 0.125;
  cfg.fault.lease_deadline_factor = 5.5;
  cfg.fault.on_device_loss = DegradePolicy::kAbort;

  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  EXPECT_TRUE((*session)->RunEpoch().ok());
  const std::string path = "checkpoint_test_policy.ckpt";
  EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());

  auto ckpt = ReadCheckpoint(path);
  EXPECT_TRUE(ckpt.ok());
  if (ckpt.ok()) {
    const FaultPolicy& fault = ckpt->config.fault;
    EXPECT_EQ(fault.autosave_every, 3);
    EXPECT_TRUE(fault.autosave_path == cfg.fault.autosave_path);
    EXPECT_EQ(fault.checkpoint_retry.max_attempts, 7);
    EXPECT_EQ(fault.checkpoint_retry.initial_backoff, 0.001);
    EXPECT_EQ(fault.checkpoint_retry.multiplier, 3.0);
    EXPECT_EQ(fault.checkpoint_retry.jitter, 0.5);
    EXPECT_EQ(fault.checkpoint_retry.max_backoff, 0.125);
    EXPECT_EQ(fault.lease_deadline_factor, 5.5);
    EXPECT_TRUE(fault.on_device_loss == DegradePolicy::kAbort);
  }
  EXPECT_TRUE(Session::Restore(path, ds).ok());

  // A corrupt policy must be rejected structurally, not trusted: write
  // back a checkpoint whose retry envelope is nonsense.
  if (ckpt.ok()) {
    SessionCheckpoint bad = *ckpt;
    bad.config.fault.checkpoint_retry.max_attempts = -3;
    const std::string tmp = "checkpoint_test_policy_bad.ckpt";
    EXPECT_TRUE(WriteCheckpoint(tmp, bad).ok());
    EXPECT_FALSE(Session::Restore(tmp, ds).ok());
    std::remove(tmp.c_str());
  }
  std::remove(path.c_str());
}

}  // namespace

void RunAllTests() {
  TestFailpointPreservesPreviousCheckpoint();
  TestFailpointOnFreshPathLeavesNothing();
  TestFaultPolicyRoundTrip();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
