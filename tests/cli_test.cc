// CLI parsing tests: strict-mode unknown-flag rejection (the typo'd
// --epoch=5 must fail naming the flag), --help table emission, accepted
// flag spellings, and typed getters — plus validation of the io-layer
// entry points the benches' new --data/--format flags route through.

#include <string>
#include <vector>

#include "io/loader.h"
#include "test_main.h"
#include "util/cli.h"

namespace hsgd {
namespace {

/// argv builder: keeps the strings alive and hands out mutable char*.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    for (std::string& arg : args_) ptrs_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

std::vector<FlagSpec> BenchLikeSpecs() {
  return {
      {"scale", "<mult>", "scale multiplier"},
      {"epochs", "<cap>", "epoch budget"},
      {"data", "<path>", "load real ratings"},
      {"format", "<name>", "rating-dump format"},
      {"verbose", "", "chatty output"},
  };
}

void TestStrictRejectsUnknownFlag() {
  Argv argv({"bench", "--epoch=5"});  // typo'd --epochs
  CliFlags flags;
  Status status = flags.Parse(argv.argc(), argv.argv(), BenchLikeSpecs());
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.message().find("--epoch") != std::string::npos);
  EXPECT_TRUE(status.message().find("--help") != std::string::npos);
}

void TestStrictAcceptsKnownAndHelp() {
  Argv argv({"bench", "--scale=0.5", "--verbose", "--help"});
  CliFlags flags;
  EXPECT_TRUE(
      flags.Parse(argv.argc(), argv.argv(), BenchLikeSpecs()).ok());
  EXPECT_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("help", false));
}

void TestFlagSpellings() {
  // --name=value, --name value, bare boolean, single-dash spellings.
  Argv argv({"bench", "--a=1", "--b", "2", "-c", "-d=x"});
  CliFlags flags;
  EXPECT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(flags.GetInt("a", 0), 1);
  EXPECT_EQ(flags.GetInt("b", 0), 2);
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_EQ(flags.GetString("d", ""), "x");

  // Positional arguments are rejected.
  Argv positional({"bench", "stray"});
  CliFlags rejecting;
  EXPECT_FALSE(rejecting.Parse(positional.argc(), positional.argv()).ok());
}

void TestTypedGetterFallbacks() {
  Argv argv({"bench", "--n=abc", "--x=1.5zz", "--flag=maybe"});
  CliFlags flags;
  EXPECT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  // Unparsable values fall back to the default (with a warning).
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_EQ(flags.GetDouble("x", 2.5), 2.5);
  EXPECT_TRUE(flags.GetBool("flag", true));
  EXPECT_FALSE(flags.GetBool("flag", false));
  // Absent flags use their defaults too.
  EXPECT_EQ(flags.GetInt("missing", -7), -7);
  EXPECT_FALSE(flags.Has("missing"));
}

void TestHelpTableEmission() {
  const std::string table = FormatFlagTable(BenchLikeSpecs());
  // One aligned line per flag, value hints attached, --help appended.
  EXPECT_TRUE(table.find("Flags:") != std::string::npos);
  EXPECT_TRUE(table.find("--scale=<mult>") != std::string::npos);
  EXPECT_TRUE(table.find("--data=<path>") != std::string::npos);
  EXPECT_TRUE(table.find("--verbose") != std::string::npos);
  EXPECT_TRUE(table.find("--help") != std::string::npos);
  EXPECT_TRUE(table.find("print this flag table") != std::string::npos);
  // Bare booleans get no "=<hint>".
  EXPECT_TRUE(table.find("--verbose=") == std::string::npos);
}

void TestDataFlagValidation() {
  // The two --data failure modes the benches surface: a bad format name
  // and a missing file, both as Status (the bench then aborts loudly).
  auto bad_format = io::FormatByName("feather");
  EXPECT_FALSE(bad_format.ok());
  EXPECT_TRUE(bad_format.status().message().find("feather") !=
              std::string::npos);

  auto missing = io::LoadDataset("does_not_exist.dat",
                                 io::DataFormat::kMovieLens);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().code() == StatusCode::kNotFound);
}

}  // namespace

void RunAllTests() {
  TestStrictRejectsUnknownFlag();
  TestStrictAcceptsKnownAndHelp();
  TestFlagSpellings();
  TestTypedGetterFallbacks();
  TestHelpTableEmission();
  TestDataFlagValidation();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
