// Fault-tolerance tests for the scripted fault subsystem: plan parsing,
// the zero-fault bit-identity guarantee (an attached-but-silent injector
// must not perturb a single bit of the run), crash recovery with lease
// revocation and deterministic replay, straggler degradation and the
// wedged-worker watchdog, link faults, checkpoint-retry accounting, and
// the abort / all-dead failure paths.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/hsgd.h"
#include "fault/fault_plan.h"
#include "fault/serve_injector.h"
#include "test_main.h"

namespace hsgd {
namespace {

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticSpec spec;
  spec.num_rows = 600;
  spec.num_cols = 500;
  spec.train_nnz = 40000;
  spec.test_nnz = 4000;
  spec.params.k = 16;
  spec.params.learning_rate = 0.01f;
  spec.noise_stddev = 0.3;
  auto ds = GenerateSynthetic(spec, seed);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TrainConfig SmallConfig(Algorithm algorithm) {
  TrainConfig cfg;
  cfg.algorithm = algorithm;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 2;
  cfg.max_epochs = 4;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return cfg;
}

struct RunResult {
  Status status = Status::Ok();
  Trace trace;
  TrainStats stats;
  FaultStats fault;
  std::vector<float> p, q;
  int epochs_run = 0;
};

/// Run a full session; `plan_text == nullptr` means "never call
/// SetFaultPlan at all" (the subsystem-disabled baseline).
RunResult RunWithPlan(const Dataset& ds, const TrainConfig& cfg,
                      const char* plan_text) {
  RunResult result;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) {
    result.status = session.status();
    return result;
  }
  if (plan_text != nullptr) {
    auto plan = FaultPlan::Parse(plan_text);
    EXPECT_TRUE(plan.ok());
    if (!plan.ok()) {
      result.status = plan.status();
      return result;
    }
    EXPECT_TRUE((*session)->SetFaultPlan(*plan).ok());
  }
  result.status = (*session)->RunToCompletion();
  result.trace = (*session)->trace();
  result.stats = (*session)->stats();
  result.fault = (*session)->fault_stats();
  result.p = (*session)->model().DenseP();
  result.q = (*session)->model().DenseQ();
  result.epochs_run = (*session)->epochs_run();
  return result;
}

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.points.size(), b.points.size());
  if (a.points.size() != b.points.size()) return;
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].epoch, b.points[i].epoch);
    EXPECT_EQ(a.points[i].time, b.points[i].time);
    EXPECT_EQ(a.points[i].test_rmse, b.points[i].test_rmse);
    EXPECT_EQ(a.points[i].train_rmse, b.points[i].train_rmse);
  }
}

void ExpectRunsBitIdentical(const RunResult& a, const RunResult& b) {
  ExpectTracesEqual(a.trace, b.trace);
  EXPECT_TRUE(a.p == b.p);  // bitwise factor equality
  EXPECT_TRUE(a.q == b.q);
  EXPECT_EQ(a.stats.sim.seconds, b.stats.sim.seconds);
  EXPECT_EQ(a.stats.sim.block_tasks, b.stats.sim.block_tasks);
  EXPECT_EQ(a.stats.sim.stolen_by_gpus, b.stats.sim.stolen_by_gpus);
  EXPECT_EQ(a.stats.sim.stolen_by_cpus, b.stats.sim.stolen_by_cpus);
}

void ExpectFaultStatsZero(const FaultStats& stats) {
  EXPECT_EQ(stats.devices_lost, 0);
  EXPECT_EQ(stats.leases_revoked, 0);
  EXPECT_EQ(stats.blocks_requeued, 0);
  EXPECT_EQ(stats.blocks_lost, 0);
  EXPECT_EQ(stats.transfer_faults, 0);
  EXPECT_EQ(stats.checkpoint_failures, 0);
  EXPECT_FALSE(stats.degraded);
}

void TestPlanParsing() {
  const std::string text =
      "crash:gpu0@e3+0.5; crash:cpu2@e2; slow:gpu1@e2+0.25x8for0.5; "
      "slow:cpu0@e1x16; link:gpu0@e2+0.1n4; ckpt@e2n3";
  auto plan = FaultPlan::Parse(text);
  EXPECT_TRUE(plan.ok());
  if (plan.ok()) {
    EXPECT_EQ(plan->specs.size(), 6u);
    const FaultSpec& crash = plan->specs[0];
    EXPECT_TRUE(crash.kind == FaultKind::kGpuCrash);
    EXPECT_EQ(crash.device_index, 0);
    EXPECT_EQ(crash.epoch, 3);
    EXPECT_EQ(crash.at_fraction, 0.5);
    const FaultSpec& slow = plan->specs[2];
    EXPECT_TRUE(slow.kind == FaultKind::kStraggler);
    EXPECT_EQ(slow.slowdown, 8.0);
    EXPECT_EQ(slow.duration, 0.5);
    const FaultSpec& link = plan->specs[4];
    EXPECT_TRUE(link.kind == FaultKind::kLinkFault);
    EXPECT_EQ(link.count, 4);
    const FaultSpec& ckpt = plan->specs[5];
    EXPECT_TRUE(ckpt.kind == FaultKind::kCheckpointFault);
    EXPECT_EQ(ckpt.epoch, 2);
    EXPECT_EQ(ckpt.count, 3);

    // ToString -> Parse round-trips to the same plan.
    auto again = FaultPlan::Parse(plan->ToString());
    EXPECT_TRUE(again.ok());
    if (again.ok()) EXPECT_TRUE(again->ToString() == plan->ToString());
  }

  // The empty plan is valid (and must change nothing — see below).
  auto empty = FaultPlan::Parse("  ");
  EXPECT_TRUE(empty.ok());
  if (empty.ok()) EXPECT_TRUE(empty->empty());

  for (const char* bad : {
           "crash:tpu0@e1",       // unknown device class
           "crash:gpu0@e0",       // epochs are 1-based
           "crash:gpu0@e1+1.5",   // fraction outside [0, 1]
           "slow:gpu0@e1x0.5",    // slowdown must exceed 1
           "slow:gpu0@e1x4for0",  // degraded window must be positive
           "link:cpu0@e1n2",      // links hang off GPUs only
           "crash:gpu0@e1n2",     // count is link/ckpt-only
           "ckpt@e1n0",           // counts start at 1
           "crash:gpu0@e1 trailing",
           "wibble",
       }) {
    auto parsed = FaultPlan::Parse(bad);
    EXPECT_FALSE(parsed.ok());
    if (parsed.ok()) std::fprintf(stderr, "  (accepted: %s)\n", bad);
  }
}

// The heart of the double-apply-safety story: attaching the fault
// subsystem without any firing fault must reproduce the disabled run
// bit for bit — traces, factors, stats, everything.
void TestZeroFaultBitIdentity() {
  Dataset ds = SmallDataset();
  for (Algorithm algorithm : {Algorithm::kHsgd, Algorithm::kHsgdStar}) {
    TrainConfig cfg = SmallConfig(algorithm);
    RunResult disabled = RunWithPlan(ds, cfg, nullptr);
    RunResult empty = RunWithPlan(ds, cfg, "");
    RunResult silent = RunWithPlan(ds, cfg, "crash:gpu0@e99");
    EXPECT_TRUE(disabled.status.ok());
    EXPECT_TRUE(empty.status.ok());
    EXPECT_TRUE(silent.status.ok());
    ExpectRunsBitIdentical(disabled, empty);
    ExpectRunsBitIdentical(disabled, silent);
    ExpectFaultStatsZero(empty.fault);
    ExpectFaultStatsZero(silent.fault);
  }
}

// Killing a GPU halfway through an epoch: its leases are revoked, its
// stripes are redistributed, training runs to the full epoch budget, and
// the damaged run is deterministic (exact replay) and close in final
// RMSE to the fault-free run.
void TestGpuCrashRecovery() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  const char* plan = "crash:gpu1@e2+0.5";

  RunResult clean = RunWithPlan(ds, cfg, nullptr);
  RunResult crashed = RunWithPlan(ds, cfg, plan);
  EXPECT_TRUE(clean.status.ok());
  EXPECT_TRUE(crashed.status.ok());
  EXPECT_EQ(crashed.epochs_run, cfg.max_epochs);
  EXPECT_EQ(crashed.fault.devices_lost, 1);
  EXPECT_TRUE(crashed.fault.degraded);
  EXPECT_TRUE(crashed.fault.leases_revoked >= 1);
  EXPECT_EQ(crashed.fault.blocks_requeued + crashed.fault.blocks_lost,
            crashed.fault.leases_revoked);
  EXPECT_EQ(crashed.fault.blocks_lost, 0);  // one requeue always suffices

  // Every block still applies exactly once per epoch, so the damaged
  // model converges: final RMSE within 2% of the fault-free run.
  const double clean_rmse = clean.trace.points.back().test_rmse;
  const double crashed_rmse = crashed.trace.points.back().test_rmse;
  EXPECT_TRUE(std::fabs(crashed_rmse / clean_rmse - 1.0) <= 0.02);

  // Deterministic replay: the same seed + plan reproduces the damaged
  // run exactly, and the evaluation thread count cannot leak in.
  RunResult replay = RunWithPlan(ds, cfg, plan);
  EXPECT_TRUE(replay.status.ok());
  ExpectRunsBitIdentical(crashed, replay);
  for (int eval_threads : {1, 7}) {
    TrainConfig alt = cfg;
    alt.eval_threads = eval_threads;
    RunResult other = RunWithPlan(ds, alt, plan);
    EXPECT_TRUE(other.status.ok());
    ExpectRunsBitIdentical(crashed, other);
  }
}

// A CPU crash on the plain HSGD (pool) scheduler: survivors drain the
// queue, the epoch completes, the run stays deterministic.
void TestCpuCrashRecovery() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgd);
  const char* plan = "crash:cpu3@e1+0.25";
  RunResult crashed = RunWithPlan(ds, cfg, plan);
  EXPECT_TRUE(crashed.status.ok());
  EXPECT_EQ(crashed.epochs_run, cfg.max_epochs);
  EXPECT_EQ(crashed.fault.devices_lost, 1);
  RunResult replay = RunWithPlan(ds, cfg, plan);
  EXPECT_TRUE(replay.status.ok());
  ExpectRunsBitIdentical(crashed, replay);
}

// A transient straggler (slowdown below the deadline factor) keeps its
// work but stretches the simulated clock; nobody dies.
void TestTransientStraggler() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgd);
  RunResult clean = RunWithPlan(ds, cfg, nullptr);
  RunResult slow = RunWithPlan(ds, cfg, "slow:cpu1@e1+0.1x4for5.0");
  EXPECT_TRUE(clean.status.ok());
  EXPECT_TRUE(slow.status.ok());
  EXPECT_EQ(slow.fault.devices_lost, 0);
  EXPECT_TRUE(slow.fault.degraded);
  EXPECT_TRUE(slow.stats.sim.seconds > clean.stats.sim.seconds);
  EXPECT_EQ(slow.epochs_run, cfg.max_epochs);
}

// A permanently wedged worker (slowdown >= lease_deadline_factor) is
// benched at its next acquire and declared dead by the watchdog rather
// than dragging every one of its leases past the deadline.
void TestWedgedWorkerIsRetired() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgd);
  EXPECT_EQ(cfg.fault.lease_deadline_factor, 8.0);  // default watchdog
  RunResult wedged = RunWithPlan(ds, cfg, "slow:cpu1@e2x16");
  EXPECT_TRUE(wedged.status.ok());
  EXPECT_EQ(wedged.fault.devices_lost, 1);
  EXPECT_EQ(wedged.epochs_run, cfg.max_epochs);
}

// Injected PCIe faults: each failed transfer retries with a detection
// penalty, so the run completes with a strictly later clock.
void TestLinkFaults() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  RunResult clean = RunWithPlan(ds, cfg, nullptr);
  RunResult flaky = RunWithPlan(ds, cfg, "link:gpu0@e1n3");
  EXPECT_TRUE(clean.status.ok());
  EXPECT_TRUE(flaky.status.ok());
  EXPECT_EQ(flaky.fault.transfer_faults, 3);
  EXPECT_EQ(flaky.fault.devices_lost, 0);
  EXPECT_TRUE(flaky.stats.sim.seconds > clean.stats.sim.seconds);
  RunResult replay = RunWithPlan(ds, cfg, "link:gpu0@e1n3");
  EXPECT_TRUE(replay.status.ok());
  ExpectRunsBitIdentical(flaky, replay);
}

// DegradePolicy::kAbort: the first device loss fails the session
// permanently instead of degrading.
void TestAbortPolicy() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgd);
  cfg.fault.on_device_loss = DegradePolicy::kAbort;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  auto plan = FaultPlan::Parse("crash:cpu0@e1+0.3");
  EXPECT_TRUE(plan.ok());
  EXPECT_TRUE((*session)->SetFaultPlan(*plan).ok());
  auto point = (*session)->RunEpoch();
  EXPECT_FALSE(point.ok());
  EXPECT_TRUE((*session)->failed());
  EXPECT_TRUE((*session)->Done());
  auto again = (*session)->RunEpoch();
  EXPECT_FALSE(again.ok());
  if (!again.ok()) {
    EXPECT_TRUE(again.status().code() == StatusCode::kFailedPrecondition);
  }
}

// Losing every worker is unrecoverable under any policy.
void TestAllWorkersDead() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kCpuOnly);
  cfg.hardware.num_cpu_threads = 2;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  auto plan = FaultPlan::Parse("crash:cpu0@e1; crash:cpu1@e1+0.2");
  EXPECT_TRUE(plan.ok());
  EXPECT_TRUE((*session)->SetFaultPlan(*plan).ok());
  auto point = (*session)->RunEpoch();
  EXPECT_FALSE(point.ok());
  EXPECT_TRUE((*session)->failed());
  if (!point.ok()) {
    EXPECT_TRUE(point.status().message().find("dead") != std::string::npos);
  }
}

// Autosave + scripted checkpoint IO faults: the retry loop eats the
// injected failures, the accounting matches, and the autosaved file
// resumes.
void TestCheckpointFaultRetry() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgd);
  cfg.max_epochs = 2;
  cfg.fault.autosave_every = 1;
  cfg.fault.autosave_path = "fault_test_autosave.ckpt";
  cfg.fault.checkpoint_retry.initial_backoff = 1e-4;
  cfg.fault.checkpoint_retry.max_backoff = 1e-3;
  std::remove(cfg.fault.autosave_path.c_str());

  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  auto plan = FaultPlan::Parse("ckpt@e1n2");
  EXPECT_TRUE(plan.ok());
  EXPECT_TRUE((*session)->SetFaultPlan(*plan).ok());
  EXPECT_TRUE((*session)->RunToCompletion().ok());
  const FaultStats& fault = (*session)->fault_stats();
  EXPECT_EQ(fault.checkpoint_failures, 2);
  EXPECT_EQ(fault.checkpoint_retries, 2);
  EXPECT_EQ(fault.autosave_failures, 0);
  auto resumed = Session::Restore(cfg.fault.autosave_path, ds);
  EXPECT_TRUE(resumed.ok());
  if (resumed.ok()) EXPECT_EQ((*resumed)->epochs_run(), 2);
  std::remove(cfg.fault.autosave_path.c_str());

  // Budget exhausted: the autosave is abandoned (tallied, warned) but
  // training itself keeps going.
  cfg.fault.checkpoint_retry.max_attempts = 2;
  auto stubborn = Session::Create(ds, cfg);
  EXPECT_TRUE(stubborn.ok());
  if (!stubborn.ok()) return;
  auto many = FaultPlan::Parse("ckpt@e1n99");
  EXPECT_TRUE(many.ok());
  EXPECT_TRUE((*stubborn)->SetFaultPlan(*many).ok());
  EXPECT_TRUE((*stubborn)->RunToCompletion().ok());
  EXPECT_EQ((*stubborn)->fault_stats().autosave_failures, 2);
  EXPECT_EQ((*stubborn)->epochs_run(), 2);
  std::remove(cfg.fault.autosave_path.c_str());
}

// The serve half of the grammar: poison / walio / storm / slowshard
// clauses parse with round-triggered semantics and round-trip through
// ToString, and the misuse cases fail loudly.
void TestServePlanParsing() {
  const std::string text =
      "poison@r3n2; walio@r2n4; storm@r4x8for2; slowshard:1@r5x16for3";
  auto plan = FaultPlan::Parse(text);
  EXPECT_TRUE(plan.ok());
  if (plan.ok()) {
    EXPECT_EQ(plan->specs.size(), 4u);
    const FaultSpec& poison = plan->specs[0];
    EXPECT_TRUE(poison.kind == FaultKind::kPublishPoison);
    EXPECT_EQ(poison.epoch, 3);  // round rides the epoch field
    EXPECT_EQ(poison.count, 2);
    const FaultSpec& walio = plan->specs[1];
    EXPECT_TRUE(walio.kind == FaultKind::kWalIo);
    EXPECT_EQ(walio.epoch, 2);
    EXPECT_EQ(walio.count, 4);
    const FaultSpec& storm = plan->specs[2];
    EXPECT_TRUE(storm.kind == FaultKind::kQueryStorm);
    EXPECT_EQ(storm.slowdown, 8.0);
    EXPECT_EQ(storm.duration, 2.0);
    const FaultSpec& slow_shard = plan->specs[3];
    EXPECT_TRUE(slow_shard.kind == FaultKind::kSlowShard);
    EXPECT_EQ(slow_shard.device_index, 1);  // shard rides device_index
    EXPECT_EQ(slow_shard.slowdown, 16.0);
    EXPECT_EQ(slow_shard.duration, 3.0);

    for (const FaultSpec& spec : plan->specs) {
      EXPECT_TRUE(IsServeFault(spec.kind));
    }
    EXPECT_FALSE(IsServeFault(FaultKind::kGpuCrash));
    EXPECT_FALSE(IsServeFault(FaultKind::kCheckpointFault));

    auto again = FaultPlan::Parse(plan->ToString());
    EXPECT_TRUE(again.ok());
    if (again.ok()) EXPECT_TRUE(again->ToString() == plan->ToString());
  }

  for (const char* bad : {
           "poison@r0",            // rounds are 1-based
           "poison@e3",            // serve kinds trigger on @r, not @e
           "crash:gpu0@r1",        // ...and train kinds on @e, not @r
           "poison:gpu0@r1",       // poison/walio/storm take no target
           "walio@r1x4",           // no slowdown on count kinds
           "storm@r1n2",           // no count on window kinds
           "storm@r1x0.5for2",     // factor must exceed 1
           "slowshard@r1x4for2",   // slowshard requires a shard index
           "slowshard:0@r1+0.5x4", // no release fraction on rounds
       }) {
    auto parsed = FaultPlan::Parse(bad);
    EXPECT_FALSE(parsed.ok());
    if (parsed.ok()) std::fprintf(stderr, "  (accepted: %s)\n", bad);
  }
}

// A mixed chaos script splits cleanly into its session half and its
// serve half, and the session refuses to be handed serve kinds.
void TestSplitAndSessionRejectsServeKinds() {
  auto mixed = FaultPlan::Parse(
      "crash:gpu0@e2+0.5; poison@r3; ckpt@e1n1; walio@r2n2; "
      "slowshard:0@r4x8for1");
  EXPECT_TRUE(mixed.ok());
  if (!mixed.ok()) return;

  FaultPlan train, serve;
  SplitFaultPlan(*mixed, &train, &serve);
  EXPECT_EQ(train.specs.size(), 2u);
  EXPECT_EQ(serve.specs.size(), 3u);
  for (const FaultSpec& spec : train.specs) {
    EXPECT_FALSE(IsServeFault(spec.kind));
  }
  for (const FaultSpec& spec : serve.specs) {
    EXPECT_TRUE(IsServeFault(spec.kind));
  }
  // Null outputs discard that half.
  FaultPlan serve_only;
  SplitFaultPlan(*mixed, nullptr, &serve_only);
  EXPECT_EQ(serve_only.specs.size(), 3u);

  // The unsplit mixed plan must be rejected by the session — serve
  // faults are fired by the injector, never the training loop.
  Dataset ds = SmallDataset();
  auto session = Session::Create(ds, SmallConfig(Algorithm::kHsgd));
  EXPECT_TRUE(session.ok());
  if (session.ok()) {
    Status status = (*session)->SetFaultPlan(*mixed);
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(status.message().find("serve") != std::string::npos);
    // The split train half is fine.
    EXPECT_TRUE((*session)->SetFaultPlan(train).ok());
  }
}

// ServeFaultInjector: Create validation, and the four firing surfaces
// driven round by round — the engine under bench_chaos_serving's gate.
void TestServeFaultInjectorFiring() {
  auto plan = FaultPlan::Parse(
      "poison@r3n2; walio@r2n2; storm@r4x8for2; slowshard:1@r5x16for3");
  EXPECT_TRUE(plan.ok());
  if (!plan.ok()) return;

  // Creation validates kind purity and shard range.
  auto train_kind = FaultPlan::Parse("crash:gpu0@e1");
  EXPECT_TRUE(train_kind.ok());
  EXPECT_FALSE(ServeFaultInjector::Create(*train_kind).ok());
  EXPECT_FALSE(ServeFaultInjector::Create(*plan, 1).ok());  // shard 1 of 1
  auto injector = ServeFaultInjector::Create(*plan, 2);
  EXPECT_TRUE(injector.ok());
  if (!injector.ok()) return;
  ServeFaultInjector& chaos = **injector;

  // Round 1: nothing armed.
  chaos.BeginRound(1);
  EXPECT_FALSE(chaos.PoisonThisPublish());
  EXPECT_FALSE(chaos.ConsumeWalFault());
  EXPECT_EQ(chaos.LoadMultiplier(), 1.0);
  EXPECT_EQ(chaos.ShardSlowdown(0), 1.0);
  EXPECT_EQ(chaos.ShardSlowdown(1), 1.0);

  // Round 2: the two scripted WAL faults fire, then the budget is spent.
  chaos.BeginRound(2);
  EXPECT_TRUE(chaos.ConsumeWalFault());
  EXPECT_TRUE(chaos.ConsumeWalFault());
  EXPECT_FALSE(chaos.ConsumeWalFault());
  EXPECT_FALSE(chaos.PoisonThisPublish());

  // Rounds 3-4: two consecutive poisoned publishes, exactly.
  chaos.BeginRound(3);
  EXPECT_TRUE(chaos.PoisonThisPublish());
  chaos.BeginRound(4);
  EXPECT_TRUE(chaos.PoisonThisPublish());
  EXPECT_FALSE(chaos.PoisonThisPublish());
  // Round 4 also opens the storm window (rounds 4..5).
  EXPECT_EQ(chaos.LoadMultiplier(), 8.0);

  // Round 5: storm still active; shard 1 (and only shard 1) stalls.
  chaos.BeginRound(5);
  EXPECT_EQ(chaos.LoadMultiplier(), 8.0);
  EXPECT_EQ(chaos.ShardSlowdown(0), 1.0);
  EXPECT_EQ(chaos.ShardSlowdown(1), 16.0);

  // Round 6: storm over (4..5); slowshard window (5..7) persists.
  chaos.BeginRound(6);
  EXPECT_EQ(chaos.LoadMultiplier(), 1.0);
  EXPECT_EQ(chaos.ShardSlowdown(1), 16.0);

  // Round 8: everything back to healthy; totals match the script.
  chaos.BeginRound(8);
  EXPECT_EQ(chaos.ShardSlowdown(1), 1.0);
  EXPECT_EQ(chaos.poisons_fired(), 2);
  EXPECT_EQ(chaos.wal_faults_fired(), 2);
}

// SetFaultPlan validates targets against the actual fleet.
void TestPlanValidation() {
  Dataset ds = SmallDataset();
  auto session = Session::Create(ds, SmallConfig(Algorithm::kHsgd));
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  auto out_of_range = FaultPlan::Parse("crash:gpu5@e1");
  EXPECT_TRUE(out_of_range.ok());
  auto status = (*session)->SetFaultPlan(*out_of_range);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.message().find("gpu5") != std::string::npos);

  auto gpu_only = Session::Create(ds, SmallConfig(Algorithm::kGpuOnly));
  EXPECT_TRUE(gpu_only.ok());
  if (gpu_only.ok()) {
    auto cpu_fault = FaultPlan::Parse("crash:cpu0@e1");
    EXPECT_TRUE(cpu_fault.ok());
    EXPECT_FALSE((*gpu_only)->SetFaultPlan(*cpu_fault).ok());
    // Checkpoint faults target no device and always validate.
    auto ckpt = FaultPlan::Parse("ckpt@e1n1");
    EXPECT_TRUE(ckpt.ok());
    EXPECT_TRUE((*gpu_only)->SetFaultPlan(*ckpt).ok());
  }
}

}  // namespace

void RunAllTests() {
  TestPlanParsing();
  TestZeroFaultBitIdentity();
  TestGpuCrashRecovery();
  TestCpuCrashRecovery();
  TestTransientStraggler();
  TestWedgedWorkerIsRetired();
  TestLinkFaults();
  TestAbortPolicy();
  TestAllWorkersDead();
  TestCheckpointFaultRetry();
  TestServePlanParsing();
  TestSplitAndSessionRejectsServeKinds();
  TestServeFaultInjectorFiring();
  TestPlanValidation();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
