#include <algorithm>
#include <vector>

#include "sched/blocked_matrix.h"
#include "test_main.h"

namespace hsgd {
namespace {

Ratings RandomRatings(int64_t nnz, int32_t rows, int32_t cols,
                      uint64_t seed, bool skewed = false) {
  Rng rng(seed);
  Ratings out;
  out.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) {
    Rating rt;
    if (skewed) {
      // Power-law-ish row popularity: square the uniform draw.
      double x = rng.NextDouble();
      rt.u = static_cast<int32_t>(x * x * rows);
      if (rt.u >= rows) rt.u = rows - 1;
    } else {
      rt.u = static_cast<int32_t>(rng.UniformInt(rows));
    }
    rt.v = static_cast<int32_t>(rng.UniformInt(cols));
    rt.r = rng.NextFloat();
    out.push_back(rt);
  }
  return out;
}

void CheckGridInvariants(const Grid& grid, const Ratings& ratings,
                         int32_t rows, int32_t cols, int p, int q) {
  EXPECT_EQ(grid.num_row_strata(), p);
  EXPECT_EQ(grid.num_col_strata(), q);
  EXPECT_EQ(grid.row_bounds.front(), 0);
  EXPECT_EQ(grid.row_bounds.back(), rows);
  EXPECT_EQ(grid.col_bounds.front(), 0);
  EXPECT_EQ(grid.col_bounds.back(), cols);
  for (size_t i = 1; i < grid.row_bounds.size(); ++i) {
    EXPECT_LT(grid.row_bounds[i - 1], grid.row_bounds[i]);
  }
  for (size_t i = 1; i < grid.col_bounds.size(); ++i) {
    EXPECT_LT(grid.col_bounds[i - 1], grid.col_bounds[i]);
  }
  // Every rating falls in exactly one block (RowOf/ColOf total functions
  // over the index range, and the bounds partition it).
  for (const Rating& rt : ratings) {
    int r = grid.RowOf(rt.u), c = grid.ColOf(rt.v);
    EXPECT_TRUE(r >= 0 && r < p);
    EXPECT_TRUE(c >= 0 && c < q);
    EXPECT_TRUE(grid.row_bounds[r] <= rt.u &&
                rt.u < grid.row_bounds[r + 1]);
    EXPECT_TRUE(grid.col_bounds[c] <= rt.v &&
                rt.v < grid.col_bounds[c + 1]);
  }
}

void TestBalancedGrid() {
  const int32_t rows = 500, cols = 300;
  const int p = 7, q = 5;
  for (bool skewed : {false, true}) {
    Ratings ratings = RandomRatings(30000, rows, cols, 42, skewed);
    auto grid = BuildBalancedGrid(ratings, rows, cols, p, q);
    EXPECT_TRUE(grid.ok());
    CheckGridInvariants(*grid, ratings, rows, cols, p, q);

    // Balance: every row stratum's load is within one heaviest-row of the
    // ideal share (cuts can only fall on row boundaries).
    std::vector<int64_t> row_nnz(static_cast<size_t>(rows), 0);
    for (const Rating& rt : ratings) ++row_nnz[static_cast<size_t>(rt.u)];
    int64_t heaviest = *std::max_element(row_nnz.begin(), row_nnz.end());
    std::vector<int64_t> stratum_nnz(static_cast<size_t>(p), 0);
    for (const Rating& rt : ratings) {
      ++stratum_nnz[static_cast<size_t>(grid->RowOf(rt.u))];
    }
    int64_t ideal = static_cast<int64_t>(ratings.size()) / p;
    for (int s = 0; s < p; ++s) {
      EXPECT_LE(stratum_nnz[static_cast<size_t>(s)], ideal + heaviest + 1);
    }
  }
}

void TestGridErrors() {
  Ratings ratings = RandomRatings(100, 10, 10, 1);
  EXPECT_FALSE(BuildBalancedGrid(ratings, 10, 10, 0, 2).ok());
  EXPECT_FALSE(BuildBalancedGrid(ratings, 10, 10, 11, 2).ok());
  EXPECT_FALSE(BuildBalancedGrid(ratings, 10, 10, 2, 11).ok());
  EXPECT_FALSE(BuildBalancedGrid(ratings, 0, 10, 1, 1).ok());
  Ratings out_of_range = {{12, 0, 1.0f}};
  EXPECT_FALSE(BuildBalancedGrid(out_of_range, 10, 10, 2, 2).ok());
  // Degenerate but legal: a 1x1 grid.
  auto one = BuildBalancedGrid(ratings, 10, 10, 1, 1);
  EXPECT_TRUE(one.ok());
  EXPECT_EQ(one->num_blocks(), 1);
}

void TestColShares() {
  const int32_t rows = 400, cols = 600;
  Ratings ratings = RandomRatings(50000, rows, cols, 7);
  std::vector<double> shares = {0.6, 0.1, 0.1, 0.1, 0.1};
  auto grid = BuildGridWithColShares(ratings, rows, cols, 4, shares);
  EXPECT_TRUE(grid.ok());
  CheckGridInvariants(*grid, ratings, rows, cols, 4, 5);

  std::vector<int64_t> stripe_nnz(shares.size(), 0);
  for (const Rating& rt : ratings) {
    ++stripe_nnz[static_cast<size_t>(grid->ColOf(rt.v))];
  }
  double total = static_cast<double>(ratings.size());
  // Column cuts land on column boundaries, so allow a few percent slack.
  EXPECT_NEAR(stripe_nnz[0] / total, 0.6, 0.05);
  for (size_t s = 1; s < shares.size(); ++s) {
    EXPECT_NEAR(stripe_nnz[s] / total, 0.1, 0.05);
  }

  EXPECT_FALSE(
      BuildGridWithColShares(ratings, rows, cols, 4, {0.5, -0.5}).ok());
}

void TestBlockedMatrix() {
  const int32_t rows = 200, cols = 150;
  Ratings ratings = RandomRatings(10000, rows, cols, 3);
  auto grid = BuildBalancedGrid(ratings, rows, cols, 4, 3);
  EXPECT_TRUE(grid.ok());
  Rng rng(5);
  auto matrix = BlockedMatrix::Build(ratings, *grid, &rng);
  EXPECT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->num_blocks(), 12);
  EXPECT_EQ(matrix->total_nnz(), 10000);

  // Conservation: block sizes sum to the input size, and every block's
  // ratings live inside the block's strata.
  int64_t sum = 0;
  for (int b = 0; b < matrix->num_blocks(); ++b) {
    sum += matrix->BlockNnz(b);
    int row = b / 3, col = b % 3;
    for (const Rating& rt : matrix->BlockRatings(b)) {
      EXPECT_TRUE(grid->row_bounds[row] <= rt.u &&
                  rt.u < grid->row_bounds[row + 1]);
      EXPECT_TRUE(grid->col_bounds[col] <= rt.v &&
                  rt.v < grid->col_bounds[col + 1]);
    }
  }
  EXPECT_EQ(sum, 10000);
}

}  // namespace

void RunAllTests() {
  TestBalancedGrid();
  TestGridErrors();
  TestColShares();
  TestBlockedMatrix();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
