// Ingestion tests: golden-file parses of the committed fixtures (one per
// format), write -> read round-trips through the io/ writers,
// parallel-vs-serial parse equivalence, the deterministic train/test
// split, and a malformed-input sweep where every bad file must come back
// as a line-numbered Status — never a crash (CI runs this binary under
// ASan/UBSan too).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "io/loader.h"
#include "io/writer.h"
#include "test_main.h"
#include "util/chunking.h"

namespace hsgd {
namespace {

using io::DataFormat;
using io::LoadedData;
using io::LoadOptions;

std::string Fixture(const char* name) {
  return std::string(HSGD_FIXTURE_DIR) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_TRUE(f != nullptr);
  if (f == nullptr) return;
  EXPECT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

/// Translate a loaded dataset's dense triplets back to raw-id triplets
/// via its retained id maps.
Ratings ToRaw(const LoadedData& data) {
  Ratings raw;
  raw.reserve(data.ratings.size());
  for (const Rating& r : data.ratings) {
    Rating out;
    out.u = static_cast<int32_t>(data.users.Raw(r.u));
    out.v = static_cast<int32_t>(data.items.Raw(r.v));
    out.r = r.r;
    raw.push_back(out);
  }
  return raw;
}

void ExpectRatingsEqual(const Ratings& a, const Ratings& b) {
  EXPECT_EQ(a.size(), b.size());
  if (a.size() != b.size()) return;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(a[i].r, b[i].r);  // bit-identical floats
  }
}

void TestFormatNames() {
  EXPECT_TRUE(io::FormatByName("movielens").ok());
  EXPECT_TRUE(io::FormatByName("NETFLIX").ok());
  EXPECT_TRUE(io::FormatByName("csv").ok());
  EXPECT_EQ(static_cast<int>(*io::FormatByName("ml")),
            static_cast<int>(DataFormat::kMovieLens));
  auto bad = io::FormatByName("parquet");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().message().find("parquet") != std::string::npos);
  EXPECT_EQ(std::string(io::FormatName(DataFormat::kNetflix)), "netflix");
}

void TestGoldenMovieLensDat() {
  for (int threads : {1, 3}) {
    LoadOptions options;
    options.threads = threads;
    auto data =
        io::LoadRatings(Fixture("ml_tiny.dat"), DataFormat::kMovieLens,
                        options);
    EXPECT_TRUE(data.ok());
    if (!data.ok()) continue;
    EXPECT_EQ(data->users.size(), 3);
    EXPECT_EQ(data->items.size(), 3);
    // Dense ids follow first appearance: users 10, 20, 30 -> 0, 1, 2 and
    // items 100, 200, 300 -> 0, 1, 2.
    EXPECT_EQ(data->users.Raw(0), 10);
    EXPECT_EQ(data->users.Raw(2), 30);
    EXPECT_EQ(data->items.Raw(1), 200);
    EXPECT_EQ(data->users.Lookup(20), 1);
    EXPECT_EQ(data->users.Lookup(999), -1);
    const Ratings expected = {{0, 0, 5.0f},   {0, 1, 3.5f}, {1, 0, 4.0f},
                              {2, 2, 2.0f},   {1, 1, 1.5f}, {2, 0, 0.5f}};
    ExpectRatingsEqual(data->ratings, expected);
  }
}

void TestGoldenCsvHeaderCrlf() {
  // Header line skipped, CRLF endings tolerated, comma delimiter.
  auto data = io::LoadRatings(Fixture("ml_tiny.csv"),
                              DataFormat::kMovieLens);
  EXPECT_TRUE(data.ok());
  if (!data.ok()) return;
  EXPECT_EQ(data->ratings.size(), 4u);
  EXPECT_EQ(data->users.size(), 3);
  EXPECT_EQ(data->items.size(), 3);
  EXPECT_EQ(data->users.Raw(0), 1);
  EXPECT_EQ(data->items.Raw(2), 30);
  EXPECT_EQ(data->ratings[1].r, 3.5f);
  // The generic csv format reads the same file.
  auto as_csv = io::LoadRatings(Fixture("ml_tiny.csv"), DataFormat::kCsv);
  EXPECT_TRUE(as_csv.ok());
  if (as_csv.ok()) ExpectRatingsEqual(as_csv->ratings, data->ratings);
}

void TestGoldenNetflixCombined() {
  auto data = io::LoadRatings(Fixture("netflix_tiny.txt"),
                              DataFormat::kNetflix);
  EXPECT_TRUE(data.ok());
  if (!data.ok()) return;
  EXPECT_EQ(data->ratings.size(), 5u);
  EXPECT_EQ(data->items.size(), 2);
  EXPECT_EQ(data->users.size(), 4);
  EXPECT_EQ(data->items.Raw(0), 1);
  EXPECT_EQ(data->items.Raw(1), 2);
  EXPECT_EQ(data->users.Raw(0), 1488844);
  // User 1488844 rated both movies; same dense id both times.
  EXPECT_EQ(data->ratings[0].u, data->ratings[4].u);
  EXPECT_EQ(data->ratings[4].v, 1);
  EXPECT_EQ(data->ratings[4].r, 4.0f);
}

void TestNetflixPerMovieDirectory() {
  namespace fs = std::filesystem;
  const std::string dir = "io_test_netflix_dir";
  fs::remove_all(dir);
  fs::create_directory(dir);
  WriteFile(dir + "/mv_0000002.txt", "2:\n823519,3,2004-05-03\n");
  WriteFile(dir + "/mv_0000001.txt",
            "1:\n1488844,3,2005-09-06\n822109,5,2005-05-13\n");
  auto data = io::LoadRatings(dir, DataFormat::kNetflix);
  EXPECT_TRUE(data.ok());
  if (data.ok()) {
    // Files visit in sorted name order: movie 1's ratings first.
    EXPECT_EQ(data->ratings.size(), 3u);
    EXPECT_EQ(data->items.Raw(0), 1);
    EXPECT_EQ(data->items.Raw(1), 2);
    EXPECT_EQ(data->ratings[2].r, 3.0f);
  }
  // A duplicate detected after the cross-file merge still names the
  // per-movie file it came from, not the directory.
  WriteFile(dir + "/mv_0000003.txt", "3:\n42,3,2005-01-01\n42,4,2005-01-02\n");
  auto dup = io::LoadRatings(dir, DataFormat::kNetflix);
  EXPECT_FALSE(dup.ok());
  if (!dup.ok()) {
    EXPECT_TRUE(dup.status().message().find("mv_0000003.txt:3:") !=
                std::string::npos);
  }
  // A directory is only meaningful for netflix.
  EXPECT_FALSE(io::LoadRatings(dir, DataFormat::kCsv).ok());
  fs::remove_all(dir);
}

void TestRoundTripWriters() {
  SyntheticSpec spec;
  spec.num_rows = 40;
  spec.num_cols = 30;
  spec.train_nnz = 500;
  spec.test_nnz = 0;
  spec.params.k = 4;
  auto ds = GenerateSynthetic(spec, /*seed=*/11);
  EXPECT_TRUE(ds.ok());
  // Synthetic sampling may repeat (u, v) pairs, which the loader rejects
  // as duplicates; keep the first occurrence of each pair.
  Ratings original;
  {
    std::vector<char> seen(
        static_cast<size_t>(spec.num_rows * spec.num_cols), 0);
    for (const Rating& r : ds->train) {
      char& cell = seen[static_cast<size_t>(r.u) * spec.num_cols + r.v];
      if (cell == 0) {
        cell = 1;
        original.push_back(r);
      }
    }
  }

  const std::string ml_path = "io_test_roundtrip.dat";
  const std::string csv_path = "io_test_roundtrip.csv";
  const std::string nf_path = "io_test_roundtrip.nf.txt";
  EXPECT_TRUE(io::WriteMovieLens(ml_path, original).ok());
  EXPECT_TRUE(io::WriteCsv(csv_path, original, /*header=*/true).ok());
  EXPECT_TRUE(io::WriteNetflix(nf_path, original).ok());

  // MovieLens and CSV preserve order: raw triplets come back
  // bit-identical, line for line.
  for (const auto& [path, format] :
       {std::pair<std::string, DataFormat>{ml_path, DataFormat::kMovieLens},
        {csv_path, DataFormat::kCsv}}) {
    auto loaded = io::LoadRatings(path, format);
    EXPECT_TRUE(loaded.ok());
    if (loaded.ok()) ExpectRatingsEqual(ToRaw(*loaded), original);
  }

  // Netflix is movie-major: same triplets, item-grouped order. Compare
  // under a canonical sort.
  auto nf_loaded = io::LoadRatings(nf_path, DataFormat::kNetflix);
  EXPECT_TRUE(nf_loaded.ok());
  if (nf_loaded.ok()) {
    Ratings got = ToRaw(*nf_loaded);
    Ratings want = original;
    auto by_pair = [](const Rating& a, const Rating& b) {
      if (a.u != b.u) return a.u < b.u;
      return a.v < b.v;
    };
    std::sort(got.begin(), got.end(), by_pair);
    std::sort(want.begin(), want.end(), by_pair);
    ExpectRatingsEqual(got, want);
  }

  std::remove(ml_path.c_str());
  std::remove(csv_path.c_str());
  std::remove(nf_path.c_str());
}

void TestParallelSerialEquivalence() {
  // A file big enough to split into many chunks, with unique (u, v)
  // pairs. Parse serially and with several pool sizes: results must be
  // identical — triplets, order, and id-map contents.
  Ratings original;
  original.reserve(20000);
  for (int32_t i = 0; i < 20000; ++i) {
    Rating r;
    r.u = i % 997;
    r.v = i / 997;
    r.r = 1.0f + static_cast<float>(i % 9) * 0.5f;
    original.push_back(r);
  }
  const std::string path = "io_test_parallel.dat";
  EXPECT_TRUE(io::WriteMovieLens(path, original).ok());

  LoadOptions serial;
  serial.threads = 1;
  auto reference = io::LoadRatings(path, DataFormat::kMovieLens, serial);
  EXPECT_TRUE(reference.ok());
  for (int threads : {2, 7, 16}) {
    LoadOptions options;
    options.threads = threads;
    auto parallel = io::LoadRatings(path, DataFormat::kMovieLens, options);
    EXPECT_TRUE(parallel.ok());
    if (!parallel.ok() || !reference.ok()) continue;
    ExpectRatingsEqual(parallel->ratings, reference->ratings);
    EXPECT_EQ(parallel->users.size(), reference->users.size());
    EXPECT_EQ(parallel->items.size(), reference->items.size());
    for (int32_t u = 0; u < reference->users.size(); ++u) {
      EXPECT_EQ(parallel->users.Raw(u), reference->users.Raw(u));
    }
    for (int32_t v = 0; v < reference->items.size(); ++v) {
      EXPECT_EQ(parallel->items.Raw(v), reference->items.Raw(v));
    }
  }
  std::remove(path.c_str());
}

/// Expect a load failure whose message names `line` ("path:line: ...").
void ExpectLineError(const std::string& content, DataFormat format,
                     int64_t line, const char* what) {
  const std::string path = "io_test_malformed.tmp";
  WriteFile(path, content);
  // Both the serial and the sharded parser must report the same line.
  for (int threads : {1, 4}) {
    LoadOptions options;
    options.threads = threads;
    auto data = io::LoadRatings(path, format, options);
    EXPECT_FALSE(data.ok());
    if (data.ok()) {
      std::fprintf(stderr, "  (case: %s)\n", what);
      continue;
    }
    const std::string needle =
        path + ":" + std::to_string(line) + ":";
    if (data.status().message().find(needle) == std::string::npos) {
      std::fprintf(stderr, "  (case %s: wanted '%s' in '%s')\n", what,
                   needle.c_str(), data.status().message().c_str());
      EXPECT_TRUE(false);
    }
  }
  std::remove(path.c_str());
}

void TestMalformedInputs() {
  // Truncated last record (no rating field, with and without newline).
  ExpectLineError("1::2::3\n4::5\n", DataFormat::kMovieLens, 2,
                  "truncated with newline");
  ExpectLineError("1::2::3\n4::5", DataFormat::kMovieLens, 2,
                  "truncated without newline");
  // Non-numeric and negative ids.
  ExpectLineError("abc::2::3\n", DataFormat::kMovieLens, 1,
                  "non-numeric user");
  ExpectLineError("1::2::3\n1::xx::3\n", DataFormat::kMovieLens, 2,
                  "non-numeric item");
  ExpectLineError("-1::2::3\n", DataFormat::kMovieLens, 1, "negative id");
  // Bad ratings: non-numeric, non-finite, out of the format's range.
  ExpectLineError("1::2::abc\n", DataFormat::kMovieLens, 1,
                  "non-numeric rating");
  ExpectLineError("1::2::inf\n", DataFormat::kMovieLens, 1,
                  "non-finite rating");
  ExpectLineError("1::2::5.5\n", DataFormat::kMovieLens, 1,
                  "rating above movielens range");
  ExpectLineError("1:\n99,0.5,2005-01-01\n", DataFormat::kNetflix, 2,
                  "rating below netflix range");
  // Duplicate (user, item) pairs.
  ExpectLineError("1::2::3\n7::8::2\n1::2::4\n", DataFormat::kMovieLens,
                  3, "duplicate pair");
  // Netflix rating line before any section header.
  ExpectLineError("99,3,2005-01-01\n", DataFormat::kNetflix, 1,
                  "rating before header");

  // Empty file / header-only file: an error, not a zero-entry dataset.
  const std::string path = "io_test_empty.tmp";
  WriteFile(path, "");
  EXPECT_FALSE(io::LoadRatings(path, DataFormat::kMovieLens).ok());
  WriteFile(path, "userId,movieId,rating\n");
  EXPECT_FALSE(io::LoadRatings(path, DataFormat::kCsv).ok());
  std::remove(path.c_str());

  // Missing path: NotFound.
  auto missing =
      io::LoadRatings("no_such_ratings.dat", DataFormat::kMovieLens);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().code() == StatusCode::kNotFound);
}

void TestErrorBudget() {
  const std::string path = "io_test_budget.tmp";

  // 3 bad lines (non-numeric item, bad rating, truncated) interleaved
  // with 3 good ones. Budget 3 absorbs them; the report counts each with
  // its line; the surviving ratings are exactly the good lines, for any
  // thread count.
  WriteFile(path,
            "1::10::3\n1::xx::3\n2::10::9.5\n2::20::4\n3::30\n3::30::2\n");
  for (int threads : {1, 4}) {
    LoadOptions options;
    options.threads = threads;
    options.max_bad_lines = 3;
    auto data = io::LoadRatings(path, DataFormat::kMovieLens, options);
    EXPECT_TRUE(data.ok());
    if (!data.ok()) continue;
    EXPECT_EQ(data->ratings.size(), 3u);
    EXPECT_EQ(data->bad_lines.total, 3);
    EXPECT_EQ(data->bad_lines.sample.size(), 3u);
    // Quarantined lines arrive in file order with their line numbers.
    EXPECT_EQ(data->bad_lines.sample[0].line, 2);
    EXPECT_EQ(data->bad_lines.sample[1].line, 3);
    EXPECT_EQ(data->bad_lines.sample[2].line, 5);
    EXPECT_EQ(data->bad_lines.sample[0].file, path);
    EXPECT_TRUE(data->bad_lines.sample[0].detail.find("not an integer") !=
                std::string::npos);
    const Ratings expected = {{0, 0, 3.0f}, {1, 1, 4.0f}, {2, 2, 2.0f}};
    ExpectRatingsEqual(data->ratings, expected);
  }

  // Budget 2 with those same 3 bad lines: the load fails naming the
  // first line PAST the budget (line 5), again thread-count independent.
  for (int threads : {1, 4}) {
    LoadOptions options;
    options.threads = threads;
    options.max_bad_lines = 2;
    auto data = io::LoadRatings(path, DataFormat::kMovieLens, options);
    EXPECT_FALSE(data.ok());
    if (data.ok()) continue;
    EXPECT_TRUE(data.status().message().find(path + ":5:") !=
                std::string::npos);
  }

  // Duplicates draw from the same budget; the later record is dropped
  // and the first occurrence survives.
  WriteFile(path, "1::10::3\n2::20::4\n1::10::5\n");
  {
    LoadOptions options;
    options.max_bad_lines = 1;
    auto data = io::LoadRatings(path, DataFormat::kMovieLens, options);
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(data->ratings.size(), 2u);
      EXPECT_EQ(data->ratings[0].r, 3.0f);  // first occurrence kept
      EXPECT_EQ(data->bad_lines.total, 1);
      EXPECT_TRUE(data->bad_lines.sample[0].detail.find("duplicate") !=
                  std::string::npos);
      EXPECT_EQ(data->bad_lines.sample[0].line, 3);
    }
    // Parse-phase bad lines and duplicates share one budget: a budget of
    // 1 spent on a parse failure leaves nothing for the duplicate.
    WriteFile(path, "1::xx::3\n1::10::3\n2::20::4\n1::10::5\n");
    auto both = io::LoadRatings(path, DataFormat::kMovieLens, options);
    EXPECT_FALSE(both.ok());
    if (!both.ok()) {
      EXPECT_TRUE(both.status().message().find(path + ":4:") !=
                  std::string::npos);
    }
  }

  // Netflix: a headerless rating prefix is quarantined under budget too.
  WriteFile(path, "99,3,2005-01-01\n1:\n7,4,2005-01-02\n");
  {
    LoadOptions options;
    options.max_bad_lines = 1;
    auto data = io::LoadRatings(path, DataFormat::kNetflix, options);
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(data->ratings.size(), 1u);
      EXPECT_EQ(data->bad_lines.total, 1);
      EXPECT_TRUE(data->bad_lines.sample[0].detail.find("section header") !=
                  std::string::npos);
    }
  }

  // The sample is capped while the total stays exact.
  {
    std::string text;
    for (int i = 0; i < 30; ++i) text += "bad line " + std::to_string(i) + "\n";
    text += "1::10::3\n";
    WriteFile(path, text);
    LoadOptions options;
    options.max_bad_lines = 100;
    auto data = io::LoadRatings(path, DataFormat::kMovieLens, options);
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(data->bad_lines.total, 30);
      EXPECT_EQ(data->bad_lines.sample.size(),
                static_cast<size_t>(io::BadLineReport::kMaxSample));
    }
  }

  std::remove(path.c_str());
}

void TestCrlfAndBlankLines() {
  const std::string path = "io_test_crlf.tmp";
  WriteFile(path, "1::2::3\r\n\r\n4::5::2.5\r\n");
  auto data = io::LoadRatings(path, DataFormat::kMovieLens);
  EXPECT_TRUE(data.ok());
  if (data.ok()) {
    EXPECT_EQ(data->ratings.size(), 2u);
    EXPECT_EQ(data->ratings[0].r, 3.0f);
    EXPECT_EQ(data->ratings[1].r, 2.5f);
  }
  std::remove(path.c_str());
}

void TestLoadDatasetSplitAndParams() {
  const std::string path = "io_test_split.dat";
  Ratings original;
  for (int32_t i = 0; i < 100; ++i) {
    original.push_back({i % 25, i / 25, 1.0f + static_cast<float>(i % 5)});
  }
  EXPECT_TRUE(io::WriteMovieLens(path, original).ok());

  io::DatasetOptions options;
  options.test_fraction = 0.1;
  auto ds = io::LoadDataset(path, DataFormat::kMovieLens, {}, options);
  EXPECT_TRUE(ds.ok());
  if (ds.ok()) {
    EXPECT_EQ(ds->train_size(), 90);
    EXPECT_EQ(ds->test_size(), 10);
    EXPECT_EQ(ds->num_rows, 25);
    EXPECT_EQ(ds->num_cols, 4);
    // Format-default hyper-parameters: MovieLens Table I.
    EXPECT_EQ(ds->params.k, PresetSpec(DatasetPreset::kMovieLens).params.k);

    // The split is deterministic and parse-thread independent: the
    // fingerprint (which covers both splits) must match exactly.
    io::LoadOptions parallel;
    parallel.threads = 8;
    auto again =
        io::LoadDataset(path, DataFormat::kMovieLens, parallel, options);
    EXPECT_TRUE(again.ok());
    if (again.ok()) {
      EXPECT_TRUE(FingerprintDataset(*ds) == FingerprintDataset(*again));
    }
  }

  // No split: everything lands in train.
  io::DatasetOptions no_split;
  no_split.test_fraction = 0.0;
  auto all_train =
      io::LoadDataset(path, DataFormat::kMovieLens, {}, no_split);
  EXPECT_TRUE(all_train.ok());
  if (all_train.ok()) {
    EXPECT_EQ(all_train->train_size(), 100);
    EXPECT_EQ(all_train->test_size(), 0);
  }

  // Bad fractions: rejected, including (0.5, 1) which the modulo stride
  // could not honor.
  for (double fraction : {1.5, 0.8, -0.1}) {
    io::DatasetOptions bad;
    bad.test_fraction = fraction;
    EXPECT_FALSE(
        io::LoadDataset(path, DataFormat::kMovieLens, {}, bad).ok());
  }
  std::remove(path.c_str());
}

void TestLineChunking() {
  const std::string text = "aa\nbbb\nc\ndddd\ne\n";
  for (int max_chunks : {1, 2, 3, 16}) {
    auto chunks = SplitAtLineBoundaries(text, 0, max_chunks);
    EXPECT_TRUE(!chunks.empty());
    EXPECT_LE(chunks.size(), static_cast<size_t>(max_chunks));
    // Chunks tile the text exactly and cut only after newlines.
    EXPECT_EQ(chunks.front().begin, 0u);
    EXPECT_EQ(chunks.back().end, text.size());
    for (size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_LT(chunks[i].begin, chunks[i].end);
      if (i > 0) {
        EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
        EXPECT_EQ(text[chunks[i].begin - 1], '\n');
      }
    }
    // first_line bookkeeping matches a serial newline count.
    for (const LineChunk& chunk : chunks) {
      int64_t expected =
          1 + std::count(text.begin(),
                         text.begin() + static_cast<ptrdiff_t>(chunk.begin),
                         '\n');
      EXPECT_EQ(chunk.first_line, expected);
    }
  }
  // Degenerate inputs.
  EXPECT_TRUE(SplitAtLineBoundaries("", 0, 4).empty());
  EXPECT_TRUE(SplitAtLineBoundaries("abc", 3, 4).empty());
  auto one = SplitAtLineBoundaries("no newline at all", 0, 4);
  EXPECT_EQ(one.size(), 1u);
}

void TestCommittedSmokeFixtureLoads() {
  // The fixture CI feeds to the benches: sane shape, full id coverage.
  auto ds = io::LoadDataset(Fixture("ml_smoke.dat"),
                            DataFormat::kMovieLens);
  EXPECT_TRUE(ds.ok());
  if (!ds.ok()) return;
  EXPECT_EQ(ds->num_rows, 80);
  EXPECT_EQ(ds->num_cols, 50);
  EXPECT_TRUE(ds->train_size() > 2000);
  EXPECT_TRUE(ds->test_size() > 200);
  RatingStats stats = ComputeStats(ds->train);
  EXPECT_TRUE(stats.min_rating >= 0.5);
  EXPECT_TRUE(stats.max_rating <= 5.0);
}

}  // namespace

void RunAllTests() {
  TestFormatNames();
  TestGoldenMovieLensDat();
  TestGoldenCsvHeaderCrlf();
  TestGoldenNetflixCombined();
  TestNetflixPerMovieDirectory();
  TestRoundTripWriters();
  TestParallelSerialEquivalence();
  TestMalformedInputs();
  TestErrorBudget();
  TestCrlfAndBlankLines();
  TestLoadDatasetSplitAndParams();
  TestLineChunking();
  TestCommittedSmokeFixtureLoads();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
