// Kernel-dispatch suite: every compiled-in SIMD variant must agree with
// the scalar reference — factor updates and error sums within float
// summation tolerance, TopK orderings exactly, and checkpoint resume
// bit-identically under a fixed kernel. Also covers the dispatch /
// naming API, the zero-padding layout invariant the vector kernels rely
// on, the InitRandom degenerate-mean clamp, and the rate calibrator.
// Runs under ASan/UBSan in CI like every other test binary.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/hsgd.h"
#include "test_main.h"
#include "util/cpu_features.h"

namespace hsgd {
namespace {

std::vector<KernelKind> SupportedKinds() {
  std::vector<KernelKind> kinds = {KernelKind::kScalar};
  for (KernelKind kind : {KernelKind::kAvx2, KernelKind::kAvx512}) {
    if (KernelSupported(kind)) kinds.push_back(kind);
  }
  return kinds;
}

void TestKindNamesAndResolution() {
  EXPECT_EQ(std::string(KernelKindName(KernelKind::kAuto)), "auto");
  EXPECT_EQ(std::string(KernelKindName(KernelKind::kScalar)), "scalar");
  EXPECT_EQ(std::string(KernelKindName(KernelKind::kAvx2)), "avx2");
  EXPECT_EQ(std::string(KernelKindName(KernelKind::kAvx512)), "avx512");
  for (KernelKind kind : {KernelKind::kAuto, KernelKind::kScalar,
                          KernelKind::kAvx2, KernelKind::kAvx512}) {
    auto parsed = KernelKindByName(KernelKindName(kind));
    EXPECT_TRUE(parsed.ok());
    if (parsed.ok()) EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(KernelKindByName("sse9").ok());
  EXPECT_FALSE(KernelKindByName("").ok());

  // auto resolves to something concrete and supported.
  auto resolved = ResolveKernelKind(KernelKind::kAuto);
  EXPECT_TRUE(resolved.ok());
  if (resolved.ok()) {
    EXPECT_TRUE(*resolved != KernelKind::kAuto);
    EXPECT_TRUE(KernelSupported(*resolved));
    EXPECT_EQ(DefaultKernelOps().kind, *resolved);
  }
  // Scalar always resolves; an unsupported concrete kind is an error,
  // not a silent fallback.
  EXPECT_TRUE(ResolveKernelKind(KernelKind::kScalar).ok());
  for (KernelKind kind : {KernelKind::kAvx2, KernelKind::kAvx512}) {
    EXPECT_EQ(ResolveKernelKind(kind).ok(), KernelSupported(kind));
  }
  // PaddedStride rounds up to whole 64-byte lines.
  EXPECT_EQ(PaddedStride(1), 16);
  EXPECT_EQ(PaddedStride(16), 16);
  EXPECT_EQ(PaddedStride(17), 32);
  EXPECT_EQ(PaddedStride(128), 128);
}

Ratings RandomBlock(int64_t n, int32_t rows, int32_t cols, Rng* rng) {
  Ratings block(static_cast<size_t>(n));
  for (Rating& rt : block) {
    rt.u = static_cast<int32_t>(rng->UniformInt(rows));
    rt.v = static_cast<int32_t>(rng->UniformInt(cols));
    rt.r = 1.0f + 4.0f * rng->NextFloat();
  }
  return block;
}

Model RandomModel(int32_t rows, int32_t cols, int k, uint64_t seed) {
  Model model(rows, cols, k);
  Rng rng(seed);
  model.InitRandom(&rng, 3.5);
  return model;
}

/// Largest |a - b| over the logical lanes of two models' factors.
double MaxFactorDelta(const Model& a, const Model& b) {
  double max_delta = 0.0;
  for (int32_t u = 0; u < a.num_rows(); ++u) {
    for (int i = 0; i < a.k(); ++i) {
      max_delta = std::max(
          max_delta, std::fabs(static_cast<double>(a.Row(u)[i]) -
                               b.Row(u)[i]));
    }
  }
  for (int32_t v = 0; v < a.num_cols(); ++v) {
    for (int i = 0; i < a.k(); ++i) {
      max_delta = std::max(
          max_delta, std::fabs(static_cast<double>(a.Col(v)[i]) -
                               b.Col(v)[i]));
    }
  }
  return max_delta;
}

/// The padding lanes past k must be zero in every row — the invariant
/// that lets vector kernels sweep whole padded rows unmasked.
void ExpectPaddingZero(const Model& model) {
  bool all_zero = true;
  for (int32_t u = 0; u < model.num_rows(); ++u) {
    for (int i = model.k(); i < model.stride(); ++i) {
      all_zero = all_zero && model.Row(u)[i] == 0.0f;
    }
  }
  for (int32_t v = 0; v < model.num_cols(); ++v) {
    for (int i = model.k(); i < model.stride(); ++i) {
      all_zero = all_zero && model.Col(v)[i] == 0.0f;
    }
  }
  EXPECT_TRUE(all_zero);
}

// Scalar vs each SIMD variant on random blocks, including ranks that are
// not a multiple of any SIMD width (the padded-lane path).
void TestKernelEquivalence() {
  const int32_t rows = 300, cols = 250;
  for (int k : {8, 16, 100, 128}) {
    Rng block_rng(77);
    const Ratings block = RandomBlock(20000, rows, cols, &block_rng);
    const SgdHyper hyper{0.01f, 0.05f, 0.05f};

    Model reference = RandomModel(rows, cols, k, 11);
    const KernelOps& scalar = GetKernelOps(KernelKind::kScalar);
    const double scalar_sq =
        SgdUpdateBlock(&reference, block, hyper, &scalar);
    ExpectPaddingZero(reference);

    for (KernelKind kind : SupportedKinds()) {
      if (kind == KernelKind::kScalar) continue;
      const KernelOps& ops = GetKernelOps(kind);

      // dot: same operands, tolerance for FMA/summation-order effects.
      Model fresh = RandomModel(rows, cols, k, 11);
      float scalar_dot = scalar.dot(fresh.Row(3), fresh.Col(5), k);
      float simd_dot = ops.dot(fresh.Row(3), fresh.Col(5), k);
      EXPECT_NEAR(simd_dot, scalar_dot, 1e-4 * (1.0 + std::fabs(scalar_dot)));
      // Predict with pinned ops is that variant's dot, bitwise.
      EXPECT_EQ(fresh.Predict(3, 5, &ops), simd_dot);
      EXPECT_EQ(fresh.Predict(3, 5, &scalar), scalar_dot);

      // Fused SGD sweep: same start, factors land within tolerance.
      const double simd_sq = SgdUpdateBlock(&fresh, block, hyper, &ops);
      ExpectPaddingZero(fresh);
      EXPECT_NEAR(simd_sq, scalar_sq, 1e-3 * (1.0 + scalar_sq));
      EXPECT_LT(MaxFactorDelta(reference, fresh), 1e-3);

      // Squared-error reduction agrees on the updated factors.
      const double scalar_err =
          scalar.sq_err_block(reference.p_data(), reference.q_data(),
                              reference.stride(), k, block.data(),
                              static_cast<int64_t>(block.size()));
      const double simd_err =
          ops.sq_err_block(reference.p_data(), reference.q_data(),
                           reference.stride(), k, block.data(),
                           static_cast<int64_t>(block.size()));
      EXPECT_NEAR(simd_err, scalar_err, 1e-3 * (1.0 + scalar_err));

      // Batch scoring is bitwise-consistent with the variant's own dot
      // (the ranking contract), and near the scalar scores.
      std::vector<float> scores(static_cast<size_t>(cols));
      ops.score_block(reference.Row(0), reference.q_data(),
                      reference.stride(), k, 0, cols, scores.data());
      bool batch_matches_dot = true;
      double max_score_delta = 0.0;
      for (int32_t v = 0; v < cols; ++v) {
        batch_matches_dot =
            batch_matches_dot &&
            scores[static_cast<size_t>(v)] ==
                ops.dot(reference.Row(0), reference.Col(v), k);
        max_score_delta = std::max(
            max_score_delta,
            std::fabs(static_cast<double>(scores[static_cast<size_t>(v)]) -
                      scalar.dot(reference.Row(0), reference.Col(v), k)));
      }
      EXPECT_TRUE(batch_matches_dot);
      EXPECT_LT(max_score_delta, 1e-3);
    }
  }
}

// At learning rate zero the fused kernel's reported squared error must
// match the standalone reduction bitwise — they share one dot path.
void TestFrozenSweepMatchesReduction() {
  Rng rng(5);
  const Ratings block = RandomBlock(5000, 120, 90, &rng);
  for (KernelKind kind : SupportedKinds()) {
    const KernelOps& ops = GetKernelOps(kind);
    Model model = RandomModel(120, 90, 32, 9);
    const double frozen = ops.sgd_block(
        model.p_data(), model.q_data(), model.stride(), model.k(),
        block.data(), static_cast<int64_t>(block.size()), 0.0f, 0.0f,
        0.0f);
    const double reduced = ops.sq_err_block(
        model.p_data(), model.q_data(), model.stride(), model.k(),
        block.data(), static_cast<int64_t>(block.size()));
    EXPECT_EQ(frozen, reduced);
  }
}

// Identical TopK ordering (items AND scores' ranks) across every kernel.
void TestTopKOrderingEquivalence() {
  SyntheticSpec spec;
  spec.num_rows = 200;
  spec.num_cols = 300;
  spec.train_nnz = 8000;
  spec.test_nnz = 500;
  spec.params.k = 48;  // not a multiple of 16: exercises padded lanes
  auto ds = GenerateSynthetic(spec, 21);
  EXPECT_TRUE(ds.ok());
  Model model = RandomModel(ds->num_rows, ds->num_cols, ds->params.k, 33);

  const KernelOps& scalar = GetKernelOps(KernelKind::kScalar);
  Recommender ref(&model, ds->train, &scalar);
  for (KernelKind kind : SupportedKinds()) {
    const KernelOps& ops = GetKernelOps(kind);
    Recommender rec(&model, ds->train, &ops);
    for (int32_t user : {0, 57, 199}) {
      auto expected = ref.TopK(user, 25);
      auto got = rec.TopK(user, 25);
      EXPECT_TRUE(expected.ok());
      EXPECT_TRUE(got.ok());
      if (!expected.ok() || !got.ok()) continue;
      EXPECT_EQ(got->size(), expected->size());
      for (size_t i = 0; i < expected->size() && i < got->size(); ++i) {
        EXPECT_EQ((*got)[i].item, (*expected)[i].item);
      }
    }
  }
}

// Checkpoint -> restore -> finish is bit-identical per kernel, and the
// resolved kernel kind round-trips through the file.
void TestCheckpointResumeBitIdenticalPerKernel() {
  const std::string path = "kernels_test_ckpt.bin";
  SyntheticSpec spec;
  spec.num_rows = 400;
  spec.num_cols = 350;
  spec.train_nnz = 25000;
  spec.test_nnz = 2500;
  spec.params.k = 16;
  spec.params.learning_rate = 0.01f;
  auto ds_or = GenerateSynthetic(spec, 13);
  EXPECT_TRUE(ds_or.ok());
  Dataset ds = *std::move(ds_or);

  for (KernelKind kind : SupportedKinds()) {
    TrainConfig cfg;
    cfg.algorithm = Algorithm::kHsgdStar;
    cfg.hardware.num_cpu_threads = 4;
    cfg.max_epochs = 4;
    cfg.use_dataset_target = false;
    cfg.eval_threads = 2;
    cfg.kernel = kind;

    auto reference = Trainer::Train(ds, cfg);
    EXPECT_TRUE(reference.ok());

    auto session = Session::Create(ds, cfg);
    EXPECT_TRUE(session.ok());
    if (!session.ok()) continue;
    EXPECT_EQ((*session)->kernel(), kind);
    EXPECT_TRUE((*session)->RunEpoch().ok());
    EXPECT_TRUE((*session)->RunEpoch().ok());
    EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());

    auto restored = Session::Restore(path, ds);
    EXPECT_TRUE(restored.ok());
    if (!restored.ok()) continue;
    EXPECT_EQ((*restored)->kernel(), kind);
    EXPECT_FALSE((*restored)->config().calibrate);
    while (!(*restored)->Done()) {
      auto point = (*restored)->RunEpoch();
      EXPECT_TRUE(point.ok());
      if (!point.ok()) break;
    }
    const auto& got = (*restored)->trace().points;
    const auto& want = reference->trace.points;
    EXPECT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size() && i < want.size(); ++i) {
      EXPECT_EQ(got[i].time, want[i].time);
      EXPECT_EQ(got[i].test_rmse, want[i].test_rmse);
      EXPECT_EQ(got[i].train_rmse, want[i].train_rmse);
    }
  }
  std::remove(path.c_str());
}

// kAuto is pinned to a concrete kind at Create and that concrete kind is
// what the checkpoint stores.
void TestAutoKernelPinnedInCheckpoint() {
  const std::string path = "kernels_test_auto_ckpt.bin";
  SyntheticSpec spec;
  spec.num_rows = 120;
  spec.num_cols = 100;
  spec.train_nnz = 5000;
  spec.test_nnz = 500;
  spec.params.k = 8;
  auto ds_or = GenerateSynthetic(spec, 3);
  EXPECT_TRUE(ds_or.ok());
  Dataset ds = *std::move(ds_or);
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kCpuOnly;
  cfg.hardware.num_cpu_threads = 2;
  cfg.max_epochs = 2;
  cfg.use_dataset_target = false;
  cfg.kernel = KernelKind::kAuto;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  EXPECT_TRUE((*session)->kernel() != KernelKind::kAuto);
  EXPECT_TRUE((*session)->RunEpoch().ok());
  EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());
  auto ckpt = ReadCheckpoint(path);
  EXPECT_TRUE(ckpt.ok());
  if (ckpt.ok()) {
    EXPECT_EQ(ckpt->config.kernel, (*session)->kernel());
    // A stored kAuto can only be corruption (saves always pin a concrete
    // kind); restoring it would silently re-resolve per machine.
    SessionCheckpoint mutated = *ckpt;
    mutated.config.kernel = KernelKind::kAuto;
    EXPECT_TRUE(WriteCheckpoint(path, mutated).ok());
    EXPECT_FALSE(Session::Restore(path, ds).ok());
    // Likewise calibrate: saves always clear it after substituting the
    // measured rate; a stored true would re-measure nondeterministically.
    mutated = *ckpt;
    mutated.config.calibrate = true;
    EXPECT_TRUE(WriteCheckpoint(path, mutated).ok());
    EXPECT_FALSE(Session::Restore(path, ds).ok());
  }
  std::remove(path.c_str());
}

// A degenerate mean rating must not freeze training at all-zero factors.
void TestInitRandomDegenerateMean() {
  for (double mean : {0.0, -2.0}) {
    Model model(40, 30, 8);
    Rng rng(4);
    model.InitRandom(&rng, mean);
    int64_t nonzero = 0;
    for (int32_t u = 0; u < model.num_rows(); ++u) {
      for (int i = 0; i < model.k(); ++i) {
        nonzero += model.Row(u)[i] != 0.0f;
      }
    }
    EXPECT_LT(0, nonzero);
    ExpectPaddingZero(model);

    // And it actually trains: one sweep reduces the error on a block
    // whose ratings are all zero-mean-adjacent.
    Rng block_rng(6);
    Ratings block = RandomBlock(3000, 40, 30, &block_rng);
    const SgdHyper hyper{0.02f, 0.01f, 0.01f};
    double before = Rmse(model, block, nullptr);
    for (int sweep = 0; sweep < 5; ++sweep) {
      SgdUpdateBlock(&model, block, hyper);
    }
    EXPECT_LT(Rmse(model, block, nullptr), before);
  }
}

// Dense export/import round-trips the factors exactly at any stride.
void TestDenseRoundTrip() {
  Model model = RandomModel(50, 40, 20, 8);
  std::vector<float> p = model.DenseP();
  std::vector<float> q = model.DenseQ();
  EXPECT_EQ(p.size(), static_cast<size_t>(50 * 20));
  EXPECT_EQ(q.size(), static_cast<size_t>(40 * 20));
  Model other(50, 40, 20);
  other.SetDense(p, q);
  EXPECT_EQ(MaxFactorDelta(model, other), 0.0);
  ExpectPaddingZero(other);
}

void TestCalibrator() {
  for (KernelKind kind : SupportedKinds()) {
    const KernelCalibration cal =
        CalibrateKernel(kind, /*k=*/32, /*min_seconds=*/0.01);
    EXPECT_EQ(cal.kernel, kind);
    EXPECT_TRUE(std::isfinite(cal.updates_per_sec));
    EXPECT_LT(0.0, cal.updates_per_sec);
    // k=128 convention: rate scales by k/128.
    EXPECT_NEAR(cal.updates_per_sec_k128, cal.updates_per_sec * 32 / 128.0,
                1e-6 * cal.updates_per_sec);
  }
}

}  // namespace

void RunAllTests() {
  std::printf("cpu: avx2_usable=%d avx512_usable=%d; default kernel=%s\n",
              GetCpuFeatures().avx2_usable(),
              GetCpuFeatures().avx512_usable(),
              DefaultKernelOps().name);
  TestKindNamesAndResolution();
  TestKernelEquivalence();
  TestFrozenSweepMatchesReduction();
  TestTopKOrderingEquivalence();
  TestCheckpointResumeBitIdenticalPerKernel();
  TestAutoKernelPinnedInCheckpoint();
  TestInitRandomDegenerateMean();
  TestDenseRoundTrip();
  TestCalibrator();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
