// Observability-layer tests: histogram bucket/percentile math, lock-free
// counter exactness under contention, JSON/Prometheus export shape, the
// Chrome-trace writer, and the two session-level guarantees — attaching
// metrics+trace perturbs nothing (bit-identical runs), and the exported
// counters agree with the engine's own stats.
//
// obs/json.h is a writer only, so this file carries a tiny recursive-
// descent JSON parser to validate what the artifacts actually contain.

#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/hsgd.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_main.h"

namespace hsgd {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser (tests only). Parse() returns false on any syntax
// error; values land in a tree of JNodes.

struct JNode {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JNode> arr;
  std::vector<std::pair<std::string, JNode>> obj;

  const JNode* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JParser {
 public:
  explicit JParser(const std::string& text) : s_(text) {}

  bool Parse(JNode* out) {
    Skip();
    if (!Value(out)) return false;
    Skip();
    return pos_ == s_.size();
  }

 private:
  void Skip() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': case '\\': case '/': c = e; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            // Escaped control characters only; keep the raw code point's
            // low byte (enough for the ASCII artifacts we emit).
            const int code = std::stoi(s_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Value(JNode* out) {
    Skip();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == 'n') { out->kind = JNode::kNull; return Literal("null"); }
    if (c == 't') { out->kind = JNode::kBool; out->b = true; return Literal("true"); }
    if (c == 'f') { out->kind = JNode::kBool; out->b = false; return Literal("false"); }
    if (c == '"') { out->kind = JNode::kStr; return String(&out->str); }
    if (c == '[') {
      ++pos_;
      out->kind = JNode::kArr;
      Skip();
      if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        JNode elem;
        if (!Value(&elem)) return false;
        out->arr.push_back(std::move(elem));
        Skip();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '{') {
      ++pos_;
      out->kind = JNode::kObj;
      Skip();
      if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        Skip();
        std::string key;
        if (!String(&key)) return false;
        Skip();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        JNode val;
        if (!Value(&val)) return false;
        out->obj.emplace_back(std::move(key), std::move(val));
        Skip();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    // number
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->kind = JNode::kNum;
    out->num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool ParseJson(const std::string& text, JNode* out) {
  return JParser(text).Parse(out);
}

std::string ReadFileOrEmpty(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// ---------------------------------------------------------------------

void TestJsonWriterRoundTrip() {
  obs::Json root = obs::Json::Object();
  root.Set("int", obs::Json::Int(-42))
      .Set("pi", obs::Json::Double(3.25))
      .Set("s", obs::Json::Str("a\"b\\c\nd"))
      .Set("flag", obs::Json::Bool(true))
      .Set("nothing", obs::Json::Null())
      .Set("arr", obs::Json::Array()
                      .Push(obs::Json::Int(1))
                      .Push(obs::Json::Str("two"))
                      .Push(obs::Json::Object().Set(
                          "nested", obs::Json::Bool(false))));

  for (int indent : {0, 2}) {
    JNode parsed;
    EXPECT_TRUE(ParseJson(root.Dump(indent), &parsed));
    EXPECT_EQ(parsed.kind, JNode::kObj);
    EXPECT_EQ(parsed.Get("int")->num, -42.0);
    EXPECT_EQ(parsed.Get("pi")->num, 3.25);
    EXPECT_EQ(parsed.Get("s")->str, std::string("a\"b\\c\nd"));
    EXPECT_TRUE(parsed.Get("flag")->b);
    EXPECT_EQ(parsed.Get("nothing")->kind, JNode::kNull);
    EXPECT_EQ(parsed.Get("arr")->arr.size(), 3u);
    EXPECT_EQ(parsed.Get("arr")->arr[1].str, std::string("two"));
    EXPECT_FALSE(parsed.Get("arr")->arr[2].Get("nested")->b);
  }
  // Keys keep insertion order (artifacts must diff cleanly).
  JNode parsed;
  EXPECT_TRUE(ParseJson(root.Dump(0), &parsed));
  EXPECT_EQ(parsed.obj[0].first, std::string("int"));
  EXPECT_EQ(parsed.obj[5].first, std::string("arr"));
  // Non-finite doubles degrade to null, not invalid JSON.
  JNode nan_parsed;
  obs::Json bad = obs::Json::Object().Set(
      "nan", obs::Json::Double(std::nan("")));
  EXPECT_TRUE(ParseJson(bad.Dump(0), &nan_parsed));
  EXPECT_EQ(nan_parsed.Get("nan")->kind, JNode::kNull);
}

void TestHistogramBucketAndPercentileMath() {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("h", {1.0, 2.0, 4.0, 8.0});
  // One observation per finite bucket (edges are inclusive upper bounds)
  // plus one overflow.
  h->Observe(0.5);   // bucket 0
  h->Observe(2.0);   // == edge -> bucket 1
  h->Observe(3.0);   // bucket 2
  h->Observe(5.0);   // bucket 3
  h->Observe(100.0); // overflow

  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSnapshot& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.buckets.size(), 5u);
  for (int64_t b : hs.buckets) EXPECT_EQ(b, 1);
  EXPECT_EQ(hs.count, 5);
  EXPECT_NEAR(hs.sum, 110.5, 1e-12);
  EXPECT_NEAR(hs.Mean(), 22.1, 1e-12);
  // p50: target 2.5 observations -> middle of bucket [2, 4].
  EXPECT_NEAR(hs.Percentile(0.50), 3.0, 1e-12);
  // p10: target 0.5 -> halfway through bucket [0, 1].
  EXPECT_NEAR(hs.Percentile(0.10), 0.5, 1e-12);
  // Overflow bucket clamps to the last finite bound.
  EXPECT_NEAR(hs.Percentile(1.0), 8.0, 1e-12);
  // Out-of-range q clamps instead of exploding.
  EXPECT_NEAR(hs.Percentile(1.5), 8.0, 1e-12);
  EXPECT_NEAR(hs.Percentile(0.0), 0.0, 1e-12);
  // Empty histogram: percentile of nothing is 0.
  obs::HistogramSnapshot empty;
  empty.bounds = {1.0};
  empty.buckets = {0, 0};
  EXPECT_EQ(empty.Percentile(0.5), 0.0);

  EXPECT_EQ(obs::ExponentialBounds(1e-3, 2.0, 4),
            (std::vector<double>{1e-3, 2e-3, 4e-3, 8e-3}));
}

void TestConcurrentCountersSumExactly() {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("c");
  obs::Histogram* h = reg.histogram("lat", {0.5, 1.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(t % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Sharded cells lose nothing: the post-quiesce totals are exact.
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::HistogramSnapshot& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(hs.buckets[0], int64_t{kThreads} / 2 * kPerThread);
  EXPECT_EQ(hs.buckets[1], int64_t{kThreads} / 2 * kPerThread);
  EXPECT_EQ(hs.buckets[2], 0);
}

void TestRegistryExportShape() {
  obs::MetricsRegistry reg;
  reg.counter("a.count")->Add(7);
  reg.gauge("b.level")->Set(2.5);
  reg.histogram("c.lat", {1.0, 2.0})->Observe(1.5);
  // Find-or-create: same name, same object.
  EXPECT_EQ(reg.counter("a.count"), reg.counter("a.count"));

  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("a.count"), 7);
  EXPECT_EQ(snap.CounterValue("missing", -1), -1);
  EXPECT_NEAR(snap.GaugeValue("b.level"), 2.5, 1e-12);
  EXPECT_NEAR(snap.GaugeValue("missing", -2.0), -2.0, 1e-12);

  JNode parsed;
  EXPECT_TRUE(ParseJson(snap.ToJson().Dump(2), &parsed));
  EXPECT_EQ(parsed.Get("schema")->str, std::string("hsgd.metrics/v1"));
  EXPECT_EQ(parsed.Get("counters")->Get("a.count")->num, 7.0);
  EXPECT_EQ(parsed.Get("gauges")->Get("b.level")->num, 2.5);
  const JNode* hist = parsed.Get("histograms")->Get("c.lat");
  EXPECT_TRUE(hist != nullptr);
  EXPECT_EQ(hist->Get("count")->num, 1.0);
  EXPECT_EQ(hist->Get("buckets")->arr.size(), 3u);

  const std::string prom = snap.ToPrometheus();
  // Dots fold to underscores; buckets are cumulative with an +Inf edge.
  EXPECT_TRUE(prom.find("# TYPE a_count counter\na_count 7\n") !=
              std::string::npos);
  EXPECT_TRUE(prom.find("# TYPE b_level gauge\n") != std::string::npos);
  EXPECT_TRUE(prom.find("c_lat_bucket{le=\"+Inf\"} 1\n") !=
              std::string::npos);
  EXPECT_TRUE(prom.find("c_lat_count 1\n") != std::string::npos);

  // Null-safe helpers: detached (null) metric pointers are no-ops.
  obs::Add(nullptr, 3);
  obs::Increment(nullptr);
  obs::Set(nullptr, 1.0);
  obs::Observe(nullptr, 1.0);
}

void TestTracerWritesChromeJson() {
  const std::string path = "obs_test_trace.json";
  obs::Tracer tracer;
  tracer.SetThreadName(0, "session");
  tracer.SetThreadName(1, "gpu0");
  tracer.Span("device", "kernel", 1, 0.25, 0.75,
              {obs::TraceArg::Int("nnz", 1234)});
  tracer.Instant("sched", "steal", 1, 0.5,
                 {obs::TraceArg::Str("from", "cpu2"),
                  obs::TraceArg::Bool("dynamic", true),
                  obs::TraceArg::Double("gain", 0.125)});
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_TRUE(tracer.WriteJson(path).ok());

  JNode parsed;
  EXPECT_TRUE(ParseJson(ReadFileOrEmpty(path), &parsed));
  std::remove(path.c_str());
  const JNode* events = parsed.Get("traceEvents");
  EXPECT_TRUE(events != nullptr && events->kind == JNode::kArr);
  EXPECT_EQ(events->arr.size(), 4u);

  int metadata = 0, spans = 0, instants = 0;
  for (const JNode& e : events->arr) {
    const std::string ph = e.Get("ph")->str;
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.Get("name")->str, std::string("thread_name"));
      continue;
    }
    // Every real event correlates virtual and wall time.
    EXPECT_TRUE(e.Get("args")->Get("wall_ms") != nullptr);
    if (ph == "X") {
      ++spans;
      // Virtual seconds land in the viewer as microseconds.
      EXPECT_NEAR(e.Get("ts")->num, 0.25e6, 1e-6);
      EXPECT_NEAR(e.Get("dur")->num, 0.5e6, 1e-6);
      EXPECT_EQ(e.Get("args")->Get("nnz")->num, 1234.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.Get("s")->str, std::string("t"));
      EXPECT_EQ(e.Get("args")->Get("from")->str, std::string("cpu2"));
      EXPECT_TRUE(e.Get("args")->Get("dynamic")->b);
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
}

// ---------------------------------------------------------------------
// Session-level: exported metrics agree with the engine's own stats, the
// trace is well-formed and monotone in virtual time, and attaching the
// whole layer changes nothing about the simulation.

Dataset ObsDataset() {
  SyntheticSpec spec;
  spec.num_rows = 400;
  spec.num_cols = 300;
  spec.train_nnz = 20000;
  spec.test_nnz = 2000;
  spec.params.k = 16;
  spec.params.learning_rate = 0.01f;
  spec.noise_stddev = 0.3;
  auto ds = GenerateSynthetic(spec, /*seed=*/11);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TrainConfig ObsConfig() {
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgdStar;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = 4;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return cfg;
}

void TestSessionMetricsAgreeWithStats() {
  const Dataset ds = ObsDataset();
  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  auto session = Session::Create(ds, ObsConfig());
  EXPECT_TRUE(session.ok());
  (*session)->SetObservability({&reg, &tracer});
  EXPECT_TRUE((*session)->metrics() == &reg);
  EXPECT_TRUE((*session)->RunToCompletion().ok());

  const TrainStats stats = (*session)->stats();
  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("session.epochs"),
            (*session)->epochs_run());
  EXPECT_EQ(snap.CounterValue("session.blocks"), stats.sim.block_tasks);
  EXPECT_EQ(snap.CounterValue("sched.steals_by_gpu"),
            stats.sim.stolen_by_gpus);
  EXPECT_EQ(snap.CounterValue("sched.steals_by_cpu"),
            stats.sim.stolen_by_cpus);
  EXPECT_NEAR(snap.GaugeValue("session.sim_clock"), stats.sim.seconds,
              1e-12);
  EXPECT_EQ(snap.GaugeValue("session.epoch"),
            static_cast<double>((*session)->epochs_run()));
  // Block-duration histogram saw every task.
  bool found = false;
  for (const auto& [name, hs] : snap.histograms) {
    if (name == "session.block_sim_seconds") {
      found = true;
      EXPECT_EQ(hs.count, stats.sim.block_tasks);
      EXPECT_LT(0.0, hs.sum);
    }
  }
  EXPECT_TRUE(found);

  // The trace carries the run: write, parse, and check virtual-time
  // sanity — events inside the clock range, epoch spans monotone.
  const std::string path = "obs_test_session_trace.json";
  EXPECT_TRUE(tracer.WriteJson(path).ok());
  JNode parsed;
  EXPECT_TRUE(ParseJson(ReadFileOrEmpty(path), &parsed));
  std::remove(path.c_str());
  const JNode* events = parsed.Get("traceEvents");
  EXPECT_TRUE(events != nullptr);
  const double clock_us = stats.sim.seconds * 1e6 + 1e-3;
  double last_epoch_ts = -1.0;
  int epoch_spans = 0;
  bool saw_device = false, saw_transfer = false;
  for (const JNode& e : events->arr) {
    if (e.Get("ph")->str == "M") continue;
    const double ts = e.Get("ts")->num;
    EXPECT_LE(0.0, ts);
    EXPECT_LE(ts, clock_us);
    const std::string cat = e.Get("cat")->str;
    if (cat == "device") saw_device = true;
    if (cat == "transfer") saw_transfer = true;
    if (cat == "session") {
      // Epoch spans close at the barrier, so they are clock-bounded and
      // strictly ordered. (Device/transfer spans may legitimately end
      // past the final barrier: a resident-column block's modeled D2H
      // tail is pipelined out and never gates the epoch.)
      ++epoch_spans;
      const JNode* dur = e.Get("dur");
      if (dur != nullptr) EXPECT_LE(ts + dur->num, clock_us);
      EXPECT_LT(last_epoch_ts, ts);
      last_epoch_ts = ts;
    }
  }
  EXPECT_EQ(epoch_spans, (*session)->epochs_run());
  EXPECT_TRUE(saw_device);
  EXPECT_TRUE(saw_transfer);
}

void TestMetricsOffRunsBitIdentical() {
  const Dataset ds = ObsDataset();
  const TrainConfig cfg = ObsConfig();

  auto plain = Session::Create(ds, cfg);
  EXPECT_TRUE(plain.ok());
  EXPECT_TRUE((*plain)->RunToCompletion().ok());

  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  auto observed = Session::Create(ds, cfg);
  EXPECT_TRUE(observed.ok());
  (*observed)->SetObservability({&reg, &tracer});
  EXPECT_TRUE((*observed)->RunToCompletion().ok());

  // The observability layer is passive: same trace points, same clock,
  // same factors, bit for bit.
  const Trace& a = (*plain)->trace();
  const Trace& b = (*observed)->trace();
  EXPECT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size() && i < b.points.size(); ++i) {
    EXPECT_EQ(a.points[i].epoch, b.points[i].epoch);
    EXPECT_EQ(a.points[i].time, b.points[i].time);
    EXPECT_EQ(a.points[i].test_rmse, b.points[i].test_rmse);
    EXPECT_EQ(a.points[i].train_rmse, b.points[i].train_rmse);
  }
  EXPECT_EQ((*plain)->stats().sim.seconds,
            (*observed)->stats().sim.seconds);
  EXPECT_TRUE((*plain)->model().DenseP() == (*observed)->model().DenseP());
  EXPECT_TRUE((*plain)->model().DenseQ() == (*observed)->model().DenseQ());
  // And the unobserved session exports nothing.
  EXPECT_TRUE((*plain)->metrics() == nullptr);
}

}  // namespace

void RunAllTests() {
  TestJsonWriterRoundTrip();
  TestHistogramBucketAndPercentileMath();
  TestConcurrentCountersSumExactly();
  TestRegistryExportShape();
  TestTracerWritesChromeJson();
  TestSessionMetricsAgreeWithStats();
  TestMetricsOffRunsBitIdentical();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
