// Recommender::TopK edge cases on hand-built factor models: k beyond the
// catalog, a user with every item rated, out-of-range queries, and
// deterministic tie-breaking — the serving-facade counterpart of
// session_test's trained-model agreement checks.

#include <vector>

#include "core/model.h"
#include "core/recommender.h"
#include "test_main.h"

namespace hsgd {
namespace {

/// A model whose scores are trivially predictable: p_u = (1, 0),
/// q_v = (weight_v, 0), so score(u, v) == weight_v for every user.
Model WeightedModel(int32_t num_users, const std::vector<float>& weights) {
  Model model(num_users, static_cast<int32_t>(weights.size()), /*k=*/2);
  for (int32_t u = 0; u < num_users; ++u) {
    model.Row(u)[0] = 1.0f;
    model.Row(u)[1] = 0.0f;
  }
  for (size_t v = 0; v < weights.size(); ++v) {
    model.Col(static_cast<int32_t>(v))[0] = weights[v];
    model.Col(static_cast<int32_t>(v))[1] = 0.0f;
  }
  return model;
}

void TestKLargerThanCatalog() {
  Model model = WeightedModel(2, {0.5f, 2.0f, 1.0f, 3.0f});
  Ratings rated = {{0, 1, 5.0f}};  // user 0 already rated item 1
  Recommender rec(&model, rated);

  auto top = rec.TopK(0, 100);
  EXPECT_TRUE(top.ok());
  if (!top.ok()) return;
  // Everything unrated comes back, highest score first.
  EXPECT_EQ(top->size(), 3u);
  EXPECT_EQ((*top)[0].item, 3);
  EXPECT_EQ((*top)[1].item, 2);
  EXPECT_EQ((*top)[2].item, 0);
  // A user with no exclusions gets the full catalog.
  auto all = rec.TopK(1, 100);
  EXPECT_TRUE(all.ok());
  if (all.ok()) EXPECT_EQ(all->size(), 4u);
}

void TestUserWithAllItemsRated() {
  Model model = WeightedModel(2, {1.0f, 2.0f, 3.0f});
  Ratings rated = {{0, 0, 1.0f}, {0, 1, 1.0f}, {0, 2, 1.0f}};
  Recommender rec(&model, rated);
  EXPECT_EQ(rec.NumRated(0), 3);

  // Nothing left to recommend: an empty result, not an error.
  auto top = rec.TopK(0, 5);
  EXPECT_TRUE(top.ok());
  if (top.ok()) EXPECT_EQ(top->size(), 0u);
  // The other user is unaffected.
  auto other = rec.TopK(1, 2);
  EXPECT_TRUE(other.ok());
  if (other.ok()) EXPECT_EQ(other->size(), 2u);
}

void TestInvalidQueries() {
  Model model = WeightedModel(3, {1.0f, 2.0f});
  Recommender rec(&model, {});
  EXPECT_FALSE(rec.TopK(-1, 1).ok());
  EXPECT_FALSE(rec.TopK(3, 1).ok());
  EXPECT_FALSE(rec.TopK(0, 0).ok());
  EXPECT_FALSE(rec.TopK(0, -4).ok());
  // Out-of-range users have no exclusion list.
  EXPECT_EQ(rec.NumRated(-1), 0);
  EXPECT_EQ(rec.NumRated(3), 0);
}

void TestDeterministicTieBreaks() {
  // All scores equal: the ranking must fall back to ascending item id,
  // both inside the returned window and at the eviction boundary.
  Model flat = WeightedModel(1, {7.0f, 7.0f, 7.0f, 7.0f, 7.0f, 7.0f});
  Recommender rec(&flat, {});
  auto top = rec.TopK(0, 4);
  EXPECT_TRUE(top.ok());
  if (top.ok()) {
    EXPECT_EQ(top->size(), 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ((*top)[i].item, i);
  }

  // Mixed ties: equal-score runs stay id-ordered among themselves.
  Model mixed = WeightedModel(1, {2.0f, 1.0f, 2.0f, 3.0f, 1.0f});
  Recommender rec2(&mixed, {});
  auto ranked = rec2.TopK(0, 5);
  EXPECT_TRUE(ranked.ok());
  if (ranked.ok()) {
    const std::vector<int32_t> expected = {3, 0, 2, 1, 4};
    EXPECT_EQ(ranked->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*ranked)[i].item, expected[i]);
    }
  }
}

void TestDuplicateAndOutOfRangeExclusions() {
  Model model = WeightedModel(2, {1.0f, 2.0f, 3.0f});
  // Duplicate observations collapse; entries outside the model's
  // dimensions are ignored rather than crashing.
  Ratings rated = {{0, 2, 1.0f}, {0, 2, 4.0f}, {0, 99, 1.0f},
                   {99, 1, 1.0f}, {-3, 0, 1.0f}, {1, -7, 1.0f}};
  Recommender rec(&model, rated);
  EXPECT_EQ(rec.NumRated(0), 1);
  EXPECT_EQ(rec.NumRated(1), 0);
  auto top = rec.TopK(0, 3);
  EXPECT_TRUE(top.ok());
  if (top.ok()) {
    EXPECT_EQ(top->size(), 2u);
    EXPECT_EQ((*top)[0].item, 1);
    EXPECT_EQ((*top)[1].item, 0);
  }
}

}  // namespace

void RunAllTests() {
  TestKLargerThanCatalog();
  TestUserWithAllItemsRated();
  TestInvalidQueries();
  TestDeterministicTieBreaks();
  TestDuplicateAndOutOfRangeExclusions();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
