#include <optional>
#include <set>
#include <vector>

#include "sched/star_scheduler.h"
#include "sched/uniform_scheduler.h"
#include "test_main.h"

namespace hsgd {
namespace {

Ratings RandomRatings(int64_t nnz, int32_t rows, int32_t cols,
                      uint64_t seed) {
  Rng rng(seed);
  Ratings out;
  out.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) {
    out.push_back({static_cast<int32_t>(rng.UniformInt(rows)),
                   static_cast<int32_t>(rng.UniformInt(cols)),
                   rng.NextFloat()});
  }
  return out;
}

/// Drives `scheduler` with `workers` greedy virtual workers and checks the
/// exclusivity invariant on every set of concurrently-held tasks.
void DriveEpochCheckingExclusivity(Scheduler* scheduler,
                                   const std::vector<WorkerInfo>& workers,
                                   std::vector<int>* block_counts) {
  scheduler->BeginEpoch();
  std::vector<std::optional<BlockTask>> held(workers.size());
  bool progress = true;
  while (!scheduler->EpochDone()) {
    EXPECT_TRUE(progress);  // otherwise the scheduler deadlocked
    if (!progress) return;
    progress = false;
    // Fill every idle worker.
    for (size_t w = 0; w < workers.size(); ++w) {
      if (held[w].has_value()) continue;
      held[w] = scheduler->Acquire(workers[w], 0.0);
      if (held[w].has_value()) progress = true;
    }
    // Exclusivity: no two outstanding tasks share a stratum.
    std::set<int> rows_held, cols_held;
    for (const auto& task : held) {
      if (!task.has_value()) continue;
      EXPECT_TRUE(rows_held.insert(task->row).second);
      EXPECT_TRUE(cols_held.insert(task->col).second);
    }
    // Release in worker order.
    for (size_t w = 0; w < workers.size(); ++w) {
      if (!held[w].has_value()) continue;
      ++(*block_counts)[static_cast<size_t>(held[w]->block)];
      scheduler->Release(workers[w], *held[w], 0.0);
      held[w].reset();
      progress = true;
    }
  }
}

void TestUniformSchedulerCoverage() {
  const int32_t rows = 300, cols = 300;
  Ratings ratings = RandomRatings(20000, rows, cols, 11);
  auto grid = BuildBalancedGrid(ratings, rows, cols, 5, 5);
  EXPECT_TRUE(grid.ok());
  Rng rng(2);
  auto matrix = BlockedMatrix::Build(ratings, *grid, &rng);
  EXPECT_TRUE(matrix.ok());

  UniformScheduler scheduler(&*matrix, &*grid, {}, Rng(5));
  std::vector<WorkerInfo> workers;
  for (int t = 0; t < 4; ++t) {
    workers.push_back({DeviceClass::kCpuThread, t, t});
  }
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<int> counts(static_cast<size_t>(matrix->num_blocks()), 0);
    DriveEpochCheckingExclusivity(&scheduler, workers, &counts);
    // Every non-empty block processed exactly once per epoch.
    for (int b = 0; b < matrix->num_blocks(); ++b) {
      EXPECT_EQ(counts[static_cast<size_t>(b)],
                matrix->BlockNnz(b) > 0 ? 1 : 0);
    }
  }
}

void TestSingleWorkerDrain() {
  const int32_t rows = 100, cols = 100;
  Ratings ratings = RandomRatings(5000, rows, cols, 13);
  auto grid = BuildBalancedGrid(ratings, rows, cols, 3, 4);
  auto matrix = BlockedMatrix::Build(ratings, *grid, nullptr);
  EXPECT_TRUE(matrix.ok());
  UniformScheduler scheduler(&*matrix, &*grid, {}, Rng(1));
  WorkerInfo solo{DeviceClass::kCpuThread, 0, 0};
  scheduler.BeginEpoch();
  int drained = 0;
  while (auto task = scheduler.Acquire(solo, 0.0)) {
    scheduler.Release(solo, *task, 0.0);
    ++drained;
  }
  EXPECT_TRUE(scheduler.EpochDone());
  int non_empty = 0;
  for (int b = 0; b < matrix->num_blocks(); ++b) {
    non_empty += matrix->BlockNnz(b) > 0 ? 1 : 0;
  }
  EXPECT_EQ(drained, non_empty);
}

struct StarFixture {
  Ratings ratings;
  StatusOr<Grid> grid = Status::Internal("unset");
  StatusOr<BlockedMatrix> matrix = Status::Internal("unset");
  std::vector<WorkerInfo> workers;
  StarSchedulerOptions options;

  explicit StarFixture(int num_gpus = 1, int num_cpus = 3) {
    const int32_t rows = 400, cols = 400;
    ratings = RandomRatings(30000, rows, cols, 21);
    std::vector<double> shares;
    double alpha = 0.5;
    for (int g = 0; g < num_gpus; ++g) shares.push_back(alpha / num_gpus);
    for (int t = 0; t < num_cpus; ++t) {
      shares.push_back((1.0 - alpha) / num_cpus);
    }
    grid = BuildGridWithColShares(ratings, rows, cols, num_gpus + num_cpus,
                                  shares);
    EXPECT_TRUE(grid.ok());
    matrix = BlockedMatrix::Build(ratings, *grid, nullptr);
    EXPECT_TRUE(matrix.ok());
    int idx = 0;
    for (int t = 0; t < num_cpus; ++t) {
      workers.push_back({DeviceClass::kCpuThread, t, idx++});
    }
    for (int g = 0; g < num_gpus; ++g) {
      workers.push_back({DeviceClass::kGpu, g, idx++});
    }
    options.num_gpu_stripes = num_gpus;
    options.num_cpu_stripes = num_cpus;
  }
};

void TestStarOwnStripePreference() {
  StarFixture f;
  f.options.dynamic = true;
  StarScheduler scheduler(&*f.matrix, &*f.grid, f.options, Rng(3));
  std::vector<int> counts(static_cast<size_t>(f.matrix->num_blocks()), 0);
  DriveEpochCheckingExclusivity(&scheduler, f.workers, &counts);
  for (int b = 0; b < f.matrix->num_blocks(); ++b) {
    EXPECT_EQ(counts[static_cast<size_t>(b)],
              f.matrix->BlockNnz(b) > 0 ? 1 : 0);
  }

  // A fresh epoch: a worker's first (non-stolen) acquire is in its stripe.
  scheduler.BeginEpoch();
  for (const WorkerInfo& w : f.workers) {
    auto task = scheduler.Acquire(w, 0.0);
    EXPECT_TRUE(task.has_value());
    EXPECT_FALSE(task->stolen);
    EXPECT_EQ(task->col, scheduler.StripeOf(w));
    scheduler.Release(w, *task, 0.0);
  }
}

void TestStarStaticIdlesWhenDrained() {
  StarFixture f;
  f.options.dynamic = false;
  StarScheduler scheduler(&*f.matrix, &*f.grid, f.options, Rng(3));
  scheduler.BeginEpoch();
  const WorkerInfo& gpu = f.workers.back();
  // Drain the GPU stripe completely.
  while (auto task = scheduler.Acquire(gpu, 0.0)) {
    EXPECT_EQ(task->col, scheduler.StripeOf(gpu));
    scheduler.Release(gpu, *task, 0.0);
  }
  // Static division: CPU work remains but the GPU gets nothing.
  EXPECT_FALSE(scheduler.EpochDone());
  EXPECT_FALSE(scheduler.Acquire(gpu, 0.0).has_value());
  EXPECT_EQ(scheduler.stolen_by_gpus(), 0);
}

void TestStarDynamicSteals() {
  StarFixture f;
  f.options.dynamic = true;
  StarScheduler scheduler(&*f.matrix, &*f.grid, f.options, Rng(3));
  scheduler.BeginEpoch();
  const WorkerInfo& gpu = f.workers.back();
  int own = 0, stolen = 0;
  // A lone greedy GPU drains its own stripe, then steals from the CPU
  // pool while the pool's backlog exceeds one block per stripe (the
  // anti-straggler threshold deliberately leaves the tail to the owners).
  while (auto task = scheduler.Acquire(gpu, 0.0)) {
    task->stolen ? ++stolen : ++own;
    scheduler.Release(gpu, *task, 0.0);
  }
  EXPECT_TRUE(own > 0);
  EXPECT_TRUE(stolen > 0);
  EXPECT_TRUE(scheduler.stolen_by_gpus() > 0);
  EXPECT_EQ(scheduler.stolen_by_cpus(), 0);
  EXPECT_FALSE(scheduler.EpochDone());
  int leftovers = 0;
  for (const WorkerInfo& w : f.workers) {
    if (w.device_class == DeviceClass::kGpu) continue;
    while (auto task = scheduler.Acquire(w, 0.0)) {
      EXPECT_FALSE(task->stolen);
      scheduler.Release(w, *task, 0.0);
      ++leftovers;
    }
  }
  // The owners mop up the protected tail (at most one block per stripe
  // survived the stealing phase) and the epoch completes.
  EXPECT_TRUE(leftovers > 0);
  EXPECT_LE(leftovers, f.options.num_cpu_stripes);
  EXPECT_TRUE(scheduler.EpochDone());
}

}  // namespace

void RunAllTests() {
  TestUniformSchedulerCoverage();
  TestSingleWorkerDrain();
  TestStarOwnStripePreference();
  TestStarStaticIdlesWhenDrained();
  TestStarDynamicSteals();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
