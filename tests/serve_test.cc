// Serving subsystem tests: snapshot publication under concurrent readers
// (never a torn model mix), batched TopK bit-identical to the sequential
// facade, deadline shedding accounted exactly, and cold users answered
// with a typed Status instead of a crash.

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"
#include "core/recommender.h"
#include "core/session.h"
#include "io/loader.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "test_main.h"

namespace hsgd {
namespace {

using serve::FactorSnapshot;
using serve::RecServer;
using serve::ServeConfig;
using serve::SnapshotHolder;
using serve::SnapshotPtr;
using serve::TopKQuery;
using serve::TopKRequest;

/// A model where score(u, v) == weight for EVERY (u, v): p_u = (1, 0),
/// q_v = (weight, 0). A snapshot built from it answers every query with
/// scores uniformly equal to `weight`, so any mixing of two snapshots
/// inside one response is detectable as non-uniform scores.
SnapshotPtr UniformSnapshot(int32_t num_users, int32_t num_items,
                            float weight, uint64_t version) {
  Model model(num_users, num_items, /*k=*/2);
  for (int32_t u = 0; u < num_users; ++u) model.Row(u)[0] = 1.0f;
  for (int32_t v = 0; v < num_items; ++v) model.Col(v)[0] = weight;
  auto snap = FactorSnapshot::FromModel(model, {}, version);
  EXPECT_TRUE(snap.ok());
  return snap.ok() ? *snap : nullptr;
}

/// Deterministic pseudo-random factors (tiny LCG; no libm, no RNG state
/// shared with anything else).
float NextFloat(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return static_cast<float>(*state >> 8) / 16777216.0f * 2.0f - 1.0f;
}

void TestSnapshotSwapUnderConcurrentReaders() {
  SnapshotHolder holder;
  const int kVersions = 2;
  SnapshotPtr snaps[kVersions] = {
      UniformSnapshot(4, 64, 1.0f, 1),
      UniformSnapshot(4, 64, 2.0f, 2),
  };
  holder.Publish(snaps[0]);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad{0};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::vector<float> scratch;
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotPtr snap = holder.Acquire();
        if (snap == nullptr) {
          bad.fetch_add(1);
          continue;
        }
        // The snapshot a reader pinned must be internally consistent:
        // its version tags the weight every score must equal, even while
        // the publisher flips slots underneath us.
        const float want = static_cast<float>(snap->version());
        TopKQuery query{0, 8};
        auto results = serve::BatchTopK(*snap, &query, 1, nullptr, &scratch);
        if (!results[0].ok()) {
          bad.fetch_add(1);
          continue;
        }
        for (const ScoredItem& item : *results[0]) {
          if (item.score != want) bad.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    holder.Publish(snaps[i % kVersions]);
    // On a single core (notably under sanitizers) the publisher can
    // finish all 2000 publishes before any reader gets a time slice;
    // yield so the reads-happened assertion below is meaningful.
    if (i % 16 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& thread : readers) thread.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_LT(0, reads.load());
  // 1 initial + 2000 in the loop.
  EXPECT_EQ(holder.publishes(), 2001);
  // The last published snapshot is the one served now.
  SnapshotPtr last = holder.Acquire();
  EXPECT_TRUE(last != nullptr);
  if (last != nullptr) EXPECT_EQ(last->version(), 2u);
}

void TestBatchedMatchesSequentialBitwise() {
  const int32_t kUsers = 6;
  const int32_t kItems = 3000;  // spans 3 tiles of kTopKTile
  const int kRank = 24;
  Model model(kUsers, kItems, kRank);
  uint32_t state = 42;
  for (int32_t u = 0; u < kUsers; ++u) {
    for (int f = 0; f < kRank; ++f) model.Row(u)[f] = NextFloat(&state);
  }
  for (int32_t v = 0; v < kItems; ++v) {
    for (int f = 0; f < kRank; ++f) model.Col(v)[f] = NextFloat(&state);
  }
  Ratings rated;
  for (int32_t u = 0; u < kUsers; ++u) {
    for (int32_t v = u; v < kItems; v += 7 + u) rated.push_back({u, v, 1.0f});
  }

  Recommender rec(&model, rated);
  auto snap = FactorSnapshot::FromModel(model, rated, /*version=*/7);
  EXPECT_TRUE(snap.ok());
  if (!snap.ok()) return;

  std::vector<TopKQuery> queries;
  for (int32_t u = 0; u < kUsers; ++u) queries.push_back({u, 10 + u});
  std::vector<float> scratch;
  auto batched =
      serve::BatchTopK(**snap, queries.data(), queries.size(), nullptr,
                       &scratch);
  EXPECT_EQ(batched.size(), queries.size());

  std::vector<float> buffer;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto sequential = rec.TopK(queries[i].user, queries[i].k, &buffer);
    EXPECT_TRUE(sequential.ok());
    EXPECT_TRUE(batched[i].ok());
    if (!sequential.ok() || !batched[i].ok()) continue;
    EXPECT_EQ(batched[i]->size(), sequential->size());
    if (batched[i]->size() != sequential->size()) continue;
    for (size_t r = 0; r < sequential->size(); ++r) {
      EXPECT_EQ((*batched[i])[r].item, (*sequential)[r].item);
      // Bitwise, not approximate: both paths issue identical score_block
      // calls, so the floats must be the same bits.
      EXPECT_EQ(std::memcmp(&(*batched[i])[r].score,
                            &(*sequential)[r].score, sizeof(float)),
                0);
    }
  }

  // The buffer overload agrees with the allocating one.
  auto plain = rec.TopK(2, 12);
  auto buffered = rec.TopK(2, 12, &buffer);
  EXPECT_TRUE(plain.ok());
  EXPECT_TRUE(buffered.ok());
  if (plain.ok() && buffered.ok()) {
    EXPECT_EQ(plain->size(), buffered->size());
    for (size_t r = 0; r < plain->size(); ++r) {
      EXPECT_EQ((*plain)[r].item, (*buffered)[r].item);
      EXPECT_EQ((*plain)[r].score, (*buffered)[r].score);
    }
  }
}

void TestServerAnswersMatchFacade() {
  const int32_t kUsers = 8;
  const int32_t kItems = 500;
  Model model(kUsers, kItems, 8);
  uint32_t state = 7;
  for (int32_t u = 0; u < kUsers; ++u) {
    for (int f = 0; f < 8; ++f) model.Row(u)[f] = NextFloat(&state);
  }
  for (int32_t v = 0; v < kItems; ++v) {
    for (int f = 0; f < 8; ++f) model.Col(v)[f] = NextFloat(&state);
  }
  Ratings rated = {{0, 3, 1.0f}, {0, 4, 1.0f}, {5, 100, 1.0f}};
  Recommender rec(&model, rated);
  auto snap = FactorSnapshot::FromModel(model, rated, 1);
  EXPECT_TRUE(snap.ok());
  if (!snap.ok()) return;

  ServeConfig config;
  config.shards = 2;
  auto server = RecServer::Create(config, *snap);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;

  // Overlapped submits across shards; every answer must equal the facade.
  std::vector<std::future<StatusOr<serve::TopKResponse>>> futures;
  for (int32_t u = 0; u < kUsers; ++u) {
    TopKRequest request;
    request.user = u;
    request.k = 9;
    futures.push_back((*server)->Submit(request));
  }
  for (int32_t u = 0; u < kUsers; ++u) {
    auto response = futures[u].get();
    EXPECT_TRUE(response.ok());
    if (!response.ok()) continue;
    EXPECT_EQ(response->snapshot_version, 1u);
    auto expected = rec.TopK(u, 9);
    EXPECT_TRUE(expected.ok());
    if (!expected.ok()) continue;
    EXPECT_EQ(response->items.size(), expected->size());
    if (response->items.size() != expected->size()) continue;
    for (size_t r = 0; r < expected->size(); ++r) {
      EXPECT_EQ(response->items[r].item, (*expected)[r].item);
      EXPECT_EQ(response->items[r].score, (*expected)[r].score);
    }
  }

  (*server)->Shutdown();
  auto counters = (*server)->counters();
  EXPECT_EQ(counters.requests, kUsers);
  EXPECT_EQ(counters.ok, kUsers);
  EXPECT_EQ(counters.shed_deadline, 0);
  EXPECT_EQ(counters.rejected, 0);
  // Post-shutdown submits are rejected, typed Unavailable.
  auto late = (*server)->Query({0, false, 3});
  EXPECT_TRUE(late.status().code() == StatusCode::kUnavailable);
}

void TestMidLoadSwapNeverTorn() {
  SnapshotPtr snaps[2] = {
      UniformSnapshot(16, 256, 1.0f, 1),
      UniformSnapshot(16, 256, 2.0f, 2),
  };
  ServeConfig config;
  config.shards = 4;
  config.max_batch = 8;
  auto server = RecServer::Create(config, snaps[0]);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad{0};
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      int32_t user = c % 16;
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = (*server)->Query({user, false, 5});
        if (!response.ok()) {
          bad.fetch_add(1);
          continue;
        }
        // Every score in one response must match the version that claims
        // to have produced it — a mixed response means a torn swap.
        const float want = static_cast<float>(response->snapshot_version);
        if (response->snapshot_version != 1 &&
            response->snapshot_version != 2) {
          bad.fetch_add(1);
        }
        for (const ScoredItem& item : response->items) {
          if (item.score != want) bad.fetch_add(1);
        }
        answered.fetch_add(1);
        user = (user + 3) % 16;
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    (*server)->Publish(snaps[(i + 1) % 2]);
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& thread : clients) thread.join();
  (*server)->Shutdown();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_LT(0, answered.load());
  auto counters = (*server)->counters();
  EXPECT_EQ(counters.ok, answered.load());
  EXPECT_EQ(counters.publishes, 501);  // initial + 500 swaps
}

void TestDeadlineSheddingCountsExactly() {
  SnapshotPtr snap = UniformSnapshot(4, 2048, 1.0f, 1);
  ServeConfig config;
  config.shards = 1;
  config.max_batch = 1;  // one query per sweep: the queue builds up
  config.max_queue = 0;  // unbounded, so nothing is rejected
  config.latency_budget_s = 1e-9;  // everything queued is over budget
  auto server = RecServer::Create(config, snap);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;

  const int kRequests = 256;
  std::vector<std::future<StatusOr<serve::TopKResponse>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back((*server)->Submit({i % 4, false, 10}));
  }
  int64_t ok = 0, shed = 0, other = 0;
  for (auto& future : futures) {
    auto response = future.get();
    if (response.ok()) {
      ++ok;
    } else if (response.status().code() == StatusCode::kDeadlineExceeded) {
      ++shed;
    } else {
      ++other;
    }
  }
  (*server)->Shutdown();

  EXPECT_EQ(other, 0);
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_LT(0, shed);  // a 1ns budget must shed under a 256-deep backlog
  auto counters = (*server)->counters();
  EXPECT_EQ(counters.requests, kRequests);
  EXPECT_EQ(counters.ok, ok);
  EXPECT_EQ(counters.shed_deadline, shed);
  EXPECT_EQ(counters.rejected, 0);
  // Anything that did complete took far longer than 1ns end to end.
  EXPECT_EQ(counters.deadline_miss, ok);
}

void TestColdUserIsTypedNotFatal() {
  // A snapshot with real id maps: raw user ids 100/200/300.
  io::IdMap users, items;
  users.Assign(100);
  users.Assign(200);
  users.Assign(300);
  for (int64_t raw = 1000; raw < 1008; ++raw) items.Assign(raw);
  std::vector<float> p(3 * 4), q(8 * 4);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.5f;
  for (size_t i = 0; i < q.size(); ++i) q[i] = 0.25f;
  auto snap = FactorSnapshot::FromDenseFactors(p, q, 3, 8, 4, {}, 1,
                                               &users, &items);
  EXPECT_TRUE(snap.ok());
  if (!snap.ok()) return;
  EXPECT_TRUE((*snap)->has_id_maps());

  auto server = RecServer::Create(ServeConfig{}, *snap);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;

  // Known raw user resolves and translates items back to raw ids.
  auto warm = (*server)->Query({200, /*raw=*/true, 3});
  EXPECT_TRUE(warm.ok());
  if (warm.ok()) {
    EXPECT_EQ(warm->items.size(), 3u);
    EXPECT_EQ(warm->raw_items.size(), 3u);
    for (int64_t raw : warm->raw_items) {
      EXPECT_TRUE(raw >= 1000 && raw < 1008);
    }
  }

  // A raw id the model never trained on: typed NotFound, server intact.
  auto cold = (*server)->Query({12345, /*raw=*/true, 3});
  EXPECT_TRUE(cold.status().code() == StatusCode::kNotFound);
  // Dense queries out of range are InvalidArgument, also non-fatal.
  auto oob = (*server)->Query({99, /*raw=*/false, 3});
  EXPECT_TRUE(oob.status().code() == StatusCode::kInvalidArgument);

  // The server still answers after the failures.
  auto again = (*server)->Query({100, /*raw=*/true, 2});
  EXPECT_TRUE(again.ok());
  auto counters = (*server)->counters();
  EXPECT_EQ(counters.cold_users, 1);
  EXPECT_EQ(counters.invalid, 1);
  EXPECT_EQ(counters.ok, 2);
}

// Torn-snapshot regression (run under TSan in CI): FromSession while a
// trainer thread mutates the factors must either succeed as a complete
// quiescent copy or fail typed kFailedPrecondition — never copy factor
// rows mid-epoch. Before the barrier gate this was a data race between
// the snapshot memcpy and the Hogwild SGD writers.
void TestFromSessionGatedOnEpochBarrier() {
  SyntheticSpec spec;
  spec.num_rows = 300;
  spec.num_cols = 200;
  spec.train_nnz = 20000;
  spec.test_nnz = 2000;
  spec.params.k = 16;
  auto ds = GenerateSynthetic(spec, /*seed=*/11);
  EXPECT_TRUE(ds.ok());
  if (!ds.ok()) return;
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgdStar;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = 12;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  auto session = Session::Create(*std::move(ds), cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  Session* s = session->get();

  std::atomic<bool> done{false};
  std::atomic<int64_t> published{0};
  std::atomic<int64_t> refused{0};
  std::atomic<int64_t> wrong{0};
  std::thread snapshotter([&] {
    uint64_t version = 0;
    while (!done.load(std::memory_order_relaxed)) {
      auto snap = FactorSnapshot::FromSession(*s, version + 1);
      if (snap.ok()) {
        ++version;
        published.fetch_add(1);
        if ((*snap)->num_users() != 300 || (*snap)->num_items() != 200) {
          wrong.fetch_add(1);
        }
      } else if (snap.status().code() == StatusCode::kFailedPrecondition) {
        refused.fetch_add(1);
        std::this_thread::yield();
      } else {
        wrong.fetch_add(1);
      }
    }
  });
  while (!s->Done()) {
    EXPECT_TRUE(s->RunEpoch().ok());
    // On a single core the snapshotter may starve until training ends;
    // yielding between epochs gives it real mid-epoch attempts.
    std::this_thread::yield();
  }
  // Keep the (now barrier-free) window open until at least one attempt
  // resolved, so the coverage assertion holds on any scheduler.
  while (published.load() + refused.load() == 0) std::this_thread::yield();
  done.store(true);
  snapshotter.join();

  // Every attempt resolved to exactly one of the two legal outcomes.
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LT(0, published.load() + refused.load());
  // Training over, the barrier is free: a snapshot must now succeed.
  auto settled = FactorSnapshot::FromSession(*s, 1000);
  EXPECT_TRUE(settled.ok());
  if (settled.ok()) {
    EXPECT_EQ((*settled)->num_users(), 300);
    EXPECT_EQ((*settled)->version(), 1000u);
  }
}

void TestCreateValidatesConfigAndEmptyHolder() {
  ServeConfig bad_shards;
  bad_shards.shards = 0;
  EXPECT_FALSE(RecServer::Create(bad_shards, nullptr).ok());
  ServeConfig bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_FALSE(RecServer::Create(bad_batch, nullptr).ok());

  // No snapshot published yet: queries fail Unavailable until Publish.
  auto server = RecServer::Create(ServeConfig{}, nullptr);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;
  auto response = (*server)->Query({0, false, 3});
  EXPECT_TRUE(response.status().code() == StatusCode::kUnavailable);
  (*server)->Publish(UniformSnapshot(2, 8, 1.0f, 9));
  auto after = (*server)->Query({0, false, 3});
  EXPECT_TRUE(after.ok());
  if (after.ok()) EXPECT_EQ(after->snapshot_version, 9u);
}

// A corrupt publish must be rejected with a typed error while the
// last-known-good snapshot keeps serving — the whole rollback policy is
// that a bad candidate never replaces a good one.
void TestPublishValidationRejectsPoison() {
  SnapshotPtr good = UniformSnapshot(4, 32, 1.0f, 1);
  EXPECT_TRUE(good->Validate().ok());
  SnapshotPtr poisoned = FactorSnapshot::PoisonedCopy(*good);
  EXPECT_TRUE(poisoned != nullptr);
  EXPECT_FALSE(poisoned->Validate().ok());
  EXPECT_TRUE(poisoned->Validate().code() ==
              StatusCode::kFailedPrecondition);

  // Holder level: the rejection installs nothing.
  SnapshotHolder holder;
  EXPECT_TRUE(holder.PublishValidated(good).ok());
  EXPECT_TRUE(holder.PublishValidated(nullptr).code() ==
              StatusCode::kInvalidArgument);
  EXPECT_TRUE(holder.PublishValidated(poisoned).code() ==
              StatusCode::kFailedPrecondition);
  EXPECT_EQ(holder.rejected_publishes(), 2);
  EXPECT_EQ(holder.publishes(), 1);
  SnapshotPtr served = holder.Acquire();
  EXPECT_TRUE(served == good);

  // Server level: queries keep answering on the good snapshot, and the
  // rejection is visible in the counters.
  auto server = RecServer::Create(ServeConfig{}, good);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;
  EXPECT_TRUE((*server)->Publish(FactorSnapshot::PoisonedCopy(*good))
                  .code() == StatusCode::kFailedPrecondition);
  auto response = (*server)->Query({0, false, 4});
  EXPECT_TRUE(response.ok());
  if (response.ok()) {
    EXPECT_EQ(response->snapshot_version, 1u);
    for (const ScoredItem& item : response->items) {
      EXPECT_EQ(item.score, 1.0f);
    }
  }
  EXPECT_EQ((*server)->counters().publish_rejected, 1);
  // A corrupt INITIAL snapshot fails construction outright — there is no
  // last-known-good to fall back to yet.
  EXPECT_FALSE(
      RecServer::Create(ServeConfig{}, FactorSnapshot::PoisonedCopy(*good))
          .ok());
}

// Pin accounting under publisher churn: a reader that holds a
// SnapshotPtr across many publishes must keep scoring its original,
// fully-intact snapshot (the slot it came from gets recycled two
// publishes later), and once everything settles the pin counts must
// return to zero.
void TestPinAccountingUnderPublisherChurn() {
  SnapshotHolder holder;
  holder.Publish(UniformSnapshot(4, 64, 1.0f, 1));

  // Hold version 1 across publishes 2..5 — far past the two-publish
  // slot-recycling horizon.
  SnapshotPtr held = holder.Acquire();
  EXPECT_TRUE(held != nullptr);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::vector<float> scratch;
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotPtr snap = holder.Acquire();
        if (snap == nullptr ||
            snap->UserRow(0)[0] != 1.0f) {  // p rows are (1, 0) always
          bad.fetch_add(1);
        }
      }
    });
  }
  for (uint64_t version = 2; version <= 5; ++version) {
    holder.Publish(
        UniformSnapshot(4, 64, static_cast<float>(version), version));
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(bad.load(), 0);

  // The held snapshot survived four publishes bit-intact.
  EXPECT_EQ(held->version(), 1u);
  std::vector<float> scratch;
  TopKQuery query{0, 8};
  auto results = serve::BatchTopK(*held, &query, 1, nullptr, &scratch);
  EXPECT_TRUE(results[0].ok());
  if (results[0].ok()) {
    for (const ScoredItem& item : *results[0]) {
      EXPECT_EQ(item.score, 1.0f);
    }
  }

  // Settled: no Acquire in flight, so every transient pin has drained.
  EXPECT_EQ(holder.DebugPins(), 0);
  held.reset();
  EXPECT_EQ(holder.DebugPins(), 0);
  SnapshotPtr current = holder.Acquire();
  EXPECT_TRUE(current != nullptr);
  if (current != nullptr) EXPECT_EQ(current->version(), 5u);
  EXPECT_EQ(holder.DebugPins(), 0);
}

// Shutdown racing a submitter (run under TSan in CI): every future must
// resolve — served before the drain, or typed Unavailable after — and
// no promise may be abandoned or leak a crash. Before Drain existed,
// Shutdown could destroy queued promises with waiters still blocked.
void TestShutdownRacesInFlightSubmits() {
  for (int iteration = 0; iteration < 5; ++iteration) {
    SnapshotPtr snap = UniformSnapshot(8, 128, 1.0f, 1);
    ServeConfig config;
    config.shards = 2;
    config.max_batch = 4;
    auto server = RecServer::Create(config, snap);
    EXPECT_TRUE(server.ok());
    if (!server.ok()) return;

    std::atomic<bool> stop{false};
    std::atomic<int64_t> resolved{0}, unexpected{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&, t] {
        std::vector<std::future<StatusOr<serve::TopKResponse>>> futures;
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          futures.push_back((*server)->Submit({(t + i++) % 8, false, 5}));
          if (futures.size() >= 16) {
            for (auto& future : futures) {
              auto response = future.get();
              if (!response.ok() && response.status().code() !=
                                        StatusCode::kUnavailable) {
                unexpected.fetch_add(1);
              }
              resolved.fetch_add(1);
            }
            futures.clear();
          }
        }
        for (auto& future : futures) {
          auto response = future.get();
          if (!response.ok() &&
              response.status().code() != StatusCode::kUnavailable) {
            unexpected.fetch_add(1);
          }
          resolved.fetch_add(1);
        }
      });
    }

    // Let traffic build, then shut down mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (*server)->Shutdown();
    stop.store(true);
    for (auto& thread : submitters) thread.join();

    EXPECT_LT(0, resolved.load());
    EXPECT_EQ(unexpected.load(), 0);
    // Post-shutdown submits still resolve, typed.
    auto late = (*server)->Submit({0, false, 3}).get();
    EXPECT_TRUE(late.status().code() == StatusCode::kUnavailable);
    // Idempotent.
    (*server)->Shutdown();
  }
}

// Breaker lifecycle: a stalled shard under deadline pressure must OPEN
// (fail fast), then HALF-OPEN after the cooldown, then CLOSE once its
// probes hit the deadline again.
void TestBreakerOpensAndRecovers() {
  SnapshotPtr snap = UniformSnapshot(4, 64, 1.0f, 1);
  ServeConfig config;
  config.shards = 1;
  config.max_batch = 8;
  config.latency_budget_s = 0.002;
  config.breaker_enabled = true;
  config.breaker_window = 8;
  config.breaker_miss_ratio = 0.5;
  config.breaker_open_s = 0.02;
  config.breaker_probes = 2;
  auto server = RecServer::Create(config, snap);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;

  // Phase 1: stall every batch far past the budget; queued requests all
  // miss, the window fills, the breaker opens and starts failing fast.
  std::atomic<bool> degraded{true};
  (*server)->SetBatchStallHook([&degraded](int) {
    return degraded.load(std::memory_order_relaxed) ? 0.01 : 0.0;
  });
  int64_t breaker_rejected = 0;
  for (int wave = 0; wave < 20 && breaker_rejected == 0; ++wave) {
    std::vector<std::future<StatusOr<serve::TopKResponse>>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back((*server)->Submit({i % 4, false, 5}));
    }
    for (auto& future : futures) future.get();
    breaker_rejected = (*server)->counters().breaker_rejected;
  }
  auto mid = (*server)->counters();
  EXPECT_LT(0, mid.breaker_opens);
  EXPECT_LT(0, breaker_rejected);

  // Phase 2: heal the shard, wait out the cooldown, and trickle probes.
  // The first submit after the cooldown half-opens the breaker; once
  // `breaker_probes` probes complete within budget it closes again.
  degraded.store(false);
  bool closed = false;
  for (int attempt = 0; attempt < 50 && !closed; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto response = (*server)->Query({0, false, 5});
    (void)response;
    closed = (*server)->counters().breaker_closes > 0;
  }
  auto counters = (*server)->counters();
  EXPECT_LT(0, counters.breaker_half_opens);
  EXPECT_LT(0, counters.breaker_closes);
  // Fully recovered: a healthy query is served.
  auto after = (*server)->Query({1, false, 5});
  EXPECT_TRUE(after.ok());
  (*server)->Shutdown();
}

}  // namespace

void RunAllTests() {
  TestSnapshotSwapUnderConcurrentReaders();
  TestBatchedMatchesSequentialBitwise();
  TestServerAnswersMatchFacade();
  TestMidLoadSwapNeverTorn();
  TestDeadlineSheddingCountsExactly();
  TestColdUserIsTypedNotFatal();
  TestFromSessionGatedOnEpochBarrier();
  TestCreateValidatesConfigAndEmptyHolder();
  TestPublishValidationRejectsPoison();
  TestPinAccountingUnderPublisherChurn();
  TestShutdownRacesInFlightSubmits();
  TestBreakerOpensAndRecovers();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
