// Session API tests: stepwise epochs must be bit-identical to the
// one-shot Trainer::Train facade, checkpoint/restore must reproduce an
// uninterrupted run exactly, observers must see every epoch, and the
// Recommender must agree with a brute-force scorer.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/hsgd.h"
#include "test_main.h"

namespace hsgd {
namespace {

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticSpec spec;
  spec.num_rows = 600;
  spec.num_cols = 500;
  spec.train_nnz = 40000;
  spec.test_nnz = 4000;
  spec.params.k = 16;
  spec.params.learning_rate = 0.01f;
  spec.noise_stddev = 0.3;
  auto ds = GenerateSynthetic(spec, seed);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TrainConfig SmallConfig(Algorithm algorithm) {
  TrainConfig cfg;
  cfg.algorithm = algorithm;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = 5;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return cfg;
}

void ExpectTracePointsEqual(const TracePoint& a, const TracePoint& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.test_rmse, b.test_rmse);
  EXPECT_EQ(a.train_rmse, b.train_rmse);
}

/// The sim side only — wall time is real time, inherently
/// non-reproducible, and lives in its own sub-struct for exactly this
/// reason.
void ExpectStatsEqual(const TrainStats& a, const TrainStats& b) {
  EXPECT_EQ(a.sim.reached_target, b.sim.reached_target);
  EXPECT_EQ(a.sim.seconds, b.sim.seconds);
  EXPECT_EQ(a.sim.alpha, b.sim.alpha);
  EXPECT_EQ(a.sim.stolen_by_gpus, b.sim.stolen_by_gpus);
  EXPECT_EQ(a.sim.stolen_by_cpus, b.sim.stolen_by_cpus);
  EXPECT_EQ(a.sim.update_rate_cv, b.sim.update_rate_cv);
  EXPECT_EQ(a.sim.block_tasks, b.sim.block_tasks);
}

// (a) N x RunEpoch == one Trainer::Train with max_epochs=N, bit-for-bit.
void TestStepwiseMatchesOneShot() {
  Dataset ds = SmallDataset();
  for (Algorithm algorithm :
       {Algorithm::kCpuOnly, Algorithm::kGpuOnly, Algorithm::kHsgd,
        Algorithm::kHsgdStar}) {
    TrainConfig cfg = SmallConfig(algorithm);
    auto oneshot = Trainer::Train(ds, cfg);
    EXPECT_TRUE(oneshot.ok());
    auto session = Session::Create(ds, cfg);
    EXPECT_TRUE(session.ok());
    if (!oneshot.ok() || !session.ok()) continue;
    int steps = 0;
    while (!(*session)->Done()) {
      auto point = (*session)->RunEpoch();
      EXPECT_TRUE(point.ok());
      if (!point.ok()) break;
      ++steps;
      EXPECT_EQ((*session)->epochs_run(), steps);
      ExpectTracePointsEqual(*point, oneshot->trace.points[steps - 1]);
    }
    EXPECT_EQ(steps, cfg.max_epochs);
    EXPECT_EQ((*session)->trace().points.size(),
              oneshot->trace.points.size());
    ExpectStatsEqual((*session)->stats(), oneshot->stats);
    // The budget is spent: one more epoch is a FailedPrecondition.
    EXPECT_FALSE((*session)->RunEpoch().ok());
  }
}

// (b) checkpoint at epoch k -> restore -> finish matches the
// uninterrupted run exactly — trace, stats and virtual clock.
void TestCheckpointResumeBitIdentical() {
  const std::string path = "session_test_ckpt.bin";
  Dataset ds = SmallDataset();
  // HSGD* with dynamic scheduling on (the acceptance configuration) and
  // HSGD (whose UniformScheduler consumes the policy RNG every Acquire,
  // exercising RNG-state restore).
  for (Algorithm algorithm : {Algorithm::kHsgdStar, Algorithm::kHsgd}) {
    TrainConfig cfg = SmallConfig(algorithm);
    cfg.dynamic_scheduling = true;
    auto reference = Trainer::Train(ds, cfg);
    EXPECT_TRUE(reference.ok());
    for (int stop_epoch : {1, 3}) {
      auto session = Session::Create(ds, cfg);
      EXPECT_TRUE(session.ok());
      for (int e = 0; e < stop_epoch; ++e) {
        EXPECT_TRUE((*session)->RunEpoch().ok());
      }
      EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());

      auto resumed = Session::Restore(path, ds);
      EXPECT_TRUE(resumed.ok());
      if (!resumed.ok()) continue;
      EXPECT_EQ((*resumed)->epochs_run(), stop_epoch);
      EXPECT_EQ((*resumed)->config().max_epochs, cfg.max_epochs);
      // The restored trace already holds the first k points.
      for (int e = 0; e < stop_epoch; ++e) {
        ExpectTracePointsEqual((*resumed)->trace().points[e],
                               reference->trace.points[e]);
      }
      // The remaining epochs reproduce the uninterrupted run exactly.
      while (!(*resumed)->Done()) {
        auto point = (*resumed)->RunEpoch();
        EXPECT_TRUE(point.ok());
        if (!point.ok()) break;
        ExpectTracePointsEqual(
            *point, reference->trace.points[(*resumed)->epochs_run() - 1]);
      }
      EXPECT_EQ((*resumed)->trace().points.size(),
                reference->trace.points.size());
      ExpectStatsEqual((*resumed)->stats(), reference->stats);
      EXPECT_EQ((*resumed)->sim_clock(), reference->stats.sim.seconds);
    }
  }
  std::remove(path.c_str());
}

void TestRestoreRejectsWrongDataset() {
  const std::string path = "session_test_ckpt_mismatch.bin";
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  EXPECT_TRUE((*session)->RunEpoch().ok());
  EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());

  // Same shape, different ratings (different generator seed): rejected.
  Dataset other = SmallDataset(/*seed=*/6);
  EXPECT_FALSE(Session::Restore(path, other).ok());
  // Missing file: rejected.
  EXPECT_FALSE(Session::Restore("no_such_checkpoint.bin", ds).ok());
  // The matching dataset restores fine.
  EXPECT_TRUE(Session::Restore(path, ds).ok());

  // A truncated file is an InvalidArgument, not a crash or bad_alloc.
  {
    auto full = ReadCheckpoint(path);
    EXPECT_TRUE(full.ok());
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_TRUE(f != nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::vector<char> bytes(static_cast<size_t>(size) / 2);
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    const std::string truncated = "session_test_ckpt_truncated.bin";
    FILE* out = std::fopen(truncated.c_str(), "wb");
    EXPECT_TRUE(out != nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), out);
    std::fclose(out);
    EXPECT_FALSE(ReadCheckpoint(truncated).ok());
    EXPECT_FALSE(Session::Restore(truncated, ds).ok());
    std::remove(truncated.c_str());
  }
  std::remove(path.c_str());
}

// (d) A damaged checkpoint is a Status, never UB: each header field
// corrupted individually must fail Restore, and no byte flip anywhere in
// the file may crash the reader (this test is part of the ASan/UBSan CI
// sweep). Complements the happy-path round-trip in (b).
void TestCheckpointCorruptionRejected() {
  const std::string path = "session_test_ckpt_corrupt.bin";
  const std::string tmp = "session_test_ckpt_corrupt_tmp.bin";
  // A deliberately tiny model so the whole-file byte-flip sweep below
  // touches every offset cheaply.
  SyntheticSpec spec;
  spec.num_rows = 60;
  spec.num_cols = 50;
  spec.train_nnz = 3000;
  spec.test_nnz = 300;
  spec.params.k = 8;
  auto ds_or = GenerateSynthetic(spec, /*seed=*/9);
  EXPECT_TRUE(ds_or.ok());
  Dataset ds = *std::move(ds_or);
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  cfg.max_epochs = 3;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  EXPECT_TRUE((*session)->RunEpoch().ok());
  EXPECT_TRUE((*session)->RunEpoch().ok());
  EXPECT_TRUE((*session)->SaveCheckpoint(path).ok());
  auto valid = ReadCheckpoint(path);
  EXPECT_TRUE(valid.ok());
  EXPECT_TRUE(Session::Restore(path, ds).ok());

  // Field-level corruption: rewrite the checkpoint with exactly one
  // header field damaged and assert Restore rejects it.
  auto expect_rejected = [&](const char* what, auto mutate) {
    SessionCheckpoint ckpt = *valid;
    mutate(&ckpt);
    EXPECT_TRUE(WriteCheckpoint(tmp, ckpt).ok());
    if (Session::Restore(tmp, ds).ok()) {
      std::fprintf(stderr, "  (corruption not rejected: %s)\n", what);
      EXPECT_TRUE(false);
    }
  };
  expect_rejected("fingerprint num_rows",
                  [](SessionCheckpoint* c) { ++c->dataset.num_rows; });
  expect_rejected("fingerprint num_cols",
                  [](SessionCheckpoint* c) { ++c->dataset.num_cols; });
  expect_rejected("fingerprint k",
                  [](SessionCheckpoint* c) { ++c->dataset.k; });
  expect_rejected("fingerprint train_nnz",
                  [](SessionCheckpoint* c) { ++c->dataset.train_nnz; });
  expect_rejected("fingerprint test_nnz",
                  [](SessionCheckpoint* c) { ++c->dataset.test_nnz; });
  expect_rejected("fingerprint train_hash",
                  [](SessionCheckpoint* c) { c->dataset.train_hash ^= 1; });
  expect_rejected("fingerprint test_hash",
                  [](SessionCheckpoint* c) { c->dataset.test_hash ^= 1; });
  expect_rejected("epoch counter ahead",
                  [](SessionCheckpoint* c) { ++c->epochs_run; });
  expect_rejected("negative epoch counter",
                  [](SessionCheckpoint* c) { c->epochs_run = -1; });
  expect_rejected("zero epoch budget",
                  [](SessionCheckpoint* c) { c->config.max_epochs = 0; });
  expect_rejected("unknown algorithm enum", [](SessionCheckpoint* c) {
    c->config.algorithm = static_cast<Algorithm>(42);
  });
  expect_rejected("unknown cost-model enum", [](SessionCheckpoint* c) {
    c->config.cost_model = static_cast<CostModelKind>(9);
  });
  expect_rejected("zero eval threads",
                  [](SessionCheckpoint* c) { c->config.eval_threads = 0; });
  expect_rejected("NaN speed variability", [](SessionCheckpoint* c) {
    c->config.hardware.speed_variability =
        std::numeric_limits<double>::quiet_NaN();
  });
  expect_rejected("negative CPU rate", [](SessionCheckpoint* c) {
    c->config.hardware.cpu.updates_per_sec_k128 = -1.0;
  });
  expect_rejected("zero GPU workers", [](SessionCheckpoint* c) {
    c->config.hardware.gpu.parallel_workers = 0;
  });
  expect_rejected("absurd GPU fleet", [](SessionCheckpoint* c) {
    c->config.hardware.num_gpus = 1 << 20;
  });
  expect_rejected("truncated trace",
                  [](SessionCheckpoint* c) { c->trace.pop_back(); });
  expect_rejected("truncated factors",
                  [](SessionCheckpoint* c) { c->p.pop_back(); });
  expect_rejected("extra GPU stream state", [](SessionCheckpoint* c) {
    c->gpu_streams.push_back(GpuStreamState{});
  });

  // Byte-flip sweep over the entire file: ReadCheckpoint must always
  // come back with a value or an error, never crash; flips inside the
  // magic/version prologue must always be rejected. Flips in the header
  // and config region additionally go through a full Restore attempt.
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_TRUE(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> bytes(static_cast<size_t>(file_size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0xFF;
    FILE* out = std::fopen(tmp.c_str(), "wb");
    EXPECT_TRUE(out != nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), out);
    std::fclose(out);
    auto flipped = ReadCheckpoint(tmp);
    if (i < 12) {  // magic (8) + version (4): unconditionally fatal
      EXPECT_FALSE(flipped.ok());
    }
    if (flipped.ok() && i < 256) {
      // May legitimately succeed (e.g. a benign stat-field flip) — the
      // assertion is that it never crashes or hangs.
      (void)Session::Restore(tmp, ds);
    }
    bytes[i] ^= 0xFF;
  }

  std::remove(tmp.c_str());
  std::remove(path.c_str());
}

class CountingObserver : public EpochObserver {
 public:
  void OnEpochBegin(const Session& session, int epoch) override {
    (void)session;
    ++begins;
    last_begin_epoch = epoch;
  }
  void OnEpochEnd(const Session& session, const TracePoint& point) override {
    // The session already includes this epoch when the callback fires.
    EXPECT_EQ(session.epochs_run(), point.epoch);
    EXPECT_EQ(session.trace().points.back().epoch, point.epoch);
    ++ends;
    last_end_epoch = point.epoch;
  }
  void OnTargetReached(const Session& session,
                       const TracePoint& point) override {
    (void)session;
    ++target_hits;
    target_epoch = point.epoch;
  }

  int begins = 0;
  int ends = 0;
  int target_hits = 0;
  int last_begin_epoch = 0;
  int last_end_epoch = 0;
  int target_epoch = 0;
};

void TestObservers() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  CountingObserver counter;
  (*session)->AddObserver(&counter);
  EXPECT_TRUE((*session)->RunToCompletion().ok());
  EXPECT_EQ(counter.begins, cfg.max_epochs);
  EXPECT_EQ(counter.ends, cfg.max_epochs);
  EXPECT_EQ(counter.last_begin_epoch, cfg.max_epochs);
  EXPECT_EQ(counter.last_end_epoch, cfg.max_epochs);
  EXPECT_EQ(counter.target_hits, 0);  // use_dataset_target is off
  (*session)->RemoveObserver(&counter);

  // A trivially reachable target fires OnTargetReached exactly once and
  // stops the session after one epoch.
  Dataset easy = SmallDataset();
  easy.target_rmse = 100.0;
  TrainConfig easy_cfg = SmallConfig(Algorithm::kCpuOnly);
  easy_cfg.use_dataset_target = true;
  auto easy_session = Session::Create(easy, easy_cfg);
  EXPECT_TRUE(easy_session.ok());
  CountingObserver easy_counter;
  (*easy_session)->AddObserver(&easy_counter);
  EXPECT_TRUE((*easy_session)->RunToCompletion().ok());
  EXPECT_TRUE((*easy_session)->Done());
  EXPECT_EQ(easy_counter.ends, 1);
  EXPECT_EQ(easy_counter.target_hits, 1);
  EXPECT_EQ(easy_counter.target_epoch, 1);
  EXPECT_TRUE((*easy_session)->stats().sim.reached_target);
}

void TestCreateValidation() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kCpuOnly);
  cfg.hardware.num_cpu_threads = 0;
  EXPECT_FALSE(Session::Create(ds, cfg).ok());
  cfg = SmallConfig(Algorithm::kGpuOnly);
  cfg.hardware.num_gpus = 0;
  EXPECT_FALSE(Session::Create(ds, cfg).ok());
  cfg = SmallConfig(Algorithm::kHsgd);
  cfg.max_epochs = 0;
  EXPECT_FALSE(Session::Create(ds, cfg).ok());
  cfg = SmallConfig(Algorithm::kHsgd);
  cfg.eval_threads = 0;
  EXPECT_FALSE(Session::Create(ds, cfg).ok());
  Dataset empty;
  empty.num_rows = 10;
  empty.num_cols = 10;
  EXPECT_FALSE(Session::Create(empty, SmallConfig(Algorithm::kHsgd)).ok());
}

// (c) Recommender: sorted scores, rated items excluded, agreement with a
// brute-force scorer.
void TestRecommenderTopK() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  cfg.max_epochs = 3;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  EXPECT_TRUE((*session)->RunToCompletion().ok());
  const Model& model = (*session)->model();
  Recommender recommender(&model, ds.train);

  const int k = 10;
  for (int32_t user : {0, 7, 599}) {
    auto top = recommender.TopK(user, k);
    EXPECT_TRUE(top.ok());
    if (!top.ok()) continue;
    EXPECT_EQ(top->size(), static_cast<size_t>(k));

    // Scores are sorted descending (ties broken by ascending item id).
    for (size_t i = 1; i < top->size(); ++i) {
      const ScoredItem& prev = (*top)[i - 1];
      const ScoredItem& cur = (*top)[i];
      EXPECT_TRUE(prev.score > cur.score ||
                  (prev.score == cur.score && prev.item < cur.item));
    }

    // Rated items are excluded.
    std::vector<char> rated(static_cast<size_t>(ds.num_cols), 0);
    for (const Rating& r : ds.train) {
      if (r.u == user) rated[static_cast<size_t>(r.v)] = 1;
    }
    for (const ScoredItem& item : *top) {
      EXPECT_FALSE(rated[static_cast<size_t>(item.item)]);
    }

    // Brute force agreement: same items, same order. Predict and TopK's
    // batch scorer share one dot kernel, so scores match bitwise.
    std::vector<ScoredItem> all;
    for (int32_t v = 0; v < ds.num_cols; ++v) {
      if (rated[static_cast<size_t>(v)]) continue;
      all.push_back({v, model.Predict(user, v)});
    }
    std::sort(all.begin(), all.end(),
              [](const ScoredItem& a, const ScoredItem& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.item < b.item;
              });
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ((*top)[i].item, all[static_cast<size_t>(i)].item);
      EXPECT_EQ((*top)[i].score, all[static_cast<size_t>(i)].score);
    }
  }

  // k past the catalog returns everything unrated, still sorted.
  auto everything = recommender.TopK(0, ds.num_cols + 50);
  EXPECT_TRUE(everything.ok());
  EXPECT_EQ(everything->size(),
            static_cast<size_t>(ds.num_cols) -
                static_cast<size_t>(recommender.NumRated(0)));

  // Invalid queries are errors, not crashes.
  EXPECT_FALSE(recommender.TopK(-1, k).ok());
  EXPECT_FALSE(recommender.TopK(ds.num_rows, k).ok());
  EXPECT_FALSE(recommender.TopK(0, 0).ok());
}

// (e) Online append: warm and cold ratings grow the session in place,
// incremental epochs sweep only the dirty blocks, and the error paths
// are typed.
void TestAppendAndIncrementalEpoch() {
  Dataset ds = SmallDataset();
  const int32_t rows = ds.num_rows;
  const int32_t cols = ds.num_cols;
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  cfg.max_epochs = 50;  // headroom: incremental epochs consume budget too
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  Session* s = session->get();
  EXPECT_TRUE(s->RunEpoch().ok());

  // Nothing pending: the incremental epoch refuses, typed.
  EXPECT_TRUE(s->RunIncrementalEpoch().status().code() ==
              StatusCode::kFailedPrecondition);

  // Negative ids: InvalidArgument with nothing mutated.
  Ratings negative = {{-1, 0, 3.0f}};
  EXPECT_TRUE(s->AppendRatings(negative).code() ==
              StatusCode::kInvalidArgument);
  EXPECT_EQ(s->pending_nnz(), 0);
  EXPECT_EQ(s->pending_dirty_blocks(), 0);
  EXPECT_EQ(s->dataset().num_rows, rows);

  // Warm append: ids inside the current extent dirty their blocks only.
  Ratings warm = {{0, 0, 4.0f}, {rows - 1, cols - 1, 2.5f}, {10, 20, 3.0f}};
  EXPECT_TRUE(s->AppendRatings(warm).ok());
  EXPECT_EQ(s->pending_nnz(), 3);
  EXPECT_EQ(s->appended_nnz(), 3);
  const int dirty = s->pending_dirty_blocks();
  EXPECT_LT(0, dirty);
  EXPECT_TRUE(dirty <= 3);
  const int epochs_before = s->epochs_run();
  const int64_t nnz_before = s->stats().sim.nnz_processed;
  auto inc = s->RunIncrementalEpoch();
  EXPECT_TRUE(inc.ok());
  EXPECT_EQ(s->epochs_run(), epochs_before + 1);
  EXPECT_EQ(s->pending_nnz(), 0);
  EXPECT_EQ(s->pending_dirty_blocks(), 0);
  if (inc.ok()) {
    EXPECT_EQ(inc->epoch, s->epochs_run());
    EXPECT_TRUE(inc->test_rmse > 0.0);
  }
  // Only the dirty blocks' ratings were visited — far fewer updates than
  // the preceding full epoch applied.
  const int64_t inc_nnz = s->stats().sim.nnz_processed - nnz_before;
  EXPECT_LT(0, inc_nnz);
  EXPECT_LT(inc_nnz, nnz_before);

  // Cold append: ids past the extent grow dataset, model, and grid.
  Ratings cold = {{rows + 4, 2, 5.0f}, {3, cols + 1, 1.5f}};
  EXPECT_TRUE(s->AppendRatings(cold).ok());
  EXPECT_EQ(s->dataset().num_rows, rows + 5);
  EXPECT_EQ(s->dataset().num_cols, cols + 2);
  EXPECT_EQ(s->model().num_rows(), rows + 5);
  EXPECT_EQ(s->model().num_cols(), cols + 2);
  EXPECT_TRUE(s->RunIncrementalEpoch().ok());
  // The grown corner is scoreable right away.
  EXPECT_TRUE(std::isfinite(s->model().Predict(rows + 4, cols + 1)));

  // A full epoch still runs on the grown session.
  EXPECT_TRUE(s->RunEpoch().ok());
}

// (f) Model::Grow: same stride, old factor bits untouched, new rows in
// InitRandom's range, padding lanes zero everywhere (kernel invariant).
void TestModelGrowAlignment() {
  const int kRank = 5;  // pads: PaddedStride(5) > 5
  Model model(6, 5, kRank);
  Rng init(3, 1);
  model.InitRandom(&init, 3.5);
  const int stride = model.stride();
  EXPECT_LT(kRank, stride);
  const std::vector<float> p_before = model.DenseP();
  const std::vector<float> q_before = model.DenseQ();

  Rng growth(3, 29);
  model.Grow(9, 7, &growth, 3.5);
  EXPECT_EQ(model.num_rows(), 9);
  EXPECT_EQ(model.num_cols(), 7);
  EXPECT_EQ(model.stride(), stride);

  const std::vector<float> p_after = model.DenseP();
  const std::vector<float> q_after = model.DenseQ();
  EXPECT_EQ(std::memcmp(p_before.data(), p_after.data(),
                        p_before.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(q_before.data(), q_after.data(),
                        q_before.size() * sizeof(float)),
            0);

  const float hi = 2.0f * std::sqrt(3.5f / kRank);
  for (int32_t u = 0; u < model.num_rows(); ++u) {
    const float* row = model.Row(u);
    for (int f = kRank; f < stride; ++f) EXPECT_EQ(row[f], 0.0f);
    if (u >= 6) {
      for (int f = 0; f < kRank; ++f) {
        EXPECT_TRUE(row[f] >= 0.0f && row[f] < hi);
      }
    }
  }
  for (int32_t v = 0; v < model.num_cols(); ++v) {
    const float* col = model.Col(v);
    for (int f = kRank; f < stride; ++f) EXPECT_EQ(col[f], 0.0f);
  }

  // Equal-dimension Grow is a no-op, not an error.
  const std::vector<float> p_frozen = model.DenseP();
  model.Grow(9, 7, &growth, 3.5);
  EXPECT_EQ(model.num_rows(), 9);
  EXPECT_EQ(std::memcmp(p_frozen.data(), model.DenseP().data(),
                        p_frozen.size() * sizeof(float)),
            0);
}

// (g) A grown session checkpoints and restores with bit-identical
// factors; the pre-growth dataset no longer passes the fingerprint.
void TestGrownCheckpointRoundTrip() {
  const std::string path = "session_test_ckpt_grown.bin";
  Dataset ds = SmallDataset();
  const int32_t rows = ds.num_rows;
  const int32_t cols = ds.num_cols;
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  cfg.max_epochs = 20;
  auto session = Session::Create(ds, cfg);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  Session* s = session->get();
  EXPECT_TRUE(s->RunEpoch().ok());
  Ratings grow = {{rows, 10, 4.0f}, {rows + 1, cols + 2, 3.0f},
                  {5, cols, 2.0f}};
  EXPECT_TRUE(s->AppendRatings(grow).ok());
  EXPECT_TRUE(s->RunIncrementalEpoch().ok());
  EXPECT_TRUE(s->SaveCheckpoint(path).ok());

  // Restore against the GROWN dataset (a copy of the session's own).
  auto resumed = Session::Restore(path, s->dataset());
  EXPECT_TRUE(resumed.ok());
  if (resumed.ok()) {
    EXPECT_EQ((*resumed)->model().num_rows(), rows + 2);
    EXPECT_EQ((*resumed)->model().num_cols(), cols + 3);
    EXPECT_EQ((*resumed)->epochs_run(), s->epochs_run());
    const std::vector<float> p0 = s->model().DenseP();
    const std::vector<float> p1 = (*resumed)->model().DenseP();
    const std::vector<float> q0 = s->model().DenseQ();
    const std::vector<float> q1 = (*resumed)->model().DenseQ();
    EXPECT_EQ(p0.size(), p1.size());
    EXPECT_EQ(q0.size(), q1.size());
    if (p0.size() == p1.size() && q0.size() == q1.size()) {
      EXPECT_EQ(std::memcmp(p0.data(), p1.data(),
                            p0.size() * sizeof(float)),
                0);
      EXPECT_EQ(std::memcmp(q0.data(), q1.data(),
                            q0.size() * sizeof(float)),
                0);
    }
  }
  EXPECT_FALSE(Session::Restore(path, ds).ok());
  std::remove(path.c_str());
}

// (h) VisitQuiesced: runs the callback between epochs (propagating its
// Status) and is legal from inside OnEpochEnd — the barrier is released
// before observers fire, which is what lets an observer publish a
// snapshot.
void TestVisitQuiescedBarrier() {
  Dataset ds = SmallDataset();
  auto session = Session::Create(ds, SmallConfig(Algorithm::kCpuOnly));
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  Session* s = session->get();

  int calls = 0;
  EXPECT_TRUE(s->VisitQuiesced([&calls]() {
                 ++calls;
                 return Status::Ok();
               }).ok());
  EXPECT_EQ(calls, 1);
  auto propagated =
      s->VisitQuiesced([]() { return Status::Internal("boom"); });
  EXPECT_TRUE(propagated.code() == StatusCode::kInternal);

  class VisitingObserver : public EpochObserver {
   public:
    void OnEpochEnd(const Session& session, const TracePoint&) override {
      visited = session.VisitQuiesced([]() { return Status::Ok(); }).ok();
    }
    bool visited = false;
  } observer;
  s->AddObserver(&observer);
  EXPECT_TRUE(s->RunEpoch().ok());
  EXPECT_TRUE(observer.visited);
}

void TestTraceEmptyAndMonotone() {
  Trace empty;
  // Documented guard: an empty trace never reaches anything.
  EXPECT_TRUE(empty.TimeToReach(1e9) >= kSimTimeNever);

  // A fresh session has an empty trace until its first epoch.
  Dataset ds = SmallDataset();
  auto session = Session::Create(ds, SmallConfig(Algorithm::kCpuOnly));
  EXPECT_TRUE(session.ok());
  EXPECT_TRUE((*session)->trace().points.empty());
  EXPECT_TRUE((*session)->trace().TimeToReach(1e9) >= kSimTimeNever);
  EXPECT_TRUE((*session)->RunEpoch().ok());
  EXPECT_EQ((*session)->trace().points.size(), 1u);
  EXPECT_TRUE((*session)->trace().TimeToReach(1e9) <
              kSimTimeNever);
}

}  // namespace

void RunAllTests() {
  TestStepwiseMatchesOneShot();
  TestCheckpointResumeBitIdentical();
  TestRestoreRejectsWrongDataset();
  TestCheckpointCorruptionRejected();
  TestObservers();
  TestCreateValidation();
  TestRecommenderTopK();
  TestAppendAndIncrementalEpoch();
  TestModelGrowAlignment();
  TestGrownCheckpointRoundTrip();
  TestVisitQuiescedBarrier();
  TestTraceEmptyAndMonotone();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
