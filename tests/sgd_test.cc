#include <cmath>

#include "core/dataset.h"
#include "core/model.h"
#include "test_main.h"

namespace hsgd {
namespace {

void TestRmseHandComputed() {
  // 2x2 matrix, k=2, factors set by hand.
  Model model(2, 2, 2);
  model.Row(0)[0] = 1.0f;  model.Row(0)[1] = 0.0f;
  model.Row(1)[0] = 0.0f;  model.Row(1)[1] = 2.0f;
  model.Col(0)[0] = 1.0f;  model.Col(0)[1] = 1.0f;
  model.Col(1)[0] = 0.5f;  model.Col(1)[1] = 0.0f;
  // Predictions: (0,0)=1, (0,1)=0.5, (1,0)=2, (1,1)=0.
  EXPECT_NEAR(model.Predict(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(model.Predict(0, 1), 0.5, 1e-6);
  EXPECT_NEAR(model.Predict(1, 0), 2.0, 1e-6);
  EXPECT_NEAR(model.Predict(1, 1), 0.0, 1e-6);

  Ratings ratings = {
      {0, 0, 2.0f},  // err 1
      {0, 1, 0.5f},  // err 0
      {1, 0, 4.0f},  // err 2
      {1, 1, 1.0f},  // err 1
  };
  // RMSE = sqrt((1 + 0 + 4 + 1) / 4) = sqrt(1.5)
  EXPECT_NEAR(Rmse(model, ratings, nullptr), std::sqrt(1.5), 1e-6);

  // Pool evaluation must agree bit-for-bit with serial.
  ThreadPool pool(3);
  EXPECT_EQ(Rmse(model, ratings, &pool), Rmse(model, ratings, nullptr));
}

Dataset TinyDataset() {
  SyntheticSpec spec;
  spec.num_rows = 300;
  spec.num_cols = 200;
  spec.train_nnz = 20000;
  spec.test_nnz = 2000;
  spec.params.k = 16;
  spec.noise_stddev = 0.3;
  auto ds = GenerateSynthetic(spec, 5);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

void TestSgdConverges() {
  Dataset ds = TinyDataset();
  Model model(ds.num_rows, ds.num_cols, ds.params.k);
  Rng rng(1);
  model.InitRandom(&rng, ComputeStats(ds.train).mean_rating);
  SgdHyper hyper{0.01f, 0.05f, 0.05f};

  double before = Rmse(model, ds.train, nullptr);
  for (int epoch = 0; epoch < 10; ++epoch) {
    SgdUpdateBlock(&model, ds.train, hyper);
  }
  double after = Rmse(model, ds.train, nullptr);
  EXPECT_LT(after, before * 0.7);
  // Generalization: test RMSE should approach the noise floor.
  EXPECT_LT(Rmse(model, ds.test, nullptr), 0.6);
}

void TestSgdReturnsSquaredError() {
  Dataset ds = TinyDataset();
  Model model(ds.num_rows, ds.num_cols, ds.params.k);
  Rng rng(1);
  model.InitRandom(&rng, ComputeStats(ds.train).mean_rating);
  double pre_rmse = Rmse(model, ds.train, nullptr);
  // With learning_rate 0 the sweep changes nothing, so the reported
  // squared error must match the standalone evaluation exactly.
  SgdHyper frozen{0.0f, 0.0f, 0.0f};
  double sq = SgdUpdateBlock(&model, ds.train, frozen);
  EXPECT_NEAR(std::sqrt(sq / static_cast<double>(ds.train.size())),
              pre_rmse, 1e-6);
  EXPECT_NEAR(Rmse(model, ds.train, nullptr), pre_rmse, 1e-12);
}

void TestHogwildConverges() {
  Dataset ds = TinyDataset();
  Model model(ds.num_rows, ds.num_cols, ds.params.k);
  Rng rng(1);
  model.InitRandom(&rng, ComputeStats(ds.train).mean_rating);
  SgdHyper hyper{0.01f, 0.05f, 0.05f};
  ThreadPool pool(4);
  double before = Rmse(model, ds.train, &pool);
  for (int epoch = 0; epoch < 10; ++epoch) {
    SgdUpdateBlockHogwild(&model, ds.train, hyper, &pool);
  }
  EXPECT_LT(Rmse(model, ds.train, &pool), before * 0.7);
}

void TestModelInitDeterministic() {
  Model a(50, 40, 8), b(50, 40, 8);
  Rng ra(9), rb(9);
  a.InitRandom(&ra, 3.0);
  b.InitRandom(&rb, 3.0);
  bool same = true;
  for (int32_t u = 0; u < 50; ++u) {
    for (int i = 0; i < 8; ++i) same = same && a.Row(u)[i] == b.Row(u)[i];
  }
  EXPECT_TRUE(same);
  // Mean prediction lands near the requested mean rating.
  double sum = 0.0;
  for (int32_t u = 0; u < 50; ++u) {
    for (int32_t v = 0; v < 40; ++v) sum += a.Predict(u, v);
  }
  EXPECT_NEAR(sum / (50.0 * 40.0), 3.0, 0.5);
}

void TestShuffleAndStats() {
  Ratings r = {{0, 0, 1.0f}, {1, 1, 2.0f}, {2, 2, 3.0f}, {3, 3, 6.0f}};
  RatingStats stats = ComputeStats(r);
  EXPECT_NEAR(stats.mean_rating, 3.0, 1e-9);
  EXPECT_NEAR(stats.min_rating, 1.0, 1e-9);
  EXPECT_NEAR(stats.max_rating, 6.0, 1e-9);

  Rng rng(3);
  Ratings shuffled = r;
  ShuffleRatings(&shuffled, &rng);
  EXPECT_EQ(shuffled.size(), r.size());
  double sum = 0.0;
  for (const Rating& rt : shuffled) sum += rt.r;
  EXPECT_NEAR(sum, 12.0, 1e-9);
}

}  // namespace

void RunAllTests() {
  TestRmseHandComputed();
  TestSgdConverges();
  TestSgdReturnsSquaredError();
  TestHogwildConverges();
  TestModelInitDeterministic();
  TestShuffleAndStats();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
