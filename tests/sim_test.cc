#include <cmath>

#include "core/dataset.h"
#include "sim/cpu_device.h"
#include "sim/gpu_device.h"
#include "sim/pcie_link.h"
#include "sim/profiler.h"
#include "test_main.h"

namespace hsgd {
namespace {

void TestPcieRampAndSaturation() {
  GpuDeviceSpec spec;
  PcieLink link(spec);
  double prev = 0.0;
  for (int64_t bytes = 64 << 10; bytes <= (256ll << 20); bytes *= 2) {
    double bw =
        link.EffectiveBandwidthGbps(bytes, TransferDirection::kHostToDevice);
    EXPECT_LT(prev, bw);            // monotone ramp
    EXPECT_LT(bw, spec.pcie_h2d_peak_gbps);  // never beats the link peak
    prev = bw;
  }
  // Saturates: 256MB should be within 5% of peak.
  EXPECT_LT(spec.pcie_h2d_peak_gbps * 0.95, prev);
  // Small transfers are latency-bound, far from peak.
  EXPECT_LT(
      link.EffectiveBandwidthGbps(64 << 10, TransferDirection::kHostToDevice),
      spec.pcie_h2d_peak_gbps * 0.5);
  EXPECT_EQ(link.TransferTime(0, TransferDirection::kDeviceToHost), 0.0);
}

void TestCpuDeviceFlat() {
  CpuDeviceSpec spec;
  CpuDevice cpu(spec, 128);
  // Fig 3b: per-thread speed is flat in block size.
  double r50k = cpu.UpdateRate(50000);
  double r400k = cpu.UpdateRate(400000);
  EXPECT_LT(r50k, r400k);  // mild warm-up effect only
  EXPECT_LT(r400k, spec.updates_per_sec_k128);
  EXPECT_LT(spec.updates_per_sec_k128 * 0.9, r50k);
  // Rank scaling: halving k doubles throughput.
  CpuDevice cpu64(spec, 64);
  EXPECT_NEAR(cpu64.UpdateRate(100000) / cpu.UpdateRate(100000), 2.0, 0.01);
}

void TestGpuKernelSaturation() {
  GpuDeviceSpec spec;
  SimtKernelModel kernel(spec, 128);
  // Fig 3a / Fig 7: throughput rises steeply then flattens. The steep
  // region is launch-overhead-dominated blocks of a few thousand points.
  double r_small = 2000 / kernel.ExecTime(2000, 300, 200);
  double r_large = 2500000 / kernel.ExecTime(2500000, 100000, 60000);
  EXPECT_LT(r_small * 1.5, r_large);
  EXPECT_LT(r_large, kernel.PeakRate() * 1.001);
  // More workers, more peak throughput — sublinearly once memory-bound.
  GpuDeviceSpec wide = spec;
  wide.parallel_workers = 512;
  SimtKernelModel kernel512(wide, 128);
  double r512 = 20000000 / kernel512.ExecTime(20000000, 100000, 60000);
  EXPECT_LT(r_large, r512);
  EXPECT_LT(r512, kernel.PeakRate() * 4.0);  // mem cap bites before 4x
}

void TestGpuPipelineOrdering() {
  GpuDeviceSpec spec;
  GpuDevice serial(spec, 128, /*pipelined=*/false);
  GpuWorkItem item{500000, 30000, 20000};
  PipelineTiming t = serial.Process(1.0, item);
  EXPECT_NEAR(t.h2d_start, 1.0, 1e-12);
  EXPECT_LT(t.h2d_start, t.h2d_done);
  EXPECT_LE(t.h2d_done, t.kernel_start);
  EXPECT_LT(t.kernel_start, t.kernel_done);
  EXPECT_LE(t.kernel_done, t.d2h_start);
  EXPECT_LT(t.d2h_start, t.d2h_done);

  // Non-pipelined: the next block waits for everything.
  PipelineTiming t2 = serial.Process(1.0, item);
  EXPECT_NEAR(t2.h2d_start, t.d2h_done, 1e-12);

  // Pipelined: the next block's H2D overlaps this kernel.
  GpuDevice pipelined(spec, 128, /*pipelined=*/true);
  PipelineTiming p1 = pipelined.Process(0.0, item);
  PipelineTiming p2 = pipelined.Process(0.0, item);
  EXPECT_NEAR(p2.h2d_start, p1.h2d_done, 1e-12);
  EXPECT_LT(p2.h2d_start, p1.kernel_done);
}

Dataset ProfileDataset() {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.num_cols = 3000;
  spec.train_nnz = 400000;
  spec.test_nnz = 1000;
  auto ds = GenerateSynthetic(spec, 3);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

void TestProfilerCostModels() {
  Dataset ds = ProfileDataset();
  Profiler profiler(GpuDeviceSpec(), CpuDeviceSpec(), 128);
  auto model = profiler.BuildHsgdModel(ds);
  EXPECT_TRUE(model.ok());
  EXPECT_LT(0.0, model->cpu_rate);
  EXPECT_LT(0.0, model->qilin_b);
  EXPECT_LT(0.0, model->gpu_worker_point_time);

  AlphaQuery query;
  query.epoch_nnz = ds.train_size();
  query.num_cpu_threads = 16;
  query.num_gpus = 1;
  query.row_strata = 17;
  query.num_rows = ds.num_rows;
  query.num_cols = ds.num_cols;
  for (CostModelKind kind : {CostModelKind::kQilin, CostModelKind::kOurs}) {
    double alpha = model->DecideAlpha(kind, query);
    EXPECT_TRUE(alpha >= 0.02 && alpha <= 0.98);
  }
  // Fewer CPU threads => a larger GPU share, under either model.
  AlphaQuery fewer = query;
  fewer.num_cpu_threads = 4;
  EXPECT_LT(model->DecideAlpha(CostModelKind::kOurs, query),
            model->DecideAlpha(CostModelKind::kOurs, fewer));

  // Empty dataset is a profiling error, not a crash.
  Dataset empty;
  empty.num_rows = 10;
  empty.num_cols = 10;
  EXPECT_FALSE(profiler.BuildHsgdModel(empty).ok());
}

}  // namespace

void RunAllTests() {
  TestPcieRampAndSaturation();
  TestCpuDeviceFlat();
  TestGpuKernelSaturation();
  TestGpuPipelineOrdering();
  TestProfilerCostModels();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
