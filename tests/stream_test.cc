// Stream subsystem tests: the incremental parser must be byte-chunking
// invariant (records, bad-line tally, and the exact over-budget failure
// all identical down to 1-byte pushes), and the OnlineTrainer must take a
// cold raw id from ingestion to a servable factor row — with queries in
// between answered by a typed NotFound, never a stale dense-id aliasing.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/session.h"
#include "io/loader.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "stream/stream.h"
#include "stream/wal.h"
#include "test_main.h"

namespace hsgd {
namespace {

using io::DataFormat;
using io::LoadOptions;
using io::RawRating;
using io::StreamParser;
using stream::DenseIdentityMap;
using stream::OnlineTrainer;
using stream::SyntheticStream;
using stream::SyntheticStreamSpec;

/// Feed `text` in fixed-size chunks and Finish; returns the records.
/// Failures (budget exhaustion) surface through `status`.
std::vector<RawRating> ParseChunked(const std::string& text,
                                    DataFormat format,
                                    const LoadOptions& options,
                                    size_t chunk_size, Status* status,
                                    StreamParser* parser_out = nullptr) {
  StreamParser parser(format, options, "stream_test");
  std::vector<RawRating> out;
  Status last = Status::Ok();
  for (size_t pos = 0; pos < text.size(); pos += chunk_size) {
    last = parser.Push(text.substr(pos, chunk_size), &out);
    if (!last.ok()) break;
  }
  if (last.ok()) last = parser.Finish(&out);
  if (status != nullptr) *status = last;
  if (parser_out != nullptr) *parser_out = parser;
  return out;
}

void ExpectSameRecords(const std::vector<RawRating>& a,
                       const std::vector<RawRating>& b) {
  EXPECT_EQ(a.size(), b.size());
  if (a.size() != b.size()) return;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].rating, b[i].rating);
  }
}

void TestParserChunkingInvariance() {
  // CRLF, blank lines, an unterminated last line — every edge the batch
  // loader tolerates, split at every possible byte boundary.
  const std::string movielens =
      "7::100::4.5\r\n"
      "\n"
      "8::200::3.0\n"
      "7::300::5.0\n"
      "9::100::0.5";
  Status status;
  const auto whole = ParseChunked(movielens, DataFormat::kMovieLens, {},
                                  movielens.size(), &status);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(whole.size(), 4u);
  if (whole.size() == 4u) {
    EXPECT_EQ(whole[0].user, 7);
    EXPECT_EQ(whole[0].item, 100);
    EXPECT_EQ(whole[0].rating, 4.5f);
    EXPECT_EQ(whole[3].user, 9);
    EXPECT_EQ(whole[3].rating, 0.5f);
  }
  for (size_t chunk : {1u, 2u, 3u, 7u, 64u}) {
    const auto parsed = ParseChunked(movielens, DataFormat::kMovieLens, {},
                                     chunk, &status);
    EXPECT_TRUE(status.ok());
    ExpectSameRecords(parsed, whole);
  }

  // Netflix: section headers carry across chunk boundaries, and a
  // re-rated (user, item) pair is NOT a duplicate for a stream.
  const std::string netflix =
      "12:\n"
      "100,4,2005-09-06\n"
      "101,3\n"
      "34:\n"
      "100,5\n"
      "100,2\n";
  const auto nf_whole = ParseChunked(netflix, DataFormat::kNetflix, {},
                                     netflix.size(), &status);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(nf_whole.size(), 4u);
  if (nf_whole.size() == 4u) {
    EXPECT_EQ(nf_whole[0].user, 100);
    EXPECT_EQ(nf_whole[0].item, 12);
    EXPECT_EQ(nf_whole[2].item, 34);
    EXPECT_EQ(nf_whole[3].user, 100);
    EXPECT_EQ(nf_whole[3].rating, 2.0f);
  }
  for (size_t chunk : {1u, 5u, 13u}) {
    const auto parsed = ParseChunked(netflix, DataFormat::kNetflix, {},
                                     chunk, &status);
    EXPECT_TRUE(status.ok());
    ExpectSameRecords(parsed, nf_whole);
  }

  // CSV headers (the only format that carries them) are skipped even
  // when the header line itself is split across chunks.
  const std::string csv =
      "user,item,rating\n"
      "1,10,2.5\n"
      "2,20,-1.0\n";
  const auto csv_whole =
      ParseChunked(csv, DataFormat::kCsv, {}, csv.size(), &status);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(csv_whole.size(), 2u);
  if (csv_whole.size() == 2u) {
    EXPECT_EQ(csv_whole[0].user, 1);
    EXPECT_EQ(csv_whole[1].rating, -1.0f);  // csv range is unbounded
  }
  for (size_t chunk : {1u, 3u, 9u}) {
    const auto parsed =
        ParseChunked(csv, DataFormat::kCsv, {}, chunk, &status);
    EXPECT_TRUE(status.ok());
    ExpectSameRecords(parsed, csv_whole);
  }
}

void TestParserErrorBudgetDeterministic() {
  // Lines 3 and 5 are bad (garbage fields, out-of-range rating).
  const std::string text =
      "1::10::4.0\n"
      "2::20::3.0\n"
      "oops::not::a-line\n"
      "3::30::2.0\n"
      "4::40::9.5\n"
      "5::50::1.0\n";

  // Budget 2: both bad lines quarantined, load order preserved.
  LoadOptions lenient;
  lenient.max_bad_lines = 2;
  for (size_t chunk : std::vector<size_t>{1, 4, text.size()}) {
    Status status;
    StreamParser parser(DataFormat::kMovieLens, lenient, "stream_test");
    const auto parsed = ParseChunked(text, DataFormat::kMovieLens, lenient,
                                     chunk, &status, &parser);
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(parsed.size(), 4u);
    EXPECT_EQ(parser.bad_lines().total, 2);
    EXPECT_EQ(parser.bad_lines().sample.size(), 2u);
    if (parser.bad_lines().sample.size() == 2u) {
      EXPECT_EQ(parser.bad_lines().sample[0].line, 3);
      EXPECT_EQ(parser.bad_lines().sample[1].line, 5);
    }
    EXPECT_EQ(parser.lines_consumed(), 6);
  }

  // Budget 1: the SECOND bad line fails, naming line 5 — the identical
  // first-over-budget failure for every chunking — and the parser is
  // poisoned afterwards.
  LoadOptions strict;
  strict.max_bad_lines = 1;
  std::string first_message;
  for (size_t chunk : std::vector<size_t>{1, 4, text.size()}) {
    StreamParser parser(DataFormat::kMovieLens, strict, "stream_test");
    std::vector<RawRating> out;
    Status failed = Status::Ok();
    for (size_t pos = 0; pos < text.size() && failed.ok();
         pos += chunk) {
      failed = parser.Push(text.substr(pos, chunk), &out);
    }
    EXPECT_FALSE(failed.ok());
    EXPECT_TRUE(failed.code() == StatusCode::kInvalidArgument);
    EXPECT_TRUE(failed.message().find("stream_test:5") !=
                std::string::npos);
    if (first_message.empty()) {
      first_message = failed.message();
    } else {
      EXPECT_EQ(failed.message(), first_message);
    }
    EXPECT_TRUE(parser.failed());
    // Poisoned: the same error, forever, from both entry points.
    std::vector<RawRating> ignored;
    EXPECT_EQ(parser.Push("6::60::2.0\n", &ignored).message(),
              failed.message());
    EXPECT_EQ(parser.Finish(&ignored).message(), failed.message());
    EXPECT_TRUE(ignored.empty());
  }

  // Finish is once-only, and negative ids are malformed.
  StreamParser done(DataFormat::kMovieLens, {}, "stream_test");
  std::vector<RawRating> out;
  EXPECT_TRUE(done.Push("1::10::4.0\n", &out).ok());
  EXPECT_TRUE(done.Finish(&out).ok());
  EXPECT_TRUE(done.Finish(&out).code() == StatusCode::kFailedPrecondition);
  EXPECT_TRUE(done.Push("2::20::3.0\n", &out).code() ==
              StatusCode::kFailedPrecondition);

  StreamParser negative(DataFormat::kCsv, {}, "stream_test");
  EXPECT_FALSE(negative.Push("-3,10,4.0\n", &out).ok());
}

// The stream grammar IS the batch grammar: the same dirty text run
// through LoadRatings and through 1-byte Pushes yields the same records
// (modulo the dense remap the batch side applies) and the same bad-line
// accounting.
void TestParserAgreesWithBatchLoader() {
  const std::string text =
      "1::10::4.0\n"
      "11::21::3.0\n"
      "broken line\n"
      "12::22::2.0\n"
      "13::23::1.5\n";
  const std::string path = "stream_test_loader_cmp.dat";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_TRUE(f != nullptr);
  if (f == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);

  LoadOptions options;
  options.max_bad_lines = 2;
  auto loaded = io::LoadRatings(path, DataFormat::kMovieLens, options);
  EXPECT_TRUE(loaded.ok());

  Status status;
  StreamParser parser(DataFormat::kMovieLens, options, path);
  const auto streamed =
      ParseChunked(text, DataFormat::kMovieLens, options, 1, &status,
                   &parser);
  EXPECT_TRUE(status.ok());

  if (loaded.ok()) {
    EXPECT_EQ(loaded->ratings.size(), streamed.size());
    if (loaded->ratings.size() == streamed.size()) {
      for (size_t i = 0; i < streamed.size(); ++i) {
        // The batch loader's dense id for this record's raw id must be
        // the id it stored — the streams agree record by record.
        EXPECT_EQ(loaded->users.Lookup(streamed[i].user),
                  loaded->ratings[i].u);
        EXPECT_EQ(loaded->items.Lookup(streamed[i].item),
                  loaded->ratings[i].v);
        EXPECT_EQ(loaded->ratings[i].r, streamed[i].rating);
      }
    }
    EXPECT_EQ(loaded->bad_lines.total, parser.bad_lines().total);
    EXPECT_EQ(loaded->bad_lines.sample.size(),
              parser.bad_lines().sample.size());
    if (!loaded->bad_lines.sample.empty() &&
        !parser.bad_lines().sample.empty()) {
      EXPECT_EQ(loaded->bad_lines.sample[0].line,
                parser.bad_lines().sample[0].line);
    }
  }
  std::remove(path.c_str());
}

void TestSyntheticStreamDeterministic() {
  SyntheticStreamSpec spec;
  spec.warm_users = 50;
  spec.warm_items = 40;
  spec.cold_user_rate = 0.2;
  spec.cold_item_rate = 0.1;
  spec.raw_user_base = 1000000;
  spec.raw_item_base = 2000000;
  spec.seed = 9;
  SyntheticStream a(spec);
  SyntheticStream b(spec);
  const auto batch_a = a.NextBatch(500);
  const auto batch_b = b.NextBatch(500);
  EXPECT_EQ(batch_a.size(), 500u);
  ExpectSameRecords(batch_a, batch_b);
  EXPECT_EQ(a.cold_users_emitted(), b.cold_users_emitted());
  // At a 20% cold rate, 500 arrivals must introduce someone new.
  EXPECT_LT(0, a.cold_users_emitted());
  EXPECT_LT(0, a.cold_items_emitted());
  for (const RawRating& rec : batch_a) {
    EXPECT_TRUE(rec.user >= spec.raw_user_base);
    EXPECT_TRUE(rec.item >= spec.raw_item_base);
    EXPECT_TRUE(rec.rating >= spec.min_rating &&
                rec.rating <= spec.max_rating);
  }
}

StatusOr<std::unique_ptr<Session>> WarmSession(int32_t rows, int32_t cols,
                                               int max_epochs) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_cols = cols;
  spec.train_nnz = rows * cols / 10;
  spec.test_nnz = rows * cols / 100;
  spec.params.k = 8;
  auto ds = GenerateSynthetic(spec, /*seed=*/21);
  HSGD_RETURN_IF_ERROR(ds.status());
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgdStar;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = max_epochs;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return Session::Create(*std::move(ds), cfg);
}

// The cold-start satellite, end to end: a raw id streamed in is NotFound
// until the publish whose maps cover it, then servable — and the raw/dense
// offset guarantees an identity fallback would be caught as a wrong answer.
void TestOnlineTrainerColdStartServing() {
  const int32_t kRows = 120;
  const int32_t kCols = 90;
  const int64_t kUserBase = 5000000;
  const int64_t kItemBase = 7000000;
  auto session = WarmSession(kRows, kCols, /*max_epochs=*/40);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  EXPECT_TRUE((*session)->RunEpoch().ok());
  EXPECT_TRUE((*session)->RunEpoch().ok());

  // The warm vocabulary is offset: raw id = base + dense index.
  io::IdMap users, items;
  for (int32_t i = 0; i < kRows; ++i) users.Assign(kUserBase + i);
  for (int32_t i = 0; i < kCols; ++i) items.Assign(kItemBase + i);

  auto server = serve::RecServer::Create(serve::ServeConfig{}, nullptr);
  EXPECT_TRUE(server.ok());
  if (!server.ok()) return;
  serve::RecServer* srv = server->get();

  obs::MetricsRegistry metrics;
  auto trainer = OnlineTrainer::Create(
      *std::move(session), std::move(users), std::move(items),
      [srv](serve::SnapshotPtr snap) { return srv->Publish(std::move(snap)); },
      &metrics);
  EXPECT_TRUE(trainer.ok());
  if (!trainer.ok()) return;
  OnlineTrainer* ot = trainer->get();

  EXPECT_TRUE(ot->PublishSnapshot().ok());
  EXPECT_EQ(ot->version(), 1u);

  // Warm raw id serves; its dense alias must NOT (identity fallback
  // would accept it — the typed NotFound proves the maps are live).
  EXPECT_TRUE(srv->Query({kUserBase + 3, /*raw=*/true, 5}).ok());
  EXPECT_TRUE(srv->Query({3, /*raw=*/true, 5}).status().code() ==
              StatusCode::kNotFound);

  // Stream in a cold user and a cold item.
  const int64_t cold_user = kUserBase + kRows + 7;
  const int64_t cold_item = kItemBase + kCols + 2;
  std::vector<RawRating> batch = {
      {cold_user, kItemBase + 1, 4.5f},
      {cold_user, cold_item, 3.0f},
      {kUserBase + 2, cold_item, 2.5f},
  };
  auto ingested = ot->Ingest(batch);
  EXPECT_TRUE(ingested.ok());
  if (ingested.ok()) {
    EXPECT_EQ(ingested->accepted, 3);
    EXPECT_EQ(ingested->cold_users, 1);
    EXPECT_EQ(ingested->cold_items, 1);
  }
  EXPECT_EQ(ot->pending_nnz(), 3);

  // Before the next publish the server still holds the old snapshot:
  // the streamed id is typed NotFound, not a stale answer.
  EXPECT_TRUE(srv->Query({cold_user, /*raw=*/true, 5}).status().code() ==
              StatusCode::kNotFound);

  EXPECT_TRUE(ot->TrainDirty().ok());
  EXPECT_EQ(ot->pending_nnz(), 0);
  EXPECT_TRUE(ot->PublishSnapshot().ok());
  EXPECT_EQ(ot->version(), 2u);

  // The publish whose maps cover the cold user makes it servable, and
  // its results translate back to raw item ids.
  auto answer = srv->Query({cold_user, /*raw=*/true, 5});
  EXPECT_TRUE(answer.ok());
  if (answer.ok()) {
    EXPECT_EQ(answer->snapshot_version, 2u);
    EXPECT_EQ(answer->items.size(), 5u);
    EXPECT_EQ(answer->raw_items.size(), 5u);
    for (int64_t raw : answer->raw_items) {
      EXPECT_TRUE(raw >= kItemBase);
    }
  }

  // Ingest rejects negative raw ids without mutating anything.
  auto bad = ot->Ingest({{-1, kItemBase, 3.0f}});
  EXPECT_TRUE(bad.status().code() == StatusCode::kInvalidArgument);
  EXPECT_EQ(ot->pending_nnz(), 0);

  // TrainDirty with nothing pending is the session's typed refusal.
  EXPECT_TRUE(ot->TrainDirty().status().code() ==
              StatusCode::kFailedPrecondition);

  // The stream.* instruments saw the traffic.
  EXPECT_EQ(metrics.counter("stream.ingested")->Value(), 3);
  EXPECT_EQ(metrics.counter("stream.cold_users")->Value(), 1);
  EXPECT_EQ(metrics.counter("stream.cold_items")->Value(), 1);
  EXPECT_EQ(metrics.counter("stream.publishes")->Value(), 2);
  EXPECT_EQ(metrics.counter("stream.epochs")->Value(), 1);

  srv->Shutdown();
}

void TestOnlineTrainerCreateValidation() {
  auto session = WarmSession(40, 30, 5);
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  // Maps that do not describe the dataset are rejected.
  auto wrong = OnlineTrainer::Create(*std::move(session),
                                     DenseIdentityMap(39),
                                     DenseIdentityMap(30), nullptr);
  EXPECT_TRUE(wrong.status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(OnlineTrainer::Create(nullptr, DenseIdentityMap(0),
                                    DenseIdentityMap(0), nullptr)
                  .status()
                  .code() == StatusCode::kInvalidArgument);

  auto session2 = WarmSession(40, 30, 5);
  EXPECT_TRUE(session2.ok());
  if (!session2.ok()) return;
  auto ok = OnlineTrainer::Create(*std::move(session2),
                                  DenseIdentityMap(40),
                                  DenseIdentityMap(30), nullptr);
  EXPECT_TRUE(ok.ok());
  if (ok.ok()) {
    // A null publisher is legal: the snapshot is still returned.
    EXPECT_TRUE((*ok)->session().Done() == false);
    auto snap = (*ok)->PublishSnapshot();
    EXPECT_TRUE(snap.ok());
    if (snap.ok()) EXPECT_EQ((*snap)->version(), 1u);
  }
}

/// Deterministic warm base for the WAL tests; regenerating with the same
/// seed reproduces the exact Dataset, which is what Recover() requires.
Dataset WarmDataset(int32_t rows, int32_t cols) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_cols = cols;
  spec.train_nnz = rows * cols / 10;
  spec.test_nnz = rows * cols / 100;
  spec.params.k = 8;
  auto ds = GenerateSynthetic(spec, /*seed=*/33);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TrainConfig StreamConfig() {
  TrainConfig cfg;
  cfg.algorithm = Algorithm::kHsgdStar;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = 40;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return cfg;
}

/// Deterministic mixed warm/cold batch for publish round `round` (raw
/// ids a little past the warm range introduce cold entities).
std::vector<RawRating> StreamBatch(int round, int32_t rows, int32_t cols) {
  std::vector<RawRating> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({(round * 7 + 5 * i) % (rows + 3),
                     (round * 11 + 3 * i) % (cols + 2),
                     1.0f + 0.5f * static_cast<float>((round + i) % 6)});
  }
  return batch;
}

// WAL-armed ingest is bit-transparent: the same warm base and streamed
// rounds produce identical factors with and without the log, the log
// holds exactly the acknowledged batches, and re-Creating over a
// populated log is refused (that is Recover's job).
void TestWalIngestParityAndCreateRefusal() {
  const int32_t kRows = 80;
  const int32_t kCols = 60;
  const int kRounds = 4;
  const std::string dir = "stream_test_wal_parity";
  std::filesystem::remove_all(dir);

  OnlineTrainer::WalIngestOptions wal;
  wal.wal.dir = dir;

  auto run_leg = [&](const OnlineTrainer::WalIngestOptions* log)
      -> std::unique_ptr<OnlineTrainer> {
    auto session =
        Session::Create(WarmDataset(kRows, kCols), StreamConfig());
    EXPECT_TRUE(session.ok());
    if (!session.ok()) return nullptr;
    EXPECT_TRUE((*session)->RunEpoch().ok());
    auto trainer = OnlineTrainer::Create(
        *std::move(session), DenseIdentityMap(kRows),
        DenseIdentityMap(kCols), nullptr, nullptr, log);
    EXPECT_TRUE(trainer.ok());
    if (!trainer.ok()) return nullptr;
    for (int round = 1; round <= kRounds; ++round) {
      EXPECT_TRUE(
          (*trainer)->Ingest(StreamBatch(round, kRows, kCols)).ok());
      EXPECT_TRUE((*trainer)->TrainDirty().ok());
    }
    return *std::move(trainer);
  };

  std::unique_ptr<OnlineTrainer> plain = run_leg(nullptr);
  std::unique_ptr<OnlineTrainer> logged = run_leg(&wal);
  EXPECT_TRUE(plain != nullptr && logged != nullptr);
  if (plain == nullptr || logged == nullptr) return;

  EXPECT_TRUE(plain->session().model().DenseP() ==
              logged->session().model().DenseP());
  EXPECT_TRUE(plain->session().model().DenseQ() ==
              logged->session().model().DenseQ());

  // The log holds exactly the acknowledged rounds, in seq order.
  EXPECT_EQ(logged->wal_applied_seq(), static_cast<uint64_t>(kRounds));
  EXPECT_EQ(logged->wal_retries(), 0);
  auto replay = stream::Wal::Replay(dir);
  EXPECT_TRUE(replay.ok());
  if (replay.ok()) {
    EXPECT_EQ(replay->records.size(), static_cast<size_t>(kRounds));
    EXPECT_EQ(replay->truncated_bytes, 0);
    for (int round = 1; round <= kRounds; ++round) {
      EXPECT_EQ(replay->records[round - 1].seq,
                static_cast<uint64_t>(round));
      ExpectSameRecords(replay->records[round - 1].batch,
                        StreamBatch(round, kRows, kCols));
    }
  }

  // A fresh Create over the populated log: silently appending after
  // unreplayed records would desync checkpoint marks from the session.
  logged.reset();
  auto session = Session::Create(WarmDataset(kRows, kCols), StreamConfig());
  EXPECT_TRUE(session.ok());
  if (session.ok()) {
    auto again = OnlineTrainer::Create(
        *std::move(session), DenseIdentityMap(kRows),
        DenseIdentityMap(kCols), nullptr, nullptr, &wal);
    EXPECT_TRUE(again.status().code() == StatusCode::kFailedPrecondition);
    EXPECT_TRUE(again.status().message().find("Recover") !=
                std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

// The crash-recovery contract end to end: a mid-stream checkpoint plus
// the WAL tail reconstructs the crashed trainer's factors bit for bit,
// and Checkpoint refuses to run while ingested ratings are untrained.
void TestWalCheckpointRecoverBitIdentity() {
  const int32_t kRows = 80;
  const int32_t kCols = 60;
  const std::string dir = "stream_test_wal_recover";
  const std::string ckpt = "stream_test_recover.ckpt";
  std::filesystem::remove_all(dir);
  std::remove(ckpt.c_str());

  OnlineTrainer::WalIngestOptions wal;
  wal.wal.dir = dir;

  auto session = Session::Create(WarmDataset(kRows, kCols), StreamConfig());
  EXPECT_TRUE(session.ok());
  if (!session.ok()) return;
  EXPECT_TRUE((*session)->RunEpoch().ok());
  auto created = OnlineTrainer::Create(
      *std::move(session), DenseIdentityMap(kRows), DenseIdentityMap(kCols),
      nullptr, nullptr, &wal);
  EXPECT_TRUE(created.ok());
  if (!created.ok()) return;
  OnlineTrainer* ot = created->get();

  // Rounds 1-3 are covered by the checkpoint...
  for (int round = 1; round <= 3; ++round) {
    EXPECT_TRUE(ot->Ingest(StreamBatch(round, kRows, kCols)).ok());
    if (round == 3) {
      // ...which must wait until the dirty ratings are trained:
      // recovery relies on ingest-quiescent save points.
      EXPECT_TRUE(ot->Checkpoint(ckpt).code() ==
                  StatusCode::kFailedPrecondition);
    }
    EXPECT_TRUE(ot->TrainDirty().ok());
  }
  EXPECT_TRUE(ot->Checkpoint(ckpt).ok());

  // ...rounds 4-5 exist only in the log when the "crash" hits.
  for (int round = 4; round <= 5; ++round) {
    EXPECT_TRUE(ot->Ingest(StreamBatch(round, kRows, kCols)).ok());
    EXPECT_TRUE(ot->TrainDirty().ok());
  }
  const std::vector<float> p = ot->session().model().DenseP();
  const std::vector<float> q = ot->session().model().DenseQ();
  created->reset();  // the crash: only the checkpoint and log survive

  auto recovered = OnlineTrainer::Recover(
      WarmDataset(kRows, kCols), DenseIdentityMap(kRows),
      DenseIdentityMap(kCols), ckpt, wal, nullptr);
  EXPECT_TRUE(recovered.ok());
  if (!recovered.ok()) return;
  EXPECT_EQ(recovered->checkpoint_seq, 3u);
  EXPECT_EQ(recovered->replayed_batches, 3);
  EXPECT_EQ(recovered->truncated_bytes, 0);
  EXPECT_EQ(recovered->unapplied.size(), 2u);
  OnlineTrainer* back = recovered->trainer.get();
  EXPECT_TRUE(back != nullptr);
  if (back == nullptr) return;

  // Re-drive the tail with the original ingest/train cadence.
  for (const stream::WalRecord& record : recovered->unapplied) {
    EXPECT_TRUE(back->ReplayIngest(record).ok());
    EXPECT_TRUE(back->TrainDirty().ok());
  }
  EXPECT_TRUE(back->session().model().DenseP() == p);
  EXPECT_TRUE(back->session().model().DenseQ() == q);
  EXPECT_EQ(back->wal_applied_seq(), 5u);

  // The revived log keeps appending where the crash left off.
  EXPECT_TRUE(back->Ingest(StreamBatch(6, kRows, kCols)).ok());
  EXPECT_EQ(back->wal_applied_seq(), 6u);

  std::filesystem::remove_all(dir);
  std::remove(ckpt.c_str());
}

}  // namespace

void RunAllTests() {
  TestParserChunkingInvariance();
  TestParserErrorBudgetDeterministic();
  TestParserAgreesWithBatchLoader();
  TestSyntheticStreamDeterministic();
  TestOnlineTrainerColdStartServing();
  TestOnlineTrainerCreateValidation();
  TestWalIngestParityAndCreateRefusal();
  TestWalCheckpointRecoverBitIdentity();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
