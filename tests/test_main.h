// Minimal assertion harness for the ctest suite: no external test
// framework in the container, so each test binary is a plain main() that
// returns the number of failed expectations (0 == pass).

#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace hsgd {
namespace testing {

inline int& Failures() {
  static int failures = 0;
  return failures;
}

inline void Fail(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "FAIL %s:%d: %s\n", file, line, what.c_str());
  ++Failures();
}

}  // namespace testing
}  // namespace hsgd

#define EXPECT_TRUE(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::hsgd::testing::Fail(__FILE__, __LINE__, #cond);     \
  } while (0)

#define EXPECT_FALSE(cond) EXPECT_TRUE(!(cond))

#define EXPECT_EQ(a, b)                                                   \
  do {                                                                    \
    if (!((a) == (b)))                                                    \
      ::hsgd::testing::Fail(__FILE__, __LINE__,                           \
                            std::string(#a " == " #b));                   \
  } while (0)

#define EXPECT_NEAR(a, b, tol)                                            \
  do {                                                                    \
    double _ta = static_cast<double>(a), _tb = static_cast<double>(b);    \
    if (!(std::fabs(_ta - _tb) <= (tol)))                                 \
      ::hsgd::testing::Fail(                                              \
          __FILE__, __LINE__,                                             \
          std::string(#a " ~= " #b " (") + std::to_string(_ta) +          \
              " vs " + std::to_string(_tb) + ")");                        \
  } while (0)

#define EXPECT_LT(a, b)                                                   \
  do {                                                                    \
    if (!((a) < (b)))                                                     \
      ::hsgd::testing::Fail(                                              \
          __FILE__, __LINE__,                                             \
          std::string(#a " < " #b " (") +                                 \
              std::to_string(static_cast<double>(a)) + " vs " +           \
              std::to_string(static_cast<double>(b)) + ")");              \
  } while (0)

#define EXPECT_LE(a, b)                                                   \
  do {                                                                    \
    if (!((a) <= (b)))                                                    \
      ::hsgd::testing::Fail(                                              \
          __FILE__, __LINE__,                                             \
          std::string(#a " <= " #b " (") +                                \
              std::to_string(static_cast<double>(a)) + " vs " +           \
              std::to_string(static_cast<double>(b)) + ")");              \
  } while (0)

#define TEST_MAIN()                                                     \
  int main() {                                                          \
    RunAllTests();                                                      \
    if (::hsgd::testing::Failures() == 0) {                             \
      std::printf("PASS\n");                                            \
      return 0;                                                         \
    }                                                                   \
    std::fprintf(stderr, "%d expectation(s) failed\n",                  \
                 ::hsgd::testing::Failures());                          \
    return 1;                                                           \
  }
