#include <cmath>

#include "core/hsgd.h"
#include "test_main.h"

namespace hsgd {
namespace {

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticSpec spec;
  spec.num_rows = 600;
  spec.num_cols = 500;
  spec.train_nnz = 40000;
  spec.test_nnz = 4000;
  spec.params.k = 16;
  spec.params.learning_rate = 0.01f;
  spec.noise_stddev = 0.3;
  auto ds = GenerateSynthetic(spec, seed);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TrainConfig SmallConfig(Algorithm algorithm) {
  TrainConfig cfg;
  cfg.algorithm = algorithm;
  cfg.hardware.num_cpu_threads = 4;
  cfg.hardware.num_gpus = 1;
  cfg.max_epochs = 5;
  cfg.use_dataset_target = false;
  cfg.eval_threads = 2;
  return cfg;
}

void TestAllAlgorithmsRun() {
  Dataset ds = SmallDataset();
  for (Algorithm algorithm :
       {Algorithm::kCpuOnly, Algorithm::kGpuOnly, Algorithm::kHsgd,
        Algorithm::kHsgdStar}) {
    auto result = Trainer::Train(ds, SmallConfig(algorithm));
    EXPECT_TRUE(result.ok());
    if (!result.ok()) continue;
    EXPECT_EQ(result->trace.points.size(), 5u);
    EXPECT_LT(0.0, result->stats.sim.seconds);
    EXPECT_LT(0, result->stats.sim.block_tasks);
    // Learning happened: RMSE dropped versus the first epoch.
    EXPECT_LT(result->trace.points.back().test_rmse,
              result->trace.points.front().test_rmse * 0.95);
    // Epoch times are strictly increasing.
    for (size_t i = 1; i < result->trace.points.size(); ++i) {
      EXPECT_LT(result->trace.points[i - 1].time,
                result->trace.points[i].time);
    }
  }
}

void TestDeterminism() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
  auto a = Trainer::Train(ds, cfg);
  auto b = Trainer::Train(ds, cfg);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a->trace.points.size(), b->trace.points.size());
  for (size_t i = 0; i < a->trace.points.size(); ++i) {
    // Bit-exact: same seed, same virtual schedule, same arithmetic.
    EXPECT_EQ(a->trace.points[i].time, b->trace.points[i].time);
    EXPECT_EQ(a->trace.points[i].test_rmse, b->trace.points[i].test_rmse);
    EXPECT_EQ(a->trace.points[i].train_rmse,
              b->trace.points[i].train_rmse);
  }
  EXPECT_EQ(a->stats.sim.seconds, b->stats.sim.seconds);
  EXPECT_EQ(a->stats.sim.stolen_by_gpus, b->stats.sim.stolen_by_gpus);
  EXPECT_EQ(a->stats.sim.stolen_by_cpus, b->stats.sim.stolen_by_cpus);

  TrainConfig other = cfg;
  other.seed = cfg.seed + 1;
  auto c = Trainer::Train(ds, other);
  EXPECT_TRUE(c.ok());
  // A different seed draws different device speeds and shuffles: the
  // virtual clock will not match bit-for-bit.
  EXPECT_TRUE(c->stats.sim.seconds != a->stats.sim.seconds);
}

void TestTargetStopsEarly() {
  Dataset ds = SmallDataset();
  ds.target_rmse = 100.0;  // trivially reachable after one epoch
  TrainConfig cfg = SmallConfig(Algorithm::kCpuOnly);
  cfg.use_dataset_target = true;
  auto result = Trainer::Train(ds, cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.sim.reached_target);
  EXPECT_EQ(result->trace.points.size(), 1u);
  EXPECT_EQ(result->trace.TimeToReach(100.0),
            result->trace.points[0].time);

  ds.target_rmse = 1e-9;  // unreachable
  auto never = Trainer::Train(ds, cfg);
  EXPECT_TRUE(never.ok());
  EXPECT_FALSE(never->stats.sim.reached_target);
  EXPECT_TRUE(never->trace.TimeToReach(1e-9) >= kSimTimeNever);
}

void TestStarAlphaAndStats() {
  Dataset ds = SmallDataset();
  auto result = Trainer::Train(ds, SmallConfig(Algorithm::kHsgdStar));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.sim.alpha > 0.0 && result->stats.sim.alpha < 1.0);
  EXPECT_TRUE(result->stats.sim.update_rate_cv >= 0.0);

  auto cpu_only = Trainer::Train(ds, SmallConfig(Algorithm::kCpuOnly));
  EXPECT_NEAR(cpu_only->stats.sim.alpha, 0.0, 1e-12);
  auto gpu_only = Trainer::Train(ds, SmallConfig(Algorithm::kGpuOnly));
  EXPECT_NEAR(gpu_only->stats.sim.alpha, 1.0, 1e-12);
}

void TestDynamicNoSlowerThanStatic() {
  Dataset ds = SmallDataset();
  // Averaged over a batch of variability draws, the dynamic phase must
  // help: stealing only happens where the static plan left a device
  // idle. (Individual draws can be neutral — balanced plans steal
  // nothing — so this is a mean-behavior property.)
  double static_total = 0.0, dynamic_total = 0.0;
  int64_t stolen = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (bool dynamic : {false, true}) {
      TrainConfig cfg = SmallConfig(Algorithm::kHsgdStar);
      // Exaggerated device variability guarantees the static plan is
      // badly wrong on some draws — exactly when stealing must kick in.
      cfg.hardware.speed_variability = 0.5;
      cfg.dynamic_scheduling = dynamic;
      cfg.seed = seed;
      auto result = Trainer::Train(ds, cfg);
      EXPECT_TRUE(result.ok());
      (dynamic ? dynamic_total : static_total) +=
          result->stats.sim.seconds;
      if (dynamic) {
        stolen +=
            result->stats.sim.stolen_by_gpus + result->stats.sim.stolen_by_cpus;
      } else {
        EXPECT_EQ(result->stats.sim.stolen_by_gpus, 0);
        EXPECT_EQ(result->stats.sim.stolen_by_cpus, 0);
      }
    }
  }
  EXPECT_LT(dynamic_total, static_total * 1.001);
  EXPECT_LT(0, stolen);
}

void TestInvalidConfigs() {
  Dataset ds = SmallDataset();
  TrainConfig cfg = SmallConfig(Algorithm::kCpuOnly);
  cfg.hardware.num_cpu_threads = 0;
  EXPECT_FALSE(Trainer::Train(ds, cfg).ok());
  cfg = SmallConfig(Algorithm::kGpuOnly);
  cfg.hardware.num_gpus = 0;
  EXPECT_FALSE(Trainer::Train(ds, cfg).ok());
  cfg = SmallConfig(Algorithm::kHsgd);
  cfg.max_epochs = 0;
  EXPECT_FALSE(Trainer::Train(ds, cfg).ok());
  Dataset empty;
  empty.num_rows = 10;
  empty.num_cols = 10;
  EXPECT_FALSE(Trainer::Train(empty, SmallConfig(Algorithm::kHsgd)).ok());
}

}  // namespace

void RunAllTests() {
  TestAllAlgorithmsRun();
  TestDeterminism();
  TestTargetStopsEarly();
  TestStarAlphaAndStats();
  TestDynamicNoSlowerThanStatic();
  TestInvalidConfigs();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
