#include <cstring>
#include <set>
#include <vector>

#include "test_main.h"
#include "util/cli.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace hsgd {
namespace {

void TestStrings() {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), std::string("7-x"));
  EXPECT_EQ(StrFormat("%.3f", 1.23456), std::string("1.235"));

  std::vector<std::string> parts = Split("a, b,,c ", ',');
  EXPECT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], std::string("a"));
  EXPECT_EQ(parts[1], std::string("b"));
  EXPECT_EQ(parts[2], std::string("c"));
  EXPECT_TRUE(Split("", ',').empty());

  EXPECT_EQ(WithThousandsSep(0), std::string("0"));
  EXPECT_EQ(WithThousandsSep(999), std::string("999"));
  EXPECT_EQ(WithThousandsSep(1000), std::string("1,000"));
  EXPECT_EQ(WithThousandsSep(252800275), std::string("252,800,275"));
  EXPECT_EQ(WithThousandsSep(-1234567), std::string("-1,234,567"));

  EXPECT_EQ(HumanBytes(512), std::string("512B"));
  EXPECT_EQ(HumanBytes(64 << 10), std::string("64KB"));
  EXPECT_EQ(HumanBytes(256ll << 20), std::string("256MB"));

  EXPECT_EQ(AsciiLower("YaHoo!MUSIC"), std::string("yahoo!music"));
}

void TestCliFlags() {
  const char* argv[] = {"prog", "--scale=0.25", "--threads", "8",
                        "--verbose", "-seed=42"};
  CliFlags flags;
  EXPECT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_NEAR(flags.GetDouble("scale", 1.0), 0.25, 1e-12);
  EXPECT_EQ(flags.GetInt("threads", 1), 8);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_EQ(flags.GetInt("missing", -3), -3);
  EXPECT_EQ(flags.GetString("missing", "d"), std::string("d"));

  const char* bad[] = {"prog", "positional"};
  CliFlags bad_flags;
  EXPECT_FALSE(bad_flags.Parse(2, const_cast<char**>(bad)).ok());
}

void TestCliFlagsStrict() {
  const std::vector<FlagSpec> known = {
      {"epochs", "<cap>", "epoch budget"},
      {"seed", "<n>", "RNG seed"},
  };

  const char* good[] = {"prog", "--epochs=5", "--seed", "9"};
  CliFlags flags;
  EXPECT_TRUE(flags.Parse(4, const_cast<char**>(good), known).ok());
  EXPECT_EQ(flags.GetInt("epochs", 0), 5);
  EXPECT_EQ(flags.GetInt("seed", 0), 9);

  // The typo'd singular --epoch is an error naming the flag, not a
  // silent fallback to the default budget.
  const char* typo[] = {"prog", "--epoch=5"};
  CliFlags typo_flags;
  Status st = typo_flags.Parse(2, const_cast<char**>(typo), known);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.message().find("--epoch") != std::string::npos);

  // --help is always accepted in strict mode.
  const char* help[] = {"prog", "--help"};
  CliFlags help_flags;
  EXPECT_TRUE(help_flags.Parse(2, const_cast<char**>(help), known).ok());
  EXPECT_TRUE(help_flags.GetBool("help", false));

  // The rendered table mentions every registered flag plus --help.
  std::string table = FormatFlagTable(known);
  EXPECT_TRUE(table.find("--epochs=<cap>") != std::string::npos);
  EXPECT_TRUE(table.find("--seed=<n>") != std::string::npos);
  EXPECT_TRUE(table.find("--help") != std::string::npos);
}

void TestStatus() {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status err = Status::InvalidArgument("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), std::string("nope"));

  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  StatusOr<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

void TestRng() {
  Rng a(123), b(123), c(123, 1), d(999);
  bool all_equal = true, stream_differs = false, seed_differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64(), vb = b.NextU64();
    all_equal = all_equal && va == vb;
    stream_differs = stream_differs || va != c.NextU64();
    seed_differs = seed_differs || va != d.NextU64();
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(stream_differs);
  EXPECT_TRUE(seed_differs);

  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double x = r.NextDouble();
    EXPECT_TRUE(x >= 0.0 && x < 1.0);
    int64_t v = r.UniformInt(10);
    EXPECT_TRUE(v >= 0 && v < 10);
  }
  // Gaussian moments, loosely.
  Rng g(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = g.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

void TestThreadPool() {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  bool all_once = true;
  for (int h : hits) all_once = all_once && h == 1;
  EXPECT_TRUE(all_once);

  // Degenerate ranges and a zero-thread pool must still work.
  ThreadPool serial(0);
  int calls = 0;
  serial.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  serial.ParallelFor(0, 3, 10, [&](int64_t lo, int64_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 3);
}

void TestStopwatch() {
  Stopwatch sw;
  EXPECT_TRUE(sw.Seconds() >= 0.0);
}

// The deadline-aware retry must stop at the wall-clock boundary even
// when attempts remain, grant exactly one attempt on a spent budget,
// and still use the full attempt budget when the deadline is far away.
void TestRetryWithBackoffUntilDeadline() {
  RetryOptions options;
  options.max_attempts = 50;
  options.initial_backoff = 0.02;
  options.multiplier = 1.0;  // flat 20ms sleeps: predictable attempt math
  options.jitter = 0.0;
  Rng rng(1, 23);

  // A 50ms budget fits the first attempt plus roughly two 20ms sleeps:
  // far fewer than 50 attempts, and the final attempt fires AT the
  // boundary (the clamped last sleep ends on the deadline) rather than
  // being skipped.
  int calls = 0;
  int retries = 0;
  Stopwatch wall;
  Status exhausted = RetryWithBackoffUntil(
      options, &rng, 0.05,
      [&calls]() -> Status {
        ++calls;
        return Status::Internal("still failing");
      },
      [&retries](int, const Status&) { ++retries; });
  const double took = wall.Seconds();
  EXPECT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.code() == StatusCode::kInternal);
  EXPECT_TRUE(calls >= 2);              // the deadline bounded waiting...
  EXPECT_LT(calls, options.max_attempts);  // ...not the attempt budget
  EXPECT_EQ(retries, calls - 1);
  EXPECT_TRUE(took < 0.5);  // nowhere near 49 full sleeps

  // Spent budget: exactly one attempt, no sleeping.
  calls = 0;
  Status one_shot = RetryWithBackoffUntil(
      options, &rng, 0.0, [&calls]() -> Status {
        ++calls;
        return Status::Internal("no time to retry");
      });
  EXPECT_FALSE(one_shot.ok());
  EXPECT_EQ(calls, 1);

  // Generous budget: failures burn the whole attempt budget, and a
  // success stops the loop immediately.
  options.max_attempts = 3;
  options.initial_backoff = 0.001;
  calls = 0;
  Status all_attempts = RetryWithBackoffUntil(
      options, &rng, 10.0, [&calls]() -> Status {
        ++calls;
        return Status::Internal("permanent");
      });
  EXPECT_FALSE(all_attempts.ok());
  EXPECT_EQ(calls, 3);
  calls = 0;
  Status recovered = RetryWithBackoffUntil(
      options, &rng, 10.0, [&calls]() -> Status {
        ++calls;
        return calls < 2 ? Status::Internal("transient") : Status::Ok();
      });
  EXPECT_TRUE(recovered.ok());
  EXPECT_EQ(calls, 2);
}

}  // namespace

void RunAllTests() {
  TestStrings();
  TestCliFlags();
  TestCliFlagsStrict();
  TestStatus();
  TestRng();
  TestThreadPool();
  TestStopwatch();
  TestRetryWithBackoffUntilDeadline();
}

}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
