// WAL durability tests: append/replay round-trips, segment rolling,
// torn-tail truncation under the byte-level write failpoint, loud
// failure on non-tail corruption and seq gaps, segment-granular GC, and
// the retryable injected IO fault hook. The torn-tail cases are the
// load-bearing ones: a crash mid-append must lose exactly the
// unacknowledged record and nothing else, and reopening must continue
// the sequence as if the torn bytes never existed.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "io/loader.h"
#include "stream/wal.h"
#include "test_main.h"
#include "util/status.h"

namespace hsgd {
namespace {

namespace fs = std::filesystem;
using stream::Wal;
using stream::WalOptions;
using stream::WalRecord;
using stream::WalReplayResult;

std::string FreshDir(const std::string& name) {
  std::string dir = "wal_test_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

std::vector<io::RawRating> MakeBatch(int64_t base, int count) {
  std::vector<io::RawRating> batch;
  batch.reserve(count);
  for (int i = 0; i < count; ++i) {
    io::RawRating r;
    r.user = base + i;
    r.item = 2 * base + i;
    r.rating = 1.0f + 0.25f * static_cast<float>(i);
    batch.push_back(r);
  }
  return batch;
}

bool SameBatch(const std::vector<io::RawRating>& a,
               const std::vector<io::RawRating>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].user != b[i].user || a[i].item != b[i].item ||
        a[i].rating != b[i].rating) {
      return false;
    }
  }
  return true;
}

void TestAppendReplayRoundtrip() {
  const std::string dir = FreshDir("roundtrip");
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  if (!wal.ok()) return;

  std::vector<std::vector<io::RawRating>> batches = {
      MakeBatch(0, 3), MakeBatch(100, 1), {}, MakeBatch(200, 5)};
  for (size_t i = 0; i < batches.size(); ++i) {
    auto seq = (*wal)->Append(batches[i]);
    EXPECT_TRUE(seq.ok());
    if (seq.ok()) EXPECT_EQ(*seq, i + 1);  // contiguous from 1
  }
  EXPECT_EQ((*wal)->last_seq(), 4u);
  EXPECT_FALSE((*wal)->poisoned());
  wal->reset();

  auto replay = Wal::Replay(dir);
  EXPECT_TRUE(replay.ok());
  if (!replay.ok()) return;
  EXPECT_EQ(replay->records.size(), batches.size());
  EXPECT_EQ(replay->last_seq, 4u);
  EXPECT_EQ(replay->truncated_bytes, 0);
  EXPECT_EQ(replay->segments, 1);
  for (size_t i = 0; i < replay->records.size() && i < batches.size(); ++i) {
    EXPECT_EQ(replay->records[i].seq, i + 1);
    EXPECT_TRUE(SameBatch(replay->records[i].batch, batches[i]));
  }

  // Reopen for append: the sequence continues where replay left off.
  auto reopened = Wal::Open(options);
  EXPECT_TRUE(reopened.ok());
  if (!reopened.ok()) return;
  EXPECT_EQ((*reopened)->last_seq(), 4u);
  auto seq = (*reopened)->Append(MakeBatch(300, 2));
  EXPECT_TRUE(seq.ok());
  if (seq.ok()) EXPECT_EQ(*seq, 5u);
}

void TestSegmentRollAndTruncateBefore() {
  const std::string dir = FreshDir("segments");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 128;  // force frequent rolls
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  if (!wal.ok()) return;

  const int kBatches = 12;
  for (int i = 0; i < kBatches; ++i) {
    EXPECT_TRUE((*wal)->Append(MakeBatch(10 * i, 4)).ok());
  }

  auto before = Wal::Replay(dir);
  EXPECT_TRUE(before.ok());
  if (!before.ok()) return;
  EXPECT_TRUE(before->segments > 1);
  EXPECT_EQ(before->records.size(), static_cast<size_t>(kBatches));

  // Segment-granular GC: only whole segments strictly below the mark go;
  // records >= 8 must all survive, some < 8 may too.
  EXPECT_TRUE((*wal)->TruncateBefore(8).ok());
  wal->reset();
  auto after = Wal::Replay(dir);
  EXPECT_TRUE(after.ok());
  if (!after.ok()) return;
  EXPECT_TRUE(after->segments < before->segments);
  EXPECT_EQ(after->last_seq, static_cast<uint64_t>(kBatches));
  EXPECT_TRUE(!after->records.empty());
  EXPECT_TRUE(after->records.front().seq <= 8u);
  uint64_t expect = after->records.front().seq;
  for (const WalRecord& record : after->records) {
    EXPECT_EQ(record.seq, expect);
    ++expect;
  }
}

void TestTornTailTruncatedOnReplayAndReopen() {
  const std::string dir = FreshDir("torn");
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  if (!wal.ok()) return;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*wal)->Append(MakeBatch(10 * i, 3)).ok());
  }

  // Die a few bytes into the next record: part of it lands on disk.
  stream::SetWalWriteFailpoint(5);
  auto torn = (*wal)->Append(MakeBatch(900, 6));
  stream::SetWalWriteFailpoint(-1);
  EXPECT_FALSE(torn.ok());
  if (!torn.ok()) EXPECT_EQ(torn.status().code(), StatusCode::kInternal);
  EXPECT_TRUE((*wal)->poisoned());
  // A poisoned handle refuses further appends rather than risk
  // interleaving after the torn bytes.
  EXPECT_FALSE((*wal)->Append(MakeBatch(950, 1)).ok());
  wal->reset();

  auto replay = Wal::Replay(dir);
  EXPECT_TRUE(replay.ok());
  if (!replay.ok()) return;
  EXPECT_TRUE(replay->truncated_bytes > 0);
  EXPECT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->last_seq, 3u);

  // Replay truncated the file in place, so a second scan is clean.
  auto again = Wal::Replay(dir);
  EXPECT_TRUE(again.ok());
  if (again.ok()) EXPECT_EQ(again->truncated_bytes, 0);

  // Reopen-for-append also recovers: seq 4 is reassigned to fresh data.
  auto reopened = Wal::Open(options);
  EXPECT_TRUE(reopened.ok());
  if (!reopened.ok()) return;
  EXPECT_EQ((*reopened)->last_seq(), 3u);
  EXPECT_FALSE((*reopened)->poisoned());
  auto seq = (*reopened)->Append(MakeBatch(400, 2));
  EXPECT_TRUE(seq.ok());
  if (seq.ok()) EXPECT_EQ(*seq, 4u);
  reopened->reset();
  auto final_scan = Wal::Replay(dir);
  EXPECT_TRUE(final_scan.ok());
  if (final_scan.ok()) EXPECT_EQ(final_scan->last_seq, 4u);
}

void TestNonTailCorruptionFailsLoudly() {
  const std::string dir = FreshDir("corrupt");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 128;  // several segments
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  if (!wal.ok()) return;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*wal)->Append(MakeBatch(10 * i, 4)).ok());
  }
  wal->reset();

  // Flip one payload byte in the FIRST segment. That is not a torn
  // tail (it is not the final segment), so Replay must refuse rather
  // than silently drop acknowledged records.
  std::string first_segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    if (first_segment.empty() || path < first_segment) first_segment = path;
  }
  EXPECT_TRUE(!first_segment.empty());
  FILE* f = std::fopen(first_segment.c_str(), "rb+");
  EXPECT_TRUE(f != nullptr);
  if (f == nullptr) return;
  // 20-byte header, then len+crc; byte 30 sits inside the first payload.
  std::fseek(f, 30, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, 30, SEEK_SET);
  std::fputc(byte ^ 0x5a, f);
  std::fclose(f);

  auto replay = Wal::Replay(dir);
  EXPECT_FALSE(replay.ok());
  if (!replay.ok()) {
    EXPECT_EQ(replay.status().code(), StatusCode::kInternal);
  }
}

void TestSeqGapFailsLoudly() {
  const std::string dir = FreshDir("seqgap");
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  if (!wal.ok()) return;
  EXPECT_TRUE((*wal)->Append(MakeBatch(0, 2)).ok());
  EXPECT_TRUE((*wal)->Append(MakeBatch(10, 2)).ok());
  wal->reset();

  // Hand-append a CRC-valid record whose seq skips ahead. Valid CRC
  // means this cannot be read as a torn tail — it is a logic error and
  // must surface as Internal.
  std::string segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    segment = entry.path().string();
  }
  EXPECT_TRUE(!segment.empty());
  FILE* f = std::fopen(segment.c_str(), "ab");
  EXPECT_TRUE(f != nullptr);
  if (f == nullptr) return;
  unsigned char payload[12];
  uint64_t seq = 7;  // expected: 3
  uint32_t count = 0;
  std::memcpy(payload, &seq, sizeof(seq));
  std::memcpy(payload + 8, &count, sizeof(count));
  uint32_t len = sizeof(payload);
  uint32_t crc = stream::WalCrc32(payload, sizeof(payload));
  std::fwrite(&len, sizeof(len), 1, f);
  std::fwrite(&crc, sizeof(crc), 1, f);
  std::fwrite(payload, sizeof(payload), 1, f);
  std::fclose(f);

  auto replay = Wal::Replay(dir);
  EXPECT_FALSE(replay.ok());
  if (!replay.ok()) {
    EXPECT_EQ(replay.status().code(), StatusCode::kInternal);
  }
}

void TestMissingAndEmptyDir() {
  auto missing = Wal::Replay("wal_test_definitely_missing_dir");
  EXPECT_FALSE(missing.ok());
  if (!missing.ok()) {
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  }

  const std::string dir = FreshDir("empty");
  fs::create_directories(dir);
  auto empty = Wal::Replay(dir);
  EXPECT_TRUE(empty.ok());
  if (empty.ok()) {
    EXPECT_EQ(empty->records.size(), 0u);
    EXPECT_EQ(empty->last_seq, 0u);
  }
}

void TestInjectedFaultHookIsRetryable() {
  const std::string dir = FreshDir("hook");
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  if (!wal.ok()) return;

  int remaining_faults = 2;
  (*wal)->SetIoFaultHook([&remaining_faults]() {
    if (remaining_faults > 0) {
      --remaining_faults;
      return true;
    }
    return false;
  });

  // Hook faults fire before any byte is written: the handle stays
  // clean and the same append succeeds once the fault budget drains.
  const std::vector<io::RawRating> batch = MakeBatch(0, 3);
  auto first = (*wal)->Append(batch);
  EXPECT_FALSE(first.ok());
  if (!first.ok()) EXPECT_EQ(first.status().code(), StatusCode::kInternal);
  EXPECT_FALSE((*wal)->poisoned());
  EXPECT_FALSE((*wal)->Append(batch).ok());
  auto third = (*wal)->Append(batch);
  EXPECT_TRUE(third.ok());
  if (third.ok()) EXPECT_EQ(*third, 1u);  // failed attempts consume no seq
  wal->reset();

  auto replay = Wal::Replay(dir);
  EXPECT_TRUE(replay.ok());
  if (replay.ok()) {
    EXPECT_EQ(replay->records.size(), 1u);
    EXPECT_EQ(replay->truncated_bytes, 0);
  }
}

void RunAllTests() {
  TestAppendReplayRoundtrip();
  TestSegmentRollAndTruncateBefore();
  TestTornTailTruncatedOnReplayAndReopen();
  TestNonTailCorruptionFailsLoudly();
  TestSeqGapFailsLoudly();
  TestMissingAndEmptyDir();
  TestInjectedFaultHookIsRetryable();
}

}  // namespace
}  // namespace hsgd

using hsgd::RunAllTests;
TEST_MAIN()
